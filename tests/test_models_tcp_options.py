"""Tests for the map-based TCP options model (§7 / Figure 7 / §8.2)."""

import pytest

from repro import ExecutionSettings, Network, SymbolicExecutor, models
from repro.core import checks as V
from repro.models.tcp_options import (
    ALLOW,
    ASA_DEFAULT_OPTION_POLICY,
    DROP,
    OPTION_MPTCP,
    OPTION_MSS,
    OPTION_SACK_OK,
    OPTION_TIMESTAMP,
    OPTION_WSCALE,
    OptionPolicy,
    build_tcp_options_filter,
    option_var,
    size_var,
    tcp_options_metadata,
    value_var,
)
from repro.sefl import InstructionBlock, TcpDst
from repro.sefl.expressions import ConstantValue

SETTINGS = ExecutionSettings(record_failed_paths=True)


def run_options(option_kinds_or_map, packet_values=None, policy=ASA_DEFAULT_OPTION_POLICY):
    network = Network()
    network.add_element(build_tcp_options_filter("asa-options", policy))
    program = InstructionBlock(
        models.symbolic_tcp_packet(packet_values),
        tcp_options_metadata(option_kinds_or_map),
    )
    executor = SymbolicExecutor(network, settings=SETTINGS)
    return executor.inject(program, "asa-options", "in0")


class TestDefaultAsaPolicy:
    def test_mptcp_always_stripped(self):
        result = run_options({OPTION_MPTCP: 1, OPTION_MSS: 1})
        for path in result.reaching("asa-options", "out0"):
            assert V.field_concrete_value(path, option_var(OPTION_MPTCP)) == 0

    def test_mss_always_added_even_when_absent(self):
        result = run_options({OPTION_WSCALE: 1})
        for path in result.reaching("asa-options", "out0"):
            assert V.field_concrete_value(path, option_var(OPTION_MSS)) == 1
            assert V.field_concrete_value(path, size_var(OPTION_MSS)) == 4

    def test_mss_value_clamped_to_1380(self):
        result = run_options({OPTION_MSS: 1})
        for path in result.reaching("asa-options", "out0"):
            values = V.admitted_values(path, value_var(OPTION_MSS), samples=1)
            assert values and all(v <= 1380 for v in values)

    def test_sackok_stripped_for_http_only(self):
        http = run_options({OPTION_SACK_OK: 1, OPTION_MSS: 1}, {TcpDst: 80})
        assert all(
            V.field_concrete_value(p, option_var(OPTION_SACK_OK)) == 0
            for p in http.reaching("asa-options", "out0")
        )
        ssh = run_options({OPTION_SACK_OK: 1, OPTION_MSS: 1}, {TcpDst: 22})
        assert all(
            V.field_concrete_value(p, option_var(OPTION_SACK_OK)) == 1
            for p in ssh.reaching("asa-options", "out0")
        )

    def test_allowed_options_pass_in_any_combination(self):
        """The model shows all allowed options survive simultaneously — the
        property Klee got wrong on the C code (Table 4)."""
        kinds = {OPTION_MSS: 1, OPTION_WSCALE: 1, OPTION_SACK_OK: 1, OPTION_TIMESTAMP: 1}
        result = run_options(kinds, {TcpDst: 22})
        path = result.reaching("asa-options", "out0")[0]
        for kind in (OPTION_WSCALE, OPTION_SACK_OK, OPTION_TIMESTAMP):
            assert V.field_concrete_value(path, option_var(kind)) == 1

    def test_unknown_option_stripped(self):
        result = run_options({200: 1, OPTION_MSS: 1})
        for path in result.reaching("asa-options", "out0"):
            assert V.field_concrete_value(path, option_var(200)) == 0

    def test_branching_factor_is_small(self):
        """The model's path count stays tiny regardless of how many options
        the packet carries — the whole point of the map-based encoding."""
        result = run_options(
            {kind: 1 for kind in (2, 3, 4, 5, 8, 30, 77, 200)}, {TcpDst: 22}
        )
        assert len(result.delivered()) <= 4


class TestCustomPolicies:
    def test_drop_policy_rejects_packets_with_option(self):
        policy = OptionPolicy(verdicts={OPTION_MSS: ALLOW, 19: DROP})
        present = run_options({19: 1, OPTION_MSS: 1}, policy=policy)
        assert not present.reaching("asa-options", "out0")
        absent = run_options({OPTION_MSS: 1}, policy=policy)
        assert absent.reaching("asa-options", "out0")

    def test_drop_policy_with_symbolic_presence_creates_both_verdicts(self):
        policy = OptionPolicy(verdicts={OPTION_MSS: ALLOW, 19: DROP})
        result = run_options({19: None, OPTION_MSS: 1}, policy=policy)
        assert result.reaching("asa-options", "out0")  # option absent
        assert result.failed()  # option present -> dropped

    def test_policy_without_mss_insertion(self):
        policy = OptionPolicy(
            verdicts={OPTION_WSCALE: ALLOW},
            always_add_mss=False,
            mss_clamp=None,
            strip_sackok_for_http=False,
        )
        result = run_options({OPTION_WSCALE: 1}, policy=policy)
        path = result.reaching("asa-options", "out0")[0]
        assert not path.state.has_metadata(option_var(OPTION_MSS))

    def test_verdict_lookup_default(self):
        assert ASA_DEFAULT_OPTION_POLICY.verdict(OPTION_MSS) == ALLOW
        assert ASA_DEFAULT_OPTION_POLICY.verdict(123) == "strip"


class TestMetadataBuilder:
    def test_sequence_form_marks_options_present(self):
        block = tcp_options_metadata([2, 3])
        # 2 options x 3 metadata entries x (allocate + assign) = 12 instructions
        assert len(block) == 12

    def test_symbolic_presence_flag(self):
        network = Network()
        network.add_element(build_tcp_options_filter("f"))
        program = InstructionBlock(
            models.symbolic_tcp_packet({TcpDst: 22}),
            tcp_options_metadata([OPTION_TIMESTAMP], symbolic_presence=True),
        )
        result = SymbolicExecutor(network, settings=SETTINGS).inject(program, "f", "in0")
        path = result.reaching("f", "out0")[0]
        # Presence is symbolic, so the final value is not pinned to 0 or 1.
        assert V.field_concrete_value(path, option_var(OPTION_TIMESTAMP)) is None
