"""Tests for the session API: NetworkModel, the declarative query objects,
the textual query grammar, the plan compiler, and the deprecation shims.

The load-bearing guarantees:

* a batch of queries over the same injection port compiles to ONE engine
  job (asserted via the campaign execution counters);
* plan fingerprints are independent of the order queries are given in;
* every planned answer is bit-identical to the legacy per-query campaign
  it replaces (department and stanford workloads, workers 1 and 2);
* validation is hoisted into NetworkModel and runs exactly once;
* the legacy ``repro.core.verification`` free functions keep working as
  shims that emit DeprecationWarning.
"""

import pytest

from repro import Network, NetworkElement, models
from repro.api import (
    AdmittedValues,
    All,
    Any_,
    ForAllPairs,
    FromPorts,
    HeaderVisible,
    Invariant,
    Loop,
    NetworkModel,
    Not,
    Query,
    QueryParseError,
    Reach,
    compile_plan,
    execute_plan,
    parse_query,
)
from repro.core.campaign import (
    NetworkSource,
    VerificationCampaign,
    clear_runtime_cache,
    execution_counters,
    reset_execution_counters,
)
from repro.network.topology import Network as TopoNetwork
from repro.sefl import Assign, Forward, InstructionBlock, IpDst, ip_to_number

DEPARTMENT_OPTIONS = dict(
    access_switches=4, hosts_per_switch=2, mac_entries=300, extra_routes=20
)
STANFORD_OPTIONS = dict(
    zones=4, internal_prefixes_per_zone=30, service_acl_rules=4
)
WORKLOADS = {
    "department": DEPARTMENT_OPTIONS,
    "stanford": STANFORD_OPTIONS,
}


def forwarding_network():
    """a:in0 -> a:out0 -> b:in0 -> b:out0 (a simple delivery chain)."""
    network = Network("chain")
    for name in ("a", "b"):
        element = NetworkElement(name, ["in0"], ["out0"])
        element.set_input_program("in0", Forward("out0"))
        network.add_element(element)
    network.add_link(("a", "out0"), ("b", "in0"))
    return network


def loop_network():
    """Two forwarders wired into a ring, entered via in-entry ports."""
    network = Network("ring")
    for name in ("a", "b"):
        element = NetworkElement(name, ["in0", "in-entry"], ["out0"])
        element.set_input_program("in0", Forward("out0"))
        element.set_input_program("in-entry", Forward("out0"))
        network.add_element(element)
    network.add_link(("a", "out0"), ("b", "in0"))
    network.add_link(("b", "out0"), ("a", "in0"))
    return network


def rewriting_network():
    """An element that overwrites IpDst with a constant (a NAT-ish box)."""
    network = Network("nat-ish")
    element = NetworkElement("nat", ["in0"], ["out0"])
    element.set_input_program(
        "in0",
        InstructionBlock(Assign(IpDst, ip_to_number("9.9.9.9")), Forward("out0")),
    )
    network.add_element(element)
    return network


# ---------------------------------------------------------------------------
# NetworkModel
# ---------------------------------------------------------------------------


class TestNetworkModel:
    def test_from_workload(self):
        model = NetworkModel.from_workload("department", **DEPARTMENT_OPTIONS)
        assert model.network().has_element("m1")
        assert len(model.injection_ports()) == 4
        assert model.describe().startswith("workload:department")

    def test_from_network_and_plain_constructor(self):
        network = forwarding_network()
        assert NetworkModel.from_network(network).network() is network
        assert NetworkModel(network).network() is network
        assert NetworkModel(NetworkSource.from_network(network)).network() is network

    def test_from_directory(self, tmp_path):
        (tmp_path / "topology.txt").write_text("device sw switch sw.mac\n")
        (tmp_path / "sw.mac").write_text(
            "Vlan    Mac Address       Type        Ports\n"
            " 302    0011.2233.4455    DYNAMIC     out0\n"
        )
        model = NetworkModel.from_directory(str(tmp_path))
        assert model.network().has_element("sw")
        assert model.injection_ports() == [("sw", "in0")]

    def test_rejects_other_types(self):
        with pytest.raises(TypeError, match="NetworkModel takes"):
            NetworkModel(42)

    def test_network_built_once(self):
        model = NetworkModel.from_workload("department", **DEPARTMENT_OPTIONS)
        assert model.network() is model.network()

    def test_validation_runs_exactly_once(self, tmp_path, monkeypatch):
        """The satellite bugfix: directory networks are validated once per
        model, no matter how many campaigns/plans are spawned from it."""
        (tmp_path / "topology.txt").write_text(
            "device sw switch sw.mac\nlink sw:out0 -> ghost:in0\n"
        )
        (tmp_path / "sw.mac").write_text(
            "Vlan    Mac Address       Type        Ports\n"
            " 302    0011.2233.4455    DYNAMIC     out0\n"
        )
        calls = []
        original = TopoNetwork.validate

        def counting_validate(self):
            calls.append(self.name)
            return original(self)

        monkeypatch.setattr(TopoNetwork, "validate", counting_validate)
        clear_runtime_cache()
        model = NetworkModel.from_directory(str(tmp_path))
        problems = model.validate()
        assert problems  # the dangling link shows up ...
        assert model.validate() == problems  # ... and is cached
        campaign_result = model.campaign(queries=("loops",)).run()
        assert campaign_result.validation_problems == problems
        plan_result = model.query(Loop())
        assert plan_result.campaign.validation_problems == problems
        assert len(calls) == 1


# ---------------------------------------------------------------------------
# Query objects and the textual grammar
# ---------------------------------------------------------------------------


class TestQueryObjects:
    def test_describe_and_equality(self):
        assert Reach("a:in0", "b").describe() == "reach(a:in0, b)"
        assert Reach(("a", "in0"), ("b", "out0")) == Reach("a:in0", "b:out0")
        assert Loop() == Loop(None) and Loop("a:in0") != Loop()
        assert Invariant("IpSrc", "IpDst").describe() == "invariant(IpSrc+IpDst)"
        assert len({Loop(), Loop(None)}) == 1

    def test_bare_element_gets_default_port(self):
        assert Reach("a", "b").src == ("a", "in0")

    def test_invariant_needs_fields(self):
        with pytest.raises(ValueError, match="at least one header field"):
            Invariant()

    def test_combinators_reject_report_queries(self):
        with pytest.raises(TypeError, match="boolean verdict"):
            Not(AdmittedValues("IpDst"))
        with pytest.raises(TypeError, match="boolean verdict"):
            All(Loop(), ForAllPairs(Reach))

    def test_quantifier_rejects_non_queries(self):
        with pytest.raises(TypeError, match="quantifiers take"):
            ForAllPairs("reach")

    def test_parser_roundtrips(self):
        texts = [
            "reach(a:in0, b:out0)",
            "loop()",
            "loop(acl0:in0)",
            "invariant(IpSrc+IpDst)",
            "invariant(IpSrc, acl0:in0)",
            "header_visible(IpSrc, at=r1:out0)",
            "admitted_values(TcpDst, at=r1:out0, samples=3)",
            "all(loop(), invariant(IpSrc))",
            "any(loop(), reach(a:in0, b))",
            "not(reach(a:in0, b))",
            "forall_pairs(reach)",
            "forall_pairs(invariant(IpSrc))",
            "from_ports(a:in0+b:in0, loop())",
            "from_ports(a:in0, reach)",
        ]
        for text in texts:
            query = parse_query(text)
            assert isinstance(query, Query)
            assert parse_query(query.describe()).describe() == query.describe()

    def test_parser_sugar(self):
        assert parse_query("loop") == Loop()
        assert parse_query(" loop( a:in0 ) ") == Loop("a:in0")

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "bogus()",
            "loop() trailing",
            "reach(a:in0)",
            "loop(a:in0, b:in0)",
            "invariant()",
            "not(loop(), loop())",
            "admitted_values(IpDst, samples=lots)",
            "header_visible(IpSrc, wat=1)",
            "forall_pairs(reach, loop)",
            "all(,)",
            "reach(a:in0, b:out0))",
        ],
    )
    def test_parser_rejects(self, bad):
        with pytest.raises(QueryParseError):
            parse_query(bad)


# ---------------------------------------------------------------------------
# The plan compiler
# ---------------------------------------------------------------------------


class TestPlanner:
    def test_overlapping_queries_share_one_engine_job(self):
        """Two queries over the same injection port compile to ONE job and
        cost ONE symbolic execution."""
        model = NetworkModel.from_network(forwarding_network())
        plan = compile_plan(
            model, [Reach("a:in0", "b:out0"), Reach("a:in0", "nowhere")]
        )
        assert plan.job_count == 1
        clear_runtime_cache()
        reset_execution_counters()
        result = execute_plan(plan)
        assert execution_counters()["engine_runs"] == 1
        assert result.stats.jobs == 1
        assert result[0].holds is True
        assert result[1].holds is False

    def test_disjoint_ports_get_separate_jobs(self):
        model = NetworkModel.from_network(loop_network())
        plan = compile_plan(
            model, [Loop(("a", "in-entry")), Loop(("b", "in-entry"))]
        )
        assert plan.job_count == 2

    def test_from_ports_scope_replaces_the_template_port(self):
        """The quantifier's port set *replaces* the template's own port: no
        job is compiled (or executed) that the quantifier never reads."""
        model = NetworkModel.from_network(loop_network())
        quantified = FromPorts(
            [("a", "in-entry")], Invariant("IpSrc", port=("b", "in-entry"))
        )
        plan = compile_plan(model, [quantified])
        assert plan.injections == (("a", "in-entry"),)
        answer = execute_plan(plan)[0]
        assert list(answer.value["fields"]["IpSrc"]["by_source"]) == [
            "a:in-entry"
        ]

    def test_plan_fingerprint_is_order_independent(self):
        model = NetworkModel.from_workload("department", **DEPARTMENT_OPTIONS)
        queries = [ForAllPairs(Reach), Loop(), Invariant("IpSrc")]
        forward = compile_plan(model, queries)
        backward = compile_plan(model, list(reversed(queries)))
        assert forward.fingerprint() == backward.fingerprint()
        assert forward.injections == backward.injections

    def test_plan_fingerprint_separates_different_batches(self):
        model = NetworkModel.from_workload("department", **DEPARTMENT_OPTIONS)
        base = compile_plan(model, [Loop()])
        assert base.fingerprint() != compile_plan(model, [Loop(), Invariant("IpSrc")]).fingerprint()
        assert base.fingerprint() != compile_plan(model, [Loop()], packet="udp").fingerprint()

    def test_witness_budgets_collapse_to_max(self):
        model = NetworkModel.from_network(forwarding_network())
        plan = compile_plan(
            model,
            [AdmittedValues("IpDst", samples=2), AdmittedValues("IpDst", samples=5)],
        )
        assert plan.witness_fields == (("IpDst", 5),)

    def test_compile_rejects_non_queries(self):
        model = NetworkModel.from_network(forwarding_network())
        with pytest.raises(TypeError, match="not a query"):
            compile_plan(model, [Loop(), "loop()"])
        with pytest.raises(ValueError, match="at least one query"):
            compile_plan(model, [])

    def test_plan_result_indexing(self):
        model = NetworkModel.from_network(forwarding_network())
        result = model.query(Loop(), Reach("a:in0", "b"))
        assert result["loop()"] is result[0]
        assert result[Reach("a:in0", "b")] is result[1]
        assert len(result) == 2
        with pytest.raises(KeyError):
            result["bogus"]


class TestPerPortNarrowing:
    """The ROADMAP PR 4 follow-up: per-port fact requirements are the union
    over the queries that *need that port*, not the whole batch."""

    def _queries(self):
        # Disjoint ports with disjoint fact needs: the loop query needs no
        # witness sampling at a:in-entry, the witness query no loop
        # aggregation at b:in-entry.
        return [
            Loop(("a", "in-entry")),
            AdmittedValues("IpSrc", port=("b", "in-entry"), samples=2),
        ]

    def test_port_facts_are_per_query_unions(self):
        model = NetworkModel.from_network(loop_network())
        plan = compile_plan(model, self._queries())
        facts = dict(plan.port_facts)
        a_facts = facts[("a", "in-entry")]
        b_facts = facts[("b", "in-entry")]
        assert a_facts.queries == ("loops",)
        assert a_facts.witness_fields == ()
        assert b_facts.queries == ()
        assert b_facts.witness_fields == (("IpSrc", 2),)
        # The campaign-level union still aggregates everything.
        assert plan.kinds == ("loops",)
        assert plan.witness_fields == (("IpSrc", 2),)

    def test_narrowing_reduces_fact_channels_with_identical_answers(self):
        model = NetworkModel.from_network(loop_network())

        clear_runtime_cache()
        reset_execution_counters()
        narrowed = execute_plan(compile_plan(model, self._queries()))
        narrowed_channels = execution_counters()["fact_channels"]

        clear_runtime_cache()
        reset_execution_counters()
        widened = execute_plan(
            compile_plan(model, self._queries(), narrow_facts=False)
        )
        widened_channels = execution_counters()["fact_channels"]

        assert narrowed_channels < widened_channels
        assert [r.fingerprint for r in narrowed] == [
            r.fingerprint for r in widened
        ]
        assert [r.holds for r in narrowed] == [r.holds for r in widened]

    def test_default_scope_queries_union_over_every_default_port(self):
        """Queries quantifying over the model's default ports need facts at
        every one of them, so a whole-batch default-scope query keeps every
        port's channels — narrowing only removes what no query reads."""
        model = NetworkModel.from_workload("department", **DEPARTMENT_OPTIONS)
        plan = compile_plan(model, [Loop(), Invariant("IpSrc")])
        facts = dict(plan.port_facts)
        assert set(facts) == set(model.injection_ports())
        for port_facts in facts.values():
            assert port_facts.queries == ("loops", "invariants")
            assert port_facts.invariant_fields == ("IpSrc",)

    def test_narrowed_batch_matches_dedicated_plans(self):
        """Per-port narrowing must not change a single demuxed answer
        relative to running each query as its own plan."""
        model = NetworkModel.from_network(loop_network())
        batch = execute_plan(compile_plan(model, self._queries()))
        for query in self._queries():
            clear_runtime_cache()
            alone = execute_plan(compile_plan(model, [query]))
            assert batch[query].fingerprint == alone[query].fingerprint


# ---------------------------------------------------------------------------
# Query semantics on small in-process networks
# ---------------------------------------------------------------------------


class TestQuerySemantics:
    def test_reach_evidence_carries_an_example_trace(self):
        model = NetworkModel.from_network(forwarding_network())
        answer = model.query(Reach("a:in0", "b:out0"))[0]
        assert answer.holds is True
        assert answer.value["path_counts"] == {"b:out0": 1}
        assert answer.evidence["examples"]["b:out0"][0] == "a:in0"
        assert answer.evidence["examples"]["b:out0"][-1] == "b:out0"

    def test_loop_detection_via_from_ports(self):
        model = NetworkModel.from_network(loop_network())
        result = model.query(
            FromPorts([("a", "in-entry")], Loop()),
            Reach(("a", "in-entry"), "nowhere"),
        )
        looped = result[0]
        assert looped.holds is False
        assert looped.evidence["findings"] >= 1
        assert looped.query == "from_ports(a:in-entry, loop())"

    def test_invariant_and_visibility_on_rewriting_network(self):
        model = NetworkModel.from_network(rewriting_network())
        result = model.query(
            Invariant("IpDst"),
            Invariant("IpSrc"),
            HeaderVisible("IpDst"),
            HeaderVisible("IpSrc"),
            AdmittedValues("IpDst", samples=2),
        )
        assert result[0].holds is False  # IpDst was overwritten
        assert result[1].holds is True
        assert result[2].holds is False  # the source's IpDst symbol is gone
        assert result[3].holds is True
        assert result[4].value["values"] == [ip_to_number("9.9.9.9")]

    def test_header_visible_at_port_scoping(self):
        model = NetworkModel.from_network(rewriting_network())
        result = model.query(
            HeaderVisible("IpSrc", at="nat:out0"),
            HeaderVisible("IpSrc", at="nowhere:out0"),
        )
        assert result[0].holds is True
        # Nothing was delivered at the bogus port: vacuous, so not verified.
        assert result[1].holds is False
        assert result[1].value["checked"] == 0

    def test_admitted_values_respects_constraints(self):
        network = Network("filter")
        element = NetworkElement("fw", ["in0"], ["out0"])
        from repro.sefl import Constrain, Eq, TcpDst

        element.set_input_program(
            "in0",
            InstructionBlock(Constrain(Eq(TcpDst, 443)), Forward("out0")),
        )
        network.add_element(element)
        model = NetworkModel.from_network(network)
        answer = model.query(AdmittedValues("TcpDst", at="fw:out0", samples=3))[0]
        assert answer.value["values"] == [443]

    def test_combinators_combine_verdicts(self):
        model = NetworkModel.from_network(forwarding_network())
        result = model.query(
            All(Loop(), Reach("a:in0", "b:out0")),
            Any_(Reach("a:in0", "nowhere"), Reach("a:in0", "b")),
            Not(Reach("a:in0", "nowhere")),
        )
        assert [answer.holds for answer in result] == [True, True, True]
        assert result[0].query == "all(loop(), reach(a:in0, b:out0))"

    def test_forall_pairs_matrix_mode(self):
        model = NetworkModel.from_workload("department", **DEPARTMENT_OPTIONS)
        answer = model.query(ForAllPairs(Reach))[0]
        assert answer.holds is None
        assert answer.kind == "reach_matrix"
        assert answer.value["reachable_pairs"] > 0
        assert answer.backend.fingerprint()  # the ReachabilityMatrix


# ---------------------------------------------------------------------------
# Planned-vs-direct parity (the acceptance criterion)
# ---------------------------------------------------------------------------


class TestPlannedVsDirectParity:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("workers", [1, 2])
    def test_batch_is_bit_identical_to_legacy_campaigns(self, workload, workers):
        """ForAllPairs(Reach) + Loop + Invariant in ONE planned batch vs the
        three dedicated legacy campaigns they replace: every injection port
        runs exactly once in the batch, and every answer fingerprint is
        bit-identical to the legacy aggregation."""
        options = WORKLOADS[workload]
        model = NetworkModel.from_workload(workload, **options)
        ports = model.injection_ports()

        clear_runtime_cache()
        reset_execution_counters()
        batch = model.query(
            ForAllPairs(Reach),
            Loop(),
            Invariant("IpSrc", "IpDst"),
            workers=workers,
        )
        assert batch.stats.jobs == len(ports)
        if workers == 1:
            # Each symmetry-class representative executed exactly once
            # (in-process counter; pool workers count in their own
            # processes); renaming-equivalent ports ride along for free.
            expected = len(ports) - batch.stats.jobs_skipped_by_symmetry
            assert execution_counters()["engine_runs"] == expected

        source = NetworkSource.from_workload(workload, **options)
        legacy = {}
        for kind in ("reachability", "loops", "invariants"):
            clear_runtime_cache()
            legacy[kind] = VerificationCampaign(
                source,
                queries=(kind,),
                invariant_fields=("IpDst", "IpSrc"),
            ).run(workers=workers)

        assert (
            batch[0].backend.fingerprint()
            == legacy["reachability"].reachability.fingerprint()
        )
        assert (
            batch[1].backend.fingerprint()
            == legacy["loops"].loop_report.fingerprint()
        )
        assert (
            batch[2].backend.fingerprint()
            == legacy["invariants"].invariant_report.fingerprint()
        )

    def test_single_field_invariant_matches_single_field_campaign(self):
        model = NetworkModel.from_workload("department", **DEPARTMENT_OPTIONS)
        answer = model.query(Invariant("IpSrc"))[0]
        legacy = VerificationCampaign(
            NetworkSource.from_workload("department", **DEPARTMENT_OPTIONS),
            queries=("invariants",),
            invariant_fields=("IpSrc",),
        ).run()
        assert answer.backend.fingerprint() == legacy.invariant_report.fingerprint()
        assert answer.holds == legacy.invariant_report.field_holds("IpSrc")

    def test_plan_results_are_worker_count_independent(self):
        model = NetworkModel.from_workload("department", **DEPARTMENT_OPTIONS)
        sequential = model.query(ForAllPairs(Reach), Loop(), workers=1)
        parallel = model.query(ForAllPairs(Reach), Loop(), workers=2)
        assert sequential.fingerprint() == parallel.fingerprint()


# ---------------------------------------------------------------------------
# Deprecation shims
# ---------------------------------------------------------------------------


class TestDeprecationShims:
    @pytest.fixture(scope="class")
    def tiny_result(self):
        network = forwarding_network()
        from repro.core.engine import SymbolicExecutor

        return SymbolicExecutor(network).inject(
            models.symbolic_tcp_packet(), "a", "in0"
        )

    def test_every_free_function_warns_and_delegates(self, tiny_result):
        from repro.core import checks
        from repro.core import verification as V
        from repro.sefl import IpDst, IpSrc

        path = tiny_result.delivered()[0]
        term = path.state.read_variable(IpDst)
        calls = [
            ("reachable_paths", (tiny_result, "b"), {}),
            ("is_reachable", (tiny_result, "b"), {}),
            ("admitted_values", (path, IpDst), {}),
            ("state_subsumed", ([], []), {}),
            ("find_loops", (tiny_result,), {}),
            ("field_invariant", (path, IpDst), {}),
            ("values_equal", (path, IpSrc, IpDst), {}),
            ("header_visible", (path, IpDst, term), {}),
            ("field_concrete_value", (path, IpDst), {}),
            ("memory_safety_violations", (tiny_result,), {}),
            ("constraint_violations", (tiny_result,), {}),
        ]
        assert sorted(name for name, _, _ in calls) == sorted(V.__all__)
        for name, args, kwargs in calls:
            with pytest.warns(DeprecationWarning, match=name):
                shimmed = getattr(V, name)(*args, **kwargs)
            assert shimmed == getattr(checks, name)(*args, **kwargs)

    def test_campaign_query_flag_warns(self, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / "topology.txt").write_text("device sw switch sw.mac\n")
        (tmp_path / "sw.mac").write_text(
            "Vlan    Mac Address       Type        Ports\n"
            " 302    0011.2233.4455    DYNAMIC     out0\n"
        )
        with pytest.warns(DeprecationWarning, match="--query flag is deprecated"):
            assert main(["campaign", str(tmp_path), "--query", "loops"]) == 0
        assert "use the 'query' subcommand" in capsys.readouterr().err
