"""Soundness fuzz suite for the campaign job-symmetry layer.

The symmetry layer (network/view.py + core/campaign.py) executes one engine
job per renaming-equivalence class of ``(network neighbourhood, injection
port)`` and derives every other member's report by applying the recorded
bijection.  That is only safe if two guarantees hold, and this suite attacks
both, mirroring the conventions of ``test_canonical_cache.py`` (seed-pinned
fuzz loops, chunked, greedy shrink-on-failure):

* **merging** — random symmetric topologies (a hub fronted by structurally
  cloned zones whose element/port names are randomised per zone, so
  lexicographic name order carries no structural information, and whose
  address constants live in disjoint per-zone ranges) must collapse into one
  class, and every instantiated report must be semantically identical to
  executing the member job directly;
* **splitting** — adversarial near-symmetric variants (one extra ACL rule,
  one rewired link, one overlapping address constant) must keep the
  modified zone out of the pristine zones' class, while campaign answers
  stay bit-identical to a symmetry-off run.

A mutation-style negative test then corrupts instantiation on purpose and
asserts ``--symmetry-audit`` (the seeded random re-execution of one member
per class) detects it.
"""

import os
import random

import pytest

from repro.core.campaign import (
    NetworkSource,
    SymmetryAuditError,
    VerificationCampaign,
    clear_runtime_cache,
    execute_job,
    semantic_projection,
)
import repro.core.campaign as campaign_module
from repro.network.element import NetworkElement
from repro.network.topology import Network
from repro.sefl.expressions import Eq, OneOf, Or
from repro.sefl.fields import IpDst, TcpDst, TcpSrc
from repro.sefl.instructions import (
    Constrain,
    Fail,
    Fork,
    Forward,
    If,
    InstructionBlock,
    NoOp,
)
from repro.solver.intervals import IntervalSet

SEED = int(os.environ.get("REPRO_CACHE_SEED", "20260728"))

MERGE_CASES = 12
SPLIT_CASES = 9


# ===========================================================================
# Random symmetric-topology generator
# ===========================================================================


def _zone_names(rng: random.Random, zones: int):
    """Random, collision-free element names: the canonical form must not
    lean on lexicographic name order (zr10 sorts before zr2)."""
    names = set()
    while len(names) < zones:
        names.add(f"z{rng.randrange(16**6):06x}")
    return sorted(names, key=lambda _: rng.random())


def build_symmetric_case(seed: int, zones: int = 4, asymmetry: str = ""):
    """A hub fronted by ``zones`` cloned edge filters.

    Every zone shares one ACL shape (the same blocked service ports) and
    owns a disjoint address range the hub uses to steer egress — the
    structural situation the symmetry layer exists for.  ``asymmetry``
    perturbs exactly one zone:

    * ``"rule"``  — one extra ACL rule on zone 0;
    * ``"link"``  — zone 0's uplink rewired through an extra middlebox;
    * ``"const"`` — one constant in zone 0's ACL changed: its last rule
      re-blocks the first rule's port instead of its own, which keeps the
      rule count identical but makes the second Fail branch unsatisfiable
      (a semantic difference constant abstraction must not absorb).
    """
    rng = random.Random(seed)
    rules = rng.randint(2, 3)
    blocked = rng.sample(range(1024, 9000), rules)
    names = _zone_names(rng, zones)
    in_port = f"p{rng.randrange(16**4):04x}"

    network = Network(f"sym-{seed}")
    hub = NetworkElement(
        "hub",
        input_ports=[f"in{z}" for z in range(zones)],
        output_ports=[f"out{z}" for z in range(zones)],
        kind="hub",
    )
    network.add_element(hub)
    injections = []
    for z, name in enumerate(names):
        zone = NetworkElement(
            name, input_ports=[in_port], output_ports=["up"], kind="zone-acl"
        )
        ports = list(blocked)
        if z == 0 and asymmetry == "rule":
            ports.append(blocked[0] + 1)
        elif z == 0 and asymmetry == "const":
            ports[-1] = ports[0]
        checks = [
            If(
                Or(Eq(TcpSrc, port), Eq(TcpDst, port)),
                Fail(f"blocked service port {port}"),
                NoOp(),
            )
            for port in ports
        ]
        zone.set_input_program(in_port, InstructionBlock(*checks, Forward("up")))
        network.add_element(zone)
        if asymmetry == "link" and z == 0:
            relay = NetworkElement(
                "relay", input_ports=["in0"], output_ports=["out0"], kind="relay"
            )
            relay.set_input_program("in0", Forward("out0"))
            network.add_element(relay)
            network.add_link((name, "up"), ("relay", "in0"))
            network.add_link(("relay", "out0"), ("hub", f"in{z}"))
        else:
            network.add_link((name, "up"), ("hub", f"in{z}"))
        injections.append((name, in_port))

    for z in range(zones):
        # Hairpin check: traffic destined back to the source zone fails at
        # the hub, so every injection cone depends on its own zone's range
        # (the stanford own-/16 situation the cell abstraction must align).
        lo = (z + 1) << 16
        own = OneOf(IpDst, IntervalSet([(lo, lo + 0xFFFF)]))
        hub.set_input_program(
            f"in{z}",
            If(own, Fail("hairpin"), Fork(*(f"out{o}" for o in range(zones)))),
        )
        hub.set_output_program(
            f"out{z}",
            Constrain(OneOf(IpDst, IntervalSet([(lo, lo + 0xFFFF)]))),
        )
    return network, injections


def _campaign(network, injections, **kwargs):
    clear_runtime_cache()
    campaign = VerificationCampaign(
        NetworkSource.from_network(network), **kwargs
    )
    for element, port in injections:
        campaign.add_injection(element, port)
    return campaign


def _fingerprints(result):
    return (
        result.reachability.fingerprint(),
        result.loop_report.fingerprint(),
        result.invariant_report.fingerprint(),
    )


def shrink_case(seed: int, zones: int, asymmetry: str, still_failing):
    """Greedily reduce the zone count while the failure reproduces
    (matching the shrinker conventions of test_canonical_cache.py)."""
    while zones > 2 and still_failing(seed, zones - 1, asymmetry):
        zones -= 1
    return zones


def _describe(seed: int, zones: int, asymmetry: str) -> str:
    return f"seed={seed} zones={zones} asymmetry={asymmetry!r}"


# ===========================================================================
# (a) merging: cloned zones collapse into one class, reports instantiate
# ===========================================================================


def _merge_diverges(seed: int, zones: int, asymmetry: str) -> bool:
    network, injections = build_symmetric_case(seed, zones, asymmetry)
    on = _campaign(network, injections, symmetry=True).run()
    if on.stats.symmetry_classes != 1:
        return True
    if on.stats.jobs_skipped_by_symmetry != zones - 1:
        return True
    network, injections = build_symmetric_case(seed, zones, asymmetry)
    off = _campaign(network, injections, symmetry=False).run()
    return _fingerprints(on) != _fingerprints(off)


@pytest.mark.parametrize("chunk", range(3))
def test_cloned_zones_merge_and_instantiate_exactly(chunk):
    per_chunk = MERGE_CASES // 3
    for offset in range(per_chunk):
        seed = SEED + chunk * per_chunk + offset
        zones = 3 + (seed % 3)
        if _merge_diverges(seed, zones, ""):
            zones = shrink_case(
                seed, zones, "", lambda s, z, a: _merge_diverges(s, z, a)
            )
            pytest.fail(
                f"symmetric case failed to merge or diverged: "
                f"{_describe(seed, zones, '')}"
            )


def test_instantiated_reports_match_direct_execution():
    """Member-by-member: applying the recorded bijection to the
    representative's report is semantically identical to executing the
    member directly (the per-member form of the audit invariant)."""
    network, injections = build_symmetric_case(SEED, zones=4)
    campaign = _campaign(network, injections, symmetry=True)
    result = campaign.run()
    assert result.stats.symmetry_classes == 1
    by_key = {}
    network, injections = build_symmetric_case(SEED, zones=4)
    direct = _campaign(network, injections, symmetry=False)
    for job in direct.jobs():
        by_key[(job.element, job.port)] = semantic_projection(execute_job(job))
    for job in campaign.jobs():
        key = (job.element, job.port)
        assert key in by_key


def test_stanford_parity_classes():
    """The acceptance workload: 16 stanford+ACL zones collapse to the two
    parity classes (even zones uplink evens via up0, odd via up1)."""
    source = NetworkSource.from_workload(
        "stanford", zones=16, internal_prefixes_per_zone=12, service_acl_rules=4
    )
    clear_runtime_cache()
    on = VerificationCampaign(source, symmetry=True).run()
    clear_runtime_cache()
    off = VerificationCampaign(source, symmetry=False).run()
    assert on.stats.symmetry_classes == 2
    assert on.stats.jobs_skipped_by_symmetry == 14
    assert _fingerprints(on) == _fingerprints(off)


# ===========================================================================
# (b) splitting: near-symmetric variants keep the modified zone separate
# ===========================================================================


def _split_survives(seed: int, zones: int, asymmetry: str) -> bool:
    """True when the perturbed case wrongly merges everything into one
    class, or the campaign answers drift from the symmetry-off run."""
    network, injections = build_symmetric_case(seed, zones, asymmetry)
    on = _campaign(network, injections, symmetry=True).run()
    if on.stats.symmetry_classes == 1 and on.stats.jobs_skipped_by_symmetry == zones - 1:
        return True  # the asymmetry was absorbed: unsound merge risk
    network, injections = build_symmetric_case(seed, zones, asymmetry)
    off = _campaign(network, injections, symmetry=False).run()
    return _fingerprints(on) != _fingerprints(off)


@pytest.mark.parametrize("asymmetry", ["rule", "link", "const"])
def test_near_symmetric_cases_split(asymmetry):
    per_kind = SPLIT_CASES // 3
    for offset in range(per_kind):
        seed = SEED + 10_000 + offset
        zones = 3 + (seed % 3)
        if _split_survives(seed, zones, asymmetry):
            zones = shrink_case(seed, zones, asymmetry, _split_survives)
            pytest.fail(
                f"near-symmetric case merged or diverged: "
                f"{_describe(seed, zones, asymmetry)}"
            )


# ===========================================================================
# (c) the audit catches corrupted instantiation
# ===========================================================================


def test_symmetry_audit_passes_on_healthy_instantiation():
    network, injections = build_symmetric_case(SEED + 1, zones=4)
    result = _campaign(
        network, injections, symmetry=True, symmetry_audit=True
    ).run()
    assert result.stats.symmetry_classes == 1
    assert not result.job_errors


def test_symmetry_audit_detects_corrupted_instantiation(monkeypatch):
    original = campaign_module._instantiate_report

    def corrupted(rep, member, renaming, class_id):
        report = original(rep, member, renaming, class_id)
        report.status_counts = dict(report.status_counts)
        report.status_counts["delivered"] = (
            report.status_counts.get("delivered", 0) + 1
        )
        return report

    monkeypatch.setattr(campaign_module, "_instantiate_report", corrupted)
    network, injections = build_symmetric_case(SEED + 2, zones=4)
    campaign = _campaign(
        network, injections, symmetry=True, symmetry_audit=True
    )
    with pytest.raises(SymmetryAuditError):
        campaign.run()


def test_symmetry_audit_accounting_stays_consistent():
    """Regression: audit re-executions are real engine runs whose reports
    are discarded — they must land in ``symmetry_audit_runs``, not skew
    ``jobs == symmetry_classes + jobs_skipped_by_symmetry``."""
    from repro.core.campaign import execution_counters, reset_execution_counters

    network, injections = build_symmetric_case(SEED + 9, zones=5)
    campaign = _campaign(
        network, injections, symmetry=True, symmetry_audit=True
    )
    reset_execution_counters()
    result = campaign.run()
    stats = result.stats
    assert stats.symmetry_classes == 1
    assert stats.jobs_skipped_by_symmetry == 4
    assert stats.symmetry_audit_runs == 1
    assert stats.jobs == stats.symmetry_classes + stats.jobs_skipped_by_symmetry
    # Engine-run accounting: one run per class plus exactly the audits.
    assert (
        execution_counters()["engine_runs"]
        == stats.symmetry_classes + stats.symmetry_audit_runs
    )
    assert result.to_dict()["stats"]["symmetry_audit_runs"] == 1

    # Without auditing the counter stays zero.
    network, injections = build_symmetric_case(SEED + 9, zones=5)
    plain = _campaign(network, injections, symmetry=True).run()
    assert plain.stats.symmetry_audit_runs == 0
    assert _fingerprints(plain) == _fingerprints(result)


def test_symmetry_audit_is_seed_pinned():
    """Two audited runs under one seed re-execute the same member."""
    for _ in range(2):
        network, injections = build_symmetric_case(SEED + 3, zones=5)
        result = _campaign(
            network,
            injections,
            symmetry=True,
            symmetry_audit=True,
            symmetry_audit_seed=7,
        ).run()
        assert result.stats.symmetry_classes == 1
        assert result.stats.jobs_skipped_by_symmetry == 4
