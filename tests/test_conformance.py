"""Tests for the conformance-testing framework (§8.3): the model-vs-
implementation loop must accept correct models and catch the paper's bugs."""

import random

import pytest

from repro import Network, models
from repro.click.elements import (
    build_dec_ip_ttl,
    build_host_ether_filter,
    build_ip_classifier,
    build_ip_mirror_element,
)
from repro.models.router import router_egress
from repro.models.switch import switch_egress
from repro.sefl import (
    EtherDst,
    EtherSrc,
    EtherType,
    IpDst,
    IpLength,
    IpProto,
    IpSrc,
    IpTtl,
    IpVersion,
    SymbolicValue,
    TcpDst,
    TcpSrc,
)
from repro.testing import (
    ConcretePacket,
    ConformanceTester,
    ReferenceDataplane,
    concrete_packet_from_path,
    evaluate_term,
    reference_dec_ip_ttl,
    reference_host_ether_filter,
    reference_ip_classifier,
    reference_ip_mirror,
    reference_router,
    reference_switch,
)
from repro.solver.ast import Add, Const, Sub, Var

FIELDS = [
    EtherDst,
    EtherSrc,
    EtherType,
    IpVersion,
    IpSrc,
    IpDst,
    IpProto,
    IpTtl,
    IpLength,
    TcpSrc,
    TcpDst,
]


def make_tester(element, behaviour):
    network = Network()
    network.add_element(element)
    dataplane = ReferenceDataplane(network)
    dataplane.register(element.name, behaviour)
    return ConformanceTester(network, dataplane, FIELDS)


class TestTermEvaluation:
    def test_evaluate_term(self):
        model = {"a": 5}
        a = Var("a", 8)
        assert evaluate_term(Const(3), model) == 3
        assert evaluate_term(a, model) == 5
        assert evaluate_term(Add(a, Const(2)), model) == 7
        assert evaluate_term(Sub(a, Const(2)), model) == 3
        assert evaluate_term(Var("unbound", 8), model, default=9) == 9


class TestPacketGeneration:
    def test_concrete_packet_satisfies_path_constraints(self):
        from repro import SymbolicExecutor
        from repro.sefl import Constrain, Eq, Forward, InstructionBlock
        from repro.network import NetworkElement

        network = Network()
        element = NetworkElement("box", ["in0"], ["out0"])
        element.set_input_program(
            "in0", InstructionBlock(Constrain(Eq(TcpDst, 8080)), Forward("out0"))
        )
        network.add_element(element)
        result = SymbolicExecutor(network).inject(
            models.symbolic_tcp_packet(), "box", "in0"
        )
        packet = concrete_packet_from_path(result.delivered()[0], FIELDS)
        assert packet.fields["TcpDst"] == 8080
        assert packet.fields["IpProto"] == 6


class TestConformanceCatchesPaperBugs:
    """Each of the §8.3 war stories: the fixed model passes, the buggy one is
    caught."""

    def test_ip_mirror(self):
        fixed = make_tester(build_ip_mirror_element("m"), reference_ip_mirror())
        assert fixed.test(models.symbolic_tcp_packet(), "m", random_trials=5).conformant

        buggy = make_tester(build_ip_mirror_element("m", buggy=True), reference_ip_mirror())
        report = buggy.test(models.symbolic_tcp_packet(), "m", random_trials=5)
        assert not report.conformant
        assert any(m.kind == "value-mismatch" for m in report.mismatches)

    def test_dec_ip_ttl(self):
        probes = [
            ConcretePacket(fields={"IpTtl": 0, "EtherDst": 1, "EtherSrc": 2,
                                   "IpSrc": 3, "IpDst": 4, "TcpSrc": 5, "TcpDst": 6,
                                   "IpLength": 100}),
            ConcretePacket(fields={"IpTtl": 1, "EtherDst": 1, "EtherSrc": 2,
                                   "IpSrc": 3, "IpDst": 4, "TcpSrc": 5, "TcpDst": 6,
                                   "IpLength": 100}),
        ]
        fixed = make_tester(build_dec_ip_ttl("d"), reference_dec_ip_ttl())
        assert fixed.test(
            models.symbolic_tcp_packet(), "d", random_trials=10, probe_packets=probes
        ).conformant

        buggy = make_tester(build_dec_ip_ttl("d", buggy=True), reference_dec_ip_ttl())
        report = buggy.test(
            models.symbolic_tcp_packet(), "d", random_trials=10, probe_packets=probes
        )
        assert not report.conformant

    def test_host_ether_filter(self):
        packet = models.symbolic_tcp_packet({EtherType: SymbolicValue("etype", 16)})
        fixed = make_tester(
            build_host_ether_filter("h", 0xAABB), reference_host_ether_filter(0xAABB)
        )
        assert fixed.test(packet, "h", random_trials=10).conformant

        buggy = make_tester(
            build_host_ether_filter("h", 0xAABB, buggy=True),
            reference_host_ether_filter(0xAABB),
        )
        assert not buggy.test(packet, "h", random_trials=10).conformant

    def test_ip_classifier(self):
        filters = [{"proto": 6, "dst_port": 80}, {"proto": 6, "dst_port": 22}]
        tester = make_tester(
            build_ip_classifier("cls", filters), reference_ip_classifier(filters)
        )
        report = tester.test(models.symbolic_tcp_packet(), "cls", random_trials=10)
        assert report.conformant
        assert report.paths_tested == 2


class TestConformanceOnForwardingModels:
    def test_switch_model_conforms_to_lookup(self):
        table = {"out0": [1, 2, 3], "out1": [7, 8]}
        tester = make_tester(switch_egress("sw", table), reference_switch(table))
        report = tester.test(models.symbolic_tcp_packet(), "sw", random_trials=10)
        assert report.conformant
        assert report.paths_tested == 2

    def test_switch_model_with_wrong_table_is_caught(self):
        table = {"out0": [1, 2, 3], "out1": [7, 8]}
        wrong = {"out0": [1, 2, 3, 7], "out1": [8]}
        tester = make_tester(switch_egress("sw", wrong), reference_switch(table))
        # Probe the disputed MAC address explicitly (the tester's targeted
        # packets, on top of the per-path and random ones).
        probe = ConcretePacket(fields={"EtherDst": 7, "EtherSrc": 1, "IpSrc": 2,
                                       "IpDst": 3, "TcpSrc": 4, "TcpDst": 5,
                                       "IpTtl": 9, "IpLength": 100})
        report = tester.test(
            models.symbolic_tcp_packet(), "sw", random_trials=5, probe_packets=[probe]
        )
        assert not report.conformant

    def test_router_model_conforms_to_lpm(self):
        fib = [
            (0x0A000000, 8, "if0"),
            (0x0A0A0000, 16, "if1"),
            (0, 0, "if2"),
        ]
        tester = make_tester(router_egress("r", fib), reference_router(fib))
        report = tester.test(models.symbolic_ip_packet(), "r", random_trials=10)
        assert report.conformant
        assert report.paths_tested == 3


class TestReferenceDataplane:
    def test_unregistered_element_acts_as_wire(self):
        from repro.network import NetworkElement

        network = Network()
        network.add_element(NetworkElement("wire", ["in0"], ["out0"]))
        dataplane = ReferenceDataplane(network)
        outputs = dataplane.inject(ConcretePacket(fields={"IpDst": 1}), "wire", "in0")
        assert len(outputs) == 1
        assert outputs[0].port == "out0"

    def test_propagation_across_links(self):
        table = {"out0": [5]}
        network = Network()
        network.add_element(switch_egress("sw", table))
        network.add_element(build_ip_mirror_element("m"))
        network.add_link(("sw", "out0"), ("m", "in0"))
        dataplane = ReferenceDataplane(network)
        dataplane.register("sw", reference_switch(table))
        dataplane.register("m", reference_ip_mirror())
        packet = ConcretePacket(fields={"EtherDst": 5, "IpSrc": 1, "IpDst": 2,
                                        "TcpSrc": 3, "TcpDst": 4})
        outputs = dataplane.inject(packet, "sw", "in0")
        assert len(outputs) == 1
        assert outputs[0].element == "m"
        assert outputs[0].packet.fields["IpSrc"] == 2

    def test_state_reset(self):
        from repro.testing import reference_ip_rewriter

        network = Network()
        from repro.click.elements import build_ip_rewriter

        network.add_element(build_ip_rewriter("rw"))
        dataplane = ReferenceDataplane(network)
        dataplane.register("rw", reference_ip_rewriter())
        outgoing = ConcretePacket(fields={"IpSrc": 1, "IpDst": 2, "TcpSrc": 3, "TcpDst": 4})
        returning = ConcretePacket(fields={"IpSrc": 2, "IpDst": 1, "TcpSrc": 4, "TcpDst": 3})
        dataplane.inject(outgoing, "rw", "in0")
        assert dataplane.inject(returning, "rw", "in1")
        dataplane.reset_state()
        assert not dataplane.inject(returning, "rw", "in1")
