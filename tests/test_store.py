"""Mutation/fuzz suite for the persistent store's disk layer.

The claims under test, per the store's trust model (disk is evidence, never
truth):

* round-trip fidelity: what :meth:`VerificationStore.publish` writes,
  :meth:`VerificationStore.load` returns — across shard counts, publish
  batches, compaction and concurrent writers — with exact verdict parity
  against an in-memory :class:`VerdictCache` fed the same entries;
* **quarantine, not crash**: truncated segments, bit flips anywhere in a
  file, re-keyed entries, foreign/garbage files and torn tmp files from a
  crash mid-flush never raise out of ``load()`` — the poisoned segment is
  moved to ``quarantine/`` and every *other* segment's entries survive;
* conflicting segments (definite verdict vs definite verdict for one
  fingerprint) are refused wholesale via the verdict cache's own
  conflict-refusing policy, and a re-keyed entry that dodges every
  structural check is still caught by ``VerdictCache.verify_entry``'s
  re-solve — the same hook the PR 3 mutation tests exercise.

Fuzz loops are seed-pinned via ``REPRO_CACHE_SEED`` (the cache suites'
convention) so CI runs are reproducible.
"""

import hashlib
import json
import os
import random
import threading

import pytest

from repro.solver.ast import Const, Ge, Le, Var
from repro.solver.canonical import canonical_fingerprint
from repro.solver.verdict_cache import CacheCorruptionError, VerdictCache
from repro.store import (
    SegmentFormatError,
    ShardedTier,
    VerificationStore,
    read_segment,
    shard_index,
    write_segment,
)

SEED = int(os.environ.get("REPRO_CACHE_SEED", "20260728"))


def fake_fingerprint(rng: random.Random) -> str:
    return hashlib.sha256(str(rng.random()).encode()).hexdigest()


def random_entries(rng: random.Random, count: int) -> dict:
    return {
        fake_fingerprint(rng): rng.choice(("sat", "unsat"))
        for _ in range(count)
    }


def all_segments(store: VerificationStore):
    return [
        path
        for index in range(store.shard_count)
        for path in store._segments_of(index)
    ]


# ---------------------------------------------------------------------------
# Round-trip fidelity
# ---------------------------------------------------------------------------


class TestRoundTrip:
    @pytest.mark.parametrize("shards", [1, 3, 8])
    def test_publish_load_parity_with_in_memory_cache(self, tmp_path, shards):
        rng = random.Random(SEED + shards)
        store = VerificationStore(str(tmp_path), shards=shards)
        reference = VerdictCache()
        for round_number in range(5):
            entries = random_entries(rng, rng.randint(1, 40))
            reference.merge(entries)
            store.publish(entries)
        reopened = VerificationStore(str(tmp_path))
        assert reopened.shard_count == shards
        assert reopened.load() == reference.snapshot()
        assert not reopened.quarantined

    def test_publish_writes_only_the_diff(self, tmp_path):
        rng = random.Random(SEED)
        store = VerificationStore(str(tmp_path), shards=4)
        entries = random_entries(rng, 30)
        assert store.publish(entries) == 30
        assert store.publish(entries) == 0  # idempotent, no new segments
        more = random_entries(rng, 5)
        assert store.publish({**entries, **more}) == 5

    def test_unknown_verdicts_are_never_persisted(self, tmp_path):
        rng = random.Random(SEED)
        store = VerificationStore(str(tmp_path), shards=2)
        fingerprint = fake_fingerprint(rng)
        assert store.publish({fingerprint: "unknown"}) == 0
        assert store.load() == {}

    def test_content_token_tracks_publishes(self, tmp_path):
        rng = random.Random(SEED)
        store = VerificationStore(str(tmp_path), shards=2)
        empty_token = store.content_token()
        store.publish(random_entries(rng, 8))
        cold_token = store.content_token()
        assert cold_token != empty_token
        assert VerificationStore(str(tmp_path)).content_token() == cold_token
        store.publish(random_entries(rng, 1))
        assert store.content_token() != cold_token

    def test_compaction_preserves_every_verdict(self, tmp_path):
        rng = random.Random(SEED)
        store = VerificationStore(str(tmp_path), shards=4)
        expected = {}
        for _ in range(6):
            entries = random_entries(rng, 20)
            expected.update(entries)
            store.publish(entries)
        before = len(all_segments(store))
        outcome = store.compact()
        assert outcome["entries"] == len(expected)
        assert outcome["segments_before"] == before
        assert outcome["segments_after"] <= store.shard_count
        assert VerificationStore(str(tmp_path)).load() == expected

    def test_compaction_races_with_a_concurrent_publisher(self, tmp_path, monkeypatch):
        """A segment published while a compaction runs (after the segment
        snapshot, before the deletions) must survive: compact only deletes
        the files it folded into the replacement."""
        rng = random.Random(SEED)
        store = VerificationStore(str(tmp_path), shards=2)
        original_entries = random_entries(rng, 12)
        store.publish(original_entries)
        racing_entries = random_entries(rng, 4)
        original_load = VerificationStore._load_segments
        raced = []

        def load_then_race(self, segment_lists):
            merged = original_load(self, segment_lists)
            if not raced:
                # Another process publishes between the snapshot and the
                # deletions (once — the publisher's own load must recurse
                # into the real implementation unmolested).
                raced.append(True)
                VerificationStore(str(tmp_path)).publish(racing_entries)
            return merged

        monkeypatch.setattr(VerificationStore, "_load_segments", load_then_race)
        store.compact()
        monkeypatch.undo()
        final = VerificationStore(str(tmp_path)).load()
        assert final == {**original_entries, **racing_entries}

    def test_shard_layout_is_pinned_at_creation(self, tmp_path):
        VerificationStore(str(tmp_path), shards=3)
        # Re-opening with a different count uses the on-disk layout.
        assert VerificationStore(str(tmp_path), shards=8).shard_count == 3

    @pytest.mark.parametrize("shards", [0, -4, "abc", None, True, 2.5])
    def test_tampered_store_metadata_is_rejected_cleanly(self, tmp_path, shards):
        """STORE.json is untrusted disk input: an unusable shard count must
        fail as a clean StoreError at open time, never as an untyped crash
        at the end of a finished campaign."""
        from repro.store import StoreError

        VerificationStore(str(tmp_path), shards=2)
        meta_path = os.path.join(str(tmp_path), "STORE.json")
        json.dump({"format": 1, "shards": shards}, open(meta_path, "w"))
        with pytest.raises(StoreError, match="shard count"):
            VerificationStore(str(tmp_path))

    def test_concurrent_writers_lose_nothing(self, tmp_path):
        """Writers in parallel threads (distinct store handles, same
        directory — the multi-process publish shape) must never clobber or
        corrupt each other: segment names are collision-free and every
        write is tmp-file + atomic rename."""
        rng = random.Random(SEED)
        batches = [random_entries(rng, 25) for _ in range(8)]
        errors = []

        def publish(batch):
            try:
                VerificationStore(str(tmp_path), shards=4).publish(batch)
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        threads = [threading.Thread(target=publish, args=(b,)) for b in batches]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        merged = {}
        for batch in batches:
            merged.update(batch)
        final = VerificationStore(str(tmp_path))
        assert final.load() == merged
        assert not final.quarantined


# ---------------------------------------------------------------------------
# Segment-level integrity
# ---------------------------------------------------------------------------


class TestSegmentFormat:
    def test_segment_round_trip(self, tmp_path):
        rng = random.Random(SEED)
        entries = random_entries(rng, 10)
        path = str(tmp_path / "segment-00000000-abcdef00.seg")
        assert write_segment(path, 3, entries) == 10
        assert read_segment(path, 3) == entries

    def test_wrong_shard_is_rejected(self, tmp_path):
        rng = random.Random(SEED)
        path = str(tmp_path / "s.seg")
        write_segment(path, 1, random_entries(rng, 3))
        with pytest.raises(SegmentFormatError, match="shard"):
            read_segment(path, 2)

    def test_writer_validates_its_input(self, tmp_path):
        path = str(tmp_path / "s.seg")
        with pytest.raises(ValueError, match="fingerprint"):
            write_segment(path, 0, {"not-hex": "sat"})
        with pytest.raises(ValueError, match="verdict"):
            write_segment(path, 0, {"ab" * 32: "maybe"})

    @pytest.mark.parametrize("case", range(40))
    def test_fuzzed_corruption_never_parses(self, tmp_path, case):
        """Seed-pinned fuzz: truncate at a random offset, flip a random
        byte, or splice random bytes — every mutation must raise
        SegmentFormatError (never return entries, never crash harder)."""
        rng = random.Random(SEED * 1000 + case)
        path = str(tmp_path / "s.seg")
        write_segment(path, 0, random_entries(rng, rng.randint(1, 12)))
        raw = bytearray(open(path, "rb").read())
        mutation = rng.choice(("truncate", "flip", "splice"))
        if mutation == "truncate":
            raw = raw[: rng.randrange(1, len(raw))]
        elif mutation == "flip":
            index = rng.randrange(len(raw))
            raw[index] ^= 1 << rng.randrange(8)
        else:
            index = rng.randrange(len(raw))
            raw[index:index] = bytes(
                rng.randrange(256) for _ in range(rng.randint(1, 9))
            )
        open(path, "wb").write(bytes(raw))
        with pytest.raises(SegmentFormatError):
            read_segment(path, 0)


# ---------------------------------------------------------------------------
# Quarantine, not crash
# ---------------------------------------------------------------------------


def _corrupt(path: str, rng: random.Random) -> None:
    raw = bytearray(open(path, "rb").read())
    raw[rng.randrange(len(raw))] ^= 0xFF
    open(path, "wb").write(bytes(raw))


class TestQuarantine:
    @pytest.mark.parametrize("case", range(15))
    def test_one_bad_segment_never_poisons_the_rest(self, tmp_path, case):
        rng = random.Random(SEED * 77 + case)
        store = VerificationStore(str(tmp_path), shards=4)
        batches = [random_entries(rng, rng.randint(3, 15)) for _ in range(4)]
        for batch in batches:
            store.publish(batch)
        segments = all_segments(store)
        victim = rng.choice(segments)
        _corrupt(victim, rng)
        survivor = VerificationStore(str(tmp_path))
        loaded = survivor.load()
        # Exactly the victim was quarantined; every entry of every other
        # segment survived, none of the victim's entries were trusted.
        assert [path for path, _ in survivor.quarantined] == [victim]
        assert not os.path.exists(victim)
        expected = {}
        for batch in batches:
            expected.update(batch)
        victim_entries = set(expected) - set(loaded)
        assert all(
            loaded[fingerprint] == expected[fingerprint] for fingerprint in loaded
        )
        for fingerprint in victim_entries:
            assert shard_index(fingerprint, 4) == shard_index(
                next(iter(victim_entries)), 4
            )
        # A second load (and a compaction) of the survivor is clean.
        assert VerificationStore(str(tmp_path)).load() == loaded
        VerificationStore(str(tmp_path)).compact()

    def test_truncated_segment_is_quarantined(self, tmp_path):
        rng = random.Random(SEED)
        store = VerificationStore(str(tmp_path), shards=1)
        store.publish(random_entries(rng, 10))
        (path,) = all_segments(store)
        raw = open(path, "rb").read()
        open(path, "wb").write(raw[: len(raw) // 2])
        survivor = VerificationStore(str(tmp_path))
        assert survivor.load() == {}
        assert survivor.quarantined and "checksum" in survivor.quarantined[0][1]

    def test_crash_mid_flush_leaves_no_torn_segment(self, tmp_path):
        """The atomic-write contract: a crash between tmp-file write and
        rename leaves a dot-prefixed tmp file, which the loader must ignore
        entirely (and the integrity of real segments is unaffected)."""
        rng = random.Random(SEED)
        store = VerificationStore(str(tmp_path), shards=2)
        entries = random_entries(rng, 12)
        store.publish(entries)
        shard_dir = store._shard_dir(0)
        torn = os.path.join(shard_dir, ".tmp-segment-crashed.seg")
        with open(torn, "wb") as handle:
            handle.write(b'{"magic": "symnet-verdict-segment", "ver')  # torn
        survivor = VerificationStore(str(tmp_path))
        assert survivor.load() == entries
        assert not survivor.quarantined

    def test_transient_read_error_skips_without_quarantine(
        self, tmp_path, monkeypatch
    ):
        """Failing to *read* a segment (permissions hiccup, transient NFS
        error) proves nothing about its content: the load must skip it —
        not destroy a perfectly valid file by quarantining it."""
        rng = random.Random(SEED)
        store = VerificationStore(str(tmp_path), shards=1)
        entries = random_entries(rng, 6)
        store.publish(entries)
        (victim,) = store._segments_of(0)

        import repro.store.store as store_module

        original = store_module.read_segment

        def flaky_read(path, shard):
            if path == victim:
                raise OSError("transient I/O error")
            return original(path, shard)

        monkeypatch.setattr(store_module, "read_segment", flaky_read)
        degraded = VerificationStore(str(tmp_path))
        assert degraded.load() == {}
        assert not degraded.quarantined
        monkeypatch.undo()
        assert os.path.exists(victim)  # the file survived ...
        assert VerificationStore(str(tmp_path)).load() == entries  # ... intact

    def test_garbage_file_is_quarantined_not_fatal(self, tmp_path):
        rng = random.Random(SEED)
        store = VerificationStore(str(tmp_path), shards=1)
        entries = random_entries(rng, 5)
        store.publish(entries)
        rogue = os.path.join(store._shard_dir(0), "segment-99999999-rogue.seg")
        open(rogue, "wb").write(b"\x00\x01\x02 not a segment at all")
        survivor = VerificationStore(str(tmp_path))
        assert survivor.load() == entries
        assert [path for path, _ in survivor.quarantined] == [rogue]

    def test_conflicting_segment_is_refused_wholesale(self, tmp_path):
        """A segment that disagrees with an earlier one on a definite
        verdict is quarantined in full — including its non-conflicting
        entries, which can no longer be vouched for."""
        rng = random.Random(SEED)
        store = VerificationStore(str(tmp_path), shards=1)
        entries = random_entries(rng, 6)
        store.publish(entries)
        victim = sorted(entries)[0]
        flipped = {
            victim: "unsat" if entries[victim] == "sat" else "sat",
            fake_fingerprint(rng): "sat",  # innocent bystander, also refused
        }
        rogue = os.path.join(store._shard_dir(0), "segment-99999999-evil.seg")
        write_segment(rogue, 0, flipped)
        survivor = VerificationStore(str(tmp_path))
        loaded = survivor.load()
        assert loaded == entries
        assert survivor.quarantined
        assert "maps to" in survivor.quarantined[0][1]

    def test_rekeyed_entry_is_caught_by_verify_entry(self, tmp_path):
        """A re-keyed entry (verdict stored under the wrong fingerprint)
        that passes every structural check is still caught by the verdict
        cache's own re-solve hook when the conjuncts are in hand — the
        store changes where entries live, not the PR 3 soundness net."""
        x = Var("x", 16)
        sat_set = [Ge(x, Const(10)), Le(x, Const(20))]  # satisfiable
        unsat_set = [Ge(x, Const(30)), Le(x, Const(20))]  # empty domain
        sat_fingerprint = canonical_fingerprint(sat_set)
        unsat_fingerprint = canonical_fingerprint(unsat_set)
        store = VerificationStore(str(tmp_path), shards=1)
        # The attacker swaps the verdicts and rewrites the checksummed
        # segment from scratch: structurally flawless, semantically wrong.
        rogue = os.path.join(store._shard_dir(0), "segment-00000000-evil.seg")
        write_segment(
            rogue, 0, {sat_fingerprint: "unsat", unsat_fingerprint: "sat"}
        )
        loaded = VerificationStore(str(tmp_path)).load()
        cache = VerdictCache()
        cache.merge(loaded)
        with pytest.raises(CacheCorruptionError, match="verdict mismatch"):
            cache.verify_entry(sat_fingerprint, sat_set)


# ---------------------------------------------------------------------------
# Plan-result cache files
# ---------------------------------------------------------------------------


class TestPlanFiles:
    def test_put_get_invalidate(self, tmp_path):
        store = VerificationStore(str(tmp_path))
        store.put_plan("model-a", "plan-1", {"queries": [1]})
        store.put_plan("model-a", "plan-2", {"queries": [2]})
        store.put_plan("model-b", "plan-1", {"queries": [3]})
        assert store.plan_count() == 3
        assert store.get_plan("model-a", "plan-2") == {"queries": [2]}
        assert store.get_plan("model-a", "missing") is None
        assert store.invalidate_plans("model-a") == 2
        assert store.get_plan("model-a", "plan-1") is None
        assert store.get_plan("model-b", "plan-1") == {"queries": [3]}
        assert store.invalidate_plans() == 1
        assert store.plan_count() == 0

    def test_corrupt_plan_file_is_a_miss(self, tmp_path):
        store = VerificationStore(str(tmp_path))
        store.put_plan("model-a", "plan-1", {"queries": []})
        path = store._plan_path("model-a", "plan-1")
        open(path, "w").write("{ not json")
        assert store.get_plan("model-a", "plan-1") is None
        assert not os.path.exists(path)  # removed, not retried forever

    def test_mismatched_plan_record_is_a_miss(self, tmp_path):
        store = VerificationStore(str(tmp_path))
        store.put_plan("model-a", "plan-1", {"queries": []})
        path = store._plan_path("model-a", "plan-1")
        record = json.load(open(path))
        record["plan_fingerprint"] = "tampered"
        json.dump(record, open(path, "w"))
        assert store.get_plan("model-a", "plan-1") is None


# ---------------------------------------------------------------------------
# The sharded tier client
# ---------------------------------------------------------------------------


class TestShardedTier:
    def test_shard_index_is_stable_and_in_range(self):
        rng = random.Random(SEED)
        for _ in range(200):
            fingerprint = fake_fingerprint(rng)
            for shards in (1, 2, 8, 13):
                index = shard_index(fingerprint, shards)
                assert 0 <= index < shards
                assert index == shard_index(fingerprint, shards)

    def test_shard_index_covers_large_shard_counts(self):
        """The prefix must be wide enough that shard counts beyond 256
        are actually used (a 2-hex-digit prefix would cap at 256)."""
        rng = random.Random(SEED)
        for shards in (300, 512):
            seen = {
                shard_index(fake_fingerprint(rng), shards) for _ in range(4000)
            }
            assert max(seen) >= 256
            # Uniformity, loosely: a large majority of shards get traffic.
            assert len(seen) > shards * 0.9

    def test_batched_publish_and_flush(self):
        rng = random.Random(SEED)
        tier = ShardedTier([{} for _ in range(4)], batch_size=5)
        entries = random_entries(rng, 23)
        for fingerprint, verdict in entries.items():
            tier[fingerprint] = verdict
        tier.flush()
        assert tier.pending() == 0
        assert len(tier) == len(entries)
        assert tier.published_entries == len(entries)
        # Batching means far fewer update round-trips than entries.
        assert tier.publish_batches < len(entries)
        for fingerprint, verdict in entries.items():
            assert tier.get(fingerprint) == verdict

    def test_batch_size_one_publishes_immediately(self):
        tier = ShardedTier([{}], batch_size=1)
        tier["ab" * 32] = "sat"
        assert tier.pending() == 0
        assert tier.publish_batches == 1

    def test_pickling_ships_shards_not_buffers(self):
        import pickle

        tier = ShardedTier([{} for _ in range(2)], batch_size=7)
        tier["ab" * 32] = "sat"  # buffered, below batch size
        clone = pickle.loads(pickle.dumps(tier))
        assert clone.batch_size == 7
        assert clone.pending() == 0
        assert clone.round_trips == 0

    def test_dead_proxy_degrades_instead_of_raising(self):
        """Regression: a Manager proxy dying mid-run used to clear the
        write buffer before the failed ``update`` (losing the verdicts)
        and let the exception escape through ``flush()`` into the engine.
        A dead proxy must degrade the tier — buffered verdicts keep
        serving local hits, nothing raises, the run survives."""

        class DeadProxy(dict):
            def update(self, *args, **kwargs):
                raise ConnectionRefusedError("manager is gone")

            def get(self, key, default=None):
                raise ConnectionRefusedError("manager is gone")

        from repro.solver.result import SolverStats

        stats = SolverStats()
        tier = ShardedTier([DeadProxy()], batch_size=100)
        tier.bind_stats(stats)
        tier["ab" * 32] = "sat"
        tier["cd" * 32] = "unsat"
        tier.flush()  # must not raise
        assert tier.degraded
        # The verdicts this process computed were NOT lost: they stay
        # buffered and keep answering local lookups.
        assert tier.pending() == 2
        assert tier.get("ab" * 32) == "sat"
        assert tier.get("cd" * 32) == "unsat"
        # A degraded tier never touches the proxies again (a miss is a
        # miss, not another exception), and later publishes stay local.
        assert tier.get("ef" * 32) is None
        tier["12" * 32] = "sat"
        tier.flush()
        assert tier.get("12" * 32) == "sat"
        assert stats.degraded_operations == 1

    def test_dead_proxy_on_lookup_degrades(self):
        class DeadProxy(dict):
            def get(self, key, default=None):
                raise EOFError("manager is gone")

        tier = ShardedTier([DeadProxy()], batch_size=4)
        assert tier.get("ab" * 32) is None  # must not raise
        assert tier.degraded

    def test_counters_flow_into_bound_solver_stats(self):
        from repro.solver.result import SolverStats

        stats = SolverStats()
        tier = ShardedTier([{} for _ in range(2)], batch_size=2)
        tier.bind_stats(stats)
        tier["ab" * 32] = "sat"
        tier["cd" * 32] = "unsat"
        tier.flush()
        tier.get("ef" * 32)
        assert stats.shared_publish_entries == 2
        assert stats.shared_publish_batches >= 1
        assert stats.shared_round_trips >= 2


# ---------------------------------------------------------------------------
# Read-through load cache + shard lock
# ---------------------------------------------------------------------------


class TestLoadCache:
    def _counting_read(self, monkeypatch):
        import repro.store.store as store_module

        calls = {"n": 0}
        original = store_module.read_segment

        def counted(path, shard):
            calls["n"] += 1
            return original(path, shard)

        monkeypatch.setattr(store_module, "read_segment", counted)
        return calls

    def test_second_open_serves_from_cache(self, tmp_path, monkeypatch):
        from repro.store import clear_load_cache

        clear_load_cache()
        rng = random.Random(SEED)
        store = VerificationStore(str(tmp_path), shards=2)
        entries = random_entries(rng, 12)
        store.publish(entries)

        calls = self._counting_read(monkeypatch)
        first = VerificationStore(str(tmp_path)).load()
        assert first == entries
        assert calls["n"] > 0
        after_first = calls["n"]
        second = VerificationStore(str(tmp_path)).load()
        assert second == entries
        assert calls["n"] == after_first  # served from the process cache

    def test_publish_invalidates_by_content_token(self, tmp_path, monkeypatch):
        from repro.store import clear_load_cache

        clear_load_cache()
        rng = random.Random(SEED + 1)
        store = VerificationStore(str(tmp_path))
        entries = random_entries(rng, 6)
        store.publish(entries)
        assert VerificationStore(str(tmp_path)).load() == entries

        more = random_entries(rng, 3)
        VerificationStore(str(tmp_path)).publish(more)
        merged = VerificationStore(str(tmp_path)).load()
        assert merged == {**entries, **more}

    def test_quarantining_load_is_not_cached(self, tmp_path, monkeypatch):
        from repro.store import clear_load_cache

        clear_load_cache()
        rng = random.Random(SEED + 2)
        store = VerificationStore(str(tmp_path), shards=1)
        store.publish(random_entries(rng, 8))
        (victim,) = store._segments_of(0)
        _corrupt(victim, rng)

        poisoned = VerificationStore(str(tmp_path))
        assert poisoned.load() == {}
        assert poisoned.quarantined

        calls = self._counting_read(monkeypatch)
        clean = VerificationStore(str(tmp_path))
        assert clean.load() == {}  # re-read the (now empty) directory
        assert not clean.quarantined

    def test_cache_is_bounded(self, tmp_path):
        import repro.store.store as store_module
        from repro.store import clear_load_cache

        clear_load_cache()
        rng = random.Random(SEED + 3)
        for index in range(store_module._LOAD_CACHE_LIMIT + 3):
            directory = str(tmp_path / f"store{index}")
            store = VerificationStore(directory)
            store.publish(random_entries(rng, 2))
            VerificationStore(directory).load()
        assert len(store_module._LOAD_CACHE) <= store_module._LOAD_CACHE_LIMIT

    def test_refresh_bypasses_cache(self, tmp_path, monkeypatch):
        from repro.store import clear_load_cache

        clear_load_cache()
        rng = random.Random(SEED + 4)
        store = VerificationStore(str(tmp_path))
        entries = random_entries(rng, 5)
        store.publish(entries)
        VerificationStore(str(tmp_path)).load()

        calls = self._counting_read(monkeypatch)
        fresh = VerificationStore(str(tmp_path))
        assert fresh.load(refresh=True) == entries
        assert calls["n"] > 0  # refresh went to disk despite the cache


class TestShardLock:
    def test_publish_creates_lock_files(self, tmp_path):
        rng = random.Random(SEED + 5)
        store = VerificationStore(str(tmp_path), shards=2)
        store.publish(random_entries(rng, 16))
        locks = [
            os.path.join(store._shard_dir(index), ".lock")
            for index in range(2)
        ]
        assert any(os.path.exists(path) for path in locks)

    def test_publish_degrades_without_fcntl(self, tmp_path, monkeypatch):
        import repro.store.store as store_module

        monkeypatch.setattr(store_module, "fcntl", None)
        rng = random.Random(SEED + 6)
        store = VerificationStore(str(tmp_path), shards=2)
        entries = random_entries(rng, 10)
        store.publish(entries)
        from repro.store import clear_load_cache

        clear_load_cache()
        assert VerificationStore(str(tmp_path)).load() == entries

    def test_publish_survives_forced_lock_acquire_failure(
        self, tmp_path, monkeypatch
    ):
        """Regression: when ``flock`` itself fails, both publishes must
        still land (best-effort degradation) and no lock-file handle may
        leak from the failure branch."""
        import builtins

        import repro.store.store as store_module

        class BrokenFlock:
            LOCK_EX = getattr(store_module.fcntl, "LOCK_EX", 2)
            LOCK_UN = getattr(store_module.fcntl, "LOCK_UN", 8)

            @staticmethod
            def flock(fd, op):
                raise OSError("flock refused")

        monkeypatch.setattr(store_module, "fcntl", BrokenFlock)

        lock_handles = []
        real_open = builtins.open

        def tracking_open(file, *args, **kwargs):
            handle = real_open(file, *args, **kwargs)
            if isinstance(file, str) and file.endswith(".lock"):
                lock_handles.append(handle)
            return handle

        monkeypatch.setattr(builtins, "open", tracking_open)

        rng = random.Random(SEED + 11)
        first = random_entries(rng, 8)
        second = random_entries(rng, 8)
        store = VerificationStore(str(tmp_path), shards=2)
        store.publish(first)
        store.publish(second)

        assert lock_handles, "the lock path was never exercised"
        assert all(handle.closed for handle in lock_handles)
        from repro.store import clear_load_cache

        clear_load_cache()
        merged = dict(first)
        merged.update(second)
        assert VerificationStore(str(tmp_path)).load() == merged

    def test_lock_files_are_not_segments(self, tmp_path):
        rng = random.Random(SEED + 7)
        store = VerificationStore(str(tmp_path), shards=1)
        entries = random_entries(rng, 4)
        store.publish(entries)
        store.compact()
        from repro.store import clear_load_cache

        clear_load_cache()
        assert VerificationStore(str(tmp_path)).load() == entries
        assert not VerificationStore(str(tmp_path)).quarantined
