"""Tests for the symbolic execution engine: instruction semantics, branching,
forwarding, failure handling and loop detection."""

import pytest

from repro import ExecutionSettings, Network, NetworkElement, SymbolicExecutor, models
from repro.core import checks as V
from repro.core.errors import ModelError
from repro.core.paths import PathStatus
from repro.sefl import (
    Allocate,
    Assign,
    Constrain,
    CreateTag,
    Deallocate,
    DestroyTag,
    Eq,
    Fail,
    For,
    Fork,
    Forward,
    Ge,
    Gt,
    If,
    InstructionBlock,
    IpDst,
    IpSrc,
    IpTtl,
    Le,
    Lt,
    Minus,
    Ne,
    NoOp,
    OneOf,
    Plus,
    SymbolicValue,
    Tag,
    TcpDst,
    TcpSrc,
    ip_to_number,
)
from repro.sefl.instructions import LOCAL


def single_element_network(program, name="box", inputs=("in0",), outputs=("out0", "out1", "out2")):
    network = Network()
    element = NetworkElement(name, list(inputs), list(outputs))
    element.set_input_program("*", program)
    network.add_element(element)
    return network


def run(program, packet=None, **settings_kwargs):
    network = single_element_network(program)
    settings = ExecutionSettings(**settings_kwargs) if settings_kwargs else None
    executor = SymbolicExecutor(network, settings=settings)
    packet = packet if packet is not None else models.symbolic_tcp_packet()
    return executor.inject(packet, "box", "in0")


class TestBasicSemantics:
    def test_forward_delivers(self):
        result = run(Forward("out0"))
        assert result.summary_counts() == {"delivered": 1}
        assert result.delivered()[0].last_port.port == "out0"

    def test_no_forward_is_dropped(self):
        result = run(NoOp())
        assert result.summary_counts() == {"dropped": 1}

    def test_fail_records_failed_path(self):
        result = run(InstructionBlock(Fail("nope"), Forward("out0")))
        assert result.summary_counts() == {"failed": 1}
        assert result.failed()[0].stop_reason == "nope"

    def test_instructions_after_forward_do_not_run(self):
        result = run(InstructionBlock(Forward("out0"), Fail("never reached")))
        assert result.summary_counts() == {"delivered": 1}

    def test_fork_duplicates_packet(self):
        result = run(Fork("out0", "out1", "out2"))
        assert len(result.delivered()) == 3
        ports = sorted(p.last_port.port for p in result.delivered())
        assert ports == ["out0", "out1", "out2"]

    def test_forward_by_index(self):
        result = run(Forward(1))
        assert result.delivered()[0].last_port.port == "out1"

    def test_fork_with_no_ports_is_recorded_as_dropped(self):
        """Regression: an empty Fork used to return no outcomes, silently
        vanishing the state from the results."""
        result = run(Fork())
        assert result.summary_counts() == {"dropped": 1}
        assert result.dropped()[0].stop_reason == "Fork with no output ports"

    def test_satisfiable_constrain_keeps_path_alive(self):
        result = run(InstructionBlock(Constrain(Eq(TcpDst, 80)), Forward("out0")))
        assert result.summary_counts() == {"delivered": 1}

    def test_unsatisfiable_constrain_fails_path(self):
        program = InstructionBlock(
            Constrain(Eq(TcpDst, 80)), Constrain(Eq(TcpDst, 443)), Forward("out0")
        )
        result = run(program)
        assert result.summary_counts() == {"failed": 1}
        assert "unsatisfiable" in result.failed()[0].stop_reason

    def test_constrain_on_concrete_field(self):
        packet = models.symbolic_tcp_packet({TcpDst: 22})
        allowed = run(InstructionBlock(Constrain(Eq(TcpDst, 22)), Forward("out0")), packet)
        denied = run(InstructionBlock(Constrain(Eq(TcpDst, 80)), Forward("out0")), packet)
        assert allowed.summary_counts() == {"delivered": 1}
        assert denied.summary_counts() == {"failed": 1}


class TestIfSemantics:
    def test_if_creates_two_paths_on_symbolic_field(self):
        program = If(Eq(TcpDst, 123), Forward("out0"), Forward("out1"))
        result = run(program)
        assert len(result.delivered()) == 2

    def test_if_single_feasible_branch_on_concrete_field(self):
        packet = models.symbolic_tcp_packet({TcpDst: 123})
        program = If(Eq(TcpDst, 123), Forward("out0"), Forward("out1"))
        result = run(program, packet)
        assert len(result.delivered()) == 1
        assert result.delivered()[0].last_port.port == "out0"

    def test_if_accepts_constrain_as_condition(self):
        program = If(Constrain(Eq(TcpDst, 123)), Forward("out0"), Forward("out1"))
        result = run(program)
        assert len(result.delivered()) == 2

    def test_figure_4_port_forwarding(self):
        """The worked example of Figure 4."""
        program = InstructionBlock(
            Constrain(Eq(IpDst, ip_to_number("141.85.37.1"))),
            If(
                Eq(TcpDst, 123),
                InstructionBlock(
                    Assign(IpDst, ip_to_number("192.168.1.100")),
                    Assign(TcpDst, 22),
                    Forward("out1"),
                ),
                Forward("out2"),
            ),
        )
        result = run(program)
        assert len(result.delivered()) == 2
        rewritten = result.reaching("box", "out1")[0]
        assert V.field_concrete_value(rewritten, TcpDst) == 22
        assert V.field_concrete_value(rewritten, IpDst) == ip_to_number("192.168.1.100")
        untouched = result.reaching("box", "out2")[0]
        assert V.field_invariant(untouched, IpDst)
        assert V.field_invariant(untouched, TcpDst)

    def test_nested_ifs(self):
        program = If(
            Lt(TcpDst, 1024),
            If(Eq(TcpDst, 80), Forward("out0"), Forward("out1")),
            Forward("out2"),
        )
        result = run(program)
        assert len(result.delivered()) == 3

    def test_infeasible_branches_have_structured_status(self):
        """Infeasible If branches carry PathStatus.INFEASIBLE instead of
        relying on stop-reason string matching."""
        packet = models.symbolic_tcp_packet({TcpDst: 123})
        program = If(Eq(TcpDst, 123), Forward("out0"), Forward("out1"))
        recorded = run(program, packet, record_infeasible_branches=True)
        assert recorded.summary_counts() == {"delivered": 1, "infeasible": 1}
        branch = recorded.infeasible()[0]
        assert branch.status == PathStatus.INFEASIBLE
        assert branch.stop_reason == "infeasible If branch (else)"
        # Default settings filter them out without inspecting stop reasons.
        filtered = run(program, packet)
        assert filtered.summary_counts() == {"delivered": 1}
        # A failed path whose reason merely *mentions* "infeasible" is kept.
        fail_result = run(InstructionBlock(Fail("infeasible-sounding"), Forward("out0")))
        assert fail_result.summary_counts() == {"failed": 1}


class TestAssignAndExpressions:
    def test_assign_constant(self):
        result = run(InstructionBlock(Assign(TcpSrc, 1234), Forward("out0")))
        path = result.delivered()[0]
        assert V.field_concrete_value(path, TcpSrc) == 1234

    def test_assign_plus_minus(self):
        program = InstructionBlock(
            Assign(IpTtl, Minus(IpTtl, 1)),
            Assign(TcpSrc, Plus(TcpDst, 1)),
            Forward("out0"),
        )
        result = run(program, models.symbolic_tcp_packet({IpTtl: 10, TcpDst: 80}))
        path = result.delivered()[0]
        assert V.field_concrete_value(path, IpTtl) == 9
        assert V.field_concrete_value(path, TcpSrc) == 81

    def test_assign_fresh_symbolic_breaks_invariance(self):
        program = InstructionBlock(Assign(TcpSrc, SymbolicValue("fresh", 16)), Forward("out0"))
        result = run(program)
        path = result.delivered()[0]
        assert not V.field_invariant(path, TcpSrc)

    def test_assign_copies_between_fields(self):
        program = InstructionBlock(Assign(IpSrc, IpDst), Forward("out0"))
        result = run(program)
        path = result.delivered()[0]
        assert V.values_equal(path, IpSrc, IpDst)


class TestMetadataAndTags:
    def test_metadata_roundtrip(self):
        program = InstructionBlock(
            Allocate("note", 32),
            Assign("note", TcpDst),
            Assign(TcpDst, 9999),
            Assign(TcpDst, "note"),
            Forward("out0"),
        )
        result = run(program)
        path = result.delivered()[0]
        assert V.field_invariant(path, TcpDst)

    def test_local_metadata_is_scoped(self):
        # Build two cascaded elements both using a local "v"; the second must
        # not see the first's value.
        network = Network()
        first = NetworkElement("first", ["in0"], ["out0"])
        first.set_input_program(
            "in0",
            InstructionBlock(
                Allocate("v", 32, LOCAL), Assign("v", 1), Forward("out0")
            ),
        )
        second = NetworkElement("second", ["in0"], ["out0"])
        second.set_input_program(
            "in0",
            InstructionBlock(Constrain(Eq("v", 1)), Forward("out0")),
        )
        network.add_elements(first, second)
        network.add_link(("first", "out0"), ("second", "in0"))
        result = SymbolicExecutor(network).inject(
            models.symbolic_tcp_packet(), "first", "in0"
        )
        # The second element reads unallocated metadata -> memory safety fail.
        assert result.summary_counts() == {"failed": 1}
        assert "memory safety" in result.failed()[0].stop_reason

    def test_create_tag_from_existing_tag(self):
        program = InstructionBlock(
            CreateTag("Inner", Tag("L3") + 160),
            Allocate(Tag("Inner") + 0, 8),
            Assign(Tag("Inner") + 0, 7),
            Forward("out0"),
        )
        result = run(program)
        assert result.summary_counts() == {"delivered": 1}

    def test_destroy_tag_then_access_fails(self):
        program = InstructionBlock(
            DestroyTag("L4"),
            Constrain(Eq(TcpDst, 80)),
            Forward("out0"),
        )
        result = run(program)
        assert result.summary_counts() == {"failed": 1}
        assert "memory safety" in result.failed()[0].stop_reason

    def test_symbolic_tag_value_rejected(self):
        program = InstructionBlock(CreateTag("X", SymbolicValue("s", 8)), Forward("out0"))
        result = run(program)
        assert result.summary_counts() == {"failed": 1}


class TestMemorySafetyPaths:
    def test_unallocated_header_access_fails_path(self):
        program = InstructionBlock(
            Constrain(Eq(Tag("L3") + 999, 0)), Forward("out0")
        )
        result = run(program)
        assert result.summary_counts() == {"failed": 1}
        assert V.memory_safety_violations(result)

    def test_double_decapsulation_fails(self):
        from repro.models.tunnel import build_decapsulator

        network = Network()
        network.add_element(build_decapsulator("d1", require_ipip=False))
        network.add_element(build_decapsulator("d2", require_ipip=False))
        network.add_link(("d1", "out0"), ("d2", "in0"))
        result = SymbolicExecutor(network).inject(
            models.symbolic_tcp_packet(), "d1", "in0"
        )
        # Only one IP header exists; the second decapsulation must fail.
        assert result.summary_counts() == {"failed": 1}


class TestForLoop:
    def test_for_unfolds_over_matching_keys(self):
        program = InstructionBlock(
            Allocate("OPT2", 8),
            Assign("OPT2", 1),
            Allocate("OPT30", 8),
            Assign("OPT30", 1),
            Allocate("other", 8),
            Assign("other", 1),
            For(r"OPT\d+", lambda key: Assign(key, 0)),
            Forward("out0"),
        )
        result = run(program)
        path = result.delivered()[0]
        assert V.field_concrete_value(path, "OPT2") == 0
        assert V.field_concrete_value(path, "OPT30") == 0
        assert V.field_concrete_value(path, "other") == 1

    def test_for_with_no_matches_is_noop(self):
        program = InstructionBlock(For(r"NOPE\d+", lambda key: Fail("boom")), Forward("out0"))
        result = run(program)
        assert result.summary_counts() == {"delivered": 1}

    def test_for_body_must_be_callable(self):
        program = InstructionBlock(For(r".*", NoOp()), Forward("out0"))
        with pytest.raises(ModelError):
            run(program)


class TestPropagationAndLoops:
    def build_ring(self, hops=3):
        """A unidirectional ring of pass-through elements (a forwarding loop)."""
        network = Network()
        names = [f"n{i}" for i in range(hops)]
        for name in names:
            element = NetworkElement(name, ["in0"], ["out0"])
            element.set_input_program("in0", Forward("out0"))
            network.add_element(element)
        for i, name in enumerate(names):
            network.add_link((name, "out0"), (names[(i + 1) % hops], "in0"))
        return network

    def test_loop_detected_in_ring(self):
        network = self.build_ring()
        result = SymbolicExecutor(network).inject(
            models.symbolic_tcp_packet(), "n0", "in0"
        )
        assert result.summary_counts() == {"loop": 1}

    def test_hop_limit_fallback(self):
        network = self.build_ring()
        settings = ExecutionSettings(detect_loops=False, max_hops=10)
        result = SymbolicExecutor(network, settings=settings).inject(
            models.symbolic_tcp_packet(), "n0", "in0"
        )
        assert result.summary_counts() == {"loop": 1}
        assert "hop limit" in result.loops()[0].stop_reason

    def test_ttl_decrement_escapes_full_state_loop_detection(self):
        """A ring that decrements TTL: the full-state comparison sees a
        different state each time round (the paper's observation), so the
        path is eventually stopped by the hop budget instead."""
        network = Network()
        names = ["a", "b"]
        for name in names:
            element = NetworkElement(name, ["in0"], ["out0"])
            element.set_input_program(
                "in0",
                InstructionBlock(
                    Constrain(Ge(IpTtl, 1)),
                    Assign(IpTtl, Minus(IpTtl, 1)),
                    Forward("out0"),
                ),
            )
            network.add_element(element)
        network.add_link(("a", "out0"), ("b", "in0"))
        network.add_link(("b", "out0"), ("a", "in0"))
        settings = ExecutionSettings(max_hops=12)
        result = SymbolicExecutor(network, settings=settings).inject(
            models.symbolic_tcp_packet(), "a", "in0"
        )
        loops = result.loops()
        assert loops  # terminated, one way or the other
        assert all(p.state.hop_count <= 13 for p in loops)

    def test_chain_of_elements_propagates_state(self):
        network = Network()
        first = NetworkElement("first", ["in0"], ["out0"])
        first.set_input_program(
            "in0", InstructionBlock(Assign(TcpDst, 8080), Forward("out0"))
        )
        second = NetworkElement("second", ["in0"], ["out0"])
        second.set_input_program(
            "in0", InstructionBlock(Constrain(Eq(TcpDst, 8080)), Forward("out0"))
        )
        network.add_elements(first, second)
        network.add_link(("first", "out0"), ("second", "in0"))
        result = SymbolicExecutor(network).inject(
            models.symbolic_tcp_packet(), "first", "in0"
        )
        assert result.summary_counts() == {"delivered": 1}
        assert result.delivered()[0].last_port.element == "second"

    def test_output_port_program_filters(self):
        network = Network()
        element = NetworkElement("sw", ["in0"], ["out0", "out1"])
        element.set_input_program("in0", Fork("out0", "out1"))
        element.set_output_program("out0", Constrain(Eq(TcpDst, 80)))
        element.set_output_program("out1", Constrain(Ne(TcpDst, 80)))
        network.add_element(element)
        result = SymbolicExecutor(network).inject(
            models.symbolic_tcp_packet({TcpDst: 80}), "sw", "in0"
        )
        assert len(result.delivered()) == 1
        assert result.delivered()[0].last_port.port == "out0"

    def test_output_port_forwarding_is_rejected(self):
        network = Network()
        element = NetworkElement("bad", ["in0"], ["out0"])
        element.set_input_program("in0", Forward("out0"))
        element.set_output_program("out0", Forward("out0"))
        network.add_element(element)
        with pytest.raises(ModelError):
            SymbolicExecutor(network).inject(models.symbolic_tcp_packet(), "bad", "in0")

    def test_injection_program_must_not_forward(self):
        network = single_element_network(Forward("out0"))
        with pytest.raises(ModelError):
            SymbolicExecutor(network).inject(Forward("out0"), "box", "in0")

    def test_max_paths_budget_stops_exploration(self):
        # Three parallel branches, each ending at its own sink element; with a
        # budget of one recorded path the engine must stop before exploring
        # all of them.
        network = Network()
        fan = NetworkElement("fan", ["in0"], ["out0", "out1", "out2"])
        fan.set_input_program("in0", Fork("out0", "out1", "out2"))
        network.add_element(fan)
        for index in range(3):
            sink = NetworkElement(f"sink{index}", ["in0"], ["out0"])
            sink.set_input_program("in0", Forward("out0"))
            network.add_element(sink)
            network.add_link(("fan", f"out{index}"), (f"sink{index}", "in0"))
        settings = ExecutionSettings(max_paths=1)
        result = SymbolicExecutor(network, settings=settings).inject(
            models.symbolic_tcp_packet(), "fan", "in0"
        )
        assert 1 <= len(result.paths) < 3

    def test_result_json_output(self):
        import json

        result = run(Fork("out0", "out1"))
        payload = json.loads(result.to_json())
        assert payload["path_count"] == 2
        assert payload["paths"][0]["status"] == "delivered"
        assert payload["injected_at"] == "box:in0"
