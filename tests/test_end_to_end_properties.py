"""Property-based end-to-end tests: symbolic execution must agree with the
concrete reference dataplane on randomly generated forwarding networks.

For every generated (switch → router) topology and probe packet, the port at
which the concrete dataplane delivers the packet must be admitted by some
symbolic path terminating at that same port, and vice versa — the soundness
property underlying both the verification queries and the conformance
testing framework.
"""

from hypothesis import given, settings, strategies as st

from repro import ExecutionSettings, Network, SymbolicExecutor, models
from repro.models.router import longest_prefix_match, router_egress
from repro.models.switch import switch_egress
from repro.sefl import EtherDst, IpDst
from repro.solver.ast import Const, Eq
from repro.solver.solver import Solver
from repro.testing import ConcretePacket, ReferenceDataplane, reference_router, reference_switch

SETTINGS = ExecutionSettings(record_failed_paths=False)

# Strategies for small but structurally interesting tables.
mac_tables = st.dictionaries(
    st.sampled_from(["out0", "out1", "uplink"]),
    st.lists(st.integers(1, 60), min_size=1, max_size=4, unique=True),
    min_size=1,
    max_size=3,
)

fibs = st.lists(
    st.tuples(
        st.integers(0, (1 << 32) - 1),
        st.sampled_from([0, 8, 16, 24, 30, 32]),
        st.sampled_from(["ifA", "ifB", "ifC"]),
    ),
    min_size=1,
    max_size=6,
)


def _clean_mac_table(table):
    seen = set()
    cleaned = {}
    for port, macs in table.items():
        cleaned[port] = [mac for mac in macs if mac not in seen]
        seen.update(cleaned[port])
    return {port: macs for port, macs in cleaned.items() if macs}


def _clean_fib(fib):
    unique = {}
    for address, plen, port in fib:
        host_bits = 32 - plen
        canonical = (address >> host_bits) << host_bits if host_bits else address
        unique.setdefault((canonical, plen), port)
    return [(a, l, p) for (a, l), p in unique.items()]


@settings(max_examples=40, deadline=None)
@given(mac_tables, st.integers(1, 60))
def test_switch_symbolic_and_concrete_agree(table, probe_mac):
    table = _clean_mac_table(table)
    if not table:
        return
    element = switch_egress("sw", table)
    network = Network()
    network.add_element(element)

    symbolic = SymbolicExecutor(network, settings=SETTINGS).inject(
        models.symbolic_tcp_packet(), "sw", "in0"
    )
    dataplane = ReferenceDataplane(network)
    dataplane.register("sw", reference_switch(table))
    concrete = dataplane.inject(ConcretePacket(fields={"EtherDst": probe_mac}), "sw", "in0")

    solver = Solver()
    admitted_ports = set()
    for path in symbolic.delivered():
        injected = path.state.variable_history(EtherDst)[0]
        query = list(path.constraints) + [Eq(injected, Const(probe_mac))]
        if solver.check(query).is_sat:
            admitted_ports.add(path.last_port.port)
    concrete_ports = {out.port for out in concrete}
    assert concrete_ports == admitted_ports


@settings(max_examples=40, deadline=None)
@given(fibs, st.integers(0, (1 << 32) - 1))
def test_router_symbolic_matches_reference_lpm(fib, destination):
    fib = _clean_fib(fib)
    element = router_egress("r", fib)
    network = Network()
    network.add_element(element)

    symbolic = SymbolicExecutor(network, settings=SETTINGS).inject(
        models.symbolic_ip_packet(), "r", "in0"
    )
    expected_port = longest_prefix_match(fib, destination)

    solver = Solver()
    admitted_ports = set()
    for path in symbolic.delivered():
        injected = path.state.variable_history(IpDst)[0]
        query = list(path.constraints) + [Eq(injected, Const(destination))]
        if solver.check(query).is_sat:
            admitted_ports.add(path.last_port.port)

    if expected_port is None:
        assert admitted_ports == set()
    else:
        assert admitted_ports == {expected_port}


@settings(max_examples=25, deadline=None)
@given(mac_tables, fibs, st.integers(1, 60), st.integers(0, (1 << 32) - 1))
def test_switch_router_chain_agrees_with_reference(table, fib, probe_mac, destination):
    """A two-hop network: switch uplink feeds a router.  The concrete
    dataplane's verdict must be admitted by the symbolic result."""
    table = _clean_mac_table(table)
    fib = _clean_fib(fib)
    if "uplink" not in table:
        return
    network = Network()
    network.add_element(switch_egress("sw", table))
    network.add_element(router_egress("r", fib))
    network.add_link(("sw", "uplink"), ("r", "in0"))

    symbolic = SymbolicExecutor(network, settings=SETTINGS).inject(
        models.symbolic_tcp_packet(), "sw", "in0"
    )
    dataplane = ReferenceDataplane(network)
    dataplane.register("sw", reference_switch(table))
    dataplane.register("r", reference_router(fib))
    packet = ConcretePacket(fields={"EtherDst": probe_mac, "IpDst": destination})
    concrete = dataplane.inject(packet, "sw", "in0")

    solver = Solver()
    admitted = set()
    for path in symbolic.delivered():
        mac_term = path.state.variable_history(EtherDst)[0]
        dst_term = path.state.variable_history(IpDst)[0]
        query = list(path.constraints) + [
            Eq(mac_term, Const(probe_mac)),
            Eq(dst_term, Const(destination)),
        ]
        if solver.check(query).is_sat:
            admitted.add((path.last_port.element, path.last_port.port))
    observed = {(out.element, out.port) for out in concrete}
    assert observed == admitted
