"""Cache-soundness fuzz suite for canonical fingerprints + verdict cache.

The cross-job verdict cache (solver/canonical.py + solver/verdict_cache.py)
lets one solver verdict answer every alpha-equivalent constraint set any
campaign job produces.  That is only safe if canonicalization never merges
semantically distinct sets, so this suite attacks it from three directions,
mirroring the conventions of ``test_differential_baselines.py`` (seed-pinned
fuzz loops, chunked, greedy shrink-on-failure, case-budget check):

* **invariance** — alpha-renaming, conjunct reordering and linear-arithmetic
  rewrites must not change the fingerprint;
* **separation** — across >= 2000 random conjunct sets, sets sharing a
  fingerprint must share the canonical rendering (no hash collision) and the
  solver verdict (the cache would have served the right answer), plus
  hand-crafted near-miss pairs must get distinct fingerprints;
* **verdict parity** — a verdict served from the cache (including for a
  renamed copy of the original set) always equals a from-scratch
  ``Solver.check``.

Mutation-style negative tests then corrupt the cache on purpose — flipped
verdicts, re-keyed entries, a canonicalization collapsed to a constant — and
assert the soundness hooks (``VerdictCache.verify_entry`` /
``verify_witnesses``, put/merge conflict detection, paranoid mode) catch
every one: the suite fails if canonicalization ever silently weakens.
"""

import os
import random
from typing import Dict, List, Optional, Sequence, Tuple

import pytest

from repro.solver import ast as sa
from repro.solver.canonical import canonical_fingerprint, canonical_form
from repro.solver.incremental import IncrementalSolver
from repro.solver.intervals import IntervalSet
from repro.solver.solver import Solver
from repro.solver.verdict_cache import (
    CacheConflictError,
    CacheCorruptionError,
    VerdictCache,
)

SEED = int(os.environ.get("REPRO_CACHE_SEED", "20260728"))

INVARIANCE_CASES = 600
SEPARATION_CASES = 2200
PARITY_CASES = 250

_CASES_RUN = {"invariance": 0, "separation": 0, "parity": 0}

WIDTHS = (8, 16, 32)


# ===========================================================================
# Random conjunct-set generator and alpha-renaming helpers
# ===========================================================================


def _random_interval_set(rng: random.Random, width: int) -> IntervalSet:
    top = (1 << width) - 1
    intervals = []
    for _ in range(rng.randint(1, 3)):
        lo = rng.randint(0, top)
        hi = min(top, lo + rng.randint(0, max(1, top // 8)))
        intervals.append((lo, hi))
    return IntervalSet(intervals)


def _random_term(rng: random.Random, var: sa.Var) -> sa.Term:
    roll = rng.random()
    if roll < 0.6:
        return var
    offset = sa.Const(rng.randint(1, 50))
    return sa.Add(var, offset) if roll < 0.8 else sa.Sub(var, offset)


_CMP_OPS = (sa.Eq, sa.Ne, sa.Lt, sa.Le, sa.Gt, sa.Ge)


def _random_atom(rng: random.Random, variables: Sequence[sa.Var]) -> sa.Formula:
    op = rng.choice(_CMP_OPS)
    var = rng.choice(variables)
    if rng.random() < 0.55 or len(variables) == 1:
        constant = sa.Const(rng.randint(0, (1 << var.width) - 1))
        return op(_random_term(rng, var), constant)
    other = rng.choice([v for v in variables if v != var])
    return op(
        _random_term(rng, var),
        sa.Add(other, sa.Const(rng.randint(0, 30)))
        if rng.random() < 0.4
        else other,
    )


def _random_conjunct(rng: random.Random, variables: Sequence[sa.Var]) -> sa.Formula:
    roll = rng.random()
    if roll < 0.55:
        return _random_atom(rng, variables)
    if roll < 0.75:
        var = rng.choice(variables)
        return sa.Member(
            _random_term(rng, var),
            _random_interval_set(rng, var.width),
            negated=rng.random() < 0.3,
        )
    operands = [
        _random_atom(rng, variables) for _ in range(rng.randint(2, 3))
    ]
    disjunction = sa.Or(*operands)
    if roll < 0.85:
        return sa.Not(disjunction)  # exercises the NNF step too
    return disjunction


def generate_case(seed: int) -> Tuple[sa.Formula, ...]:
    rng = random.Random(seed)
    variables = [
        sa.Var(f"v{index}", rng.choice(WIDTHS))
        for index in range(rng.randint(1, 5))
    ]
    return tuple(
        _random_conjunct(rng, variables) for _ in range(rng.randint(1, 6))
    )


def _rename_term(term: sa.Term, mapping: Dict[sa.Var, sa.Var]) -> sa.Term:
    if isinstance(term, sa.Var):
        return mapping[term]
    if isinstance(term, sa.Const):
        return term
    if isinstance(term, sa.Add):
        return sa.Add(_rename_term(term.left, mapping), _rename_term(term.right, mapping))
    if isinstance(term, sa.Sub):
        return sa.Sub(_rename_term(term.left, mapping), _rename_term(term.right, mapping))
    raise TypeError(f"not a term: {term!r}")


def rename_formula(formula: sa.Formula, mapping: Dict[sa.Var, sa.Var]) -> sa.Formula:
    if isinstance(formula, (sa.BoolTrue, sa.BoolFalse)):
        return formula
    if isinstance(formula, sa.Not):
        return sa.Not(rename_formula(formula.operand, mapping))
    if isinstance(formula, sa.And):
        return sa.And(*(rename_formula(op, mapping) for op in formula.operands))
    if isinstance(formula, sa.Or):
        return sa.Or(*(rename_formula(op, mapping) for op in formula.operands))
    if isinstance(formula, sa.Member):
        return sa.Member(
            _rename_term(formula.term, mapping), formula.values, formula.negated
        )
    return type(formula)(
        _rename_term(formula.left, mapping), _rename_term(formula.right, mapping)
    )


def alpha_rename(
    conjuncts: Sequence[sa.Formula], rng: random.Random
) -> Tuple[sa.Formula, ...]:
    """A renamed + reordered copy of ``conjuncts`` under a fresh bijection."""
    variables = sorted(
        {v for f in conjuncts for v in sa.formula_variables(f)},
        key=lambda v: v.name,
    )
    fresh = [f"w{rng.randrange(10_000)}_{i}" for i, _ in enumerate(variables)]
    rng.shuffle(fresh)
    mapping = {
        var: sa.Var(name, var.width) for var, name in zip(variables, fresh)
    }
    renamed = [rename_formula(f, mapping) for f in conjuncts]
    rng.shuffle(renamed)
    return tuple(renamed)


def shrink_case(
    conjuncts: Tuple[sa.Formula, ...], still_failing
) -> Tuple[sa.Formula, ...]:
    """Greedily drop conjuncts while ``still_failing`` holds (matching the
    shrinker conventions of test_differential_baselines.py)."""
    changed = True
    while changed and len(conjuncts) > 1:
        changed = False
        for index in range(len(conjuncts)):
            candidate = conjuncts[:index] + conjuncts[index + 1:]
            if still_failing(candidate):
                conjuncts = candidate
                changed = True
                break
    return conjuncts


def _describe(conjuncts: Sequence[sa.Formula]) -> str:
    return "\n".join(f"  {formula!r}" for formula in conjuncts)


# ===========================================================================
# (a) invariance: alpha-renaming / reordering keep the fingerprint
# ===========================================================================


@pytest.mark.parametrize("chunk", range(10))
def test_fingerprint_invariant_under_alpha_renaming(chunk):
    per_chunk = INVARIANCE_CASES // 10
    for offset in range(per_chunk):
        seed = SEED + chunk * per_chunk + offset
        case = generate_case(seed)
        rng = random.Random(seed ^ 0x5EED)
        renamed = alpha_rename(case, rng)
        _CASES_RUN["invariance"] += 1
        if canonical_fingerprint(case) != canonical_fingerprint(renamed):

            def diverges(sub):
                return canonical_fingerprint(sub) != canonical_fingerprint(
                    alpha_rename(sub, random.Random(seed ^ 0x5EED))
                )

            minimal = shrink_case(case, diverges)
            pytest.fail(
                f"fingerprint changed under alpha-renaming (seed={seed})\n"
                f"minimal case:\n{_describe(minimal)}"
            )


def test_fingerprint_ignores_duplicates_and_linear_rewrites():
    x, y = sa.Var("x", 32), sa.Var("y", 32)
    base = [sa.Eq(x, sa.Const(4)), sa.Le(sa.Sub(x, y), sa.Const(3))]
    rewritten = [
        sa.Eq(sa.Add(x, sa.Const(1)), sa.Const(5)),  # x + 1 == 5  <=>  x == 4
        sa.Eq(x, sa.Const(4)),                        # duplicate conjunct
        sa.Ge(sa.Const(3), sa.Sub(x, y)),             # flipped orientation
    ]
    assert canonical_fingerprint(base) == canonical_fingerprint(rewritten)


# ===========================================================================
# (b) separation: semantically distinct sets never collide
# ===========================================================================


@pytest.mark.parametrize("chunk", range(10))
def test_no_fingerprint_collisions_across_random_sets(chunk):
    """Fingerprint equality must imply canonical-rendering equality (no hash
    collision) and solver-verdict equality (the cache would have answered
    correctly).  Renderings are compared per chunk; fingerprint->verdict
    consistency is checked across the whole run via a shared registry."""
    per_chunk = SEPARATION_CASES // 10
    by_fingerprint: Dict[str, Tuple] = {}
    solver = Solver()
    verdicts: Dict[str, str] = _SEPARATION_VERDICTS
    for offset in range(per_chunk):
        seed = SEED + 50_000 + chunk * per_chunk + offset
        case = generate_case(seed)
        form = canonical_form(case)
        _CASES_RUN["separation"] += 1
        seen = by_fingerprint.get(form.fingerprint)
        if seen is not None and seen != form.rendering:
            pytest.fail(
                f"fingerprint collision between distinct renderings "
                f"(seed={seed}):\n{seen!r}\nvs\n{form.rendering!r}"
            )
        by_fingerprint[form.fingerprint] = form.rendering
        if form.fingerprint in verdicts:
            verdict = solver.check(list(case)).verdict
            assert verdicts[form.fingerprint] == verdict, (
                f"seed={seed}: colliding sets have different verdicts\n"
                f"{_describe(case)}"
            )
        elif seen is None and len(verdicts) < 500:
            # Sample verdicts for cross-chunk consistency checking without
            # solving all >= 2000 cases.
            verdicts[form.fingerprint] = solver.check(list(case)).verdict


_SEPARATION_VERDICTS: Dict[str, str] = {}


def test_near_miss_pairs_get_distinct_fingerprints():
    """Adversarial pairs that differ by one semantic detail must separate."""
    x, y, z = sa.Var("x", 32), sa.Var("y", 32), sa.Var("z", 32)
    member_values = IntervalSet([(10, 20)])
    pairs = [
        # different constant
        ([sa.Eq(x, sa.Const(4))], [sa.Eq(x, sa.Const(5))]),
        # different operator
        ([sa.Lt(x, sa.Const(4))], [sa.Le(x, sa.Const(4))]),
        # different width
        ([sa.Eq(sa.Var("v", 16), sa.Const(5))], [sa.Eq(sa.Var("v", 32), sa.Const(5))]),
        # symmetric pair vs chain over three variables
        (
            [sa.Le(sa.Sub(x, y), sa.Const(1)), sa.Le(sa.Sub(y, x), sa.Const(1))],
            [sa.Le(sa.Sub(x, y), sa.Const(1)), sa.Le(sa.Sub(y, z), sa.Const(1))],
        ),
        # same variable twice vs two distinct variables in a disjunction
        (
            [sa.Or(sa.Eq(x, sa.Const(1)), sa.Eq(x, sa.Const(2)))],
            [sa.Or(sa.Eq(x, sa.Const(1)), sa.Eq(y, sa.Const(2)))],
        ),
        # membership polarity
        (
            [sa.Member(x, member_values)],
            [sa.Member(x, member_values, negated=True)],
        ),
        # same atoms, different grouping (conjunct set vs disjunction)
        (
            [sa.Eq(x, sa.Const(1)), sa.Eq(y, sa.Const(2))],
            [sa.Or(sa.Eq(x, sa.Const(1)), sa.Eq(y, sa.Const(2)))],
        ),
    ]
    for left, right in pairs:
        assert canonical_fingerprint(left) != canonical_fingerprint(right), (
            f"near-miss pair collided:\n{_describe(left)}\nvs\n{_describe(right)}"
        )


def test_automorphic_sets_still_rename_invariantly():
    """Fully symmetric variable classes force the individualise-and-refine
    search; its result must still be name-independent."""
    rng = random.Random(SEED)
    a, b, c = (sa.Var(name, 32) for name in ("a", "b", "c"))
    cycle = (
        sa.Le(sa.Sub(a, b), sa.Const(1)),
        sa.Le(sa.Sub(b, c), sa.Const(1)),
        sa.Le(sa.Sub(c, a), sa.Const(1)),
    )
    form = canonical_form(cycle)
    assert not form.used_name_fallback
    for _ in range(5):
        assert canonical_fingerprint(alpha_rename(cycle, rng)) == form.fingerprint
    # ... and a broken cycle must not merge with the intact one.
    broken = (
        sa.Le(sa.Sub(a, b), sa.Const(1)),
        sa.Le(sa.Sub(b, c), sa.Const(1)),
        sa.Le(sa.Sub(a, c), sa.Const(1)),
    )
    assert canonical_fingerprint(broken) != form.fingerprint


# ===========================================================================
# (c) verdict parity: cached verdicts == fresh Solver.check verdicts
# ===========================================================================


def _parity_divergence(case: Tuple[sa.Formula, ...]) -> Optional[str]:
    """None when cache-served verdicts (original + renamed lookup) match
    from-scratch solves, else a description."""
    fresh = Solver().check(list(case)).verdict
    inc = IncrementalSolver()
    first = inc.check_cached(list(case)).verdict
    second = inc.check_cached(list(case)).verdict  # served from cache
    renamed = alpha_rename(case, random.Random(len(case) * 7919 + 13))
    served = inc.check_cached(list(renamed)).verdict  # alpha-equivalent hit
    fresh_renamed = Solver().check(list(renamed)).verdict
    hits = inc.cache_info()[0]
    problems = []
    if first != fresh:
        problems.append(f"first={first} fresh={fresh}")
    if second != fresh:
        problems.append(f"cached={second} fresh={fresh}")
    if served != fresh_renamed:
        problems.append(f"renamed cached={served} fresh={fresh_renamed}")
    if hits < 2:
        problems.append(f"expected 2 cache hits, saw {hits}")
    return "; ".join(problems) or None


@pytest.mark.parametrize("chunk", range(10))
def test_cached_verdicts_match_fresh_solves(chunk):
    per_chunk = PARITY_CASES // 10
    for offset in range(per_chunk):
        seed = SEED + 90_000 + chunk * per_chunk + offset
        case = generate_case(seed)
        _CASES_RUN["parity"] += 1
        divergence = _parity_divergence(case)
        if divergence is not None:
            minimal = shrink_case(
                case, lambda sub: _parity_divergence(tuple(sub)) is not None
            )
            pytest.fail(
                f"cache/fresh verdict divergence (seed={seed}): {divergence}\n"
                f"minimal case:\n{_describe(minimal)}"
            )


def test_context_checks_match_fresh_solves_via_cache():
    """End-to-end through SolverContext: two contexts over renamed copies of
    the same constraints share one full solve and agree with Solver.check."""
    x, y = sa.Var("x", 32), sa.Var("y", 32)
    p, q = sa.Var("p", 32), sa.Var("q", 32)
    inc = IncrementalSolver()
    first = inc.context()
    first.assume(sa.Le(sa.Sub(x, y), sa.Const(3)))
    first.assume(sa.Member(x, IntervalSet([(0, 100)])))
    second = inc.context()
    second.assume(sa.Le(sa.Sub(p, q), sa.Const(3)))
    second.assume(sa.Member(p, IntervalSet([(0, 100)])))
    assert first.check().verdict == second.check().verdict == "sat"
    hits, misses, _ = inc.cache_info()
    assert (hits, misses) == (1, 1)  # the renamed twin was served from cache


# ===========================================================================
# Mutation-style negative tests: the soundness net must catch corruption
# ===========================================================================


def _populated_debug_cache() -> Tuple[IncrementalSolver, VerdictCache]:
    cache = VerdictCache(debug=True)
    inc = IncrementalSolver(verdict_cache=cache)
    x, y = sa.Var("x", 32), sa.Var("y", 32)
    inc.check_cached([sa.Le(sa.Sub(x, y), sa.Const(3))])            # sat
    inc.check_cached([sa.Lt(x, sa.Const(2)), sa.Gt(x, sa.Const(5))])  # unsat
    return inc, cache


def test_healthy_cache_passes_verification():
    _, cache = _populated_debug_cache()
    assert cache.verify_witnesses() == 2


def test_mutated_verdict_is_caught():
    _, cache = _populated_debug_cache()
    fingerprint, stored = next(iter(cache.snapshot().items()))
    flipped = "unsat" if stored == "sat" else "sat"
    cache._entries[fingerprint] = flipped  # deliberate corruption
    with pytest.raises(CacheCorruptionError, match="verdict mismatch"):
        cache.verify_witnesses()


def test_mutated_fingerprint_is_caught():
    _, cache = _populated_debug_cache()
    fingerprint = next(iter(cache.snapshot()))
    bogus = "0" * len(fingerprint)
    cache._entries[bogus] = cache._entries.pop(fingerprint)
    cache._witnesses[bogus] = cache._witnesses.pop(fingerprint)
    with pytest.raises(CacheCorruptionError, match="fingerprint mismatch"):
        cache.verify_witnesses()


def test_collapsed_canonicalization_is_caught(monkeypatch):
    """Simulate canonicalization silently weakening to a constant key: the
    paranoid re-verification hook must refuse the resulting false hit."""
    import repro.solver.incremental as incremental

    monkeypatch.setattr(
        incremental, "canonical_fingerprint", lambda conjuncts: "f" * 64
    )
    inc = IncrementalSolver(verdict_cache=VerdictCache(debug=True), paranoid=True)
    x = sa.Var("x", 32)
    y = sa.Var("y", 32)
    sat_set = [sa.Le(sa.Sub(x, y), sa.Const(3))]
    unsat_set = [sa.Lt(x, sa.Const(2)), sa.Gt(x, sa.Const(5))]
    assert inc.check_cached(sat_set).verdict == "sat"
    with pytest.raises(CacheCorruptionError):
        inc.check_cached(unsat_set)  # false hit on the collapsed key


def test_unknown_verdicts_never_cross_alpha_variants():
    """"unknown" is budget-dependent incompleteness, not an answer: sharing
    it across alpha-variants would poison queries a fresh solve could
    answer, and treating it as a conflict would crash campaigns on harmless
    solver-budget differences.  It IS memoized for the bit-identical
    conjunct set (the solver is deterministic on identical input)."""
    x, y, z = sa.Var("x", 32), sa.Var("y", 32), sa.Var("z", 32)
    unsupported = [sa.Eq(sa.Add(x, y), z)]  # outside the decidable fragment
    assert Solver().check(unsupported).verdict == "unknown"
    inc = IncrementalSolver()
    assert inc.check_cached(unsupported).verdict == "unknown"
    assert len(inc.cache) == 0  # kept out of the cross-variant cache
    assert inc.check_cached(unsupported).verdict == "unknown"
    assert inc.cache_info() == (1, 1, 0)  # exact-match memo hit, no re-solve
    renamed = [rename_formula(unsupported[0], {x: y, y: z, z: x})]
    assert inc.check_cached(renamed).verdict == "unknown"
    assert inc.cache_info()[1] == 2  # the alpha-variant re-solved

    # An "unknown" injected via merge (old warm maps) must not suppress the
    # solve that can upgrade it.
    seeded = IncrementalSolver()
    sat_set = [sa.Le(sa.Sub(x, y), sa.Const(3))]
    fingerprint = seeded.canonical_key(sat_set)
    seeded.cache.merge({fingerprint: "unknown"}, strict=True)
    assert seeded.check_cached(sat_set).verdict == "sat"  # solved, not served
    assert seeded.cache.snapshot()[fingerprint] == "sat"  # and upgraded

    cache = VerdictCache()
    fingerprint = "b" * 64
    cache.put(fingerprint, "unknown")
    cache.put(fingerprint, "sat")  # definite supersedes unknown
    assert cache.snapshot()[fingerprint] == "sat"
    cache.put(fingerprint, "unknown")  # ... and is never downgraded
    assert cache.snapshot()[fingerprint] == "sat"
    assert cache.merge({fingerprint: "unknown"}) == 0
    assert cache.snapshot()[fingerprint] == "sat"
    with pytest.raises(CacheConflictError):
        cache.put(fingerprint, "unsat")  # definite-vs-definite still fatal


def test_conflicting_put_and_merge_are_refused():
    cache = VerdictCache()
    cache.put("a" * 64, "sat")
    with pytest.raises(CacheConflictError):
        cache.put("a" * 64, "unsat")
    with pytest.raises(CacheConflictError):
        cache.merge({"a" * 64: "unsat"})
    # Non-strict merge keeps the existing entry instead.
    assert cache.merge({"a" * 64: "unsat"}, strict=False) == 0
    assert cache.snapshot() == {"a" * 64: "sat"}


def test_eviction_never_loses_fresh_entries():
    cache = VerdictCache(max_entries=2)
    cache.begin_collection()
    for index in range(5):
        cache.put(f"{index:064d}", "sat")
    assert len(cache) == 2
    assert len(cache.fresh_entries()) == 5  # report keeps every paid verdict


def test_case_budget():
    """The campaign requirement: >= 2000 fuzzed separation cases (and the
    other loops at their configured sizes) actually ran."""
    assert SEPARATION_CASES >= 2000
    if _CASES_RUN["separation"]:
        assert _CASES_RUN["separation"] == SEPARATION_CASES
    if _CASES_RUN["invariance"]:
        assert _CASES_RUN["invariance"] == INVARIANCE_CASES
    if _CASES_RUN["parity"]:
        assert _CASES_RUN["parity"] == PARITY_CASES
