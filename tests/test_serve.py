"""Tests for the resident verification service (repro.serve).

The load-bearing guarantees:

* **parity** — every answer a service streams is bit-identical (per-query
  result fingerprints) to a standalone batch ``execute_plan`` of the same
  queries, across workers {1, 2} and store {off, warm};
* **cross-client dedup** — two clients whose concurrent requests overlap
  merge into one shared plan: one engine job per distinct injection port,
  observable in the process's execution counters;
* **streaming** — a query scoped to a subset of the merged plan's ports is
  answered before the barrier (``jobs_reported < jobs_total``);
* **admission control** — a full queue gets an explicit ``overloaded``
  response, never a dropped or degraded answer.
"""

import asyncio
import contextlib
import json
import queue as queue_module
import threading

import pytest

from repro.api import NetworkModel, compile_plan, execute_plan, parse_query
from repro.core.campaign import execution_counters, reset_execution_counters
from repro.serve import (
    ProtocolError,
    ServiceClient,
    VerificationService,
    protocol,
    results_digest,
    run_server,
)

DEPARTMENT = {"workload": "department"}
STANFORD = {"workload": "stanford", "options": {"zones": 3}}


# ---------------------------------------------------------------------------
# Harness: a live service on a background event loop
# ---------------------------------------------------------------------------


@contextlib.contextmanager
def service_endpoint(**service_kwargs):
    """A running service bound to an ephemeral loopback port."""
    service = VerificationService(**service_kwargs)
    ready: "queue_module.Queue" = queue_module.Queue()
    loop = asyncio.new_event_loop()
    holder = {}

    class ReadyStream:
        def write(self, text):
            ready.put(json.loads(text))

        def flush(self):
            pass

    async def main():
        holder["task"] = asyncio.current_task()
        await run_server(service, port=0, ready_stream=ReadyStream())

    def runner():
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(main())
        except asyncio.CancelledError:
            pass
        finally:
            loop.close()

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    info = ready.get(timeout=60)
    try:
        yield service, info["host"], info["port"]
    finally:
        loop.call_soon_threadsafe(holder["task"].cancel)
        thread.join(timeout=60)


def batch_fingerprints(network, texts, **settings):
    """Per-query result fingerprints of a standalone batch run — the
    ground truth streamed answers must match bit for bit."""
    if "directory" in network:
        model = NetworkModel.from_directory(network["directory"])
    else:
        model = NetworkModel.from_workload(
            network["workload"], **network.get("options", {})
        )
    plan = compile_plan(model, [parse_query(text) for text in texts], **settings)
    result = execute_plan(plan)
    assert not result.job_errors
    return {r.query: r.fingerprint for r in result.results}


def results_by_index(messages):
    return {m["index"]: m for m in messages if m["type"] == "result"}


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------


def test_protocol_roundtrip():
    message = protocol.accepted("r1", 4, 2, 1)
    assert protocol.decode_line(protocol.encode(message)) == message


def test_protocol_rejects_non_json_and_non_objects():
    with pytest.raises(ProtocolError):
        protocol.decode_line(b"not json\n")
    with pytest.raises(ProtocolError):
        protocol.decode_line(b"[1, 2]\n")
    with pytest.raises(ProtocolError):
        protocol.decode_line(b"\xff\xfe\n")


# ---------------------------------------------------------------------------
# Request handling (no sockets: fake session, no scheduler draining)
# ---------------------------------------------------------------------------


class FakeSession:
    def __init__(self):
        self.messages = []

    def send_nowait(self, message):
        self.messages.append(message)


def run_handles(service_kwargs, messages, cancel_scheduler=False):
    """Feed messages through ``handle`` on a private loop; returns the
    responses each message produced on its own fake session."""

    async def scenario():
        service = VerificationService(**service_kwargs)
        await service.start()
        if cancel_scheduler:
            # Nobody drains the queue: admission control is on its own.
            service._scheduler_task.cancel()
        sessions = []
        for message in messages:
            session = FakeSession()
            sessions.append(session)
            await service.handle(session, message)
        await service.stop()
        return [session.messages for session in sessions]

    return asyncio.run(scenario())


def test_unknown_op_and_parse_errors_answer_with_error():
    responses = run_handles(
        {},
        [
            {"op": "frobnicate", "id": "r1"},
            {"op": "query", "id": "r2"},  # no network
            {"op": "query", "id": "r3", "network": {"workload": 1}, "queries": ["loop()"]},
            {"op": "query", "id": "r4", "network": DEPARTMENT, "queries": []},
            {"op": "query", "id": "r5", "network": DEPARTMENT, "queries": ["bogus()"]},
            {"op": "query", "id": "r6", "network": DEPARTMENT, "queries": ["loop()"],
             "max_hops": "many"},
            {"op": "ping", "id": "r7"},
        ],
        cancel_scheduler=True,
    )
    for reply in responses[:6]:
        assert len(reply) == 1
        assert reply[0]["type"] == "error", reply
    assert responses[6] == [{"type": "pong", "id": "r7"}]


def test_admission_control_overloaded():
    query = {"op": "query", "network": DEPARTMENT, "queries": ["loop()"]}
    responses = run_handles(
        {"max_pending": 2},
        [
            dict(query, id="r1"),
            dict(query, id="r2"),
            dict(query, id="r3"),
            dict(query, id="r4"),
        ],
        cancel_scheduler=True,
    )
    # r1/r2 admitted silently (answers come later); r3/r4 refused loudly.
    assert responses[0] == [] and responses[1] == []
    for reply, request_id in ((responses[2], "r3"), (responses[3], "r4")):
        assert len(reply) == 1
        message = reply[0]
        assert message["type"] == "overloaded"
        assert message["id"] == request_id
        assert message["max_pending"] == 2
        assert message["pending"] >= 2


# ---------------------------------------------------------------------------
# Parity: streamed answers == batch answers, bit for bit
# ---------------------------------------------------------------------------


QUERIES = ["loop()", "forall_pairs(reach)", "invariant(IpSrc)"]


@pytest.mark.parametrize("network", [DEPARTMENT, STANFORD], ids=["department", "stanford"])
@pytest.mark.parametrize("workers", [1, 2])
@pytest.mark.parametrize("with_store", [False, True], ids=["store-off", "store-warm"])
def test_streamed_matches_batch(network, workers, with_store, tmp_path):
    from repro.store import VerificationStore

    expected = batch_fingerprints(network, QUERIES)
    store = VerificationStore(str(tmp_path / "store")) if with_store else None
    with service_endpoint(
        workers=workers, store=store, batch_window=0.01
    ) as (service, host, port):
        with ServiceClient(host, port) as client:
            messages = client.query(network, QUERIES)
            assert messages[-1]["type"] == "done"
            results = results_by_index(messages)
            assert len(results) == len(QUERIES)
            streamed = {m["query"]: m["fingerprint"] for m in results.values()}
            assert streamed == expected
            # The done digest is reproducible from the batch run alone.
            assert messages[-1]["fingerprint"] == results_digest(
                expected.values()
            )
            assert messages[-1]["from_cache"] is False
            if not with_store:
                return
            # Second identical request: the warm store answers from the
            # plan cache — zero engine jobs, same fingerprints.
            repeat = client.query(network, QUERIES)
            assert repeat[-1]["type"] == "done"
            assert repeat[-1]["from_cache"] is True
            assert {
                m["query"]: m["fingerprint"]
                for m in results_by_index(repeat).values()
            } == expected
            assert repeat[-1]["fingerprint"] == messages[-1]["fingerprint"]


def test_resident_model_reused_across_requests():
    with service_endpoint(batch_window=0.01) as (service, host, port):
        with ServiceClient(host, port) as client:
            client.query(DEPARTMENT, ["loop()"])
            client.query(DEPARTMENT, ["invariant(IpSrc)"])
            stats = client.stats()
    assert stats["service"]["model_builds"] == 1
    assert stats["service"]["models_resident"] == 1
    assert stats["service"]["plans_executed"] == 2


# ---------------------------------------------------------------------------
# Cross-client merge + dedup, and streaming before the barrier
# ---------------------------------------------------------------------------


def test_concurrent_clients_merge_into_one_plan():
    expected_a = batch_fingerprints(DEPARTMENT, ["loop()"])
    expected_b = batch_fingerprints(DEPARTMENT, ["loop()", "forall_pairs(reach)"])
    jobs_total = len(
        NetworkModel.from_workload("department").injection_ports()
    )
    with service_endpoint(workers=1, batch_window=1.0) as (service, host, port):
        with ServiceClient(host, port) as a, ServiceClient(host, port) as b:
            reset_execution_counters()
            id_a = a.submit(DEPARTMENT, ["loop()"])
            id_b = b.submit(DEPARTMENT, ["loop()", "forall_pairs(reach)"])
            messages_a = a.drain(id_a)
            messages_b = b.drain(id_b)
            runs = execution_counters()["engine_runs"]
            stats = a.stats()
    accepted_a = [m for m in messages_a if m["type"] == "accepted"][0]
    accepted_b = [m for m in messages_b if m["type"] == "accepted"][0]
    # Both requests were compiled into one shared plan...
    assert accepted_a["merged_requests"] == 2
    assert accepted_b["merged_requests"] == 2
    assert accepted_a["jobs"] == accepted_b["jobs"] == jobs_total
    assert stats["service"]["groups"] == 1
    assert stats["service"]["merged_requests"] == 2
    # ...so the overlapping injection ports ran ONCE (with workers=1 every
    # engine job executes in the service process, where we can count it;
    # symmetry may reduce below the port count, never above).
    assert 0 < runs <= jobs_total
    # And each client's answers are still bit-identical to its own batch.
    assert {
        m["query"]: m["fingerprint"]
        for m in results_by_index(messages_a).values()
    } == expected_a
    assert {
        m["query"]: m["fingerprint"]
        for m in results_by_index(messages_b).values()
    } == expected_b
    # Each done digest covers exactly its own client's results — request
    # ids are client-chosen and both clients picked "r1" here, so a
    # service keying merged state by id would cross the streams.
    assert id_a == id_b == "r1"
    assert messages_a[-1]["fingerprint"] == results_digest(expected_a.values())
    assert messages_b[-1]["fingerprint"] == results_digest(expected_b.values())


def test_port_scoped_query_streams_before_barrier():
    # 'cluster:in-node' sorts first among department's injection ports, so
    # with workers=1 its job reports first and the loop query scoped to it
    # must be answered while the other ports are still outstanding.
    texts = ["loop(cluster:in-node)", "forall_pairs(reach)"]
    expected = batch_fingerprints(DEPARTMENT, texts)
    with service_endpoint(workers=1, batch_window=0.01) as (service, host, port):
        with ServiceClient(host, port) as client:
            messages = client.query(DEPARTMENT, texts)
    results = results_by_index(messages)
    scoped = results[0]
    assert scoped["query"] == "loop(cluster:in-node)"
    assert scoped["jobs_reported"] < scoped["jobs_total"]
    # The early answer is still the batch answer.
    assert {
        m["query"]: m["fingerprint"] for m in results.values()
    } == expected
    # Messages arrive in completion order: the scoped result line precedes
    # the whole-network one on the wire.
    order = [m["index"] for m in messages if m["type"] == "result"]
    assert order.index(0) < order.index(1)


def test_execution_error_answers_every_merged_client():
    # A directory that cannot be built must produce an error response (not
    # a hang, not a dropped request).
    with service_endpoint(batch_window=0.01) as (service, host, port):
        with ServiceClient(host, port) as client:
            messages = client.query(
                {"directory": "/nonexistent/sn-apshot"}, ["loop()"]
            )
    assert messages[-1]["type"] == "error"
    assert messages[-1]["error"]
