"""End-to-end tests of the Solver, including property-based checks against a
brute-force evaluator over small domains."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.solver import (
    Add,
    And,
    Const,
    Eq,
    Ge,
    Gt,
    IntervalSet,
    Le,
    Lt,
    Member,
    Ne,
    Not,
    Or,
    Solver,
    Sub,
    Var,
)

x = Var("x", 16)
y = Var("y", 16)


class TestSolverBasics:
    def setup_method(self):
        self.solver = Solver()

    def test_trivial_sat(self):
        assert self.solver.check(Eq(Const(1), Const(1))).is_sat

    def test_trivial_unsat(self):
        assert self.solver.check(Eq(Const(1), Const(2))).is_unsat

    def test_empty_constraint_list_is_sat(self):
        assert self.solver.check([]).is_sat

    def test_conjunction_list_argument(self):
        assert self.solver.check([Eq(x, Const(3)), Lt(x, Const(10))]).is_sat
        assert self.solver.check([Eq(x, Const(3)), Gt(x, Const(10))]).is_unsat

    def test_model_generation(self):
        model = self.solver.get_model([Eq(x, Const(80)), Eq(y, Add(x, Const(5)))])
        assert model == {"x": 80, "y": 85}

    def test_model_none_when_unsat(self):
        assert self.solver.get_model([Eq(x, Const(1)), Eq(x, Const(2))]) is None

    def test_is_satisfiable_conservative_on_unknown(self):
        # Unsupported fragment -> unknown -> treated as satisfiable.
        assert self.solver.is_satisfiable([Eq(Add(x, y), Const(5))])

    def test_stats_recorded(self):
        solver = Solver()
        solver.check(Eq(x, Const(1)))
        solver.check(Eq(x, Const(2)))
        assert solver.stats.calls == 2
        assert solver.stats.sat == 2
        assert solver.stats.time_seconds >= 0


class TestDisjunctions:
    def setup_method(self):
        self.solver = Solver()

    def test_single_variable_disjunction_collapses(self):
        formula = Or(*[Eq(x, Const(v)) for v in range(100)])
        result = self.solver.check(And(formula, Eq(x, Const(50))))
        assert result.is_sat
        assert self.solver.stats.case_splits == 0

    def test_single_variable_disjunction_unsat(self):
        formula = Or(*[Eq(x, Const(v)) for v in range(100)])
        assert self.solver.check(And(formula, Eq(x, Const(500)))).is_unsat

    def test_negated_disjunction(self):
        formula = Not(Or(Eq(x, Const(1)), Eq(x, Const(2))))
        assert self.solver.check(And(formula, Eq(x, Const(1)))).is_unsat
        assert self.solver.check(And(formula, Eq(x, Const(3)))).is_sat

    def test_mixed_variable_disjunction_case_splits(self):
        formula = Or(Eq(x, Const(1)), Eq(y, Const(2)))
        assert self.solver.check(And(formula, Ne(x, Const(1)), Ne(y, Const(2)))).is_unsat
        assert self.solver.stats.case_splits > 0

    def test_nested_disjunctions(self):
        formula = And(
            Or(Eq(x, Const(1)), Eq(y, Const(5))),
            Or(Eq(x, Const(2)), Eq(y, Const(5))),
        )
        result = self.solver.check(And(formula, Ne(y, Const(5))))
        assert result.is_unsat  # x cannot be both 1 and 2

    def test_case_split_budget_returns_unknown(self):
        tight = Solver(max_case_splits=1)
        vars_ = [Var(f"v{i}", 8) for i in range(6)]
        formula = And(*[Or(Eq(v, Const(1)), Eq(v, Const(2))) for v in vars_])
        # force splits by making each disjunction mention two variables
        mixed = And(
            *[
                Or(Eq(vars_[i], Const(1)), Eq(vars_[i + 1], Const(2)))
                for i in range(5)
            ],
            *[Ne(v, Const(1)) for v in vars_],
            *[Ne(v, Const(2)) for v in vars_],
        )
        assert tight.check(mixed).verdict in ("unknown", "unsat")


class TestMember:
    def setup_method(self):
        self.solver = Solver()

    def test_member_sat_and_unsat(self):
        allowed = IntervalSet.points([5, 7, 9])
        assert self.solver.check([Member(x, allowed), Eq(x, Const(7))]).is_sat
        assert self.solver.check([Member(x, allowed), Eq(x, Const(8))]).is_unsat

    def test_negated_member(self):
        allowed = IntervalSet.points([5, 7, 9])
        assert self.solver.check(
            [Member(x, allowed, negated=True), Eq(x, Const(7))]
        ).is_unsat
        assert self.solver.check(
            [Member(x, allowed, negated=True), Eq(x, Const(8))]
        ).is_sat

    def test_member_with_offset_term(self):
        allowed = IntervalSet.points([10, 20])
        assert self.solver.check(
            [Member(Add(x, Const(5)), allowed), Eq(x, Const(15))]
        ).is_sat
        assert self.solver.check(
            [Member(Add(x, Const(5)), allowed), Eq(x, Const(16))]
        ).is_unsat

    def test_two_disjoint_members_unsat(self):
        assert self.solver.check(
            [Member(x, IntervalSet.points([1, 2])), Member(x, IntervalSet.points([3, 4]))]
        ).is_unsat

    def test_large_member_is_cheap(self):
        allowed = IntervalSet.points(range(0, 200_000, 2))
        result = self.solver.check([Member(x, allowed), Eq(x, Const(2))])
        assert result.is_sat
        assert self.solver.stats.case_splits == 0

    def test_model_from_member(self):
        model = self.solver.get_model([Member(x, IntervalSet.points([42]))])
        assert model == {"x": 42}


# ---------------------------------------------------------------------------
# Property-based: compare against brute force on tiny domains
# ---------------------------------------------------------------------------

_WIDTH = 3  # variables range over 0..7
_VARS = [Var("a", _WIDTH), Var("b", _WIDTH)]

_atom_strategy = st.builds(
    lambda op, var_index, const: (op, var_index, const),
    st.sampled_from(["==", "!=", "<", "<=", ">", ">=", "diff<=", "diff=="]),
    st.integers(0, 1),
    st.integers(0, 7),
)


def _atom_to_formula(spec):
    op, var_index, const = spec
    var = _VARS[var_index]
    other = _VARS[1 - var_index]
    table = {
        "==": Eq(var, Const(const)),
        "!=": Ne(var, Const(const)),
        "<": Lt(var, Const(const)),
        "<=": Le(var, Const(const)),
        ">": Gt(var, Const(const)),
        ">=": Ge(var, Const(const)),
        "diff<=": Le(Sub(var, other), Const(const - 4)),
        "diff==": Eq(var, Add(other, Const(const - 4))),
    }
    return table[op]


def _atom_holds(spec, assignment):
    op, var_index, const = spec
    value = assignment[var_index]
    other = assignment[1 - var_index]
    if op == "==":
        return value == const
    if op == "!=":
        return value != const
    if op == "<":
        return value < const
    if op == "<=":
        return value <= const
    if op == ">":
        return value > const
    if op == ">=":
        return value >= const
    if op == "diff<=":
        return value - other <= const - 4
    if op == "diff==":
        return value == other + const - 4
    raise AssertionError(op)


@settings(max_examples=200, deadline=None)
@given(st.lists(_atom_strategy, min_size=1, max_size=5))
def test_solver_agrees_with_brute_force(atom_specs):
    formulas = [_atom_to_formula(spec) for spec in atom_specs]
    solver = Solver()
    result = solver.check(formulas)

    brute_force_sat = any(
        all(_atom_holds(spec, assignment) for spec in atom_specs)
        for assignment in itertools.product(range(1 << _WIDTH), repeat=2)
    )
    if result.is_sat:
        assert brute_force_sat
    elif result.is_unsat:
        assert not brute_force_sat
    # "unknown" is always acceptable (conservative)


@settings(max_examples=100, deadline=None)
@given(st.lists(_atom_strategy, min_size=1, max_size=4))
def test_models_actually_satisfy_constraints(atom_specs):
    formulas = [_atom_to_formula(spec) for spec in atom_specs]
    solver = Solver()
    model = solver.get_model(formulas)
    if model is None:
        return
    assignment = {0: model.get("a", 0), 1: model.get("b", 0)}
    assert all(_atom_holds(spec, assignment) for spec in atom_specs)
