"""Tests for the switch and router models, including property-based
equivalence against reference lookups."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import ExecutionSettings, Network, SymbolicExecutor, models
from repro.models.router import (
    RouterModelStyle,
    build_router,
    group_prefixes_by_port,
    longest_prefix_match,
    router_basic,
    router_egress,
    router_ingress,
)
from repro.models.switch import (
    SwitchModelStyle,
    build_switch,
    switch_basic,
    switch_egress,
    switch_ingress,
)
from repro.sefl import EtherDst, IpDst
from repro.solver.intervals import prefix_to_interval

SETTINGS = ExecutionSettings(record_failed_paths=False)


def run_element(element, packet):
    network = Network()
    network.add_element(element)
    executor = SymbolicExecutor(network, settings=SETTINGS)
    return executor.inject(packet, element.name, element.input_ports[0])


MAC_TABLE = {
    "out0": [0x0000AA0001, 0x0000AA0002, 0x0000AA0003],
    "out1": [0x0000BB0001],
    "out2": [0x0000CC0001, 0x0000CC0002],
}


class TestSwitchModels:
    @pytest.mark.parametrize("builder", [switch_basic, switch_ingress, switch_egress])
    def test_known_mac_goes_to_right_port(self, builder):
        element = builder("sw", MAC_TABLE)
        packet = models.symbolic_tcp_packet({EtherDst: 0x0000BB0001})
        result = run_element(element, packet)
        assert [p.last_port.port for p in result.delivered()] == ["out1"]

    @pytest.mark.parametrize("builder", [switch_basic, switch_ingress, switch_egress])
    def test_unknown_mac_is_dropped(self, builder):
        element = builder("sw", MAC_TABLE)
        packet = models.symbolic_tcp_packet({EtherDst: 0x0000DD0001})
        result = run_element(element, packet)
        assert not result.delivered()

    def test_symbolic_mac_path_counts(self):
        """Egress and ingress models have one path per output port; the basic
        model has one path per table entry (the paper's branching argument)."""
        symbolic = models.symbolic_tcp_packet()
        egress = run_element(switch_egress("sw", MAC_TABLE), symbolic)
        assert len(egress.delivered()) == len(MAC_TABLE)
        ingress = run_element(switch_ingress("sw", MAC_TABLE), symbolic)
        assert len(ingress.delivered()) == len(MAC_TABLE)
        basic = run_element(switch_basic("sw", MAC_TABLE), symbolic)
        total_entries = sum(len(v) for v in MAC_TABLE.values())
        assert len(basic.delivered()) == total_entries

    def test_egress_constraint_count_is_linear(self):
        """Each egress path carries a single Member constraint; ingress paths
        accumulate the negated groups of earlier ports."""
        symbolic = models.symbolic_tcp_packet()
        egress = run_element(switch_egress("sw", MAC_TABLE), symbolic)
        assert all(len(p.constraints) == 1 for p in egress.delivered())
        ingress = run_element(switch_ingress("sw", MAC_TABLE), symbolic)
        max_constraints = max(len(p.constraints) for p in ingress.delivered())
        assert max_constraints >= 2

    def test_build_switch_dispatch(self):
        for style in SwitchModelStyle:
            element = build_switch("sw", MAC_TABLE, style=style)
            assert element.kind == "switch"

    def test_empty_port_group_always_fails(self):
        table = {"out0": [1, 2], "out1": []}
        result = run_element(
            switch_egress("sw", table), models.symbolic_tcp_packet()
        )
        assert [p.last_port.port for p in result.delivered()] == ["out0"]

    @settings(max_examples=25, deadline=None)
    @given(
        st.dictionaries(
            st.sampled_from(["out0", "out1", "out2"]),
            st.lists(st.integers(1, 500), min_size=1, max_size=4, unique=True),
            min_size=1,
            max_size=3,
        ),
        st.integers(1, 500),
    )
    def test_switch_models_agree_with_reference_lookup(self, table, probe_mac):
        # Remove duplicate MACs across ports (a real table maps a MAC to one port).
        seen = set()
        cleaned = {}
        for port, macs in table.items():
            cleaned[port] = [m for m in macs if m not in seen]
            seen.update(cleaned[port])
        expected_port = None
        for port, macs in cleaned.items():
            if probe_mac in macs:
                expected_port = port
                break
        packet = models.symbolic_tcp_packet({EtherDst: probe_mac})
        for builder in (switch_basic, switch_ingress, switch_egress):
            result = run_element(builder("sw", cleaned), packet)
            ports = [p.last_port.port for p in result.delivered()]
            if expected_port is None:
                assert ports == []
            else:
                assert ports == [expected_port]


FIB = [
    (0xC0A80001, 32, "if0"),  # 192.168.0.1/32
    (0x0A000000, 8, "if0"),   # 10.0.0.0/8
    (0xC0A80000, 24, "if1"),  # 192.168.0.0/24
    (0x0A0A0001, 32, "if1"),  # 10.10.0.1/32
]


class TestLpmGrouping:
    def test_paper_example_longest_prefix_match(self):
        """The exact pitfall of §7: 10.10.0.1 must go to if1, not if0."""
        groups = group_prefixes_by_port(FIB)
        assert 0x0A0A0001 in groups["if1"]
        assert 0x0A0A0001 not in groups["if0"]
        assert 0x0A0A0002 in groups["if0"]
        assert 0xC0A80001 in groups["if0"]
        assert 0xC0A80002 in groups["if1"]

    def test_groups_are_mutually_exclusive(self):
        groups = group_prefixes_by_port(FIB)
        ports = list(groups)
        for i, a in enumerate(ports):
            for b in ports[i + 1 :]:
                assert groups[a].intersection(groups[b]).is_empty()

    def test_groups_cover_exactly_the_announced_space(self):
        groups = group_prefixes_by_port(FIB)
        covered = groups["if0"].union(groups["if1"])
        announced = prefix_to_interval(0x0A000000, 8)
        assert covered.size() == announced.hi - announced.lo + 1 + 256

    def test_empty_fib(self):
        assert group_prefixes_by_port([]) == {}

    def test_default_route_covers_all(self):
        groups = group_prefixes_by_port([(0, 0, "default")])
        assert groups["default"].size() == 1 << 32

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, (1 << 32) - 1),
                st.integers(8, 32),
                st.sampled_from(["if0", "if1", "if2"]),
            ),
            min_size=1,
            max_size=8,
        ),
        st.integers(0, (1 << 32) - 1),
    )
    def test_grouping_matches_reference_lpm(self, raw_fib, probe):
        fib = [
            ((address >> (32 - plen)) << (32 - plen) if plen else 0, plen, port)
            for address, plen, port in raw_fib
        ]
        # Drop conflicting duplicates (same prefix, different port).
        unique = {}
        for address, plen, port in fib:
            unique.setdefault((address, plen), port)
        fib = [(a, l, p) for (a, l), p in unique.items()]
        groups = group_prefixes_by_port(fib)
        expected = longest_prefix_match(fib, probe)
        actual = None
        for port, allowed in groups.items():
            if probe in allowed:
                actual = port
                break
        assert actual == expected


class TestRouterModels:
    @pytest.mark.parametrize("builder", [router_basic, router_ingress, router_egress])
    def test_concrete_destination_follows_lpm(self, builder):
        element = builder("r", FIB)
        packet = models.symbolic_ip_packet({IpDst: 0x0A0A0001})
        result = run_element(element, packet)
        assert [p.last_port.port for p in result.delivered()] == ["if1"]

    @pytest.mark.parametrize("builder", [router_basic, router_ingress, router_egress])
    def test_unrouted_destination_dropped(self, builder):
        element = builder("r", FIB)
        packet = models.symbolic_ip_packet({IpDst: 0x08080808})
        result = run_element(element, packet)
        assert not result.delivered()

    def test_symbolic_destination_path_counts(self):
        symbolic = models.symbolic_ip_packet()
        egress = run_element(router_egress("r", FIB), symbolic)
        assert len(egress.delivered()) == 2  # one per interface
        ingress = run_element(router_ingress("r", FIB), symbolic)
        assert len(ingress.delivered()) == 2
        basic = run_element(router_basic("r", FIB), symbolic)
        assert len(basic.delivered()) == len(FIB)

    def test_build_router_dispatch(self):
        for style in RouterModelStyle:
            assert build_router("r", FIB, style=style).kind == "router"

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, (1 << 32) - 1))
    def test_egress_router_agrees_with_reference_lpm(self, destination):
        element = router_egress("r", FIB)
        packet = models.symbolic_ip_packet({IpDst: destination})
        result = run_element(element, packet)
        expected = longest_prefix_match(FIB, destination)
        ports = [p.last_port.port for p in result.delivered()]
        if expected is None:
            assert ports == []
        else:
            assert ports == [expected]
