"""Tests for the observability layer (repro.obs).

The load-bearing guarantees:

* **no-op by default** — the process-global tracer is a :class:`NullTracer`
  until someone installs a recording one; untraced runs never allocate
  spans;
* **cross-process propagation** — spans recorded inside pool workers ride
  back through the picklable ``JobReport.spans`` channel and are
  re-parented under the driver's campaign span with remapped ids;
* **answer invariance** — tracing {off, on} x workers {1, 2} changes which
  telemetry is emitted, never the answer: per-query result fingerprints
  are bit-identical across all four combinations;
* **exposition** — the resident service answers the ``metrics`` protocol
  verb with Prometheus text covering the core families.
"""

import asyncio
import contextlib
import json
import queue as queue_module
import threading

import pytest

from repro.api import NetworkModel, compile_plan, execute_plan, parse_query
from repro.obs import (
    MetricsRegistry,
    NullTracer,
    Tracer,
    chrome_trace,
    ensure_core_families,
    get_registry,
    get_tracer,
    reset_registry,
    set_tracer,
    write_trace,
)

DEPARTMENT_OPTIONS = dict(access_switches=2, hosts_per_switch=1)
STANFORD_OPTIONS = dict(
    zones=2, internal_prefixes_per_zone=4, service_acl_rules=2
)


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Every test starts and ends with the no-op tracer and a fresh
    registry — telemetry is process-global state."""
    set_tracer(NullTracer())
    reset_registry()
    yield
    set_tracer(NullTracer())
    reset_registry()


def spans_by_name(spans):
    out = {}
    for span in spans:
        out.setdefault(span["name"], []).append(span)
    return out


# ---------------------------------------------------------------------------
# Tracer units
# ---------------------------------------------------------------------------


class TestTracer:
    def test_default_tracer_is_noop(self):
        tracer = get_tracer()
        assert not tracer.enabled
        with tracer.span("anything", key="value"):
            pass
        assert tracer.export() == []

    def test_spans_nest_by_thread_stack(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner", detail=1):
                pass
            with tracer.span("sibling"):
                pass
        spans = spans_by_name(tracer.export())
        outer = spans["outer"][0]
        assert outer["parent_id"] == 0
        assert spans["inner"][0]["parent_id"] == outer["span_id"]
        assert spans["sibling"][0]["parent_id"] == outer["span_id"]
        assert spans["inner"][0]["attrs"] == {"detail": 1}
        for span in tracer.export():
            assert span["end_ns"] >= span["start_ns"]

    def test_absorb_remaps_ids_and_reparents_roots(self):
        worker = Tracer()
        with worker.span("job"):
            with worker.span("solver.check"):
                pass
        payloads = worker.export()

        driver = Tracer()
        with driver.span("campaign") as campaign_span:
            driver.absorb(payloads, parent_id=campaign_span.span_id)
        spans = spans_by_name(driver.export())
        job = spans["job"][0]
        assert job["parent_id"] == spans["campaign"][0]["span_id"]
        assert spans["solver.check"][0]["parent_id"] == job["span_id"]
        # Remapping keeps every id unique even though both tracers
        # started their counters at 1.
        ids = [span["span_id"] for span in driver.export()]
        assert len(ids) == len(set(ids))

    def test_noop_absorb_drops_payloads(self):
        worker = Tracer()
        with worker.span("job"):
            pass
        tracer = NullTracer()
        tracer.absorb(worker.export(), parent_id=7)
        assert tracer.export() == []

    def test_chrome_trace_is_complete_events(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        document = chrome_trace(tracer.export())
        events = document["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0
        json.dumps(document)  # must be serialisable as-is

    def test_write_trace_formats(self, tmp_path):
        tracer = Tracer()
        with tracer.span("only"):
            pass
        json_path = tmp_path / "trace.json"
        assert write_trace(str(json_path), tracer) == 1
        document = json.loads(json_path.read_text())
        assert [e["name"] for e in document["traceEvents"]] == ["only"]
        jsonl_path = tmp_path / "trace.jsonl"
        assert write_trace(str(jsonl_path), tracer) == 1
        lines = jsonl_path.read_text().splitlines()
        assert json.loads(lines[0])["name"] == "only"


# ---------------------------------------------------------------------------
# Metrics units
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_labels_and_rendering(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_things_total", "things")
        counter.inc(kind="a")
        counter.inc(2, kind="b")
        assert counter.value(kind="a") == 1
        assert counter.value(kind="b") == 2
        text = registry.render_prometheus()
        assert "# TYPE repro_things_total counter" in text
        assert 'repro_things_total{kind="a"} 1' in text

    def test_histogram_buckets_sum_count(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "repro_lat_seconds", "latency", buckets=(0.1, 1.0)
        )
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        assert histogram.count() == 3
        assert histogram.sum() == pytest.approx(5.55)
        text = registry.render_prometheus()
        assert 'repro_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="1.0"} 2' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_lat_seconds_count 3" in text

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(ValueError):
            registry.gauge("repro_x_total")

    def test_core_families_preregistered(self):
        text = ensure_core_families(MetricsRegistry()).render_prometheus()
        for family in (
            "repro_jobs_total",
            "repro_job_seconds",
            "repro_solver_checks_total",
            "repro_degraded_operations_total",
        ):
            assert family in text

    def test_campaign_feeds_registry(self):
        model = NetworkModel.from_workload("department", **DEPARTMENT_OPTIONS)
        result = model.campaign().run()
        assert not result.job_errors
        registry = get_registry()
        jobs = registry.counter("repro_jobs_total")
        executed = jobs.value(outcome="executed")
        assert executed >= 1
        assert registry.histogram("repro_job_seconds").count() == executed
        checks = registry.counter("repro_solver_checks_total")
        assert checks.value(tier="full_solve") > 0
        assert registry.counter("repro_campaigns_total").value() == 1


# ---------------------------------------------------------------------------
# Cross-process propagation and answer invariance
# ---------------------------------------------------------------------------


class TestCrossProcess:
    def test_worker_spans_reparented_and_non_overlapping(self):
        tracer = Tracer()
        set_tracer(tracer)
        model = NetworkModel.from_workload("department", **DEPARTMENT_OPTIONS)
        result = model.campaign().run(workers=2)
        assert not result.job_errors
        if result.execution_mode != "process-pool":
            pytest.skip("no usable multiprocessing in this environment")
        spans = spans_by_name(tracer.export())
        campaign_span = spans["campaign"][0]
        jobs = spans["job"]
        # One job span per executed engine job, every one hung off the
        # campaign span despite being recorded in another process.
        executed = (
            result.stats.jobs
            - result.stats.jobs_skipped_by_symmetry
            - result.stats.jobs_spliced_by_delta
        )
        assert len(jobs) == executed
        assert {job["parent_id"] for job in jobs} == {
            campaign_span["span_id"]
        }
        worker_pids = {job["pid"] for job in jobs}
        assert campaign_span["pid"] not in worker_pids
        # Within one worker the clock is monotonic and jobs run one at a
        # time: their spans must not overlap.
        for pid in worker_pids:
            mine = sorted(
                (job for job in jobs if job["pid"] == pid),
                key=lambda span: span["start_ns"],
            )
            for earlier, later in zip(mine, mine[1:]):
                assert earlier["end_ns"] <= later["start_ns"]

    @pytest.mark.parametrize(
        "workload,options",
        [
            ("department", DEPARTMENT_OPTIONS),
            ("stanford", STANFORD_OPTIONS),
        ],
    )
    def test_tracing_and_workers_never_move_answers(self, workload, options):
        queries = [parse_query("forall_pairs(reach)"), parse_query("loop()")]
        fingerprints = []
        for traced in (False, True):
            for workers in (1, 2):
                set_tracer(Tracer() if traced else NullTracer())
                model = NetworkModel.from_workload(workload, **options)
                plan = compile_plan(model, queries)
                result = execute_plan(plan, workers=workers)
                assert not result.job_errors
                fingerprints.append(
                    (result.fingerprint(), tuple(r.fingerprint for r in result.results))
                )
        assert len(set(fingerprints)) == 1


# ---------------------------------------------------------------------------
# Service exposition
# ---------------------------------------------------------------------------


@contextlib.contextmanager
def service_endpoint(**service_kwargs):
    from repro.serve import VerificationService, run_server

    service = VerificationService(**service_kwargs)
    ready: "queue_module.Queue" = queue_module.Queue()
    loop = asyncio.new_event_loop()
    holder = {}

    class ReadyStream:
        def write(self, text):
            ready.put(json.loads(text))

        def flush(self):
            pass

    async def main():
        holder["task"] = asyncio.current_task()
        await run_server(service, port=0, ready_stream=ReadyStream())

    def runner():
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(main())
        except asyncio.CancelledError:
            pass
        finally:
            loop.close()

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    info = ready.get(timeout=60)
    try:
        yield service, info["host"], info["port"]
    finally:
        loop.call_soon_threadsafe(holder["task"].cancel)
        thread.join(timeout=60)


class TestServeMetrics:
    def test_metrics_verb_returns_prometheus_text(self):
        from repro.serve import ServiceClient

        with service_endpoint(batch_window=0.01) as (service, host, port):
            with ServiceClient(host, port) as client:
                client.query({"workload": "department"}, ["loop()"])
                message = client.metrics()
        assert message["type"] == "metrics"
        text = message["prometheus"]
        for family in (
            'repro_serve_events_total{event="requests"} 1',
            "repro_serve_request_seconds",
            "repro_serve_models_resident 1",
            "repro_solver_checks_total",
            "repro_job_seconds",
            "repro_degraded_operations_total",
        ):
            assert family in text
        assert isinstance(message["slow_requests"], list)

    def test_metrics_text_without_traffic(self):
        from repro.serve import VerificationService

        text = VerificationService().metrics_text()
        assert "repro_serve_pending 0" in text
        assert "repro_jobs_total" in text


# ---------------------------------------------------------------------------
# CLI plumbing
# ---------------------------------------------------------------------------


class TestCliTrace:
    def test_trace_out_writes_chrome_trace(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "trace.json"
        assert main(
            [
                "query", "--workload", "department",
                "--workload-option", "access_switches=2",
                "--workload-option", "hosts_per_switch=1",
                "loop()",
                "--trace-out", str(trace_path),
                "-o", str(tmp_path / "report.json"),
            ]
        ) == 0
        # The recording tracer is uninstalled on exit.
        assert not get_tracer().enabled
        assert "wrote" in capsys.readouterr().err
        names = spans_by_name(
            [
                {"name": e["name"], **e}
                for e in json.loads(trace_path.read_text())["traceEvents"]
            ]
        )
        assert "session" in names
        assert "plan.compile" in names
        assert "campaign" in names
        assert len(names["job"]) >= 1
