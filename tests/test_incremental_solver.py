"""Tests for the incremental solver: push/pop scopes, domain propagation,
result memoization, and the engine-level accounting around them."""

import pytest

from repro import ExecutionSettings, Network, NetworkElement, SymbolicExecutor, models
from repro.sefl import (
    Constrain,
    Eq as SEq,
    Forward,
    If,
    InstructionBlock,
    TcpDst,
    TcpSrc,
)
from repro.solver import IncrementalSolver, Solver
from repro.solver.ast import Add, Const, Eq, Ge, Le, Lt, Member, Ne, Or, Var
from repro.solver.intervals import IntervalSet

X = Var("x", 16)
Y = Var("y", 16)


class TestSolverContext:
    def test_domain_only_constraints_are_fast_paths(self):
        inc = IncrementalSolver()
        ctx = inc.context()
        ctx.assume(Ge(X, Const(10)))
        ctx.assume(Le(X, Const(20)))
        assert ctx.check().is_sat
        ctx.assume(Eq(X, Const(15)))
        assert ctx.check().is_sat
        ctx.assume(Eq(X, Const(16)))
        assert ctx.check().is_unsat
        # Every query above was decided by propagation, not the base solver.
        assert inc.stats.calls == 0
        assert inc.stats.fast_paths == 3

    def test_push_pop_restores_domains_and_verdict(self):
        inc = IncrementalSolver()
        ctx = inc.context()
        ctx.assume(Eq(X, Const(5)))
        assert ctx.check().is_sat

        ctx.push()
        ctx.assume(Ne(X, Const(5)))
        assert ctx.check().is_unsat
        ctx.pop()

        assert ctx.check().is_sat
        assert ctx.constraint_count() == 1

        ctx.push()
        ctx.assume(Lt(X, Const(100)))
        assert ctx.check().is_sat
        ctx.pop()
        assert ctx.constraint_count() == 1

    def test_nested_scopes(self):
        inc = IncrementalSolver()
        ctx = inc.context()
        ctx.assume(Ge(X, Const(10)))
        ctx.push()
        ctx.assume(Le(X, Const(10)))  # x == 10
        ctx.push()
        ctx.assume(Ne(X, Const(10)))
        assert ctx.check().is_unsat
        ctx.pop()
        assert ctx.check().is_sat
        ctx.pop()
        assert ctx.check().is_sat
        assert ctx.depth == 0

    def test_pop_without_push_raises(self):
        ctx = IncrementalSolver().context()
        with pytest.raises(RuntimeError):
            ctx.pop()

    def test_clone_isolates_branches(self):
        inc = IncrementalSolver()
        ctx = inc.context()
        ctx.assume(Ge(X, Const(10)))
        sibling = ctx.clone()
        ctx.assume(Lt(X, Const(5)))
        assert ctx.check().is_unsat
        assert sibling.check().is_sat
        sibling.assume(Le(X, Const(10)))
        assert sibling.check().is_sat

    def test_member_and_disjunction_absorbed_into_domains(self):
        inc = IncrementalSolver()
        ctx = inc.context()
        ctx.assume(Member(X, IntervalSet.points([1, 5, 9])))
        ctx.assume(Or(Eq(X, Const(5)), Eq(X, Const(7))))
        assert ctx.check().is_sat
        ctx.assume(Ne(X, Const(5)))
        assert ctx.check().is_unsat
        assert inc.stats.calls == 0  # never left the propagation tier

    def test_residual_atoms_fall_back_to_base_solver(self):
        inc = IncrementalSolver()
        ctx = inc.context()
        ctx.assume(Eq(X, Add(Y, Const(1))))  # difference atom: not domain-able
        ctx.assume(Eq(Y, Const(4)))
        result = ctx.check()
        assert result.is_sat
        assert inc.stats.calls == 1
        assert inc.stats.cache_misses == 1
        # Verdict parity with a from-scratch solve of the same conjunction.
        assert Solver().check([Eq(X, Add(Y, Const(1))), Eq(Y, Const(4))]).is_sat

    def test_agrees_with_base_solver_on_mixed_formulas(self):
        cases = [
            [Eq(X, Add(Y, Const(1))), Eq(Y, Const(4)), Eq(X, Const(5))],
            [Eq(X, Add(Y, Const(1))), Eq(Y, Const(4)), Eq(X, Const(6))],
            [Or(Eq(X, Add(Y, Const(1))), Eq(X, Y)), Eq(Y, Const(9))],
            [Ge(X, Const(10)), Le(X, Const(9))],
            # Member over a two-variable term (outside the single-variable
            # fragment) followed by domain constraints that contradict each
            # other: both tiers must report unsat, not unknown-vs-unsat.
            [
                Member(Add(X, Y), IntervalSet.points([7, 9])),
                Eq(X, Const(5)),
                Ge(X, Const(200)),
            ],
            # Same, but satisfiable remainder: both must report unknown
            # (the unsupported Member is dropped, so sat degrades).
            [Member(Add(X, Y), IntervalSet.points([7, 9])), Eq(X, Const(5))],
        ]
        for conjunction in cases:
            fresh = Solver().check(conjunction).verdict
            ctx = IncrementalSolver().context()
            for formula in conjunction:
                ctx.assume(formula)
            assert ctx.check().verdict == fresh, conjunction

    def test_engine_parity_with_unsupported_member_on_path(self):
        """Regression: a OneOf over a derived two-variable field used to make
        the base solver bail out 'unknown' while the incremental context kept
        propagating to 'unsat', so the two modes explored different paths."""
        from repro.sefl import Assign, Constrain, Ge as SGe, Minus, OneOf, IpTtl

        program = InstructionBlock(
            Assign(TcpDst, Minus(TcpSrc, IpTtl)),
            Constrain(OneOf(TcpDst, [7, 9])),
            Constrain(SEq(TcpSrc, 5)),
            Constrain(SGe(TcpSrc, 200)),
            Forward("out0"),
        )
        network = Network()
        element = NetworkElement("box", ["in0"], ["out0"])
        element.set_input_program("in0", program)
        network.add_element(element)

        def run(incremental):
            settings = ExecutionSettings(use_incremental_solver=incremental)
            return SymbolicExecutor(network, settings=settings).inject(
                models.symbolic_tcp_packet(), "box", "in0"
            )

        legacy, incremental = run(False), run(True)
        assert legacy.summary_counts() == incremental.summary_counts()
        assert incremental.summary_counts() == {"failed": 1}


class TestMemoizationCache:
    def test_cache_hit_on_canonically_equal_formulas(self):
        inc = IncrementalSolver()
        diff = Eq(X, Add(Y, Const(1)))  # keeps a residual -> full check
        bound = Ge(Y, Const(3))

        first = inc.context()
        first.assume(diff)
        first.assume(bound)
        assert first.check().is_sat
        assert inc.cache_info() == (0, 1, 1)

        # Same conjunction asserted in the opposite order: canonicalization
        # (order/duplicate-insensitive) must produce a cache hit.
        second = inc.context()
        second.assume(bound)
        second.assume(diff)
        second.assume(bound)  # duplicate conjunct, same canonical key
        assert second.check().is_sat
        assert inc.cache_info() == (1, 1, 1)
        assert inc.stats.calls == 1  # only one real solve happened

    def test_lru_eviction_bounds_the_cache(self):
        inc = IncrementalSolver(max_cache_entries=2)
        conjunctions = [
            [Eq(X, Add(Y, Const(offset)))] for offset in range(4)
        ]
        for conjunction in conjunctions:
            ctx = inc.context()
            for formula in conjunction:
                ctx.assume(formula)
            ctx.check()
        assert inc.cache_info()[2] == 2  # bounded, oldest entries evicted
        # The most recent conjunction is still cached...
        ctx = inc.context()
        ctx.assume(conjunctions[-1][0])
        ctx.check()
        assert inc.stats.cache_hits == 1
        # ...and the evicted oldest one re-solves (a miss, still cached OK).
        ctx = inc.context()
        ctx.assume(conjunctions[0][0])
        ctx.check()
        assert inc.stats.cache_misses == 5

    def test_clear_cache(self):
        inc = IncrementalSolver()
        ctx = inc.context()
        ctx.assume(Eq(X, Add(Y, Const(1))))
        ctx.check()
        assert inc.cache_info()[2] == 1
        inc.clear_cache()
        assert inc.cache_info()[2] == 0


def _branching_network():
    """One element, two constraints and a symbolic If — a few solver queries
    per inject."""
    network = Network()
    element = NetworkElement("box", ["in0"], ["out0", "out1"])
    element.set_input_program(
        "in0",
        InstructionBlock(
            Constrain(SEq(TcpSrc, 1000)),
            If(SEq(TcpDst, 80), Forward("out0"), Forward("out1")),
        ),
    )
    network.add_element(element)
    return network


class TestEngineAccounting:
    def test_stats_survive_across_injects_and_deltas_are_correct(self):
        executor = SymbolicExecutor(_branching_network())
        first = executor.inject(models.symbolic_tcp_packet(), "box", "in0")
        stats_after_first = (
            executor.solver.stats.calls,
            executor.solver.stats.fast_paths,
            executor.solver.stats.cache_hits,
            executor.solver.stats.cache_misses,
        )
        second = executor.inject(models.symbolic_tcp_packet(), "box", "in0")

        # Global stats accumulate across injects...
        assert executor.solver.stats.fast_paths == (
            stats_after_first[1] + second.solver_fast_paths
        )
        assert executor.solver.stats.calls == (
            stats_after_first[0] + second.solver_calls
        )
        # ...while each result reports only its own delta.
        assert first.solver_fast_paths == stats_after_first[1]
        assert second.solver_fast_paths == first.solver_fast_paths
        assert second.solver_cache_hits >= 0
        assert (
            executor.solver.stats.cache_hits
            == first.solver_cache_hits + second.solver_cache_hits
        )
        assert (
            executor.solver.stats.cache_misses
            == first.solver_cache_misses + second.solver_cache_misses
        )

    def test_incremental_reduces_solver_calls_at_least_2x(self):
        """The acceptance bar: on a branching workload the incremental
        engine does at most half the full solver calls of the legacy one,
        while exploring the identical path set."""
        legacy_settings = ExecutionSettings(use_incremental_solver=False)
        legacy = SymbolicExecutor(
            _branching_network(), settings=legacy_settings
        ).inject(models.symbolic_tcp_packet(), "box", "in0")

        incremental = SymbolicExecutor(_branching_network()).inject(
            models.symbolic_tcp_packet(), "box", "in0"
        )

        def key(result):
            return sorted(
                (p.status, str(p.last_port), tuple(p.state.port_trace))
                for p in result.paths
            )

        assert key(legacy) == key(incremental)
        assert legacy.solver_calls >= 3
        assert incremental.solver_calls * 2 <= legacy.solver_calls

    def test_no_incremental_setting_clears_reused_context(self):
        """A state carrying a context from an earlier incremental run must
        not sneak incremental solving into a use_incremental_solver=False
        run."""
        from repro.core.state import ExecutionState

        state = ExecutionState()
        state.solver_context = IncrementalSolver().context()
        executor = SymbolicExecutor(
            _branching_network(),
            settings=ExecutionSettings(use_incremental_solver=False),
        )
        result = executor.inject(
            models.symbolic_tcp_packet(), "box", "in0", initial_state=state
        )
        assert state.solver_context is None
        assert result.solver_fast_paths == 0
        assert result.solver_calls >= 3

    def test_json_report_includes_solver_instrumentation(self):
        import json

        result = SymbolicExecutor(_branching_network()).inject(
            models.symbolic_tcp_packet(), "box", "in0"
        )
        payload = json.loads(result.to_json())
        assert payload["solver_fast_paths"] == result.solver_fast_paths
        assert payload["solver_cache_hits"] == result.solver_cache_hits
        assert payload["solver_cache_misses"] == result.solver_cache_misses
