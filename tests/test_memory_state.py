"""Tests for packet memory (header / metadata stores) and execution state."""

import pytest

from repro.core.errors import MemorySafetyError
from repro.core.memory import HeaderMemory, MetadataStore
from repro.core.state import ExecutionState
from repro.sefl.fields import IpDst, IpSrc, Tag
from repro.solver.ast import Const, Var


class TestHeaderMemory:
    def setup_method(self):
        self.memory = HeaderMemory()

    def test_allocate_write_read(self):
        self.memory.allocate(96, 32)
        self.memory.write(96, Const(7), 32)
        assert self.memory.read(96, 32) == Const(7)

    def test_read_unallocated_fails(self):
        with pytest.raises(MemorySafetyError):
            self.memory.read(96)

    def test_read_unassigned_fails(self):
        self.memory.allocate(96, 32)
        with pytest.raises(MemorySafetyError):
            self.memory.read(96)

    def test_unaligned_access_fails(self):
        self.memory.allocate(96, 32)
        self.memory.write(96, Const(1), 32)
        with pytest.raises(MemorySafetyError):
            self.memory.read(96, 16)

    def test_allocation_requires_positive_size(self):
        with pytest.raises(MemorySafetyError):
            self.memory.allocate(0, 0)

    def test_stacked_allocations_mask_and_restore(self):
        self.memory.allocate(0, 32)
        self.memory.write(0, Const(1))
        self.memory.allocate(0, 32)
        self.memory.write(0, Const(2))
        assert self.memory.read(0) == Const(2)
        self.memory.deallocate(0, 32)
        assert self.memory.read(0) == Const(1)

    def test_deallocate_size_mismatch_fails(self):
        self.memory.allocate(0, 32)
        with pytest.raises(MemorySafetyError):
            self.memory.deallocate(0, 16)

    def test_deallocate_unallocated_fails(self):
        with pytest.raises(MemorySafetyError):
            self.memory.deallocate(5)

    def test_negative_addresses_supported(self):
        # Encapsulation allocates headers in front of the packet (Figure 6).
        self.memory.allocate(-160, 32)
        self.memory.write(-160, Const(4))
        assert self.memory.read(-160) == Const(4)

    def test_history_tracks_assignments(self):
        self.memory.allocate(0, 8)
        self.memory.write(0, Const(1))
        self.memory.write(0, Const(2))
        assert self.memory.history(0) == [Const(1), Const(2)]

    def test_clone_is_independent(self):
        self.memory.allocate(0, 8)
        self.memory.write(0, Const(1))
        copy = self.memory.clone()
        copy.write(0, Const(2))
        assert self.memory.read(0) == Const(1)
        assert copy.read(0) == Const(2)

    def test_depth(self):
        self.memory.allocate(0, 8)
        self.memory.allocate(0, 8)
        assert self.memory.depth(0) == 2


class TestMetadataStore:
    def setup_method(self):
        self.store = MetadataStore()

    def test_global_allocation(self):
        self.store.allocate("key")
        self.store.write("key", Const(5))
        assert self.store.read("key") == Const(5)

    def test_local_scoping(self):
        local_key = MetadataStore.scoped_key("port", "nat1")
        self.store.allocate(local_key)
        assert self.store.resolve("port", "nat1") == local_key
        assert self.store.resolve("port", "nat2") is None

    def test_local_shadows_global(self):
        self.store.allocate("v")
        local_key = MetadataStore.scoped_key("v", "element")
        self.store.allocate(local_key)
        assert self.store.resolve("v", "element") == local_key
        assert self.store.resolve("v", None) == "v"

    def test_visible_names(self):
        self.store.allocate("g")
        self.store.allocate(MetadataStore.scoped_key("l", "e1"))
        assert self.store.visible_names("e1") == ["g", "l"]
        assert self.store.visible_names("e2") == ["g"]

    def test_deallocate_restores_previous(self):
        self.store.allocate("k")
        self.store.write("k", Const(1))
        self.store.allocate("k")
        self.store.write("k", Const(2))
        self.store.deallocate("k")
        assert self.store.read("k") == Const(1)

    def test_access_unallocated_fails(self):
        with pytest.raises(MemorySafetyError):
            self.store.read("missing")


class TestExecutionState:
    def setup_method(self):
        self.state = ExecutionState()

    def test_tag_resolution(self):
        self.state.create_tag("L3", 112)
        assert self.state.resolve_address(Tag("L3") + 96) == 208
        assert self.state.resolve_address(IpSrc) == 208

    def test_unknown_tag_fails(self):
        with pytest.raises(MemorySafetyError):
            self.state.resolve_address(Tag("L4"))

    def test_destroy_tag(self):
        self.state.create_tag("L3", 0)
        self.state.destroy_tag("L3")
        with pytest.raises(MemorySafetyError):
            self.state.tag_value("L3")

    def test_destroy_unknown_tag_fails(self):
        with pytest.raises(MemorySafetyError):
            self.state.destroy_tag("nope")

    def test_header_field_round_trip(self):
        self.state.create_tag("L3", 0)
        self.state.allocate_header(IpDst, 32)
        self.state.write_header(IpDst, Const(42))
        assert self.state.read_header(IpDst) == Const(42)

    def test_metadata_local_scope_uses_current_element(self):
        self.state.current_scope = "nat1"
        self.state.allocate_metadata("orig", local=True)
        self.state.write_metadata("orig", Const(1))
        self.state.current_scope = "nat2"
        assert not self.state.has_metadata("orig")
        self.state.current_scope = "nat1"
        assert self.state.read_metadata("orig") == Const(1)

    def test_clone_independence(self):
        self.state.create_tag("L3", 0)
        self.state.allocate_header(IpDst, 32)
        self.state.write_header(IpDst, Const(1))
        self.state.add_constraint(Const(0))  # placeholder formula object
        copy = self.state.clone()
        copy.write_header(IpDst, Const(2))
        copy.create_tag("L4", 160)
        copy.add_constraint(Const(1))
        assert self.state.read_header(IpDst) == Const(1)
        assert "L4" not in self.state.tags
        assert len(self.state.constraints) == 1

    def test_clone_gets_fresh_path_id(self):
        copy = self.state.clone()
        assert copy.path_id != self.state.path_id
        assert copy.parent_id == self.state.path_id

    def test_variable_history(self):
        self.state.create_tag("L3", 0)
        self.state.allocate_header(IpDst, 32)
        self.state.write_header(IpDst, Const(1))
        self.state.write_header(IpDst, Const(2))
        assert self.state.variable_history(IpDst) == [Const(1), Const(2)]

    def test_summary_is_json_friendly(self):
        self.state.create_tag("L3", 0)
        self.state.allocate_header(IpDst, 32)
        self.state.write_header(IpDst, Var("v", 32))
        summary = self.state.summary()
        assert summary["tags"] == {"L3": 0}
        assert summary["status"] == "alive"
        assert "128" in summary["headers"]

    def test_fail_sets_status(self):
        self.state.fail("boom")
        assert not self.state.is_alive
        assert self.state.stop_reason == "boom"

    def test_port_snapshots(self):
        self.state.snapshot_port("a:in0")
        self.state.snapshot_port("a:in0")
        assert len(self.state.snapshots_for("a:in0")) == 2
        assert self.state.snapshots_for("b:in0") == []


class TestCopyOnWrite:
    """Clones share structure until one side mutates; both directions of
    mutation must stay isolated."""

    def test_header_parent_mutation_does_not_leak_into_clone(self):
        memory = HeaderMemory()
        memory.allocate(96, 32)
        memory.write(96, Const(1), 32)
        copy = memory.clone()
        memory.write(96, Const(2), 32)
        assert copy.read(96, 32) == Const(1)
        assert memory.read(96, 32) == Const(2)

    def test_header_clone_mutation_does_not_leak_into_parent(self):
        memory = HeaderMemory()
        memory.allocate(96, 32)
        memory.write(96, Const(1), 32)
        copy = memory.clone()
        copy.write(96, Const(3), 32)
        copy.allocate(200, 8)
        assert memory.read(96, 32) == Const(1)
        assert not memory.is_allocated(200)
        assert copy.history(96) == [Const(1), Const(3)]
        assert memory.history(96) == [Const(1)]

    def test_header_deallocate_after_clone_is_isolated(self):
        memory = HeaderMemory()
        memory.allocate(96, 32)
        memory.allocate(96, 16)  # stacked allocation
        copy = memory.clone()
        copy.deallocate(96, 16)
        assert memory.depth(96) == 2
        assert copy.depth(96) == 1

    def test_clone_of_clone_stays_isolated(self):
        memory = HeaderMemory()
        memory.allocate(96, 32)
        memory.write(96, Const(1), 32)
        child = memory.clone()
        grandchild = child.clone()
        child.write(96, Const(2), 32)
        grandchild.write(96, Const(3), 32)
        assert memory.read(96, 32) == Const(1)
        assert child.read(96, 32) == Const(2)
        assert grandchild.read(96, 32) == Const(3)

    def test_metadata_cow_isolation(self):
        store = MetadataStore()
        store.allocate("seen")
        store.write("seen", Const(1))
        copy = store.clone()
        copy.write("seen", Const(2))
        store.allocate("other")
        assert store.read("seen") == Const(1)
        assert copy.read("seen") == Const(2)
        assert not copy.is_allocated("other")
        copy.deallocate("seen")
        assert store.is_allocated("seen")


class TestAppendLog:
    def test_append_iter_len(self):
        from repro.core.state import AppendLog

        log = AppendLog()
        assert not log
        log.append("a")
        log.append("b")
        assert len(log) == 2
        assert list(log) == ["a", "b"]

    def test_clone_shares_prefix_and_isolates_tails(self):
        from repro.core.state import AppendLog

        log = AppendLog()
        log.append("a")
        copy = log.clone()
        log.append("parent-only")
        copy.append("copy-only")
        assert list(log) == ["a", "parent-only"]
        assert list(copy) == ["a", "copy-only"]
        grandchild = copy.clone()
        copy.append("later")
        assert list(grandchild) == ["a", "copy-only"]
        assert len(grandchild) == 2

    def test_state_traces_are_cow(self):
        state = ExecutionState()
        state.record_port("a:in0")
        state.record_instruction("Assign(x)")
        copy = state.clone()
        state.record_port("b:in0")
        copy.record_port("c:in0")
        assert list(state.port_trace) == ["a:in0", "b:in0"]
        assert list(copy.port_trace) == ["a:in0", "c:in0"]
        assert list(copy.instruction_trace) == ["Assign(x)"]

    def test_port_snapshots_are_cow(self):
        state = ExecutionState()
        state.snapshot_port("a:in0")
        copy = state.clone()
        copy.snapshot_port("a:in0")
        assert len(state.snapshots_for("a:in0")) == 1
        assert len(copy.snapshots_for("a:in0")) == 2
