"""Differential-testing backbone: the symbolic engine vs the baselines.

Two independent implementations answering the same question should agree;
where they are *designed* to diverge (HSA's set semantics, Klee's byte-level
path explosion) the fuzzer restricts itself to the common semantic core:

* **engine vs HSA** — random router topologies whose per-router FIBs are
  disjoint (no cross-port overlap), so Header Space Analysis' all-matching-
  rules-fire semantics coincides with longest-prefix match.  Both tools get
  the identical forwarding state; their terminal reachability sets must be
  equal on every fuzzed case.
* **engine vs klee-sim** — random TCP-option policies executed both as the
  byte-level Klee-style analysis of the parsing loop and as the SEFL
  metadata model.  The set of option kinds that can appear on an accepting
  output, and whether the packet can be dropped at all, must agree.

The fuzz loops are seed-pinned (override with ``REPRO_DIFF_SEED``) and
shrink failing cases before reporting: divergences reproduce minimally.
"""

import os
import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

import pytest

from repro import ExecutionSettings, Network, SymbolicExecutor, models
from repro.baselines.hsa import (
    HsaNetwork,
    TransferFunction,
    TransferRule,
    WildcardExpr,
)
from repro.baselines.kleesim import KleeOptionsAnalysis
from repro.models.router import build_router
from repro.models.tcp_options import (
    ALLOW,
    DROP,
    STRIP,
    OptionPolicy,
    build_tcp_options_filter,
    option_var,
    tcp_options_metadata,
)
from repro.sefl import InstructionBlock
from repro.sefl.util import ip_to_number
from repro.solver import ast as sa
from repro.solver.solver import Solver

SEED = int(os.environ.get("REPRO_DIFF_SEED", "20260728"))
HSA_CASES = 140
KLEE_CASES = 70

# Tallied by the fuzz tests, checked by test_case_budget at the end of the
# module: the differential suite must cover at least 200 fuzzed cases.
_CASES_RUN = {"hsa": 0, "klee": 0}


# ===========================================================================
# Part 1 — engine vs HSA on random forwarding topologies
# ===========================================================================


@dataclass(frozen=True)
class HsaFuzzCase:
    """A random forwarding topology, expressible in both tools.

    ``fibs`` maps router name -> ((address, prefix_len, out_port), ...);
    ``links`` wires output ports to (router, "in0").
    """

    seed: int
    fibs: Tuple[Tuple[str, Tuple[Tuple[int, int, str], ...]], ...]
    links: Tuple[Tuple[str, str, str], ...]  # (src router, src port, dst router)
    injection: Tuple[str, str]

    def describe(self) -> str:
        lines = [f"seed={self.seed} injection={self.injection}"]
        for router, fib in self.fibs:
            rules = ", ".join(f"{a:#010x}/{l}->{p}" for a, l, p in fib)
            lines.append(f"  {router}: {rules}")
        for src, port, dst in self.links:
            lines.append(f"  link {src}:{port} -> {dst}:in0")
        return "\n".join(lines)


def generate_hsa_case(seed: int) -> HsaFuzzCase:
    """Random 2-4 router topology with disjoint per-router FIBs.

    Prefixes are drawn from distinct /16s (plus the occasional /24 inside a
    /16 owned by the *same* port, which keeps LPM and all-rules-fire
    equivalent), so no router forwards one address out of two ports.
    """
    rng = random.Random(seed)
    router_count = rng.randint(2, 4)
    routers = [f"r{i}" for i in range(router_count)]
    fibs = []
    links: List[Tuple[str, str, str]] = []
    for index, router in enumerate(routers):
        port_count = rng.randint(1, 3)
        ports = [f"o{p}" for p in range(port_count)]
        zone_pool = rng.sample(range(20), k=rng.randint(port_count, 8))
        fib: List[Tuple[int, int, str]] = []
        for position, zone in enumerate(zone_pool):
            port = (
                ports[position]
                if position < len(ports)  # every port owns at least one prefix
                else rng.choice(ports)
            )
            address = ip_to_number(f"10.{zone}.0.0")
            fib.append((address, 16, port))
            if rng.random() < 0.3:
                # A more-specific /24 on the SAME port: harmless overlap.
                subnet = rng.randrange(256)
                fib.append((address | (subnet << 8), 24, port))
        fibs.append((router, tuple(fib)))
        for port in ports:
            if rng.random() < 0.55:
                destination = rng.choice(routers)
                if destination != router:
                    links.append((router, port, destination))
    return HsaFuzzCase(
        seed=seed,
        fibs=tuple(fibs),
        links=tuple(links),
        injection=(routers[0], "in0"),
    )


def build_sefl_network(case: HsaFuzzCase) -> Network:
    network = Network(f"fuzz-{case.seed}")
    for router, fib in case.fibs:
        network.add_element(build_router(router, list(fib), input_ports=["in0"]))
    for src, port, dst in case.links:
        network.add_link((src, port), (dst, "in0"))
    return network


def build_hsa_network(case: HsaFuzzCase) -> HsaNetwork:
    hsa = HsaNetwork(32)
    for router, fib in case.fibs:
        box = TransferFunction(router, 32)
        for address, plen, port in sorted(fib, key=lambda entry: -entry[1]):
            match = WildcardExpr.from_prefix(32, 0, 32, address, plen)
            box.add_rule("*", TransferRule(match=match, out_ports=(port,)))
        hsa.add_box(box)
    for src, port, dst in case.links:
        hsa.add_link((src, port), (dst, "in0"))
    return hsa


def exit_ports(case: HsaFuzzCase) -> Set[Tuple[str, str]]:
    """Output ports with no outgoing link — where packets leave the model."""
    linked = {(src, port) for src, port, _ in case.links}
    return {
        (router, port)
        for router, fib in case.fibs
        for _, _, port in fib
        if (router, port) not in linked
    }


def engine_reachable_exits(case: HsaFuzzCase) -> Set[Tuple[str, str]]:
    network = build_sefl_network(case)
    executor = SymbolicExecutor(
        network, settings=ExecutionSettings(record_failed_paths=False, max_hops=32)
    )
    result = executor.inject(models.symbolic_ip_packet(), *case.injection)
    return {
        (path.last_port.element, path.last_port.port)
        for path in result.delivered()
    }


def hsa_reachable_exits(case: HsaFuzzCase) -> Set[Tuple[str, str]]:
    hsa = build_hsa_network(case)
    result = hsa.reachability(*case.injection)
    exits = exit_ports(case)
    return {
        key
        for key, space in result.reached.items()
        if key in exits and not space.is_empty()
    }


def hsa_divergence(case: HsaFuzzCase) -> Optional[str]:
    """None when both tools agree, else a human-readable diff."""
    engine = engine_reachable_exits(case)
    hsa = hsa_reachable_exits(case)
    if engine == hsa:
        return None
    return (
        f"engine-only={sorted(engine - hsa)} hsa-only={sorted(hsa - engine)}"
    )


def shrink_hsa_case(case: HsaFuzzCase) -> HsaFuzzCase:
    """Greedily remove links, FIB entries and routers while the divergence
    persists, so failures reproduce minimally."""

    def variants(current: HsaFuzzCase):
        for index in range(len(current.links)):
            yield replace(
                current,
                links=current.links[:index] + current.links[index + 1:],
            )
        for r_index, (router, fib) in enumerate(current.fibs):
            for e_index in range(len(fib)):
                new_fib = fib[:e_index] + fib[e_index + 1:]
                if not new_fib:
                    continue
                fibs = list(current.fibs)
                fibs[r_index] = (router, new_fib)
                yield replace(current, fibs=tuple(fibs))
        for r_index, (router, _) in enumerate(current.fibs):
            if router == current.injection[0]:
                continue
            fibs = current.fibs[:r_index] + current.fibs[r_index + 1:]
            links = tuple(
                (src, port, dst)
                for src, port, dst in current.links
                if src != router and dst != router
            )
            yield replace(current, fibs=fibs, links=links)

    changed = True
    while changed:
        changed = False
        for variant in variants(case):
            if hsa_divergence(variant) is not None:
                case = variant
                changed = True
                break
    return case


@pytest.mark.parametrize("chunk", range(10))
def test_engine_agrees_with_hsa(chunk):
    per_chunk = HSA_CASES // 10
    for offset in range(per_chunk):
        case = generate_hsa_case(SEED + chunk * per_chunk + offset)
        divergence = hsa_divergence(case)
        _CASES_RUN["hsa"] += 1
        if divergence is not None:
            minimal = shrink_hsa_case(case)
            pytest.fail(
                "engine/HSA divergence: "
                f"{divergence}\nminimal case:\n{minimal.describe()}"
            )


def test_hsa_shrinker_reduces_known_divergent_case():
    """Cross-port prefix overlap sits *outside* the common semantic core:
    longest-prefix match sends 10.0/16 out o1 only, while HSA floods the
    whole /8 towards r1, making r1's exit HSA-reachable but engine-dead.
    The shrinker must preserve the divergence while shedding the noise."""
    case = HsaFuzzCase(
        seed=-1,
        fibs=(
            (
                "r0",
                (
                    (ip_to_number("10.0.0.0"), 8, "o0"),
                    (ip_to_number("10.0.0.0"), 16, "o1"),
                    (ip_to_number("11.0.0.0"), 8, "o2"),  # irrelevant noise
                ),
            ),
            ("r1", ((ip_to_number("10.0.0.0"), 16, "o0"),)),
        ),
        links=(("r0", "o0", "r1"),),
        injection=("r0", "in0"),
    )
    divergence = hsa_divergence(case)
    assert divergence is not None and "r1" in divergence
    minimal = shrink_hsa_case(case)
    assert hsa_divergence(minimal) is not None
    assert sum(len(fib) for _, fib in minimal.fibs) <= 3  # noise rule shed
    assert len(minimal.links) == 1


def test_hsa_differential_detects_injected_bug():
    """Sanity-check the harness itself: corrupting one forwarding rule in the
    HSA encoding must register as a divergence (the oracle is not vacuous)."""
    case = generate_hsa_case(SEED)
    assert hsa_divergence(case) is None
    hsa = build_hsa_network(case)
    router, fib = case.fibs[0]
    # Redirect the injection router's first rule to a fresh, unwired port.
    address, plen, _ = fib[0]
    hsa.box(router).add_rule(
        "*",
        TransferRule(
            match=WildcardExpr.from_prefix(32, 0, 32, address, plen),
            out_ports=("bogus",),
        ),
    )
    result = hsa.reachability(*case.injection)
    assert result.reaches(router, "bogus")
    engine = engine_reachable_exits(case)
    assert (router, "bogus") not in engine


# ===========================================================================
# Part 2 — engine vs klee-sim on random TCP-option policies
# ===========================================================================


@dataclass(frozen=True)
class KleeFuzzCase:
    """A random option policy plus the candidate kinds carried by the packet.

    The ASA special cases (MSS injection/clamping, HTTP SACK stripping) are
    disabled: they have no counterpart in the byte-level parsing loop, so
    the comparison targets the shared verdict semantics.
    """

    seed: int
    kinds: Tuple[int, ...]
    verdicts: Tuple[Tuple[int, str], ...]
    length: int

    def policy(self) -> OptionPolicy:
        return OptionPolicy(
            verdicts=dict(self.verdicts),
            default=STRIP,
            mss_clamp=None,
            always_add_mss=False,
            strip_sackok_for_http=False,
        )

    def describe(self) -> str:
        verdicts = ", ".join(f"{k}:{v}" for k, v in self.verdicts)
        return f"seed={self.seed} length={self.length} verdicts=({verdicts})"


def generate_klee_case(seed: int) -> KleeFuzzCase:
    rng = random.Random(seed)
    kinds = tuple(sorted(rng.sample(range(2, 16), k=rng.randint(2, 4))))
    verdicts = tuple((kind, rng.choice((ALLOW, STRIP, DROP))) for kind in kinds)
    return KleeFuzzCase(
        seed=seed, kinds=kinds, verdicts=verdicts, length=rng.randint(2, 4)
    )


def klee_verdicts(case: KleeFuzzCase) -> Tuple[Set[int], bool]:
    """(kinds that can appear on an accepting output, packet droppable?)"""
    analysis = KleeOptionsAnalysis(case.length, policy=case.policy())
    result = analysis.run()
    assert result.finished
    allowed = {
        kind for kind in case.kinds if analysis.option_allowed(result, kind)
    }
    droppable = any(not path.accepts for path in result.paths)
    return allowed, droppable


def symnet_verdicts(case: KleeFuzzCase) -> Tuple[Set[int], bool]:
    """The same two questions answered on the SEFL metadata model."""
    network = Network()
    network.add_element(build_tcp_options_filter("fw", case.policy()))
    program = InstructionBlock(
        models.symbolic_tcp_packet(),
        tcp_options_metadata(case.kinds, symbolic_presence=True),
    )
    executor = SymbolicExecutor(network)
    result = executor.inject(program, "fw", "in0")
    solver = Solver()
    allowed: Set[int] = set()
    for kind in case.kinds:
        for path in result.reaching("fw", "out0"):
            term = path.state.read_variable(option_var(kind))
            query = list(path.constraints) + [sa.Eq(term, sa.Const(1))]
            if solver.check(query).is_sat:
                allowed.add(kind)
                break
    droppable = any(
        "rejected" in path.stop_reason for path in result.failed()
    )
    return allowed, droppable


def klee_divergence(case: KleeFuzzCase) -> Optional[str]:
    klee_allowed, klee_drop = klee_verdicts(case)
    symnet_allowed, symnet_drop = symnet_verdicts(case)
    problems = []
    if klee_allowed != symnet_allowed:
        problems.append(
            f"allowed sets differ: klee={sorted(klee_allowed)} "
            f"symnet={sorted(symnet_allowed)}"
        )
    if klee_drop != symnet_drop:
        problems.append(f"droppable differs: klee={klee_drop} symnet={symnet_drop}")
    return "; ".join(problems) or None


def shrink_klee_case(case: KleeFuzzCase) -> KleeFuzzCase:
    def variants(current: KleeFuzzCase):
        for index in range(len(current.kinds)):
            if len(current.kinds) == 1:
                break
            kinds = current.kinds[:index] + current.kinds[index + 1:]
            verdicts = tuple(
                (k, v) for k, v in current.verdicts if k in kinds
            )
            yield replace(current, kinds=kinds, verdicts=verdicts)
        if current.length > 2:
            yield replace(current, length=current.length - 1)

    changed = True
    while changed:
        changed = False
        for variant in variants(case):
            if klee_divergence(variant) is not None:
                case = variant
                changed = True
                break
    return case


@pytest.mark.parametrize("chunk", range(10))
def test_engine_agrees_with_kleesim(chunk):
    per_chunk = KLEE_CASES // 10
    for offset in range(per_chunk):
        case = generate_klee_case(SEED + 10_000 + chunk * per_chunk + offset)
        divergence = klee_divergence(case)
        _CASES_RUN["klee"] += 1
        if divergence is not None:
            minimal = shrink_klee_case(case)
            pytest.fail(
                f"engine/klee-sim divergence: {divergence}\n"
                f"minimal case: {minimal.describe()}"
            )


def test_klee_differential_detects_injected_bug():
    """Oracle sanity: a policy disagreement between the two sides (ALLOW on
    one, STRIP on the other) must register as a divergence."""
    case = generate_klee_case(SEED)
    assert klee_divergence(case) is None
    kind = case.kinds[0]
    klee_side = replace(
        case, verdicts=tuple(
            (k, ALLOW if k == kind else v) for k, v in case.verdicts
        )
    )
    symnet_side = replace(
        case, verdicts=tuple(
            (k, STRIP if k == kind else v) for k, v in case.verdicts
        )
    )
    klee_allowed, _ = klee_verdicts(klee_side)
    symnet_allowed, _ = symnet_verdicts(symnet_side)
    assert klee_allowed != symnet_allowed


def test_both_verdict_sets_match_the_policy_directly():
    """Both implementations must also agree with the *specification*: the
    allowed set is exactly the policy's ALLOW kinds."""
    for offset in range(5):
        case = generate_klee_case(SEED + 777 + offset)
        expected = {k for k, v in case.verdicts if v == ALLOW}
        klee_allowed, klee_drop = klee_verdicts(case)
        symnet_allowed, symnet_drop = symnet_verdicts(case)
        assert klee_allowed == expected, case.describe()
        assert symnet_allowed == expected, case.describe()
        expected_drop = any(v == DROP for _, v in case.verdicts)
        assert klee_drop == symnet_drop == expected_drop, case.describe()


def test_case_budget():
    """The campaign requirement: at least 200 fuzzed differential cases."""
    assert HSA_CASES + KLEE_CASES >= 200
    if _CASES_RUN["hsa"]:  # the fuzz tests ran (not filtered out by -k)
        assert _CASES_RUN["hsa"] == HSA_CASES
    if _CASES_RUN["klee"]:
        assert _CASES_RUN["klee"] == KLEE_CASES
