"""Tests for SEFL syntax: fields, tags, expressions and instructions."""

import pytest

from repro.sefl import (
    Allocate,
    Assign,
    Constrain,
    Eq,
    EtherDst,
    Fork,
    Forward,
    HeaderField,
    InstructionBlock,
    IpDst,
    IpSrc,
    NoOp,
    OneOf,
    Or,
    Tag,
    TcpDst,
    TcpSrc,
    standard_fields,
)
from repro.sefl.expressions import OneOf as OneOfExpr
from repro.sefl.fields import (
    ETHER_HEADER_BITS,
    IP_HEADER_BITS,
    TCP_HEADER_BITS,
    TagOffset,
    ethernet_fields,
    ipv4_fields,
    tcp_fields,
    udp_fields,
)
from repro.solver.intervals import IntervalSet


class TestTagsAndFields:
    def test_tag_arithmetic(self):
        address = Tag("L3") + 96
        assert isinstance(address, TagOffset)
        assert address.tag == "L3"
        assert address.offset == 96
        assert (address - 32).offset == 64

    def test_ip_src_matches_paper_offset(self):
        # The paper's example writes the IP source address as Tag("L3")+96.
        assert IpSrc.tag == "L3"
        assert IpSrc.offset == 96
        assert IpSrc.width == 32

    def test_ip_dst_offset(self):
        assert IpDst.offset == 128

    def test_header_sizes_match_layouts(self):
        assert ETHER_HEADER_BITS == 112
        assert IP_HEADER_BITS == 160
        assert TCP_HEADER_BITS == 160

    def test_ethernet_fields_cover_header(self):
        assert sum(f.width for f in ethernet_fields()) == ETHER_HEADER_BITS

    def test_ipv4_fields_cover_header(self):
        assert sum(f.width for f in ipv4_fields()) == IP_HEADER_BITS

    def test_tcp_fields_cover_header(self):
        assert sum(f.width for f in tcp_fields()) == TCP_HEADER_BITS

    def test_udp_fields(self):
        assert sum(f.width for f in udp_fields()) == 64

    def test_fields_do_not_overlap_within_layer(self):
        for fields in (ethernet_fields(), ipv4_fields(), tcp_fields(), udp_fields()):
            spans = sorted((f.offset, f.offset + f.width) for f in fields)
            for (start_a, end_a), (start_b, _) in zip(spans, spans[1:]):
                assert end_a <= start_b

    def test_standard_fields_registry(self):
        registry = standard_fields()
        assert registry["IpDst"] is IpDst
        assert registry["TcpSrc"] is TcpSrc
        assert all(isinstance(f, HeaderField) for f in registry.values())

    def test_field_repr_uses_name(self):
        assert repr(IpDst) == "IpDst"
        assert 'Tag("L3")' in repr(Tag("L3") + 8)


class TestExpressions:
    def test_oneof_coerces_points(self):
        cond = OneOfExpr(EtherDst, [1, 2, 3])
        assert isinstance(cond.values, IntervalSet)
        assert cond.values.size() == 3

    def test_oneof_coerces_ranges(self):
        cond = OneOfExpr(TcpDst, [(1000, 2000)])
        assert cond.values.size() == 1001

    def test_oneof_accepts_interval_set(self):
        values = IntervalSet.points([7])
        assert OneOfExpr(TcpDst, values).values is values

    def test_or_and_flattening_not_applied(self):
        cond = Or(Eq(TcpDst, 80), Eq(TcpDst, 443))
        assert len(cond.operands) == 2


class TestInstructions:
    def test_instruction_block_flattens_nested_lists(self):
        block = InstructionBlock(NoOp(), [NoOp(), NoOp()])
        assert len(block) == 3

    def test_instruction_block_iterates(self):
        block = InstructionBlock(NoOp(), Forward("out0"))
        kinds = [type(i).__name__ for i in block]
        assert kinds == ["NoOp", "Forward"]

    def test_fork_collects_ports(self):
        fork = Fork("out0", "out1", "out2")
        assert fork.ports == ("out0", "out1", "out2")

    def test_allocate_defaults(self):
        alloc = Allocate("meta")
        assert alloc.size is None
        assert alloc.visibility == "global"

    def test_constrain_wraps_condition(self):
        instr = Constrain(Eq(TcpDst, 80))
        assert isinstance(instr.condition, Eq)

    def test_instructions_are_hashable_syntax(self):
        # Frozen dataclasses: models can be deduplicated / compared.
        assert Assign(TcpSrc, 5) == Assign(TcpSrc, 5)
        assert Forward("out0") == Forward("out0")
        assert Forward("out0") != Forward("out1")
