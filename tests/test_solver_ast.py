"""Tests for the solver's term / formula syntax and normalisation."""

import pytest

from repro.solver.ast import (
    Add,
    And,
    BoolFalse,
    BoolTrue,
    Const,
    Eq,
    FALSE,
    Ge,
    Gt,
    Le,
    Lt,
    Member,
    Ne,
    Not,
    Or,
    Sub,
    TRUE,
    Var,
    conjoin,
    disjoin,
    formula_size,
    formula_variables,
    linearize,
    negate,
    term_variables,
    to_nnf,
)
from repro.solver.intervals import IntervalSet

x = Var("x", 16)
y = Var("y", 16)
z = Var("z", 32)


class TestLinearize:
    def test_variable(self):
        linear = linearize(x)
        assert linear.coeffs == ((x, 1),)
        assert linear.constant == 0

    def test_constant(self):
        linear = linearize(Const(42))
        assert linear.is_constant()
        assert linear.constant == 42

    def test_addition_with_constant(self):
        linear = linearize(Add(x, Const(5)))
        assert linear.coeffs == ((x, 1),)
        assert linear.constant == 5

    def test_subtraction_of_variables(self):
        linear = linearize(Sub(x, y))
        assert dict(linear.coeffs) == {x: 1, y: -1}
        assert linear.constant == 0

    def test_cancellation(self):
        linear = linearize(Sub(Add(x, Const(3)), x))
        assert linear.is_constant()
        assert linear.constant == 3

    def test_nested_expression(self):
        linear = linearize(Add(Sub(x, y), Add(y, Const(7))))
        assert dict(linear.coeffs) == {x: 1}
        assert linear.constant == 7

    def test_term_variables(self):
        assert term_variables(Add(x, Sub(y, Const(1)))) == frozenset({x, y})

    def test_rejects_non_terms(self):
        with pytest.raises(TypeError):
            linearize("not a term")


class TestNegation:
    @pytest.mark.parametrize(
        "formula, expected_type",
        [
            (Eq(x, Const(1)), Ne),
            (Ne(x, Const(1)), Eq),
            (Lt(x, Const(1)), Ge),
            (Le(x, Const(1)), Gt),
            (Gt(x, Const(1)), Le),
            (Ge(x, Const(1)), Lt),
        ],
    )
    def test_atom_negation(self, formula, expected_type):
        assert isinstance(negate(formula), expected_type)

    def test_double_negation(self):
        formula = Eq(x, Const(1))
        assert negate(Not(formula)) == formula

    def test_de_morgan(self):
        formula = And(Eq(x, Const(1)), Eq(y, Const(2)))
        negated = negate(formula)
        assert isinstance(negated, Or)
        assert all(isinstance(op, Ne) for op in negated.operands)

    def test_member_negation_flips_flag(self):
        member = Member(x, IntervalSet.points([1, 2, 3]))
        negated = negate(member)
        assert isinstance(negated, Member)
        assert negated.negated is True
        assert negate(negated).negated is False

    def test_boolean_constants(self):
        assert isinstance(negate(TRUE), BoolFalse)
        assert isinstance(negate(FALSE), BoolTrue)


class TestNnf:
    def test_not_pushed_through_and(self):
        formula = Not(And(Eq(x, Const(1)), Lt(y, Const(5))))
        nnf = to_nnf(formula)
        assert isinstance(nnf, Or)
        assert isinstance(nnf.operands[0], Ne)
        assert isinstance(nnf.operands[1], Ge)

    def test_nested_structure_preserved(self):
        formula = And(Or(Eq(x, Const(1)), Eq(x, Const(2))), Not(Eq(y, Const(3))))
        nnf = to_nnf(formula)
        assert isinstance(nnf, And)
        assert isinstance(nnf.operands[1], Ne)


class TestCombinators:
    def test_and_flattens(self):
        formula = And(Eq(x, Const(1)), And(Eq(y, Const(2)), Eq(z, Const(3))))
        assert len(formula.operands) == 3

    def test_or_flattens(self):
        formula = Or(Eq(x, Const(1)), Or(Eq(y, Const(2)), Eq(z, Const(3))))
        assert len(formula.operands) == 3

    def test_conjoin_empty_is_true(self):
        assert isinstance(conjoin([]), BoolTrue)

    def test_conjoin_single(self):
        atom = Eq(x, Const(1))
        assert conjoin([atom]) == atom

    def test_conjoin_with_false_collapses(self):
        assert isinstance(conjoin([Eq(x, Const(1)), FALSE]), BoolFalse)

    def test_disjoin_empty_is_false(self):
        assert isinstance(disjoin([]), BoolFalse)

    def test_disjoin_with_true_collapses(self):
        assert isinstance(disjoin([Eq(x, Const(1)), TRUE]), BoolTrue)

    def test_formula_variables(self):
        formula = And(Eq(x, Const(1)), Or(Lt(y, z), Not(Eq(x, y))))
        assert formula_variables(formula) == frozenset({x, y, z})

    def test_formula_size_counts_atoms(self):
        formula = And(Eq(x, Const(1)), Or(Lt(y, z), Eq(x, y)), TRUE)
        assert formula_size(formula) == 3
