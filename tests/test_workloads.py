"""Tests for the synthetic workload generators and the evaluation topologies
(department network §8.5, Split-TCP deployment §8.4, Stanford-like backbone)."""

import pytest

from repro import ExecutionSettings, SymbolicExecutor, models
from repro.core import checks as V
from repro.models.router import longest_prefix_match
from repro.sefl import (
    EtherSrc,
    IpDst,
    IpLength,
    IpProto,
    IpSrc,
    TcpDst,
    ip_to_number,
)
from repro.sefl.expressions import SymbolicValue
from repro.sefl.instructions import Allocate, Assign, InstructionBlock
from repro.workloads import (
    build_department_network,
    build_split_tcp_network,
    build_stanford_like_backbone,
    generate_fib,
    generate_mac_table,
    stanford_hsa_network,
)
from repro.workloads.department import MANAGEMENT_PREFIX
from repro.workloads.fibs import count_overlaps, fib_as_text, fib_subset
from repro.workloads.mac_tables import mac_table_as_text, mac_table_entry_count

SETTINGS = ExecutionSettings(record_failed_paths=False)


class TestGenerators:
    def test_mac_table_size_and_uniqueness(self):
        table = generate_mac_table(500, ports=20, seed=1)
        assert mac_table_entry_count(table) == 500
        all_macs = [mac for macs in table.values() for mac in macs]
        assert len(set(all_macs)) == 500

    def test_mac_table_deterministic(self):
        assert generate_mac_table(100, seed=5) == generate_mac_table(100, seed=5)

    def test_mac_table_skew_concentrates_on_first_ports(self):
        table = generate_mac_table(2000, ports=10, seed=2, skew=1.5)
        assert len(table["out0"]) > len(table["out9"])

    def test_mac_table_text_roundtrip(self):
        from repro.parsers import parse_mac_table

        table = generate_mac_table(50, ports=4, seed=3)
        parsed = parse_mac_table(mac_table_as_text(table))
        assert mac_table_entry_count(parsed) == 50

    def test_fib_size_and_determinism(self):
        fib = generate_fib(1000, ports=8, seed=4)
        assert len(fib) == 1000
        assert fib == generate_fib(1000, ports=8, seed=4)
        assert len({(a, l) for a, l, _ in fib}) == 1000  # unique prefixes

    def test_fib_has_overlaps(self):
        fib = generate_fib(500, seed=6, overlap_fraction=0.5)
        assert count_overlaps(fib) > 0

    def test_fib_prefixes_are_canonical(self):
        for address, plen, _ in generate_fib(200, seed=7):
            host_bits = 32 - plen
            assert address & ((1 << host_bits) - 1) == 0 if host_bits else True

    def test_fib_subset_fraction(self):
        fib = generate_fib(300, seed=8)
        subset = fib_subset(fib, 0.1)
        assert len(subset) == 30
        assert set(subset) <= set(fib)
        assert fib_subset(fib, 1.0) == fib

    def test_fib_text_roundtrip(self):
        from repro.parsers import parse_routing_table

        fib = generate_fib(50, seed=9)
        assert parse_routing_table(fib_as_text(fib)) == fib


class TestDepartmentNetwork:
    @pytest.fixture(scope="class")
    def dept(self):
        return build_department_network(
            access_switches=4, hosts_per_switch=3, mac_entries=400, extra_routes=40
        )

    def test_inventory(self, dept):
        assert dept.device_count() >= 15
        assert dept.port_count() > 40
        assert dept.route_entries == 40

    def test_office_reaches_internet_via_asa(self, dept):
        executor = SymbolicExecutor(dept.network, settings=SETTINGS)
        result = executor.inject(models.symbolic_tcp_packet(), *dept.office_entry)
        internet_paths = result.reaching(*dept.internet_exit)
        assert internet_paths
        assert all(p.visited("asa-fw") for p in internet_paths)

    def test_outbound_traffic_is_natted_and_options_filtered(self, dept):
        from repro.models.tcp_options import OPTION_MPTCP, option_var
        from repro.models import tcp_options_metadata

        program = InstructionBlock(
            models.symbolic_tcp_packet(),
            tcp_options_metadata([2, 30]),
        )
        executor = SymbolicExecutor(dept.network, settings=SETTINGS)
        result = executor.inject(program, *dept.office_entry)
        path = result.reaching(*dept.internet_exit)[0]
        assert not V.field_invariant(path, IpSrc)  # dynamic NAT applied
        assert V.field_concrete_value(path, option_var(OPTION_MPTCP)) == 0

    def test_management_vlan_reachable_from_internet(self, dept):
        """The security hole of §8.5: private management addresses are
        reachable from outside via the leaked route on M1."""
        executor = SymbolicExecutor(dept.network, settings=SETTINGS)
        result = executor.inject(models.symbolic_tcp_packet(), *dept.internet_entry)
        leaked = result.reaching(*dept.management_exit)
        assert leaked
        values = V.admitted_values(leaked[0], IpDst, samples=1)
        prefix = ip_to_number(MANAGEMENT_PREFIX.split("/")[0])
        assert values and all(prefix <= v < prefix + 256 for v in values)

    def test_management_vlan_reachable_from_cluster(self, dept):
        executor = SymbolicExecutor(dept.network, settings=SETTINGS)
        result = executor.inject(models.symbolic_tcp_packet(), *dept.cluster_entry)
        assert result.reaching(*dept.management_exit)

    def test_unsolicited_inbound_does_not_reach_office_hosts(self, dept):
        executor = SymbolicExecutor(dept.network, settings=SETTINGS)
        result = executor.inject(models.symbolic_tcp_packet(), *dept.internet_entry)
        office_switch = dept.office_entry[0]
        assert not [p for p in result.delivered() if p.reached(office_switch)]


class TestSplitTcpDeployment:
    def test_asymmetric_routing_check_passes(self):
        """§8.4: both directions cross the proxy."""
        workload = build_split_tcp_network(mirror_at_exit=True)
        executor = SymbolicExecutor(workload.network, settings=SETTINGS)
        result = executor.inject(models.symbolic_tcp_packet(), *workload.client_entry)
        returned = result.reaching(*workload.client_return)
        assert returned
        for path in returned:
            assert path.visited("P", "in0")
            assert path.visited("P", "in1")
            assert path.visited("R2")

    def test_mtu_constraint_without_tunnel(self):
        workload = build_split_tcp_network()
        executor = SymbolicExecutor(workload.network, settings=SETTINGS)
        result = executor.inject(models.symbolic_tcp_packet(), *workload.client_entry)
        path = result.reaching("R2", "out0")[0]
        from repro.solver.ast import Const, Eq as SEq
        from repro.solver.solver import Solver

        length_term = path.state.read_variable(IpLength)
        solver = Solver()
        assert solver.check(list(path.constraints) + [SEq(length_term, Const(1536))]).is_sat
        assert solver.check(list(path.constraints) + [SEq(length_term, Const(1537))]).is_unsat

    def test_mtu_shrinks_with_tunnel(self):
        """With IP-in-IP on the R1→P leg the usable client MTU drops by one
        IP header — the black-holing bug."""
        workload = build_split_tcp_network(with_tunnel=True)
        executor = SymbolicExecutor(workload.network, settings=SETTINGS)
        result = executor.inject(models.symbolic_tcp_packet(), *workload.client_entry)
        path = result.reaching("R2", "out0")[0]
        from repro.solver.ast import Const, Eq as SEq
        from repro.solver.solver import Solver

        length_term = path.state.read_variable(IpLength)
        solver = Solver()
        assert solver.check(list(path.constraints) + [SEq(length_term, Const(1516))]).is_sat
        assert solver.check(list(path.constraints) + [SEq(length_term, Const(1530))]).is_unsat

    def test_missing_vlan_tag_blackholes_traffic(self):
        good = build_split_tcp_network(use_vlan=True, vlan_bug=False)
        executor = SymbolicExecutor(good.network, settings=SETTINGS)
        packet = models.symbolic_tcp_packet()
        # Tag the packet like the client's access network would.
        from repro.click.elements import build_vlan_encap

        tagger = build_vlan_encap("tagger", vlan_id=100)
        good.network.add_element(tagger)
        good.network.add_link(("tagger", "out0"), good.client_entry)
        result = executor.inject(packet, "tagger", "in0")
        assert result.reaching("R2", "out0")

        bad = build_split_tcp_network(use_vlan=True, vlan_bug=True)
        tagger = build_vlan_encap("tagger", vlan_id=100)
        bad.network.add_element(tagger)
        bad.network.add_link(("tagger", "out0"), bad.client_entry)
        result = SymbolicExecutor(bad.network, settings=SETTINGS).inject(packet, "tagger", "in0")
        assert not result.reaching("R2", "out0")

    def test_dhcp_lease_check_drops_proxied_traffic(self):
        """§8.4 "Security Appliance": the proxy rewrites the source MAC, so
        the exit router's lease check kills everything."""
        from repro.sefl import mac_to_number
        from repro.workloads.enterprise import CLIENT_MAC

        def client_packet():
            # The client's MAC is concrete (its DHCP lease), so a frame whose
            # source MAC was rewritten by the proxy can never match it.
            return InstructionBlock(
                models.symbolic_tcp_packet({EtherSrc: mac_to_number(CLIENT_MAC)}),
                Allocate("origIP", 32),
                Assign("origIP", IpSrc),
                Allocate("origEther", 48),
                Assign("origEther", EtherSrc),
            )

        broken = build_split_tcp_network(dhcp_check=True, proxy_rewrites_src_mac=True)
        result = SymbolicExecutor(broken.network, settings=SETTINGS).inject(
            client_packet(), *broken.client_entry
        )
        assert not result.reaching("R2", "out0")

        honest = build_split_tcp_network(dhcp_check=True, proxy_rewrites_src_mac=False)
        result = SymbolicExecutor(honest.network, settings=SETTINGS).inject(
            client_packet(), *honest.client_entry
        )
        assert result.reaching("R2", "out0")


class TestStanfordBackbone:
    @pytest.fixture(scope="class")
    def workload(self):
        return build_stanford_like_backbone(zones=4, internal_prefixes_per_zone=30)

    def test_inventory(self, workload):
        assert len(workload.zone_routers) == 4
        assert len(workload.core_routers) == 2
        assert workload.total_rules() > 4 * 30

    def test_zone_to_zone_reachability(self, workload):
        executor = SymbolicExecutor(workload.network, settings=SETTINGS)
        result = executor.inject(models.symbolic_ip_packet(), "zr0", "in-hosts")
        assert result.is_visited("core0")
        assert result.is_visited("core1")
        for zone in workload.zone_routers[1:]:
            assert result.is_reachable(zone, "hosts")

    def test_concrete_destination_follows_both_fibs(self, workload):
        destination = ip_to_number("10.2.7.1")
        executor = SymbolicExecutor(workload.network, settings=SETTINGS)
        result = executor.inject(
            models.symbolic_ip_packet({IpDst: destination}), "zr0", "in-hosts"
        )
        assert result.is_reachable("zr2", "hosts")

    def test_hsa_encoding_matches_sefl_reachability(self, workload):
        hsa = stanford_hsa_network(workload)
        assert hsa.total_rules() == workload.total_rules()
        result = hsa.reachability("zr0", "in-hosts")
        assert result.reaches("core0", "in-z0")
        assert result.reaches("zr1", "hosts")


class TestExportByteIdentity:
    """Exported directories are the substrate scenario campaigns edit and
    fingerprint, so repeated exports of the same workload/options must be
    byte-identical — within a process and across processes with different
    hash seeds."""

    OPTIONS = dict(
        zones=2, internal_prefixes_per_zone=4, service_acl_rules=2,
        seed=11, edge_asa=True,
    )

    @staticmethod
    def _digests(directory):
        import hashlib
        import os

        out = {}
        for name in sorted(os.listdir(directory)):
            with open(os.path.join(directory, name), "rb") as handle:
                out[name] = hashlib.sha256(handle.read()).hexdigest()
        return out

    def test_repeated_stanford_exports_are_byte_identical(self, tmp_path):
        from repro.workloads.export import export_stanford_directory

        digests = []
        for name in ("one", "two"):
            directory = tmp_path / name
            directory.mkdir()
            export_stanford_directory(str(directory), **self.OPTIONS)
            digests.append(self._digests(str(directory)))
        assert digests[0] == digests[1]

    def test_repeated_department_exports_are_byte_identical(self, tmp_path):
        from repro.workloads.export import export_department_style_directory

        digests = []
        for name in ("one", "two"):
            directory = tmp_path / name
            directory.mkdir()
            export_department_style_directory(
                str(directory), switches=2, macs_per_port=2
            )
            digests.append(self._digests(str(directory)))
        assert digests[0] == digests[1]

    def test_exports_stable_across_hash_seeds(self, tmp_path):
        """Iteration order over sets/dicts must never leak into the bytes:
        export under two different PYTHONHASHSEED values and compare."""
        import json
        import os
        import subprocess
        import sys

        script = (
            "import hashlib, json, os, sys\n"
            "from repro.workloads.export import export_workload_directory\n"
            "directory = sys.argv[1]\n"
            "export_workload_directory('stanford', directory, zones=2,\n"
            "    internal_prefixes_per_zone=4, service_acl_rules=2,\n"
            "    seed=11, edge_asa=True)\n"
            "out = {n: hashlib.sha256(open(os.path.join(directory, n), 'rb')\n"
            "    .read()).hexdigest() for n in sorted(os.listdir(directory))}\n"
            "print(json.dumps(out, sort_keys=True))\n"
        )
        digests = []
        for hash_seed in ("1", "4242"):
            directory = tmp_path / f"seed{hash_seed}"
            directory.mkdir()
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (env.get("PYTHONPATH"), "src") if p
            )
            proc = subprocess.run(
                [sys.executable, "-c", script, str(directory)],
                capture_output=True, text=True, env=env, cwd=os.getcwd(),
            )
            assert proc.returncode == 0, proc.stderr
            digests.append(json.loads(proc.stdout))
        assert digests[0] == digests[1]
        assert "edge.conf" in digests[0]

    def test_unknown_workload_name_rejected(self, tmp_path):
        from repro.workloads.export import export_workload_directory

        with pytest.raises(ValueError, match="unknown exportable workload"):
            export_workload_directory("no-such", str(tmp_path))
