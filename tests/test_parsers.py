"""Tests for the configuration parsers (§7.1)."""

import os

import pytest

from repro import ExecutionSettings, Network, SymbolicExecutor, models
from repro.models.switch import SwitchModelStyle
from repro.parsers import (
    load_network_directory,
    parse_asa_config,
    parse_mac_table,
    parse_routing_table,
    parse_topology_file,
    router_from_routing_table,
    switch_from_mac_table,
)
from repro.parsers.asa_config import format_asa_config
from repro.parsers.mac_table import format_mac_table
from repro.parsers.routing_table import format_routing_table
from repro.parsers.topology_file import TopologyParseError
from repro.sefl import EtherDst, IpDst, ip_to_number, mac_to_number

SETTINGS = ExecutionSettings(record_failed_paths=False)

MAC_SNAPSHOT = """
Vlan    Mac Address       Type        Ports
----    -----------       ----        -----
 302    0011.2233.4455    DYNAMIC     Gi0/1
 302    0011.2233.4456    DYNAMIC     Gi0/1
 304    0011.2233.5555    STATIC      Gi0/2
Total Mac Addresses for this criterion: 3
"""

FIB_SNAPSHOT = """
# core router snapshot
10.0.0.0/8        if0
192.168.0.0/24    if1
192.168.0.1/32    if0
0.0.0.0/0         if2
"""

ASA_SNAPSHOT = """
hostname asa5510
ip address 141.85.37.1
static (inside,outside) 141.85.37.10 10.41.0.10
global (outside) 1 interface
nat (inside) 1 0.0.0.0 0.0.0.0
access-list outside_in extended permit tcp any host 141.85.37.10 eq 443
access-list outside_in extended deny ip any any
sysopt connection tcpmss 1380
! a comment
"""


class TestMacTableParser:
    def test_parse_groups_by_port(self):
        table = parse_mac_table(MAC_SNAPSHOT)
        assert set(table) == {"Gi0/1", "Gi0/2"}
        assert len(table["Gi0/1"]) == 2
        assert table["Gi0/2"] == [mac_to_number("0011.2233.5555")]

    def test_vlan_filter(self):
        table = parse_mac_table(MAC_SNAPSHOT, vlan=304)
        assert set(table) == {"Gi0/2"}

    def test_header_lines_ignored(self):
        assert parse_mac_table("Vlan Mac Address Type Ports\n----") == {}

    def test_switch_from_mac_table_executes(self):
        element = switch_from_mac_table("sw", MAC_SNAPSHOT, style=SwitchModelStyle.EGRESS)
        network = Network()
        network.add_element(element)
        packet = models.symbolic_tcp_packet({EtherDst: mac_to_number("0011.2233.5555")})
        result = SymbolicExecutor(network, settings=SETTINGS).inject(packet, "sw", "in0")
        assert [p.last_port.port for p in result.delivered()] == ["Gi0/2"]

    def test_roundtrip_through_formatter(self):
        table = parse_mac_table(MAC_SNAPSHOT)
        assert parse_mac_table(format_mac_table(table)) == table


class TestRoutingTableParser:
    def test_parse_entries(self):
        fib = parse_routing_table(FIB_SNAPSHOT)
        assert len(fib) == 4
        assert (ip_to_number("10.0.0.0"), 8, "if0") in fib
        assert (0, 0, "if2") in fib

    def test_comments_and_blank_lines_ignored(self):
        assert parse_routing_table("# nothing\n\n") == []

    def test_router_from_routing_table_respects_lpm(self):
        element = router_from_routing_table("r", FIB_SNAPSHOT)
        network = Network()
        network.add_element(element)
        packet = models.symbolic_ip_packet({IpDst: ip_to_number("192.168.0.1")})
        result = SymbolicExecutor(network, settings=SETTINGS).inject(packet, "r", "in0")
        assert [p.last_port.port for p in result.delivered()] == ["if0"]

    def test_roundtrip_through_formatter(self):
        fib = parse_routing_table(FIB_SNAPSHOT)
        assert parse_routing_table(format_routing_table(fib)) == fib


class TestAsaConfigParser:
    def test_parse_core_statements(self):
        config = parse_asa_config(ASA_SNAPSHOT)
        assert config.public_address == "141.85.37.1"
        assert config.static_nat == [("141.85.37.10", "10.41.0.10")]
        assert config.enable_dynamic_nat
        assert config.options_policy.mss_clamp == 1380

    def test_access_list_rules(self):
        config = parse_asa_config(ASA_SNAPSHOT)
        assert len(config.inbound_rules) == 2
        allow = config.inbound_rules[0]
        assert allow.action == "allow"
        assert allow.proto == 6
        assert allow.dst == "141.85.37.10/32"
        assert allow.dst_port == 443
        assert config.inbound_rules[1].action == "deny"

    def test_netmask_clause(self):
        config = parse_asa_config(
            "access-list in extended permit ip 10.0.0.0 255.0.0.0 any"
        )
        assert config.inbound_rules[0].src == "10.0.0.0/8"

    def test_roundtrip_through_formatter(self):
        config = parse_asa_config(ASA_SNAPSHOT)
        reparsed = parse_asa_config(format_asa_config(config))
        assert reparsed.public_address == config.public_address
        assert reparsed.static_nat == config.static_nat
        assert len(reparsed.inbound_rules) == len(config.inbound_rules)


class TestTopologyFile:
    TOPOLOGY = """
    # two switches around a router
    device sw1 switch sw1.mac
    device r1  router r1.fib
    link sw1:Gi0/1 -> r1:in0
    link r1:if0 -> sw1:in0
    """

    SNAPSHOTS = {
        "sw1.mac": MAC_SNAPSHOT,
        "r1.fib": FIB_SNAPSHOT,
    }

    def test_parse_topology(self):
        network = parse_topology_file(self.TOPOLOGY, self.SNAPSHOTS)
        assert network.has_element("sw1")
        assert network.has_element("r1")
        assert len(network.links) == 2

    def test_missing_snapshot_rejected(self):
        with pytest.raises(TopologyParseError):
            parse_topology_file("device x switch missing.mac", {})

    def test_unknown_kind_rejected(self):
        with pytest.raises(TopologyParseError):
            parse_topology_file("device x toaster x.cfg", {"x.cfg": ""})

    def test_malformed_line_rejected(self):
        with pytest.raises(TopologyParseError):
            parse_topology_file("junk", {})

    def test_asa_and_click_devices(self):
        topology = """
        device fw asa fw.conf
        device pipe click pipe.click
        """
        snapshots = {
            "fw.conf": ASA_SNAPSHOT,
            "pipe.click": "q :: Queue; d :: DecIPTTL; q -> d;",
        }
        network = parse_topology_file(topology, snapshots)
        assert network.has_element("q")
        assert network.has_element("d")
        assert any(name.startswith("fw-") for name in (e.name for e in network))

    def test_load_network_directory(self, tmp_path):
        (tmp_path / "topology.txt").write_text(self.TOPOLOGY)
        (tmp_path / "sw1.mac").write_text(MAC_SNAPSHOT)
        (tmp_path / "r1.fib").write_text(FIB_SNAPSHOT)
        network = load_network_directory(str(tmp_path))
        assert network.has_element("sw1")
        assert network.has_element("r1")

    def test_end_to_end_reachability_on_parsed_network(self):
        network = parse_topology_file(self.TOPOLOGY, self.SNAPSHOTS)
        packet = models.symbolic_tcp_packet(
            {EtherDst: mac_to_number("0011.2233.4455"), IpDst: ip_to_number("10.1.2.3")}
        )
        result = SymbolicExecutor(network, settings=SETTINGS).inject(packet, "sw1", "in0")
        # Gi0/1 feeds the router, which forwards 10/8 out of if0 back to sw1,
        # whose table then decides again (and delivers on a host port or drops).
        assert result.paths
