"""Campaign-level regression tests for the cross-job verdict cache.

The claims under test, per the verdict-cache design (see README):

* query fingerprints are **bit-identical** whatever the cache does — cold or
  warm, shared or isolated, sequential or process pool;
* full-solve counts are monotonically non-increasing as caching tiers are
  added (isolated -> shared -> warm-started);
* the merge path works end to end: jobs report their fresh verdict entries,
  the aggregation merges them into ``CampaignResult.verdict_cache``, and a
  later campaign warm-started from that map stops re-solving.

The in-memory ``warm_cache=`` path is deprecated in favour of the
persistent store (see ``tests/test_store_campaign.py``) but must keep
working as a shim — these tests pin its behaviour, acknowledging the
DeprecationWarning explicitly.
"""

from typing import Optional

import pytest

from repro.core.campaign import (
    NetworkSource,
    VerificationCampaign,
    clear_runtime_cache,
)

DEPARTMENT_OPTIONS = dict(
    access_switches=3, hosts_per_switch=2, mac_entries=120, extra_routes=10
)
STANFORD_OPTIONS = dict(
    zones=3, internal_prefixes_per_zone=12, service_acl_rules=3
)


def _run(
    source: NetworkSource,
    *,
    shared: bool = True,
    workers: int = 1,
    warm=None,
):
    # Each run starts from a cold per-process runtime so the measured effect
    # comes from the verdict-cache plumbing, not leftover worker state.
    clear_runtime_cache()
    if warm is not None:
        # The in-memory warm-start path is a deprecated shim over the store.
        with pytest.warns(DeprecationWarning, match="warm_cache"):
            campaign = VerificationCampaign(
                source, shared_cache=shared, warm_cache=warm
            )
    else:
        campaign = VerificationCampaign(source, shared_cache=shared)
    return campaign.run(workers=workers)


def _fingerprints(result):
    return (
        result.reachability.fingerprint(),
        result.loop_report.fingerprint(),
        result.invariant_report.fingerprint(),
    )


@pytest.mark.parametrize(
    "workload, options",
    [("department", DEPARTMENT_OPTIONS), ("stanford", STANFORD_OPTIONS)],
)
def test_cold_vs_warm_and_workers(workload, options):
    source = NetworkSource.from_workload(workload, **options)

    isolated = _run(source, shared=False)
    cold = _run(source, shared=True)
    warm = _run(source, shared=True, warm=cold.verdict_cache)
    pooled = _run(source, shared=True, workers=2)
    pooled_warm = _run(source, shared=True, workers=2, warm=cold.verdict_cache)

    runs = [isolated, cold, warm, pooled, pooled_warm]
    assert not any(r.job_errors for r in runs)

    # Bit-identical query results in every configuration.
    expected = _fingerprints(isolated)
    for result in runs[1:]:
        assert _fingerprints(result) == expected

    # Full-solve counts never increase as caching tiers are added.
    assert cold.stats.solver_cache_misses <= isolated.stats.solver_cache_misses
    assert warm.stats.solver_cache_misses <= cold.stats.solver_cache_misses
    assert (
        pooled_warm.stats.solver_cache_misses
        <= pooled.stats.solver_cache_misses
    )

    # The merge path: cold runs report their entries, the warm run imported
    # them (solver_cache_merged counts per-job merges) and needed no solves.
    assert cold.stats.verdict_cache_entries > 0
    assert warm.stats.solver_cache_merged > 0
    assert warm.stats.solver_cache_misses == 0
    assert warm.verdict_cache == cold.verdict_cache


def test_shared_cache_cuts_cross_job_solves_on_symmetric_zones():
    """The headline effect: symmetric stanford zones re-solve each other's
    alpha-equivalent ACL constraint sets unless the cache is shared."""
    source = NetworkSource.from_workload("stanford", **STANFORD_OPTIONS)
    isolated = _run(source, shared=False)
    shared = _run(source, shared=True)
    assert isolated.stats.solver_cache_misses > 0
    assert shared.stats.solver_cache_misses < isolated.stats.solver_cache_misses
    assert shared.stats.solver_cache_hits > 0
    assert (
        shared.reachability.fingerprint() == isolated.reachability.fingerprint()
    )


def test_job_reports_carry_cache_statistics():
    source = NetworkSource.from_workload("stanford", **STANFORD_OPTIONS)
    result = _run(source, shared=True, warm=None)
    payload = result.to_dict()
    assert payload["verdict_cache"]["entries"] == len(result.verdict_cache)
    stats = payload["stats"]
    for key in (
        "solver_shared_cache_hits",
        "solver_cache_merged",
        "cache_hit_rate",
        "verdict_cache_entries",
    ):
        assert key in stats
    for job in payload["jobs"]:
        assert "verdict_cache_entries" in job["stats"]
        assert "solver_shared_cache_hits" in job["stats"]
