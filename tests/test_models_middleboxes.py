"""Tests for the middlebox models: NAT, firewalls, tunnels, encryption,
IP mirror and the composite ASA pipeline."""

import pytest

from repro import ExecutionSettings, Network, SymbolicExecutor, models
from repro.core import checks as V
from repro.models.asa import AsaConfig, build_asa
from repro.models.firewall import AclRule, build_acl_firewall, build_stateful_firewall
from repro.models.mirror import build_ip_mirror
from repro.models.nat import build_nat
from repro.models.tunnel import build_decapsulator, build_encapsulator, build_mtu_filter
from repro.models.encryption import build_decryptor, build_encryptor
from repro.sefl import (
    EtherType,
    IpDst,
    IpLength,
    IpProto,
    IpSrc,
    TcpDst,
    TcpPayload,
    TcpSrc,
    ip_to_number,
)

SETTINGS = ExecutionSettings(record_failed_paths=True)


def run(network, packet, element, port):
    return SymbolicExecutor(network, settings=SETTINGS).inject(packet, element, port)


class TestNat:
    def build(self):
        network = Network()
        network.add_element(build_nat("nat", public_address="141.85.37.1"))
        return network

    def test_outgoing_rewrites_source(self):
        network = self.build()
        result = run(network, models.symbolic_tcp_packet(), "nat", "in0")
        path = result.reaching("nat", "out0")[0]
        assert V.field_concrete_value(path, IpSrc) == ip_to_number("141.85.37.1")
        assert not V.field_invariant(path, TcpSrc)

    def test_mapped_port_is_constrained_to_range(self):
        network = self.build()
        result = run(network, models.symbolic_tcp_packet(), "nat", "in0")
        path = result.reaching("nat", "out0")[0]
        values = V.admitted_values(path, TcpSrc, samples=2)
        assert all(1024 <= v <= 65535 for v in values)

    def test_destination_fields_invariant(self):
        network = self.build()
        result = run(network, models.symbolic_tcp_packet(), "nat", "in0")
        path = result.reaching("nat", "out0")[0]
        assert V.field_invariant(path, IpDst)
        assert V.field_invariant(path, TcpDst)

    def test_non_tcp_traffic_rejected(self):
        network = self.build()
        result = run(network, models.symbolic_udp_packet(), "nat", "in0")
        assert not result.reaching("nat", "out0")

    def test_return_traffic_without_state_is_dropped(self):
        network = self.build()
        result = run(network, models.symbolic_tcp_packet(), "nat", "in1")
        assert not result.reaching("nat", "out1")

    def test_full_round_trip_restores_original(self):
        """NAT out, mirror at the far end, NAT back in: the client sees the
        original addresses again (the cascaded-NAT property of §7)."""
        network = Network()
        network.add_element(build_nat("nat"))
        network.add_element(build_ip_mirror("mirror"))
        network.add_link(("nat", "out0"), ("mirror", "in0"))
        network.add_link(("mirror", "out0"), ("nat", "in1"))
        result = run(network, models.symbolic_tcp_packet(), "nat", "in0")
        paths = result.reaching("nat", "out1")
        assert len(paths) == 1
        path = paths[0]
        # After mirroring, the original source became the destination; the NAT
        # restores it, so destination address/port equal the original source.
        injected_src = path.state.variable_history(IpSrc)[0]
        assert V.header_visible(path, IpDst, injected_src)


class TestStatefulFirewall:
    def test_forward_and_return_traffic(self):
        network = Network()
        network.add_element(build_stateful_firewall("fw"))
        network.add_element(build_ip_mirror("mirror"))
        network.add_link(("fw", "out0"), ("mirror", "in0"))
        network.add_link(("mirror", "out0"), ("fw", "in1"))
        result = run(network, models.symbolic_tcp_packet(), "fw", "in0")
        assert result.reaching("fw", "out1")

    def test_unsolicited_inbound_dropped(self):
        network = Network()
        network.add_element(build_stateful_firewall("fw"))
        result = run(network, models.symbolic_tcp_packet(), "fw", "in1")
        assert not result.reaching("fw", "out1")


class TestAclFirewall:
    RULES = [
        AclRule(action="deny", dst_port=23),
        AclRule(action="allow", proto=6, dst="10.0.0.0/8", dst_port=80),
        AclRule(action="allow", src="192.168.0.0/16"),
    ]

    def run_packet(self, values, default="deny"):
        network = Network()
        network.add_element(build_acl_firewall("fw", self.RULES, default_action=default))
        return run(network, models.symbolic_tcp_packet(values), "fw", "in0")

    def test_allowed_by_rule(self):
        result = self.run_packet(
            {IpDst: ip_to_number("10.1.2.3"), TcpDst: 80, IpProto: 6}
        )
        assert result.reaching("fw", "out0")

    def test_denied_by_first_matching_rule(self):
        result = self.run_packet(
            {IpSrc: ip_to_number("192.168.1.1"), TcpDst: 23}
        )
        assert not result.reaching("fw", "out0")

    def test_default_deny(self):
        result = self.run_packet({IpDst: ip_to_number("8.8.8.8"), TcpDst: 443,
                                  IpSrc: ip_to_number("1.1.1.1")})
        assert not result.reaching("fw", "out0")

    def test_default_allow(self):
        result = self.run_packet(
            {IpDst: ip_to_number("8.8.8.8"), TcpDst: 443, IpSrc: ip_to_number("1.1.1.1")},
            default="allow",
        )
        assert result.reaching("fw", "out0")

    def test_symbolic_packet_explores_both_verdicts(self):
        network = Network()
        network.add_element(build_acl_firewall("fw", self.RULES))
        result = run(network, models.symbolic_tcp_packet(), "fw", "in0")
        assert result.reaching("fw", "out0")
        assert result.failed()


class TestTunnel:
    def build_tunnel(self, mtu=None):
        network = Network()
        network.add_element(build_encapsulator("E1", "10.10.0.1", "10.10.0.2"))
        network.add_element(build_decapsulator("D1"))
        if mtu is not None:
            network.add_element(build_mtu_filter("mid", mtu))
            network.add_link(("E1", "out0"), ("mid", "in0"))
            network.add_link(("mid", "out0"), ("D1", "in0"))
        else:
            network.add_link(("E1", "out0"), ("D1", "in0"))
        return network

    def test_contents_invariant_across_tunnel(self):
        """The §2 motivating example: header contents are invariant across an
        IP-in-IP tunnel, which symbolic execution proves directly."""
        network = self.build_tunnel()
        result = run(network, models.symbolic_tcp_packet(), "E1", "in0")
        path = result.reaching("D1", "out0")[0]
        for field in (IpSrc, IpDst, TcpDst, IpLength):
            assert V.field_invariant(path, field)

    def test_outer_header_visible_inside_tunnel(self):
        network = Network()
        network.add_element(build_encapsulator("E1", "10.10.0.1", "10.10.0.2"))
        result = run(network, models.symbolic_tcp_packet(), "E1", "in0")
        path = result.reaching("E1", "out0")[0]
        assert V.field_concrete_value(path, IpDst) == ip_to_number("10.10.0.2")
        assert V.field_concrete_value(path, IpProto) == 4

    def test_decapsulation_requires_ipip_protocol(self):
        network = Network()
        network.add_element(build_decapsulator("D1"))
        result = run(network, models.symbolic_tcp_packet({IpProto: 6}), "D1", "in0")
        assert not result.reaching("D1", "out0")

    def test_nested_tunnels_reuse_the_same_model(self):
        """Two levels of encapsulation use the identical E/D models (the
        model-independence property NOD lacks, §2)."""
        network = Network()
        network.add_element(build_encapsulator("E1", "1.1.1.1", "2.2.2.2"))
        network.add_element(build_encapsulator("E2", "3.3.3.3", "4.4.4.4"))
        network.add_element(build_decapsulator("D2"))
        network.add_element(build_decapsulator("D1"))
        network.add_link(("E1", "out0"), ("E2", "in0"))
        network.add_link(("E2", "out0"), ("D2", "in0"))
        network.add_link(("D2", "out0"), ("D1", "in0"))
        result = run(network, models.symbolic_tcp_packet(), "E1", "in0")
        path = result.reaching("D1", "out0")[0]
        assert V.field_invariant(path, IpDst)
        assert V.field_invariant(path, TcpDst)

    def test_mtu_interaction_with_tunnel(self):
        """§8.4: with a 1536-byte MTU filter after encapsulation the inner
        packet must be at least one IP header smaller."""
        network = self.build_tunnel(mtu=1536)
        result = run(network, models.symbolic_tcp_packet(), "E1", "in0")
        path = result.reaching("D1", "out0")[0]
        admitted = V.admitted_values(path, IpLength, samples=1)
        assert admitted and all(v + 20 <= 1536 for v in admitted)
        # 1530 bytes would exceed the tunnel MTU once encapsulated.
        from repro.solver.ast import Const, Eq as SEq
        blocked = path.state.read_variable(IpLength)
        from repro.solver.solver import Solver
        solver = Solver()
        assert solver.check(list(path.constraints) + [SEq(blocked, Const(1530))]).is_unsat
        assert solver.check(list(path.constraints) + [SEq(blocked, Const(1516))]).is_sat


class TestEncryption:
    def build(self, encrypt_key=7, decrypt_key=7):
        network = Network()
        network.add_element(build_encryptor("enc", key=encrypt_key))
        network.add_element(build_decryptor("dec", key=decrypt_key))
        network.add_link(("enc", "out0"), ("dec", "in0"))
        return network

    def test_payload_unreadable_after_encryption(self):
        network = Network()
        network.add_element(build_encryptor("enc", key=7))
        result = run(network, models.symbolic_tcp_packet(), "enc", "in0")
        path = result.reaching("enc", "out0")[0]
        # The original payload value sits at the bottom of the allocation
        # stack, masked by the ciphertext allocation on top.
        stacked = path.state.variable_stack(TcpPayload)
        assert len(stacked) == 2
        original, visible = stacked
        assert not V.header_visible(path, TcpPayload, original)
        assert V.header_visible(path, TcpPayload, visible)

    def test_decryption_with_matching_key_restores_payload(self):
        network = self.build()
        result = run(network, models.symbolic_tcp_packet(), "enc", "in0")
        path = result.reaching("dec", "out0")[0]
        original = path.state.variable_history(TcpPayload)[0]
        assert V.header_visible(path, TcpPayload, original)

    def test_decryption_with_wrong_key_fails(self):
        network = self.build(encrypt_key=7, decrypt_key=8)
        result = run(network, models.symbolic_tcp_packet(), "enc", "in0")
        assert not result.reaching("dec", "out0")


class TestIpMirror:
    def test_swaps_addresses_and_ports(self):
        network = Network()
        network.add_element(build_ip_mirror("mirror"))
        packet = models.symbolic_tcp_packet(
            {IpSrc: 1, IpDst: 2, TcpSrc: 10, TcpDst: 20}
        )
        result = run(network, packet, "mirror", "in0")
        path = result.reaching("mirror", "out0")[0]
        assert V.field_concrete_value(path, IpSrc) == 2
        assert V.field_concrete_value(path, IpDst) == 1
        assert V.field_concrete_value(path, TcpSrc) == 20
        assert V.field_concrete_value(path, TcpDst) == 10


class TestAsaPipeline:
    def build(self, config=None):
        network = Network()
        attachment = build_asa(network, "asa", config)
        return network, attachment

    def test_outbound_tcp_is_allowed_and_natted(self):
        network, asa = self.build()
        result = run(network, models.symbolic_tcp_packet(), *asa.inside_entry)
        paths = [p for p in result.delivered() if p.reached(*asa.outside_exit)]
        assert paths
        assert not V.field_invariant(paths[0], IpSrc)

    def test_unsolicited_inbound_is_blocked_by_default(self):
        network, asa = self.build()
        result = run(network, models.symbolic_tcp_packet(), *asa.outside_entry)
        assert not [p for p in result.delivered() if p.reached(*asa.inside_exit)]

    def test_inbound_allowed_by_acl_rule(self):
        config = AsaConfig(
            inbound_rules=[AclRule(action="allow", proto=6, dst_port=443)],
            enable_dynamic_nat=False,
        )
        network, asa = self.build(config)
        packet = models.symbolic_tcp_packet({TcpDst: 443, IpProto: 6})
        result = run(network, packet, *asa.outside_entry)
        assert [p for p in result.delivered() if p.reached(*asa.inside_exit)]

    def test_static_nat_rewrites_inbound_destination(self):
        config = AsaConfig(
            static_nat=[("141.85.37.10", "10.41.0.10")],
            inbound_rules=[AclRule(action="allow", proto=6, dst="10.41.0.10/32")],
            enable_dynamic_nat=False,
        )
        network, asa = self.build(config)
        packet = models.symbolic_tcp_packet(
            {IpDst: ip_to_number("141.85.37.10"), IpProto: 6}
        )
        result = run(network, packet, *asa.outside_entry)
        delivered = [p for p in result.delivered() if p.reached(*asa.inside_exit)]
        assert delivered
        assert V.field_concrete_value(delivered[0], IpDst) == ip_to_number("10.41.0.10")
