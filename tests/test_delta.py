"""Delta verification: re-verify only what a change touched.

The acceptance criteria under test:

* the manifest a directory build attaches tracks *content* (digests), not
  metadata, and malformed manifests/baselines are rejected wholesale;
* :func:`diff_manifests` refuses to splice across topology or file-set
  changes (the link graph may differ), and maps touched files to touched
  elements through build provenance;
* :func:`affected_injections` is the reverse link closure: a port is only
  spliced when its element provably cannot reach any touched element;
* campaign-level: spliced runs are **bit-identical** to a from-scratch
  rerun across workers {1, 2} × symmetry {on, off} × baseline
  {store, file}, and a one-device edit re-executes O(1) engine jobs;
* seed-pinned random-edit fuzz (rule insert/delete, device rewrite, link
  flap, same-bytes no-op rewrite) over stanford- and department-style
  directories: delta never skips a port whose answer changed, with greedy
  shrink to a minimal failing edit on divergence;
* degenerate directory-identity keys (unreadable topology, stat-failed
  device files) can no longer produce a plan-cache hit: every such key is
  unequal to everything, including a recomputation of itself.
"""

import glob
import os
import random

import pytest

from repro.core.campaign import (
    VerificationCampaign,
    clear_runtime_cache,
    execution_counters,
    reset_execution_counters,
    semantic_projection,
)
from repro.core.delta import (
    BASELINE_FORMAT,
    CampaignBaseline,
    ElementManifest,
    affected_injections,
    diff_manifests,
)
from repro.core.queries import port_key
from repro.network.view import elements_reaching
from repro.parsers.service_acl import format_service_acl, parse_service_acl
from repro.parsers.topology_file import load_network_directory
from repro.store import VerificationStore
from repro.workloads.export import (
    export_department_style_directory,
    export_stanford_directory,
)

SEED = int(os.environ.get("REPRO_DELTA_SEED", "20260807"))

STANFORD_OPTIONS = dict(zones=3, internal_prefixes_per_zone=6, service_acl_rules=3)


def _fingerprints(result):
    return (
        result.reachability.fingerprint(),
        result.loop_report.fingerprint(),
        result.invariant_report.fingerprint(),
    )


def _projections(result):
    return {
        port_key(report.element, report.port): semantic_projection(report)
        for report in result.jobs
    }


def _run(directory, injections, **kwargs):
    """One campaign over a snapshot directory; returns ``(result, engine
    runs this campaign performed)``."""
    workers = kwargs.pop("workers", 1)
    clear_runtime_cache()
    campaign = VerificationCampaign(str(directory), **kwargs)
    campaign.add_injections(injections)
    reset_execution_counters()
    result = campaign.run(workers=workers)
    assert not result.job_errors
    return result, execution_counters()["engine_runs"]


def _export_stanford(directory, seed=11):
    os.makedirs(directory, exist_ok=True)
    return export_stanford_directory(str(directory), seed=seed, **STANFORD_OPTIONS)


def _export_department(directory, seed=23):
    os.makedirs(directory, exist_ok=True)
    return export_department_style_directory(
        str(directory), switches=3, macs_per_port=2, seed=seed
    )


# ---------------------------------------------------------------------------
# The manifest a directory build records
# ---------------------------------------------------------------------------


class TestElementManifest:
    def test_build_attaches_per_file_digests_and_provenance(self, tmp_path):
        _export_department(tmp_path)
        network = load_network_directory(str(tmp_path))
        manifest = ElementManifest.of_network(network)
        assert manifest is not None
        assert set(manifest.files) == {
            "sw0.mac", "sw1.mac", "sw2.mac", "gw.fib", "edge.acl",
        }
        for name, entry in manifest.files.items():
            assert len(entry["digest"]) == 64
        # Provenance: each snapshot file maps to the element it built.
        assert manifest.files["gw.fib"]["elements"] == ["gw"]
        assert manifest.files["edge.acl"]["elements"] == ["edge"]
        assert manifest.files["sw1.mac"]["elements"] == ["sw1"]

    def test_manifest_tracks_content_not_metadata(self, tmp_path):
        _export_department(tmp_path)
        before = ElementManifest.of_network(
            load_network_directory(str(tmp_path))
        ).to_payload()
        # Same bytes rewritten: identical manifest (mtime is irrelevant).
        acl = tmp_path / "edge.acl"
        acl.write_bytes(acl.read_bytes())
        again = ElementManifest.of_network(
            load_network_directory(str(tmp_path))
        ).to_payload()
        assert again == before
        # Content edit: exactly that file's digest moves.
        acl.write_text("block 22\n")
        edited = ElementManifest.of_network(
            load_network_directory(str(tmp_path))
        ).to_payload()
        assert edited != before
        changed = [
            name
            for name in before["files"]
            if edited["files"][name]["digest"] != before["files"][name]["digest"]
        ]
        assert changed == ["edge.acl"]

    def test_diff_yields_touched_elements_via_provenance(self, tmp_path):
        _export_stanford(tmp_path)
        old = ElementManifest.of_network(load_network_directory(str(tmp_path)))
        (tmp_path / "acl1.acl").write_text("block 22\n")
        new = ElementManifest.of_network(load_network_directory(str(tmp_path)))
        diff = diff_manifests(old, new)
        assert diff.compatible
        assert diff.touched_files == ("acl1.acl",)
        assert diff.touched_elements == ("acl1",)

    def test_diff_incompatible_on_topology_change(self, tmp_path):
        _export_stanford(tmp_path)
        old = ElementManifest.of_network(load_network_directory(str(tmp_path)))
        with open(tmp_path / "topology.txt", "a", encoding="utf-8") as handle:
            handle.write("# a comment changes the bytes, not the semantics\n")
        new = ElementManifest.of_network(load_network_directory(str(tmp_path)))
        diff = diff_manifests(old, new)
        assert not diff.compatible
        assert diff.reason == "topology.txt changed"

    def test_diff_incompatible_on_referenced_set_change(self):
        old = ElementManifest("t", {"a.fib": {"digest": "x", "elements": ["a"]}})
        new = ElementManifest("t", {"b.fib": {"digest": "x", "elements": ["b"]}})
        diff = diff_manifests(old, new)
        assert not diff.compatible
        assert diff.reason == "referenced snapshot set changed"

    def test_malformed_payloads_are_rejected_wholesale(self):
        assert ElementManifest.from_payload(None) is None
        assert ElementManifest.from_payload({"topology_digest": "t"}) is None
        assert ElementManifest.from_payload(
            {"topology_digest": "t", "files": {"a": {"elements": []}}}
        ) is None
        good_manifest = {"topology_digest": "t", "files": {}}
        assert CampaignBaseline.from_payload(None) is None
        assert CampaignBaseline.from_payload(
            {"format": BASELINE_FORMAT + 1, "manifest": good_manifest, "reports": {}}
        ) is None
        assert CampaignBaseline.from_payload(
            {"format": BASELINE_FORMAT, "manifest": {"nope": 1}, "reports": {}}
        ) is None
        assert CampaignBaseline.from_payload(
            {"format": BASELINE_FORMAT, "manifest": good_manifest, "reports": {}}
        ) is not None


# ---------------------------------------------------------------------------
# The affected-port closure
# ---------------------------------------------------------------------------


class TestAffectedInjections:
    def test_nothing_links_into_an_edge_acl(self, tmp_path):
        injections = _export_stanford(tmp_path)
        network = load_network_directory(str(tmp_path))
        assert elements_reaching(network, {"acl1"}) == {"acl1"}
        assert affected_injections(network, injections, {"acl1"}) == {
            ("acl1", "in0")
        }

    def test_closure_includes_everything_upstream(self, tmp_path):
        injections = _export_department(tmp_path)
        network = load_network_directory(str(tmp_path))
        # Every vantage can reach the gateway, so a gateway edit taints all.
        reaching = elements_reaching(network, {"gw"})
        assert {"sw0", "sw1", "sw2", "edge", "gw"} <= reaching
        assert affected_injections(network, injections, {"gw"}) == set(injections)

    def test_empty_touched_set_affects_nothing(self, tmp_path):
        injections = _export_stanford(tmp_path)
        network = load_network_directory(str(tmp_path))
        assert affected_injections(network, injections, set()) == set()


# ---------------------------------------------------------------------------
# Campaign-level splicing: the standing invariant
# ---------------------------------------------------------------------------


class TestCampaignDelta:
    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("symmetry", [True, False])
    @pytest.mark.parametrize("mode", ["store", "file"])
    def test_spliced_run_bit_identical_to_scratch(
        self, tmp_path, workers, symmetry, mode
    ):
        net = tmp_path / "net"
        injections = _export_stanford(net)
        store = (
            VerificationStore(str(tmp_path / "store")) if mode == "store" else None
        )
        cold, cold_runs = _run(
            net, injections, store=store, symmetry=symmetry, workers=workers
        )
        assert cold.stats.jobs_spliced_by_delta == 0
        assert cold.baseline_payload is not None
        baseline = cold.baseline_payload if mode == "file" else None

        (net / "acl1.acl").write_text("block 22\nblock 8080\n")
        delta, delta_runs = _run(
            net,
            injections,
            store=store,
            symmetry=symmetry,
            workers=workers,
            baseline=baseline,
        )
        # The touched ACL symmetry-partitions alone: exactly one engine job.
        assert delta.stats.jobs_spliced_by_delta == 2
        assert delta.delta_info["executed"] == 1
        assert delta.delta_info["baseline"] == mode
        assert delta.delta_info["touched_elements"] == ["acl1"]
        assert delta_runs == 1
        spliced = [r for r in delta.jobs if r.delta_spliced_from]
        assert {port_key(r.element, r.port) for r in spliced} == {
            "acl0:in0", "acl2:in0",
        }
        assert all(r.delta_spliced_from == mode for r in spliced)

        scratch, scratch_runs = _run(
            net, injections, symmetry=symmetry, shared_cache=False, delta=False
        )
        assert scratch_runs >= delta_runs
        assert _fingerprints(delta) == _fingerprints(scratch)
        assert _projections(delta) == _projections(scratch)

    def test_noop_rewrite_splices_every_port(self, tmp_path):
        net = tmp_path / "net"
        injections = _export_stanford(net)
        store = VerificationStore(str(tmp_path / "store"))
        cold, _ = _run(net, injections, store=store)
        acl = net / "acl0.acl"
        acl.write_bytes(acl.read_bytes())
        warm, warm_runs = _run(net, injections, store=store)
        assert warm_runs == 0
        assert warm.stats.jobs_spliced_by_delta == len(injections)
        assert warm.delta_info["touched_files"] == []
        assert _fingerprints(warm) == _fingerprints(cold)

    def test_topology_edit_degrades_to_full_rerun(self, tmp_path):
        net = tmp_path / "net"
        injections = _export_stanford(net)
        store = VerificationStore(str(tmp_path / "store"))
        cold, cold_runs = _run(net, injections, store=store)
        with open(net / "topology.txt", "a", encoding="utf-8") as handle:
            handle.write("# same links, different bytes\n")
        rerun, rerun_runs = _run(net, injections, store=store)
        assert rerun.stats.jobs_spliced_by_delta == 0
        assert rerun.delta_info == {
            "spliced": 0, "executed": len(injections),
            "reason": "topology.txt changed",
        }
        assert rerun_runs == cold_runs
        assert _fingerprints(rerun) == _fingerprints(cold)

    def test_config_drift_blocks_splicing(self, tmp_path):
        net = tmp_path / "net"
        injections = _export_stanford(net)
        store = VerificationStore(str(tmp_path / "store"))
        _run(net, injections, store=store)
        # Same directory, different job config: the baseline's answers were
        # computed under another budget and must not be reused.
        drifted, drifted_runs = _run(
            net, injections, store=store, max_hops=64
        )
        assert drifted.stats.jobs_spliced_by_delta == 0
        assert drifted_runs > 0

    def test_corrupt_store_baseline_degrades_to_full_rerun(self, tmp_path):
        net = tmp_path / "net"
        injections = _export_stanford(net)
        store = VerificationStore(str(tmp_path / "store"))
        cold, _ = _run(net, injections, store=store)
        for path in glob.glob(str(tmp_path / "store" / "baselines" / "*.json")):
            with open(path, "w", encoding="utf-8") as handle:
                handle.write('{"format": "nope"')
        (net / "acl2.acl").write_text("block 22\n")
        rerun, rerun_runs = _run(net, injections, store=store)
        assert rerun.stats.jobs_spliced_by_delta == 0
        assert rerun_runs > 0
        scratch, _ = _run(
            net, injections, shared_cache=False, delta=False
        )
        assert _fingerprints(rerun) == _fingerprints(scratch)

    def test_delta_off_never_consults_the_baseline(self, tmp_path):
        net = tmp_path / "net"
        injections = _export_stanford(net)
        store = VerificationStore(str(tmp_path / "store"))
        _run(net, injections, store=store)
        (net / "acl0.acl").write_text("block 22\n")
        off, off_runs = _run(net, injections, store=store, delta=False)
        assert off.stats.jobs_spliced_by_delta == 0
        assert off.delta_info == {}
        assert off_runs > 0


# ---------------------------------------------------------------------------
# Seed-pinned random-edit fuzz with greedy shrink
# ---------------------------------------------------------------------------

FUZZ_CASES = 3


def _plan_edit(rng, directory):
    """Draw one concrete mutation of the exported directory: ``(kind,
    file name, full replacement bytes)``.  Planning against the pristine
    export keeps application deterministic, so a failing multi-edit case
    shrinks by replaying single edits on a fresh export."""
    acls = sorted(
        os.path.basename(p) for p in glob.glob(os.path.join(directory, "*.acl"))
    )
    fibs = sorted(
        os.path.basename(p) for p in glob.glob(os.path.join(directory, "*.fib"))
    )
    macs = sorted(
        os.path.basename(p) for p in glob.glob(os.path.join(directory, "*.mac"))
    )
    kinds = ["rule-insert", "rule-delete", "fib-rewrite", "link-flap", "noop"]
    if macs:
        kinds.append("mac-rewrite")
    kind = rng.choice(kinds)

    def read(name):
        with open(os.path.join(directory, name), encoding="utf-8") as handle:
            return handle.read()

    if kind in ("rule-insert", "rule-delete"):
        name = rng.choice(acls)
        ports = parse_service_acl(read(name))
        if kind == "rule-delete" and ports:
            ports.pop(rng.randrange(len(ports)))
        else:
            ports.insert(rng.randrange(len(ports) + 1), rng.randrange(7000, 7999))
        return kind, name, format_service_acl(ports).encode()
    if kind == "fib-rewrite":
        name = rng.choice(fibs)
        lines = [l for l in read(name).splitlines() if l.strip()]
        if len(lines) > 1:
            lines.pop(rng.randrange(len(lines)))
        else:
            lines.append(lines[0])
        return kind, name, ("\n".join(lines) + "\n").encode()
    if kind == "mac-rewrite":
        name = rng.choice(macs)
        lines = read(name).splitlines()
        rows = [i for i, l in enumerate(lines) if "DYNAMIC" in l]
        if len(rows) > 1:
            lines.pop(rng.choice(rows))
        else:
            lines.append(lines[rows[0]])
        return kind, name, ("\n".join(lines) + "\n").encode()
    if kind == "link-flap":
        lines = read("topology.txt").splitlines()
        links = [i for i, l in enumerate(lines) if l.startswith("link ")]
        flapped = lines.pop(rng.choice(links))
        if rng.random() < 0.5:
            lines.append(flapped)  # same links, different bytes
        return kind, "topology.txt", ("\n".join(lines) + "\n").encode()
    name = rng.choice(acls + fibs + macs)
    return kind, name, read(name).encode()


def _check_edits(tmp_path, tag, family, export_seed, plan):
    """Run cold → edit → delta → scratch over a fresh export and return the
    list of divergences (empty when delta is sound)."""
    net = tmp_path / tag
    exporter = _export_stanford if family == "stanford" else _export_department
    injections = exporter(net, seed=export_seed)
    store = VerificationStore(str(tmp_path / f"{tag}-store"))
    _run(net, injections, store=store)
    for _, name, data in plan:
        (net / name).write_bytes(data)
    delta, _ = _run(net, injections, store=store)
    scratch, _ = _run(net, injections, shared_cache=False, delta=False)
    problems = []
    if _fingerprints(delta) != _fingerprints(scratch):
        problems.append("aggregate fingerprints diverge from scratch rerun")
    want = _projections(scratch)
    got = _projections(delta)
    for key, expected in want.items():
        if got.get(key) != expected:
            spliced = any(
                report.delta_spliced_from
                for report in delta.jobs
                if port_key(report.element, report.port) == key
            )
            problems.append(
                f"{key}: delta answer diverges"
                + (" (port was spliced — unsound skip)" if spliced else "")
            )
    if all(kind == "noop" for kind, _, _ in plan):
        executed = [r.source_key for r in delta.jobs if not r.delta_spliced_from]
        if executed:
            problems.append(f"no-op rewrite re-executed {executed}")
    return problems


class TestEditFuzz:
    @pytest.mark.parametrize("family", ["stanford", "department"])
    def test_seed_pinned_random_edits_never_change_answers(
        self, tmp_path, family
    ):
        for case in range(FUZZ_CASES):
            case_seed = SEED + case * 7919 + (0 if family == "stanford" else 1)
            rng = random.Random(case_seed)
            plan_dir = tmp_path / f"plan-{family}-{case}"
            exporter = (
                _export_stanford if family == "stanford" else _export_department
            )
            exporter(plan_dir, seed=case_seed)
            plan = [
                _plan_edit(rng, str(plan_dir)) for _ in range(rng.randint(1, 3))
            ]
            problems = _check_edits(
                tmp_path, f"case-{family}-{case}", family, case_seed, plan
            )
            if not problems:
                continue
            # Greedy shrink: replay each edit alone on a fresh export and
            # report the minimal failing one.
            for index, edit in enumerate(plan):
                sub = _check_edits(
                    tmp_path,
                    f"shrink-{family}-{case}-{index}",
                    family,
                    case_seed,
                    [edit],
                )
                if sub:
                    pytest.fail(
                        f"seed {case_seed}: minimal failing edit "
                        f"{edit[0]} on {edit[1]}: {sub}"
                    )
            pytest.fail(
                f"seed {case_seed}: edits "
                f"{[(kind, name) for kind, name, _ in plan]} "
                f"fail only in combination: {problems}"
            )


# ---------------------------------------------------------------------------
# Degenerate directory-identity keys (the stale-identity bugfix)
# ---------------------------------------------------------------------------


class TestDegenerateIdentityKeys:
    def test_unreadable_topology_keys_never_compare_equal(self, tmp_path):
        from repro.api.model import _directory_content_key, _directory_stat_key

        broken = tmp_path / "broken"
        other = tmp_path / "other"
        broken.mkdir()
        other.mkdir()
        # Two broken directories — and the *same* broken directory keyed
        # twice — must never share an identity a plan cache could hit.
        assert _directory_stat_key(str(broken)) != _directory_stat_key(str(other))
        assert _directory_stat_key(str(broken)) != _directory_stat_key(str(broken))
        assert _directory_content_key(str(broken)) != _directory_content_key(
            str(other)
        )
        assert _directory_content_key(str(broken)) != _directory_content_key(
            str(broken)
        )

    def test_stat_failed_device_file_keys_never_compare_equal(
        self, tmp_path, monkeypatch
    ):
        from repro.api.model import _directory_stat_key

        _export_stanford(tmp_path)
        target = os.path.join(str(tmp_path), "acl0.acl")
        real_stat = os.stat

        def failing_stat(path, *args, **kwargs):
            if os.fspath(path) == target:
                raise OSError("permission denied")
            return real_stat(path, *args, **kwargs)

        monkeypatch.setattr(os, "stat", failing_stat)
        first = _directory_stat_key(str(tmp_path))
        second = _directory_stat_key(str(tmp_path))
        assert first != second

    def test_degenerate_build_identity_disables_plan_caching(
        self, tmp_path, monkeypatch
    ):
        """A model whose build-time identity scan could not stat a device
        file has no provable identity: its fingerprint must be ``None`` so
        it neither reads nor feeds the plan cache."""
        from repro.api import Loop
        from repro.api.model import NetworkModel

        _export_stanford(tmp_path)
        target = os.path.join(str(tmp_path), "acl0.acl")
        real_stat = os.stat
        state = {"failed": False}

        def flaky_stat(path, *args, **kwargs):
            if not state["failed"] and os.fspath(path) == target:
                state["failed"] = True
                raise OSError("transient stat failure")
            return real_stat(path, *args, **kwargs)

        monkeypatch.setattr(os, "stat", flaky_stat)
        clear_runtime_cache()
        model = NetworkModel.from_directory(str(tmp_path))
        model.network()
        assert state["failed"]
        assert model.fingerprint() is None

        store = VerificationStore(str(tmp_path / "store"))
        first = model.query(Loop(), store=store)
        assert not first.from_cache
        # Nothing was filed under any identity: a fresh, healthy model over
        # the same directory misses the plan cache and executes for real.
        clear_runtime_cache()
        fresh = NetworkModel.from_directory(str(tmp_path)).query(
            Loop(), store=store
        )
        assert not fresh.from_cache
