"""Tests for pluggable exploration strategies and max_paths truncation,
plus property-based tests over random instruction programs: the terminal
path set must be strategy-independent, solver-mode-independent, and
identical whether execution starts from a fresh or a cloned state."""

import random

import pytest

from repro import (
    ExecutionSettings,
    ExecutionState,
    Network,
    NetworkElement,
    SymbolicExecutor,
    models,
)
from repro.core.strategy import (
    BreadthFirstStrategy,
    CoverageOrderedStrategy,
    DepthFirstStrategy,
    STRATEGIES,
    make_strategy,
)
from repro.sefl import (
    Assign,
    Constrain,
    Eq,
    Fork,
    Forward,
    Ge,
    If,
    InstructionBlock,
    IpDst,
    IpSrc,
    Le,
    NoOp,
    Or,
    SymbolicValue,
    TcpDst,
    TcpSrc,
)


def build_fork_heavy_network(depth=3, fanout=2):
    """A tree of fork elements: every level duplicates the packet to
    ``fanout`` children, and the leaves also branch on a symbolic If —
    2 * fanout**depth terminal paths."""
    network = Network()

    def add_level(name, level):
        if level == depth:
            leaf = NetworkElement(name, ["in0"], ["out0", "out1"])
            leaf.set_input_program(
                "in0", If(Eq(TcpDst, 80), Forward("out0"), Forward("out1"))
            )
            network.add_element(leaf)
            return
        outputs = [f"out{i}" for i in range(fanout)]
        node = NetworkElement(name, ["in0"], outputs)
        node.set_input_program("in0", Fork(*outputs))
        network.add_element(node)
        for index in range(fanout):
            child = f"{name}_{index}"
            add_level(child, level + 1)
            network.add_link((name, f"out{index}"), (child, "in0"))

    add_level("root", 0)
    return network


def path_set(result):
    """Order-insensitive fingerprint of the explored paths."""
    return sorted(
        (record.status, str(record.last_port), tuple(record.state.port_trace))
        for record in result.paths
    )


def run_with_strategy(network, strategy, **kwargs):
    settings = ExecutionSettings(strategy=strategy, **kwargs)
    executor = SymbolicExecutor(network, settings=settings)
    return executor.inject(models.symbolic_tcp_packet(), "root", "in0")


class TestStrategyEquivalence:
    def test_all_strategies_explore_identical_path_sets(self):
        network = build_fork_heavy_network(depth=3, fanout=2)
        results = {
            name: run_with_strategy(network, name) for name in sorted(STRATEGIES)
        }
        reference = path_set(results["dfs"])
        assert len(reference) == 2 * 2**3  # 8 leaves x 2 If branches
        for name, result in results.items():
            assert path_set(result) == reference, name
            assert not result.truncated

    def test_dfs_and_bfs_orders_differ(self):
        """Sanity check that the strategies are actually different: BFS
        finishes all shallow work before deep work, so the discovery order
        of terminal paths differs from DFS on a deep tree."""
        network = build_fork_heavy_network(depth=3, fanout=2)
        dfs = run_with_strategy(network, "dfs")
        bfs = run_with_strategy(network, "bfs")
        dfs_order = [tuple(p.state.port_trace) for p in dfs.paths]
        bfs_order = [tuple(p.state.port_trace) for p in bfs.paths]
        assert dfs_order != bfs_order
        assert sorted(dfs_order) == sorted(bfs_order)

    def test_incremental_and_legacy_solvers_agree(self):
        network = build_fork_heavy_network(depth=2, fanout=3)
        fast = run_with_strategy(network, "dfs", use_incremental_solver=True)
        slow = run_with_strategy(network, "dfs", use_incremental_solver=False)
        assert path_set(fast) == path_set(slow)


class TestStrategyObjects:
    def test_make_strategy_by_name(self):
        assert isinstance(make_strategy("dfs"), DepthFirstStrategy)
        assert isinstance(make_strategy("bfs"), BreadthFirstStrategy)
        assert isinstance(make_strategy("coverage"), CoverageOrderedStrategy)

    def test_make_strategy_unknown_name(self):
        with pytest.raises(ValueError, match="unknown exploration strategy"):
            make_strategy("random-walk")

    def test_make_strategy_from_factory(self):
        frontier = make_strategy(BreadthFirstStrategy)
        assert isinstance(frontier, BreadthFirstStrategy)

    def test_dfs_is_lifo_bfs_is_fifo(self):
        items = [(object(), "a", "in0"), (object(), "b", "in0")]
        dfs = make_strategy("dfs")
        bfs = make_strategy("bfs")
        for item in items:
            dfs.push(item)
            bfs.push(item)
        assert dfs.pop() is items[1]
        assert bfs.pop() is items[0]

    def test_coverage_prefers_least_visited_port(self):
        frontier = make_strategy("coverage")
        hot = (object(), "hot", "in0")
        cold = (object(), "cold", "in0")
        frontier.push(hot)
        assert frontier.pop() is hot  # visits[hot] -> 1
        frontier.push(hot)
        frontier.push(cold)
        assert frontier.pop() is cold  # never visited, beats hot
        assert frontier.pop() is hot
        assert len(frontier) == 0


class TestTruncation:
    def build_fan(self):
        network = Network()
        fan = NetworkElement("root", ["in0"], ["out0", "out1", "out2"])
        fan.set_input_program("in0", Fork("out0", "out1", "out2"))
        network.add_element(fan)
        for index in range(3):
            sink = NetworkElement(f"sink{index}", ["in0"], ["out0"])
            sink.set_input_program("in0", Forward("out0"))
            network.add_element(sink)
            network.add_link(("root", f"out{index}"), (f"sink{index}", "in0"))
        return network

    def test_truncated_flag_set_when_budget_hits(self):
        result = run_with_strategy(self.build_fan(), "dfs", max_paths=1)
        assert result.truncated
        assert 1 <= len(result.paths) < 3

    def test_truncated_flag_clear_on_full_exploration(self):
        result = run_with_strategy(self.build_fan(), "dfs")
        assert not result.truncated
        assert len(result.delivered()) == 3

    def test_truncated_is_reported_in_json(self):
        import json

        result = run_with_strategy(self.build_fan(), "dfs", max_paths=1)
        assert json.loads(result.to_json())["truncated"] is True


# ---------------------------------------------------------------------------
# Property-based tests over random instruction programs
# ---------------------------------------------------------------------------

PROPERTY_SEED = 987123
PROPERTY_CASES = 20

_FIELDS = (TcpDst, TcpSrc, IpDst, IpSrc)
_PORTS = ("out0", "out1", "out2")


def random_condition(rng):
    field = rng.choice(_FIELDS)
    value = rng.choice((0, 1, 80, 443, 8080, 65535))
    kind = rng.randrange(4)
    if kind == 0:
        return Eq(field, value)
    if kind == 1:
        return Le(field, value)
    if kind == 2:
        return Ge(field, value)
    return Or(Eq(field, value), Eq(rng.choice(_FIELDS), rng.choice((22, 53))))


def random_terminal(rng, depth):
    """A program tail that either forwards, forks, or branches further."""
    kind = rng.randrange(4) if depth > 0 else rng.randrange(2)
    if kind == 0:
        return Forward(rng.choice(_PORTS))
    if kind == 1:
        count = rng.randint(1, len(_PORTS))
        return Fork(*rng.sample(_PORTS, count))
    if kind == 2:
        return If(
            random_condition(rng),
            random_program(rng, depth - 1),
            random_program(rng, depth - 1),
        )
    return NoOp()  # no forward: the path ends as an explicit drop


def random_program(rng, depth=2):
    """0-2 effect instructions (assign/constrain) then a terminal."""
    instructions = []
    for _ in range(rng.randrange(3)):
        if rng.random() < 0.5:
            target = rng.choice(_FIELDS)
            value = (
                rng.choice((0, 80, 1234))
                if rng.random() < 0.6
                else SymbolicValue("fresh", 16)
            )
            instructions.append(Assign(target, value))
        else:
            instructions.append(Constrain(random_condition(rng)))
    instructions.append(random_terminal(rng, depth))
    return InstructionBlock(*instructions)


def random_network(seed):
    """One root running a random program, with sinks on every output port."""
    rng = random.Random(seed)
    network = Network(f"property-{seed}")
    root = NetworkElement("root", ["in0"], list(_PORTS))
    root.set_input_program("in0", random_program(rng, depth=3))
    network.add_element(root)
    for index, port in enumerate(_PORTS):
        sink = NetworkElement(f"sink{index}", ["in0"], ["out0"])
        sink.set_input_program("in0", Forward("out0"))
        network.add_element(sink)
        network.add_link(("root", port), (f"sink{index}", "in0"))
    return network


class TestRandomProgramProperties:
    """For arbitrary SEFL programs the engine must satisfy three invariants:
    the terminal path set does not depend on the exploration strategy, nor
    on the solver mode, nor on whether the initial state was cloned."""

    @pytest.mark.parametrize(
        "seed", range(PROPERTY_SEED, PROPERTY_SEED + PROPERTY_CASES)
    )
    def test_strategy_independence(self, seed):
        network = random_network(seed)
        results = {
            name: run_with_strategy(network, name) for name in sorted(STRATEGIES)
        }
        reference = path_set(results["dfs"])
        for name, result in results.items():
            assert path_set(result) == reference, f"seed={seed} strategy={name}"

    @pytest.mark.parametrize(
        "seed", range(PROPERTY_SEED, PROPERTY_SEED + PROPERTY_CASES)
    )
    def test_solver_mode_independence(self, seed):
        network = random_network(seed)
        incremental = run_with_strategy(network, "dfs", use_incremental_solver=True)
        from_scratch = run_with_strategy(
            network, "dfs", use_incremental_solver=False
        )
        assert path_set(incremental) == path_set(from_scratch), f"seed={seed}"

    @pytest.mark.parametrize(
        "seed", range(PROPERTY_SEED, PROPERTY_SEED + PROPERTY_CASES, 4)
    )
    def test_clone_vs_fresh_state_equivalence(self, seed):
        """Running from a fresh state, from a pre-built state, and from its
        clone must explore identical path sets — and executing the original
        must not corrupt the clone (the copy-on-write contract)."""
        network = random_network(seed)
        executor = SymbolicExecutor(network)
        packet = models.symbolic_tcp_packet()

        fresh = executor.inject(packet, "root", "in0")

        base = ExecutionState(executor.symbols)
        clone = base.clone()
        from_base = executor.inject(packet, "root", "in0", initial_state=base)
        # base was consumed/mutated above; the clone must be unaffected.
        from_clone = executor.inject(packet, "root", "in0", initial_state=clone)

        assert path_set(from_base) == path_set(fresh), f"seed={seed}"
        assert path_set(from_clone) == path_set(fresh), f"seed={seed}"
