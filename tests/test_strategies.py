"""Tests for pluggable exploration strategies and max_paths truncation."""

import pytest

from repro import ExecutionSettings, Network, NetworkElement, SymbolicExecutor, models
from repro.core.strategy import (
    BreadthFirstStrategy,
    CoverageOrderedStrategy,
    DepthFirstStrategy,
    STRATEGIES,
    make_strategy,
)
from repro.sefl import Eq, Fork, Forward, If, InstructionBlock, TcpDst


def build_fork_heavy_network(depth=3, fanout=2):
    """A tree of fork elements: every level duplicates the packet to
    ``fanout`` children, and the leaves also branch on a symbolic If —
    2 * fanout**depth terminal paths."""
    network = Network()

    def add_level(name, level):
        if level == depth:
            leaf = NetworkElement(name, ["in0"], ["out0", "out1"])
            leaf.set_input_program(
                "in0", If(Eq(TcpDst, 80), Forward("out0"), Forward("out1"))
            )
            network.add_element(leaf)
            return
        outputs = [f"out{i}" for i in range(fanout)]
        node = NetworkElement(name, ["in0"], outputs)
        node.set_input_program("in0", Fork(*outputs))
        network.add_element(node)
        for index in range(fanout):
            child = f"{name}_{index}"
            add_level(child, level + 1)
            network.add_link((name, f"out{index}"), (child, "in0"))

    add_level("root", 0)
    return network


def path_set(result):
    """Order-insensitive fingerprint of the explored paths."""
    return sorted(
        (record.status, str(record.last_port), tuple(record.state.port_trace))
        for record in result.paths
    )


def run_with_strategy(network, strategy, **kwargs):
    settings = ExecutionSettings(strategy=strategy, **kwargs)
    executor = SymbolicExecutor(network, settings=settings)
    return executor.inject(models.symbolic_tcp_packet(), "root", "in0")


class TestStrategyEquivalence:
    def test_all_strategies_explore_identical_path_sets(self):
        network = build_fork_heavy_network(depth=3, fanout=2)
        results = {
            name: run_with_strategy(network, name) for name in sorted(STRATEGIES)
        }
        reference = path_set(results["dfs"])
        assert len(reference) == 2 * 2**3  # 8 leaves x 2 If branches
        for name, result in results.items():
            assert path_set(result) == reference, name
            assert not result.truncated

    def test_dfs_and_bfs_orders_differ(self):
        """Sanity check that the strategies are actually different: BFS
        finishes all shallow work before deep work, so the discovery order
        of terminal paths differs from DFS on a deep tree."""
        network = build_fork_heavy_network(depth=3, fanout=2)
        dfs = run_with_strategy(network, "dfs")
        bfs = run_with_strategy(network, "bfs")
        dfs_order = [tuple(p.state.port_trace) for p in dfs.paths]
        bfs_order = [tuple(p.state.port_trace) for p in bfs.paths]
        assert dfs_order != bfs_order
        assert sorted(dfs_order) == sorted(bfs_order)

    def test_incremental_and_legacy_solvers_agree(self):
        network = build_fork_heavy_network(depth=2, fanout=3)
        fast = run_with_strategy(network, "dfs", use_incremental_solver=True)
        slow = run_with_strategy(network, "dfs", use_incremental_solver=False)
        assert path_set(fast) == path_set(slow)


class TestStrategyObjects:
    def test_make_strategy_by_name(self):
        assert isinstance(make_strategy("dfs"), DepthFirstStrategy)
        assert isinstance(make_strategy("bfs"), BreadthFirstStrategy)
        assert isinstance(make_strategy("coverage"), CoverageOrderedStrategy)

    def test_make_strategy_unknown_name(self):
        with pytest.raises(ValueError, match="unknown exploration strategy"):
            make_strategy("random-walk")

    def test_make_strategy_from_factory(self):
        frontier = make_strategy(BreadthFirstStrategy)
        assert isinstance(frontier, BreadthFirstStrategy)

    def test_dfs_is_lifo_bfs_is_fifo(self):
        items = [(object(), "a", "in0"), (object(), "b", "in0")]
        dfs = make_strategy("dfs")
        bfs = make_strategy("bfs")
        for item in items:
            dfs.push(item)
            bfs.push(item)
        assert dfs.pop() is items[1]
        assert bfs.pop() is items[0]

    def test_coverage_prefers_least_visited_port(self):
        frontier = make_strategy("coverage")
        hot = (object(), "hot", "in0")
        cold = (object(), "cold", "in0")
        frontier.push(hot)
        assert frontier.pop() is hot  # visits[hot] -> 1
        frontier.push(hot)
        frontier.push(cold)
        assert frontier.pop() is cold  # never visited, beats hot
        assert frontier.pop() is hot
        assert len(frontier) == 0


class TestTruncation:
    def build_fan(self):
        network = Network()
        fan = NetworkElement("root", ["in0"], ["out0", "out1", "out2"])
        fan.set_input_program("in0", Fork("out0", "out1", "out2"))
        network.add_element(fan)
        for index in range(3):
            sink = NetworkElement(f"sink{index}", ["in0"], ["out0"])
            sink.set_input_program("in0", Forward("out0"))
            network.add_element(sink)
            network.add_link(("root", f"out{index}"), (f"sink{index}", "in0"))
        return network

    def test_truncated_flag_set_when_budget_hits(self):
        result = run_with_strategy(self.build_fan(), "dfs", max_paths=1)
        assert result.truncated
        assert 1 <= len(result.paths) < 3

    def test_truncated_flag_clear_on_full_exploration(self):
        result = run_with_strategy(self.build_fan(), "dfs")
        assert not result.truncated
        assert len(result.delivered()) == 3

    def test_truncated_is_reported_in_json(self):
        import json

        result = run_with_strategy(self.build_fan(), "dfs", max_paths=1)
        assert json.loads(result.to_json())["truncated"] is True
