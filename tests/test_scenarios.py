"""Transient-state scenario campaigns: generator determinism, per-step
delta/scratch bit-identity across worker counts, and counterexample
clustering (including the mutation test guarding the reducer's feature
extraction)."""

import json
import os

import pytest

from repro.api.model import NetworkModel
from repro.api.queries import ForAllPairs, Loop, Reach
from repro.scenarios import (
    ScenarioCampaign,
    cluster_violations,
    generate_scenario,
    trace_features,
    violation_fingerprint,
)
from repro.scenarios.generator import read_directory_state, state_digest
from repro.workloads.export import (
    export_department_style_directory,
    export_stanford_directory,
)

#: Small but structurally complete: two zones dual-homed to two cores,
#: service ACLs in front, a stateful edge ASA island.
EXPORT_OPTIONS = dict(
    zones=2,
    internal_prefixes_per_zone=5,
    service_acl_rules=3,
    seed=11,
    edge_asa=True,
)


def _export(tmp_path, name="net"):
    directory = str(tmp_path / name)
    os.makedirs(directory)
    export_stanford_directory(directory, **EXPORT_OPTIONS)
    return directory


def _apply(directory, step):
    for name, text in step.writes:
        with open(
            os.path.join(directory, name), "w", encoding="utf-8", newline="\n"
        ) as handle:
            handle.write(text)


class TestGenerator:
    def test_same_seed_same_scenario(self, tmp_path):
        d1, d2 = _export(tmp_path, "a"), _export(tmp_path, "b")
        one = generate_scenario(d1, steps=6, seed=3)
        two = generate_scenario(d2, steps=6, seed=3)
        assert one.fingerprint() == two.fingerprint()
        assert one.steps == two.steps
        # Generation must not touch the directory itself.
        assert state_digest(read_directory_state(d1)) == one.base_digest

    def test_different_seeds_differ(self, tmp_path):
        directory = _export(tmp_path)
        fingerprints = {
            generate_scenario(directory, steps=6, seed=seed).fingerprint()
            for seed in range(4)
        }
        assert len(fingerprints) > 1

    def test_violation_is_transient(self, tmp_path):
        directory = _export(tmp_path)
        scenario = generate_scenario(directory, steps=6, seed=3)
        kinds = [step.kind for step in scenario.steps]
        inject = kinds.index("violation-inject")
        revert = kinds.index("violation-revert")
        assert 0 <= inject < revert
        assert scenario.steps[inject].violation
        assert scenario.steps[revert].violation
        # The revert restores the exact pre-inject bytes of the edited file.
        (file, injected_text), = scenario.steps[inject].writes
        (revert_file, reverted_text), = scenario.steps[revert].writes
        assert revert_file == file
        state = read_directory_state(directory)
        for step in scenario.steps[:inject]:
            for name, text in step.writes:
                state[name] = text
        assert reverted_text == state[file]
        assert injected_text != state[file]

    def test_no_violation_flag(self, tmp_path):
        directory = _export(tmp_path)
        scenario = generate_scenario(
            directory, steps=6, seed=3, inject_violation=False
        )
        assert all(not step.violation for step in scenario.steps)

    def test_steps_write_referenced_files_only(self, tmp_path):
        directory = _export(tmp_path)
        scenario = generate_scenario(directory, steps=8, seed=5)
        known = set(read_directory_state(directory))
        for step in scenario.steps:
            assert step.writes, step
            for name, _ in step.writes:
                assert name in known

    def test_link_flap_restores_exact_topology(self, tmp_path):
        directory = _export(tmp_path)
        for seed in range(60):
            scenario = generate_scenario(directory, steps=8, seed=seed)
            kinds = [step.kind for step in scenario.steps]
            if "link-down" not in kinds:
                continue
            down = kinds.index("link-down")
            assert "link-up" in kinds[down:], "a flap must restore before the end"
            up = down + kinds[down:].index("link-up")
            state = read_directory_state(directory)
            before = None
            for step in scenario.steps:
                if step.index == scenario.steps[down].index:
                    before = state["topology.txt"]
                for name, text in step.writes:
                    state[name] = text
                if step.index == scenario.steps[up].index:
                    assert state["topology.txt"] == before
                    return
        pytest.skip("no seed in range produced a link flap on this export")

    def test_department_directory_scenarios(self, tmp_path):
        directory = str(tmp_path / "dept")
        os.makedirs(directory)
        export_department_style_directory(directory, switches=2, macs_per_port=2)
        scenario = generate_scenario(directory, steps=5, seed=2)
        assert len(scenario.steps) == 5
        kinds = {step.kind for step in scenario.steps}
        assert kinds & {"mac-insert", "mac-delete", "acl-insert", "acl-delete",
                        "fib-insert", "fib-delete", "link-down", "link-up"}


class TestScenarioCampaign:
    @pytest.fixture(scope="class")
    def runs(self, tmp_path_factory):
        """One pinned scenario executed three ways: scratch, delta-chained,
        delta-chained on a two-worker pool."""
        base = tmp_path_factory.mktemp("scenario-runs")
        dirs = []
        for name in ("scratch", "delta", "pool"):
            directory = str(base / name)
            os.makedirs(directory)
            export_stanford_directory(directory, **EXPORT_OPTIONS)
            dirs.append(directory)
        scenario = generate_scenario(dirs[0], steps=5, seed=3, workload="stanford")
        queries = [ForAllPairs(Reach), Loop()]
        scratch = ScenarioCampaign(
            dirs[0], scenario, queries=queries, workers=1, delta=False
        ).run()
        chained = ScenarioCampaign(
            dirs[1], scenario, queries=queries, workers=1, delta=True
        ).run()
        pooled = ScenarioCampaign(
            dirs[2], scenario, queries=queries, workers=2, delta=True
        ).run()
        return scenario, scratch, chained, pooled

    def test_per_step_answers_bit_identical(self, runs):
        scenario, scratch, chained, pooled = runs
        for a, b, c in zip(scratch.outcomes, chained.outcomes, pooled.outcomes):
            assert a.fingerprints == b.fingerprints == c.fingerprints, (
                f"state {a.index} diverged: "
                f"{self._shrink(runs, a.index)}"
            )
        assert scratch.fingerprint() == chained.fingerprint() == pooled.fingerprint()

    @staticmethod
    def _shrink(runs, bad_index):
        """Greedy shrink for the failure message: the earliest step prefix
        that still diverges (per-step fingerprints make the first divergence
        the minimal reproducer — every earlier state already agreed)."""
        scenario = runs[0]
        steps = [s for s in scenario.steps if s.index <= bad_index]
        return (
            f"minimal failing prefix = steps 1..{bad_index} "
            f"({[s.kind for s in steps]})"
        )

    def test_delta_splices_most_states(self, runs):
        _, scratch, chained, _ = runs
        assert all(o.spliced_jobs == 0 for o in scratch.outcomes)
        assert chained.steps_delta_spliced >= 1
        spliced = [o for o in chained.outcomes if o.spliced_jobs]
        for outcome in spliced:
            twin = scratch.outcomes[outcome.index]
            assert outcome.executed_jobs < twin.executed_jobs

    def test_stats_and_report_threading(self, runs):
        _, _, chained, _ = runs
        report = chained.to_dict()
        assert report["scenario_steps"] == 5
        assert report["steps_delta_spliced"] == chained.steps_delta_spliced
        assert report["violations_total"] == len(chained.violations)
        assert len(report["steps"]) == 6  # baseline + 5 transient states
        for step in report["steps"]:
            stats = step["stats"]
            assert step["executed_jobs"] == stats["executed_jobs"]
            assert (
                stats["executed_jobs"]
                == stats["jobs"]
                - stats["jobs_spliced_by_delta"]
                - stats["jobs_skipped_by_symmetry"]
            )
        json.dumps(report)  # the whole report must be JSON-able

    def test_violations_confined_to_transient_window(self, runs):
        scenario, _, chained, _ = runs
        kinds = [s.kind for s in scenario.steps]
        inject = scenario.steps[kinds.index("violation-inject")].index
        revert = scenario.steps[kinds.index("violation-revert")].index
        for outcome in chained.outcomes:
            if inject <= outcome.index < revert:
                assert outcome.violations, f"state {outcome.index} saw no violation"
            else:
                assert not outcome.violations
        assert chained.violations

    def test_cluster_representatives_recorded_at_their_step(self, runs):
        _, _, chained, _ = runs
        assert chained.clusters
        by_step = {o.index: o for o in chained.outcomes}
        for cluster in chained.clusters:
            rep = cluster.representative
            recorded = by_step[int(rep["step"])].violations
            assert any(
                v["fingerprint"] == rep["fingerprint"] for v in recorded
            )

    def test_seed_pinned_fuzz_same_seed_same_answers(self, tmp_path):
        """Same seed, fresh byte-identical exports: identical step sequence
        and identical per-step answer fingerprint tuples."""
        results = []
        for name in ("one", "two"):
            directory = str(tmp_path / name)
            os.makedirs(directory)
            export_stanford_directory(directory, **EXPORT_OPTIONS)
            scenario = generate_scenario(directory, steps=3, seed=9)
            run = ScenarioCampaign(
                directory, scenario, queries=[Loop()], workers=1
            ).run()
            results.append((scenario.fingerprint(), run.fingerprint(),
                            tuple(o.fingerprints for o in run.outcomes)))
        assert results[0] == results[1]

    def test_rejects_mismatched_directory(self, tmp_path):
        directory = _export(tmp_path, "gen")
        scenario = generate_scenario(directory, steps=2, seed=1)
        other = str(tmp_path / "other")
        os.makedirs(other)
        export_stanford_directory(other, **{**EXPORT_OPTIONS, "seed": 12})
        with pytest.raises(ValueError, match="different directory state"):
            ScenarioCampaign(other, scenario).run()


def _synthetic_violations():
    """Two dense groups (a loop seen from several sources, an invariant
    breach seen twice) plus one singleton reach failure."""
    violations = []
    for source in ("acl0:in0", "acl1:in0", "zr0:in0"):
        violations.append(
            {
                "step": 2,
                "step_kind": "violation-inject",
                "query": "loop()",
                "query_kind": "loop",
                "source": source,
                "trace": ["zr1:in0", "core0:in-z1", "zr1:in-core0"],
                "reason": "loop detected",
                "detected_at": "core0:in-z1",
            }
        )
    for step in (2, 3):
        violations.append(
            {
                "step": step,
                "step_kind": "violation-inject",
                "query": "invariant(IpSrc)",
                "query_kind": "invariant",
                "source": "edge-static-nat:in0",
                "trace": ["edge-static-nat:in0"],
                "reason": "field IpSrc not preserved",
            }
        )
    violations.append(
        {
            "step": 4,
            "step_kind": "fib-delete",
            "query": "reach(acl0:in0, zr1:hosts)",
            "query_kind": "reach",
            "source": "acl0:in0",
            "trace": [],
            "reason": "reach does not hold",
        }
    )
    for violation in violations:
        violation["fingerprint"] = violation_fingerprint(violation)
    return violations


class TestReducer:
    def test_clusters_are_deterministic_and_order_independent(self):
        violations = _synthetic_violations()
        first = [c.to_dict() for c in cluster_violations(violations)]
        second = [c.to_dict() for c in cluster_violations(list(reversed(violations)))]
        assert first == second
        ranks = [c["rank"] for c in first]
        assert ranks == sorted(ranks) == list(range(1, len(first) + 1))
        sizes = [c["size"] for c in first]
        assert sizes == sorted(sizes, reverse=True)

    def test_groups_by_structure_not_step(self):
        clusters = cluster_violations(_synthetic_violations())
        # 3 loop traces -> one cluster; 2 invariant breaches -> one cluster;
        # the lone reach failure survives as a noise singleton.
        assert [c.size for c in clusters] == [3, 2, 1]
        assert clusters[0].representative["query_kind"] == "loop"
        assert clusters[1].representative["query_kind"] == "invariant"
        assert clusters[2].noise
        assert sorted(clusters[1].to_dict()["steps"]) == [2, 3]

    def test_representative_is_a_member(self):
        for cluster in cluster_violations(_synthetic_violations()):
            assert cluster.representative in cluster.members

    def test_element_kinds_feature(self):
        violation = _synthetic_violations()[0]
        kinds = {"zr1": "router", "core0": "router"}
        features = trace_features(violation, kinds)
        assert "element-kind:router" in features
        assert "port:core0:in-z1" in features

    def test_empty_input(self):
        assert cluster_violations([]) == []

    def test_mutation_corrupting_features_shifts_cluster_count(self, monkeypatch):
        """The satellite mutation test: corrupt the reducer's feature
        extraction and assert the cluster-count drift is detected.  If
        clustering stopped consulting ``trace_features`` (or the feature
        set degenerated), structurally different violations would collapse
        into one cluster and this guard would fail loudly."""
        import repro.scenarios.reduce as reduce_mod

        violations = _synthetic_violations()
        baseline = len(cluster_violations(violations))
        assert baseline == 3
        monkeypatch.setattr(
            reduce_mod, "trace_features", lambda v, kinds=None: frozenset({"x"})
        )
        corrupted = len(reduce_mod.cluster_violations(violations))
        assert corrupted != baseline, (
            "feature corruption went undetected: cluster count did not drift"
        )
        assert corrupted == 1  # everything collapsed into one blob


class TestScenarioCli:
    def test_scenario_subcommand_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.json"
        export_dir = tmp_path / "export"
        code = main(
            [
                "scenario",
                "--workload", "stanford",
                "--workload-option", "zones=2",
                "--workload-option", "internal_prefixes_per_zone=4",
                "--workload-option", "service_acl_rules=2",
                "--workload-option", "edge_asa=true",
                "--steps", "2",
                "--seed", "3",
                "--query", "loop()",
                "--dir", str(export_dir),
                "-o", str(out),
            ]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["scenario_steps"] == 2
        assert len(report["steps"]) == 3
        assert report["scenario"]["seed"] == 3
        assert "violations_total" in report and "clusters" in report
        err = capsys.readouterr().err
        assert "verified 3 states" in err

    def test_scenario_requires_a_network(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["scenario"])


class TestExportedDirectoryModel:
    def test_edge_asa_island_is_unreachable_from_injections(self, tmp_path):
        """The delta story depends on the ASA being a source island: nothing
        links into it, so config churn only re-executes its own ports."""
        from repro.core.delta import affected_injections

        directory = _export(tmp_path)
        model = NetworkModel.from_directory(directory)
        assert model.validate() == []
        injections = model.injection_ports()
        assert ("edge-static-nat", "in0") in injections
        touched = [
            name for name in (e.name for e in model.network())
            if name.startswith("edge-")
        ]
        affected = affected_injections(model.network(), injections, touched)
        assert affected
        assert all(element.startswith("edge-") for element, _ in affected)
