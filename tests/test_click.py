"""Tests for the Click element models and the Click configuration parser."""

import pytest

from repro import ExecutionSettings, Network, SymbolicExecutor, models
from repro.click import (
    ClickParseError,
    parse_click_config,
)
from repro.click.elements import (
    BROADCAST_MAC,
    build_check_ip_header,
    build_dec_ip_ttl,
    build_discard,
    build_drop_broadcasts,
    build_ether_encap,
    build_ether_rewrite,
    build_host_ether_filter,
    build_ip_classifier,
    build_ip_filter,
    build_ip_mirror_element,
    build_ip_rewriter,
    build_queue,
    build_strip_ether,
    build_vlan_decap,
    build_vlan_encap,
)
from repro.core import checks as V
from repro.sefl import (
    ETHER_HEADER_BITS,
    EtherDst,
    EtherType,
    IpDst,
    IpProto,
    IpSrc,
    IpTtl,
    TcpDst,
    ip_to_number,
    mac_to_number,
)
from repro.sefl.fields import ETHERTYPE_IP, ETHERTYPE_VLAN, VlanId

SETTINGS = ExecutionSettings(record_failed_paths=True)


def run_element(element, packet, port="in0"):
    network = Network()
    network.add_element(element)
    return SymbolicExecutor(network, settings=SETTINGS).inject(packet, element.name, port)


class TestSimpleElements:
    def test_queue_is_a_wire(self):
        result = run_element(build_queue("q"), models.symbolic_tcp_packet())
        assert result.reaching("q", "out0")

    def test_discard_drops_everything(self):
        result = run_element(build_discard("d"), models.symbolic_tcp_packet())
        assert not result.delivered()

    def test_drop_broadcasts(self):
        broadcast = models.symbolic_tcp_packet({EtherDst: BROADCAST_MAC})
        unicast = models.symbolic_tcp_packet({EtherDst: 0x1234})
        assert not run_element(build_drop_broadcasts("b"), broadcast).delivered()
        assert run_element(build_drop_broadcasts("b"), unicast).delivered()

    def test_check_ip_header(self):
        good = models.symbolic_tcp_packet({IpSrc: ip_to_number("10.0.0.1")})
        bad_version = models.symbolic_tcp_packet({EtherType: 0x0806})
        assert run_element(build_check_ip_header("c"), good).delivered()
        assert not run_element(build_check_ip_header("c"), bad_version).delivered()

    def test_host_ether_filter(self):
        mac = mac_to_number("00:aa:00:aa:00:aa")
        accepted = models.symbolic_tcp_packet({EtherDst: mac})
        rejected = models.symbolic_tcp_packet({EtherDst: mac + 1})
        element = build_host_ether_filter("h", "00:aa:00:aa:00:aa")
        assert run_element(element, accepted).delivered()
        assert not run_element(element, rejected).delivered()

    def test_ether_rewrite(self):
        element = build_ether_rewrite("rw", dst="02:00:00:00:00:99")
        result = run_element(element, models.symbolic_tcp_packet())
        path = result.delivered()[0]
        assert V.field_concrete_value(path, EtherDst) == mac_to_number("02:00:00:00:00:99")


class TestDecIpTtl:
    def test_correct_model_decrements(self):
        element = build_dec_ip_ttl("ttl")
        result = run_element(element, models.symbolic_tcp_packet({IpTtl: 5}))
        path = result.delivered()[0]
        assert V.field_concrete_value(path, IpTtl) == 4

    def test_correct_model_drops_expired(self):
        element = build_dec_ip_ttl("ttl")
        result = run_element(element, models.symbolic_tcp_packet({IpTtl: 0}))
        assert not result.delivered()

    def test_buggy_model_requires_ttl_two(self):
        """The decrement-then-check ordering bug of §8.3: TTL 1 packets are
        wrongly predicted to be dropped."""
        element = build_dec_ip_ttl("ttl", buggy=True)
        assert not run_element(element, models.symbolic_tcp_packet({IpTtl: 1})).delivered()
        assert run_element(build_dec_ip_ttl("ttl"), models.symbolic_tcp_packet({IpTtl: 1})).delivered()


class TestClassifiersAndFilters:
    FILTERS = [
        {"proto": 6, "dst_port": 80},
        {"proto": 17},
        {"dst": "10.0.0.0/8"},
    ]

    def test_classifier_routes_to_first_match(self):
        element = build_ip_classifier("cls", self.FILTERS)
        http = models.symbolic_tcp_packet({IpProto: 6, TcpDst: 80})
        result = run_element(element, http)
        assert [p.last_port.port for p in result.delivered()] == ["out0"]

    def test_classifier_respects_rule_priority(self):
        element = build_ip_classifier("cls", self.FILTERS)
        # Matches both filter 0 (tcp/80) and filter 2 (10/8): must exit out0.
        packet = models.symbolic_tcp_packet(
            {IpProto: 6, TcpDst: 80, IpDst: ip_to_number("10.1.1.1")}
        )
        result = run_element(element, packet)
        assert [p.last_port.port for p in result.delivered()] == ["out0"]

    def test_classifier_drops_unmatched(self):
        element = build_ip_classifier("cls", self.FILTERS)
        packet = models.symbolic_tcp_packet(
            {IpProto: 6, TcpDst: 22, IpDst: ip_to_number("192.168.0.1")}
        )
        assert not run_element(element, packet).delivered()

    def test_classifier_symbolic_packet_has_one_path_per_feasible_output(self):
        element = build_ip_classifier("cls", self.FILTERS)
        result = run_element(element, models.symbolic_tcp_packet())
        # The injected packet is TCP (IpProto pinned to 6), so the UDP filter
        # can never match: exactly the two feasible outputs produce paths.
        assert {p.last_port.port for p in result.delivered()} == {"out0", "out2"}
        # With a symbolic protocol every output is reachable.
        from repro.sefl import SymbolicValue

        symbolic_proto = models.symbolic_tcp_packet({IpProto: SymbolicValue("proto", 8)})
        result = run_element(element, symbolic_proto)
        assert len(result.delivered()) == len(self.FILTERS)

    def test_ip_filter_allow_and_deny(self):
        element = build_ip_filter(
            "f", [("deny", {"dst_port": 23}), ("allow", {"proto": 6})]
        )
        telnet = models.symbolic_tcp_packet({IpProto: 6, TcpDst: 23})
        web = models.symbolic_tcp_packet({IpProto: 6, TcpDst: 80})
        assert not run_element(element, telnet).delivered()
        assert run_element(element, web).delivered()


class TestEncapsulationElements:
    def test_ether_encap_after_strip(self):
        network = Network()
        network.add_element(build_strip_ether("strip"))
        network.add_element(build_ether_encap("encap", src="02:00:00:00:00:01", dst="02:00:00:00:00:02"))
        network.add_link(("strip", "out0"), ("encap", "in0"))
        result = SymbolicExecutor(network, settings=SETTINGS).inject(
            models.symbolic_tcp_packet(), "strip", "in0"
        )
        path = result.reaching("encap", "out0")[0]
        assert V.field_concrete_value(path, EtherDst) == mac_to_number("02:00:00:00:00:02")
        assert V.field_invariant(path, IpDst)

    def test_vlan_encap_sets_tpid_and_id(self):
        element = build_vlan_encap("v", vlan_id=302)
        result = run_element(element, models.symbolic_tcp_packet())
        path = result.delivered()[0]
        assert V.field_concrete_value(path, EtherType) == ETHERTYPE_VLAN
        assert V.field_concrete_value(path, VlanId) == 302

    def test_vlan_decap_restores_ethertype(self):
        network = Network()
        network.add_element(build_vlan_encap("enc", vlan_id=100))
        network.add_element(build_vlan_decap("dec"))
        network.add_link(("enc", "out0"), ("dec", "in0"))
        result = SymbolicExecutor(network, settings=SETTINGS).inject(
            models.symbolic_tcp_packet(), "enc", "in0"
        )
        path = result.reaching("dec", "out0")[0]
        assert V.field_concrete_value(path, EtherType) == ETHERTYPE_IP

    def test_vlan_decap_requires_vlan_tag(self):
        result = run_element(build_vlan_decap("dec"), models.symbolic_tcp_packet())
        assert not result.delivered()

    def test_buggy_vlan_decap_leaves_wrong_ethertype(self):
        network = Network()
        network.add_element(build_vlan_encap("enc", vlan_id=100))
        network.add_element(build_vlan_decap("dec", buggy=True))
        network.add_link(("enc", "out0"), ("dec", "in0"))
        result = SymbolicExecutor(network, settings=SETTINGS).inject(
            models.symbolic_tcp_packet(), "enc", "in0"
        )
        path = result.reaching("dec", "out0")[0]
        assert V.field_concrete_value(path, EtherType) == ETHERTYPE_VLAN


class TestIpRewriterCycle:
    """The Figure 9 experiment: a stateful firewall bounced through an
    IPMirror loops when the endpoints may coincide."""

    def build(self, constrain_distinct):
        network = Network()
        network.add_element(
            build_ip_rewriter("rw", constrain_distinct_endpoints=constrain_distinct)
        )
        network.add_element(build_ip_mirror_element("mirror"))
        network.add_link(("rw", "out0"), ("mirror", "in0"))
        network.add_link(("mirror", "out0"), ("rw", "in1"))
        return network

    def test_unconstrained_model_loops(self):
        network = self.build(constrain_distinct=False)
        result = SymbolicExecutor(network, settings=SETTINGS).inject(
            models.symbolic_tcp_packet(), "rw", "in0"
        )
        assert result.loops()

    def test_fixed_model_does_not_loop(self):
        network = self.build(constrain_distinct=True)
        result = SymbolicExecutor(network, settings=SETTINGS).inject(
            models.symbolic_tcp_packet(), "rw", "in0"
        )
        assert not result.loops()
        assert result.reaching("rw", "out1")


class TestClickParser:
    CONFIG = """
    // a tiny firewall pipeline
    filter :: HostEtherFilter(00:aa:00:aa:00:aa);
    ttl :: DecIPTTL;
    cls :: IPClassifier(proto=6 dst_port=80, proto=17);
    web :: Queue;
    dns :: Discard;

    filter -> ttl;
    ttl -> cls;
    cls [0] -> [0] web;
    cls [1] -> [0] dns;
    """

    def test_parse_builds_all_elements(self):
        network = parse_click_config(self.CONFIG)
        assert {e.name for e in network} == {"filter", "ttl", "cls", "web", "dns"}
        assert len(network.links) == 4

    def test_parsed_network_executes(self):
        network = parse_click_config(self.CONFIG)
        packet = models.symbolic_tcp_packet(
            {EtherDst: mac_to_number("00:aa:00:aa:00:aa"), IpProto: 6, TcpDst: 80, IpTtl: 9}
        )
        result = SymbolicExecutor(network, settings=SETTINGS).inject(packet, "filter", "in0")
        assert result.reaching("web", "out0")

    def test_comments_and_whitespace_ignored(self):
        network = parse_click_config("/* block */ q :: Queue; // trailing\n")
        assert network.has_element("q")

    def test_unknown_element_class_rejected(self):
        with pytest.raises(ClickParseError):
            parse_click_config("x :: FluxCapacitor;")

    def test_unknown_connection_target_rejected(self):
        with pytest.raises(ClickParseError):
            parse_click_config("a :: Queue; a -> ghost;")

    def test_malformed_statement_rejected(self):
        with pytest.raises(ClickParseError):
            parse_click_config("this is not click;")

    def test_bad_filter_clause_rejected(self):
        with pytest.raises(ClickParseError):
            parse_click_config("c :: IPClassifier(colour=blue);")

    def test_ipfilter_rules(self):
        network = parse_click_config(
            'f :: IPFilter(deny dst_port=23, allow proto=6);'
        )
        packet = models.symbolic_tcp_packet({IpProto: 6, TcpDst: 23})
        result = SymbolicExecutor(network, settings=SETTINGS).inject(packet, "f", "in0")
        assert not result.delivered()

    def test_hex_and_int_arguments(self):
        network = parse_click_config("e :: EtherEncap(0x0800, 02:00:00:00:00:01, 02:00:00:00:00:02);")
        assert network.has_element("e")
