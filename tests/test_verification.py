"""Tests for the verification queries of §6: reachability helpers, invariants,
header visibility, subsumption and memory-safety reporting."""

import pytest

from repro import Network, NetworkElement, SymbolicExecutor, models
from repro.core import checks as V
from repro.sefl import (
    Assign,
    Constrain,
    Eq,
    Forward,
    If,
    InstructionBlock,
    IpDst,
    IpSrc,
    Le,
    SymbolicValue,
    TcpDst,
    TcpPayload,
    ip_to_number,
)
from repro.solver.ast import Const, Eq as SEq, Ne as SNe, Var
from repro.solver.solver import Solver


def run_single(program, packet=None):
    network = Network()
    element = NetworkElement("box", ["in0"], ["out0", "out1"])
    element.set_input_program("in0", program)
    network.add_element(element)
    executor = SymbolicExecutor(network)
    return executor.inject(packet or models.symbolic_tcp_packet(), "box", "in0")


class TestReachability:
    def test_reachable_paths_and_helpers(self):
        result = run_single(If(Eq(TcpDst, 80), Forward("out0"), Forward("out1")))
        assert V.is_reachable(result, "box", "out0")
        assert V.is_reachable(result, "box", "out1")
        assert not V.is_reachable(result, "box", "out7")
        assert len(V.reachable_paths(result, "box")) == 2

    def test_admitted_values_reflect_constraints(self):
        result = run_single(
            InstructionBlock(Constrain(Eq(TcpDst, 8080)), Forward("out0"))
        )
        path = result.reaching("box", "out0")[0]
        values = V.admitted_values(path, TcpDst, samples=3)
        assert values == [8080]

    def test_admitted_values_multiple_samples(self):
        result = run_single(
            InstructionBlock(Constrain(Le(TcpDst, 2)), Forward("out0"))
        )
        path = result.reaching("box", "out0")[0]
        values = V.admitted_values(path, TcpDst, samples=5)
        assert set(values) <= {0, 1, 2}
        assert len(values) == 3


class TestInvariantsAndVisibility:
    def test_invariant_when_untouched(self):
        result = run_single(Forward("out0"))
        path = result.delivered()[0]
        assert V.field_invariant(path, IpDst)

    def test_not_invariant_after_rewrite(self):
        result = run_single(
            InstructionBlock(Assign(IpDst, ip_to_number("1.2.3.4")), Forward("out0"))
        )
        path = result.delivered()[0]
        assert not V.field_invariant(path, IpDst)

    def test_invariant_after_rewrite_back(self):
        program = InstructionBlock(
            Assign(IpDst, ip_to_number("1.2.3.4")),
            Assign(IpDst, IpSrc),
            Assign(IpSrc, IpDst),  # both now hold the original IpSrc symbol
            Forward("out0"),
        )
        result = run_single(program)
        path = result.delivered()[0]
        assert V.values_equal(path, IpSrc, IpDst)

    def test_invariant_forced_by_constraints(self):
        # The field is overwritten with a fresh symbol, but a constraint pins
        # the fresh symbol to the original value: semantically invariant.
        program = InstructionBlock(
            Assign("copy", SymbolicValue("copy", 16)),
            Forward("out0"),
        )
        # Simpler: constrain TcpDst == 80 at entry and reassign to 80.
        program = InstructionBlock(
            Constrain(Eq(TcpDst, 80)),
            Assign(TcpDst, 80),
            Forward("out0"),
        )
        result = run_single(program)
        path = result.delivered()[0]
        assert V.field_invariant(path, TcpDst)

    def test_header_visibility_distinguishes_masking(self):
        result = run_single(
            InstructionBlock(
                Assign(TcpPayload, SymbolicValue("cipher", 32)), Forward("out0")
            )
        )
        path = result.delivered()[0]
        original = path.state.variable_history(TcpPayload)[0]
        assert not V.header_visible(path, TcpPayload, original)

    def test_header_visible_when_unchanged(self):
        result = run_single(Forward("out0"))
        path = result.delivered()[0]
        original = path.state.variable_history(TcpDst)[0]
        assert V.header_visible(path, TcpDst, original)

    def test_field_concrete_value(self):
        from repro.sefl import TcpSrc

        result = run_single(
            InstructionBlock(Assign(TcpDst, 443), Forward("out0"))
        )
        path = result.delivered()[0]
        assert V.field_concrete_value(path, TcpDst) == 443
        assert V.field_concrete_value(path, TcpSrc) is None


class TestSubsumption:
    def test_identical_states_subsume(self):
        x = Var("x", 16)
        constraints = [SEq(x, Const(5))]
        assert V.state_subsumed(constraints, constraints)

    def test_more_specific_new_state_is_not_a_loop(self):
        x = Var("x", 16)
        old = [SEq(x, Const(5))]  # old: x == 5
        new = [SEq(x, Const(5)), SNe(x, Const(6))]
        # new covers old (every x==5 packet satisfies new), so subsumed.
        assert V.state_subsumed(old, new)

    def test_disjoint_states_do_not_subsume(self):
        x = Var("x", 16)
        assert not V.state_subsumed([SEq(x, Const(5))], [SEq(x, Const(6))])

    def test_narrower_new_state_does_not_subsume(self):
        from repro.solver.ast import Le as SLe

        x = Var("x", 16)
        old = [SLe(x, Const(10))]
        new = [SEq(x, Const(3))]
        assert not V.state_subsumed(old, new)


class TestAdmittedValuesAdversarial:
    """Edge cases for the witness-enumeration helper."""

    def test_zero_samples_returns_nothing(self):
        result = run_single(Forward("out0"))
        path = result.delivered()[0]
        assert V.admitted_values(path, TcpDst, samples=0) == []

    def test_exhausted_domain_stops_early(self):
        # TcpDst pinned to {80, 443}: asking for 10 witnesses must yield
        # exactly the two admissible values, not loop or fabricate more.
        from repro.sefl import OneOf

        result = run_single(
            InstructionBlock(Constrain(OneOf(TcpDst, [80, 443])), Forward("out0"))
        )
        path = result.reaching("box", "out0")[0]
        values = V.admitted_values(path, TcpDst, samples=10)
        assert sorted(values) == [80, 443]

    def test_witnesses_are_distinct(self):
        result = run_single(Forward("out0"))
        path = result.delivered()[0]
        values = V.admitted_values(path, TcpDst, samples=4)
        assert len(values) == len(set(values)) == 4

    def test_contradictory_constraints_admit_nothing(self):
        # Build a path record whose constraints are unsatisfiable by hand:
        # delivered paths never carry them, but callers can ask anyway.
        result = run_single(Forward("out0"))
        path = result.delivered()[0]
        path.state.add_constraint(SEq(Var("z", 8), Const(1)))
        path.state.add_constraint(SEq(Var("z", 8), Const(2)))
        assert V.admitted_values(path, TcpDst, samples=3) == []

    def test_rewritten_field_samples_current_value(self):
        # After Assign(TcpDst, 7) the only admitted value is 7 even though
        # the injected symbol ranged over the full 16-bit space.
        result = run_single(
            InstructionBlock(Assign(TcpDst, 7), Forward("out0"))
        )
        path = result.delivered()[0]
        assert V.admitted_values(path, TcpDst, samples=3) == [7]


class TestSubsumptionAdversarial:
    def test_empty_old_state_is_subsumed_by_empty_new(self):
        assert V.state_subsumed([], [])

    def test_unconstrained_old_not_subsumed_by_constrained_new(self):
        x = Var("x", 16)
        # Old admits everything; new only x==5: not a loop.
        assert not V.state_subsumed([], [SEq(x, Const(5))])

    def test_constrained_old_subsumed_by_unconstrained_new(self):
        x = Var("x", 16)
        assert V.state_subsumed([SEq(x, Const(5))], [])

    def test_unsatisfiable_old_state_is_vacuously_subsumed(self):
        # An old state admitting no packets is covered by anything — the
        # "loop" is vacuous but the implication holds, exactly as §6 defines.
        x = Var("x", 16)
        contradiction = [SEq(x, Const(1)), SEq(x, Const(2))]
        assert V.state_subsumed(contradiction, [SEq(x, Const(9))])

    def test_semantically_equal_but_syntactically_different(self):
        from repro.solver.ast import Le as SLe, Lt as SLt

        x = Var("x", 16)
        # x <= 4  vs  x < 5: same set, different syntax — must subsume both ways.
        assert V.state_subsumed([SLe(x, Const(4))], [SLt(x, Const(5))])
        assert V.state_subsumed([SLt(x, Const(5))], [SLe(x, Const(4))])


class TestHeaderVisibilityAdversarial:
    def test_not_visible_after_fresh_symbol_even_if_width_matches(self):
        result = run_single(
            InstructionBlock(
                Assign(TcpDst, SymbolicValue("rewrite", 16)), Forward("out0")
            )
        )
        path = result.delivered()[0]
        original = path.state.variable_history(TcpDst)[0]
        assert not V.header_visible(path, TcpDst, original)

    def test_visible_when_fresh_symbol_is_pinned_to_original(self):
        # Overwritten with a fresh symbol, but a constraint forces the fresh
        # symbol to equal the original: semantically still visible.
        from repro.sefl import Allocate

        program = InstructionBlock(
            Allocate("stash", 16),
            Assign("stash", SymbolicValue("stash", 16)),
            Constrain(Eq("stash", TcpDst)),
            Assign(TcpDst, "stash"),
            Forward("out0"),
        )
        result = run_single(program)
        path = result.delivered()[0]
        original = path.state.variable_history(TcpDst)[0]
        assert V.header_visible(path, TcpDst, original)

    def test_concrete_overwrite_visible_only_under_matching_constraint(self):
        # Without the constraint the original symbol may differ from 80.
        result = run_single(
            InstructionBlock(Assign(TcpDst, 80), Forward("out0"))
        )
        path = result.delivered()[0]
        original = path.state.variable_history(TcpDst)[0]
        assert not V.header_visible(path, TcpDst, original)
        # With the constraint pinning the original to 80 it is visible.
        result = run_single(
            InstructionBlock(
                Constrain(Eq(TcpDst, 80)), Assign(TcpDst, 80), Forward("out0")
            )
        )
        path = result.delivered()[0]
        original = path.state.variable_history(TcpDst)[0]
        assert V.header_visible(path, TcpDst, original)


class TestFailureClassification:
    def test_memory_safety_violations_reported(self):
        from repro.sefl import Tag

        result = run_single(
            InstructionBlock(Constrain(Eq(Tag("L3") + 999, 1)), Forward("out0"))
        )
        assert len(V.memory_safety_violations(result)) == 1
        assert not V.constraint_violations(result)

    def test_constraint_violations_reported(self):
        result = run_single(
            InstructionBlock(
                Constrain(Eq(TcpDst, 1)), Constrain(Eq(TcpDst, 2)), Forward("out0")
            )
        )
        assert len(V.constraint_violations(result)) == 1
        assert not V.memory_safety_violations(result)
