"""Tests for the verification queries of §6: reachability helpers, invariants,
header visibility, subsumption and memory-safety reporting."""

import pytest

from repro import Network, NetworkElement, SymbolicExecutor, models
from repro.core import verification as V
from repro.sefl import (
    Assign,
    Constrain,
    Eq,
    Forward,
    If,
    InstructionBlock,
    IpDst,
    IpSrc,
    Le,
    SymbolicValue,
    TcpDst,
    TcpPayload,
    ip_to_number,
)
from repro.solver.ast import Const, Eq as SEq, Ne as SNe, Var
from repro.solver.solver import Solver


def run_single(program, packet=None):
    network = Network()
    element = NetworkElement("box", ["in0"], ["out0", "out1"])
    element.set_input_program("in0", program)
    network.add_element(element)
    executor = SymbolicExecutor(network)
    return executor.inject(packet or models.symbolic_tcp_packet(), "box", "in0")


class TestReachability:
    def test_reachable_paths_and_helpers(self):
        result = run_single(If(Eq(TcpDst, 80), Forward("out0"), Forward("out1")))
        assert V.is_reachable(result, "box", "out0")
        assert V.is_reachable(result, "box", "out1")
        assert not V.is_reachable(result, "box", "out7")
        assert len(V.reachable_paths(result, "box")) == 2

    def test_admitted_values_reflect_constraints(self):
        result = run_single(
            InstructionBlock(Constrain(Eq(TcpDst, 8080)), Forward("out0"))
        )
        path = result.reaching("box", "out0")[0]
        values = V.admitted_values(path, TcpDst, samples=3)
        assert values == [8080]

    def test_admitted_values_multiple_samples(self):
        result = run_single(
            InstructionBlock(Constrain(Le(TcpDst, 2)), Forward("out0"))
        )
        path = result.reaching("box", "out0")[0]
        values = V.admitted_values(path, TcpDst, samples=5)
        assert set(values) <= {0, 1, 2}
        assert len(values) == 3


class TestInvariantsAndVisibility:
    def test_invariant_when_untouched(self):
        result = run_single(Forward("out0"))
        path = result.delivered()[0]
        assert V.field_invariant(path, IpDst)

    def test_not_invariant_after_rewrite(self):
        result = run_single(
            InstructionBlock(Assign(IpDst, ip_to_number("1.2.3.4")), Forward("out0"))
        )
        path = result.delivered()[0]
        assert not V.field_invariant(path, IpDst)

    def test_invariant_after_rewrite_back(self):
        program = InstructionBlock(
            Assign(IpDst, ip_to_number("1.2.3.4")),
            Assign(IpDst, IpSrc),
            Assign(IpSrc, IpDst),  # both now hold the original IpSrc symbol
            Forward("out0"),
        )
        result = run_single(program)
        path = result.delivered()[0]
        assert V.values_equal(path, IpSrc, IpDst)

    def test_invariant_forced_by_constraints(self):
        # The field is overwritten with a fresh symbol, but a constraint pins
        # the fresh symbol to the original value: semantically invariant.
        program = InstructionBlock(
            Assign("copy", SymbolicValue("copy", 16)),
            Forward("out0"),
        )
        # Simpler: constrain TcpDst == 80 at entry and reassign to 80.
        program = InstructionBlock(
            Constrain(Eq(TcpDst, 80)),
            Assign(TcpDst, 80),
            Forward("out0"),
        )
        result = run_single(program)
        path = result.delivered()[0]
        assert V.field_invariant(path, TcpDst)

    def test_header_visibility_distinguishes_masking(self):
        result = run_single(
            InstructionBlock(
                Assign(TcpPayload, SymbolicValue("cipher", 32)), Forward("out0")
            )
        )
        path = result.delivered()[0]
        original = path.state.variable_history(TcpPayload)[0]
        assert not V.header_visible(path, TcpPayload, original)

    def test_header_visible_when_unchanged(self):
        result = run_single(Forward("out0"))
        path = result.delivered()[0]
        original = path.state.variable_history(TcpDst)[0]
        assert V.header_visible(path, TcpDst, original)

    def test_field_concrete_value(self):
        from repro.sefl import TcpSrc

        result = run_single(
            InstructionBlock(Assign(TcpDst, 443), Forward("out0"))
        )
        path = result.delivered()[0]
        assert V.field_concrete_value(path, TcpDst) == 443
        assert V.field_concrete_value(path, TcpSrc) is None


class TestSubsumption:
    def test_identical_states_subsume(self):
        x = Var("x", 16)
        constraints = [SEq(x, Const(5))]
        assert V.state_subsumed(constraints, constraints)

    def test_more_specific_new_state_is_not_a_loop(self):
        x = Var("x", 16)
        old = [SEq(x, Const(5))]  # old: x == 5
        new = [SEq(x, Const(5)), SNe(x, Const(6))]
        # new covers old (every x==5 packet satisfies new), so subsumed.
        assert V.state_subsumed(old, new)

    def test_disjoint_states_do_not_subsume(self):
        x = Var("x", 16)
        assert not V.state_subsumed([SEq(x, Const(5))], [SEq(x, Const(6))])

    def test_narrower_new_state_does_not_subsume(self):
        from repro.solver.ast import Le as SLe

        x = Var("x", 16)
        old = [SLe(x, Const(10))]
        new = [SEq(x, Const(3))]
        assert not V.state_subsumed(old, new)


class TestFailureClassification:
    def test_memory_safety_violations_reported(self):
        from repro.sefl import Tag

        result = run_single(
            InstructionBlock(Constrain(Eq(Tag("L3") + 999, 1)), Forward("out0"))
        )
        assert len(V.memory_safety_violations(result)) == 1
        assert not V.constraint_violations(result)

    def test_constraint_violations_reported(self):
        result = run_single(
            InstructionBlock(
                Constrain(Eq(TcpDst, 1)), Constrain(Eq(TcpDst, 2)), Forward("out0")
            )
        )
        assert len(V.constraint_violations(result)) == 1
        assert not V.memory_safety_violations(result)
