"""Tests for interval sets, the solver's domain representation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.solver.intervals import (
    Interval,
    IntervalSet,
    intervals_from_prefixes,
    prefix_to_interval,
)


# ---------------------------------------------------------------------------
# Interval basics
# ---------------------------------------------------------------------------


class TestInterval:
    def test_contains(self):
        interval = Interval(3, 7)
        assert 3 in interval
        assert 7 in interval
        assert 5 in interval
        assert 2 not in interval
        assert 8 not in interval

    def test_len(self):
        assert len(Interval(0, 0)) == 1
        assert len(Interval(2, 9)) == 8

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(5, 4)

    def test_intersection(self):
        assert Interval(0, 5).intersection(Interval(3, 9)) == Interval(3, 5)
        assert Interval(0, 2).intersection(Interval(3, 9)) is None

    def test_intersects(self):
        assert Interval(0, 5).intersects(Interval(5, 9))
        assert not Interval(0, 4).intersects(Interval(5, 9))


# ---------------------------------------------------------------------------
# IntervalSet construction and queries
# ---------------------------------------------------------------------------


class TestIntervalSetConstruction:
    def test_empty(self):
        assert IntervalSet.empty().is_empty()
        assert not IntervalSet.empty()
        assert IntervalSet.empty().size() == 0

    def test_full(self):
        full = IntervalSet.full(8)
        assert full.size() == 256
        assert full.min() == 0
        assert full.max() == 255

    def test_point_and_points(self):
        assert IntervalSet.point(7).size() == 1
        pts = IntervalSet.points([1, 3, 5])
        assert pts.size() == 3
        assert 3 in pts
        assert 4 not in pts

    def test_adjacent_points_merge(self):
        merged = IntervalSet.points([1, 2, 3])
        assert len(merged.intervals) == 1
        assert merged.intervals[0] == Interval(1, 3)

    def test_overlapping_ranges_merge(self):
        merged = IntervalSet([(0, 5), (3, 9), (20, 30)])
        assert len(merged.intervals) == 2
        assert merged.size() == 21

    def test_range_empty_when_inverted(self):
        assert IntervalSet.range(5, 2).is_empty()

    def test_at_most_at_least(self):
        assert IntervalSet.at_most(-1).is_empty()
        assert IntervalSet.at_most(3).size() == 4
        assert IntervalSet.at_least(250, 8).size() == 6
        assert IntervalSet.at_least(300, 8).is_empty()

    def test_singleton(self):
        single = IntervalSet.point(9)
        assert single.is_singleton()
        assert single.singleton_value() == 9
        assert not IntervalSet.points([1, 2]).is_singleton()
        with pytest.raises(ValueError):
            IntervalSet.points([1, 5]).singleton_value()

    def test_min_max_on_empty_raise(self):
        with pytest.raises(ValueError):
            IntervalSet.empty().min()
        with pytest.raises(ValueError):
            IntervalSet.empty().max()

    def test_iter_values_with_limit(self):
        values = list(IntervalSet([(0, 100)]).iter_values(limit=5))
        assert values == [0, 1, 2, 3, 4]


class TestIntervalSetAlgebra:
    def test_intersection(self):
        a = IntervalSet([(0, 10), (20, 30)])
        b = IntervalSet([(5, 25)])
        result = a.intersection(b)
        assert result == IntervalSet([(5, 10), (20, 25)])

    def test_union(self):
        a = IntervalSet([(0, 5)])
        b = IntervalSet([(10, 15)])
        assert a.union(b).size() == 12

    def test_complement(self):
        a = IntervalSet([(1, 2), (5, 6)])
        comp = a.complement(3)
        assert comp == IntervalSet([(0, 0), (3, 4), (7, 7)])

    def test_complement_of_empty_is_full(self):
        assert IntervalSet.empty().complement(4) == IntervalSet.full(4)

    def test_difference(self):
        a = IntervalSet([(0, 10)])
        b = IntervalSet([(3, 5)])
        diff = a.difference(b)
        assert diff == IntervalSet([(0, 2), (6, 10)])

    def test_remove_point(self):
        a = IntervalSet([(0, 3)])
        assert a.remove_point(2) == IntervalSet([(0, 1), (3, 3)])
        assert a.remove_point(99) == a

    def test_shift_positive_and_negative(self):
        a = IntervalSet([(5, 10)])
        assert a.shift(3) == IntervalSet([(8, 13)])
        assert a.shift(-5) == IntervalSet([(0, 5)])

    def test_shift_drops_fully_negative_intervals(self):
        a = IntervalSet([(0, 3)])
        assert a.shift(-10).is_empty()

    def test_shift_clamps_to_width(self):
        a = IntervalSet([(250, 255)])
        shifted = a.shift(10, width=8)
        assert shifted.is_empty() or shifted.max() <= 255

    def test_covers(self):
        big = IntervalSet([(0, 100)])
        small = IntervalSet([(5, 10), (50, 60)])
        assert big.covers(small)
        assert not small.covers(big)


# ---------------------------------------------------------------------------
# Prefix helpers
# ---------------------------------------------------------------------------


class TestPrefixes:
    def test_prefix_to_interval_basics(self):
        interval = prefix_to_interval(0x0A000000, 8)
        assert interval.lo == 0x0A000000
        assert interval.hi == 0x0AFFFFFF

    def test_host_route(self):
        interval = prefix_to_interval(0xC0A80001, 32)
        assert interval.lo == interval.hi == 0xC0A80001

    def test_default_route_covers_everything(self):
        interval = prefix_to_interval(0, 0)
        assert interval.lo == 0
        assert interval.hi == (1 << 32) - 1

    def test_prefix_len_out_of_range(self):
        with pytest.raises(ValueError):
            prefix_to_interval(0, 33)

    def test_intervals_from_prefixes(self):
        merged = intervals_from_prefixes([(0x0A000000, 8), (0x0A000000, 16)])
        assert merged.size() == 1 << 24


# ---------------------------------------------------------------------------
# Property-based tests against a set-based reference
# ---------------------------------------------------------------------------

small_sets = st.lists(
    st.tuples(st.integers(0, 40), st.integers(0, 40)), min_size=0, max_size=6
)


def as_python_set(pairs):
    values = set()
    for lo, hi in pairs:
        if lo <= hi:
            values.update(range(lo, hi + 1))
    return values


@settings(max_examples=150, deadline=None)
@given(small_sets, small_sets)
def test_intersection_matches_set_semantics(a_pairs, b_pairs):
    a, b = IntervalSet(a_pairs), IntervalSet(b_pairs)
    expected = as_python_set(a_pairs) & as_python_set(b_pairs)
    result = a.intersection(b)
    assert set(result.iter_values()) == expected
    assert result.size() == len(expected)


@settings(max_examples=150, deadline=None)
@given(small_sets, small_sets)
def test_union_matches_set_semantics(a_pairs, b_pairs):
    a, b = IntervalSet(a_pairs), IntervalSet(b_pairs)
    expected = as_python_set(a_pairs) | as_python_set(b_pairs)
    assert set(a.union(b).iter_values()) == expected


@settings(max_examples=150, deadline=None)
@given(small_sets)
def test_complement_matches_set_semantics(pairs):
    width = 6
    full = set(range(1 << width))
    clipped = [(lo, min(hi, (1 << width) - 1)) for lo, hi in pairs if lo < (1 << width)]
    a = IntervalSet(clipped)
    expected = full - as_python_set(clipped)
    assert set(a.complement(width).iter_values()) == expected


@settings(max_examples=100, deadline=None)
@given(small_sets, st.integers(0, 40))
def test_remove_point_matches_set_semantics(pairs, point):
    a = IntervalSet(pairs)
    expected = as_python_set(pairs) - {point}
    assert set(a.remove_point(point).iter_values()) == expected


@settings(max_examples=100, deadline=None)
@given(
    st.integers(0, (1 << 32) - 1),
    st.integers(0, 32),
    st.integers(0, (1 << 32) - 1),
)
def test_prefix_interval_membership_matches_mask_semantics(address, plen, probe):
    interval = prefix_to_interval(address, plen)
    host_bits = 32 - plen
    mask = ((1 << plen) - 1) << host_bits if plen else 0
    expected = (probe & mask) == (address & mask)
    assert (interval.lo <= probe <= interval.hi) == expected
