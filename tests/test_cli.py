"""Tests for the command-line interface (the §7.1 directory workflow)."""

import json

import pytest

from repro.cli import main

MAC_SNAPSHOT = """
Vlan    Mac Address       Type        Ports
----    -----------       ----        -----
 302    0011.2233.4455    DYNAMIC     uplink
 302    0011.2233.4456    DYNAMIC     host0
"""

FIB_SNAPSHOT = """
10.0.0.0/8      to-lan
0.0.0.0/0       to-internet
"""

TOPOLOGY = """
device sw switch sw.mac
device r1 router r1.fib
link sw:uplink -> r1:in0
link r1:to-lan -> sw:in0
"""


@pytest.fixture()
def network_dir(tmp_path):
    (tmp_path / "topology.txt").write_text(TOPOLOGY)
    (tmp_path / "sw.mac").write_text(MAC_SNAPSHOT)
    (tmp_path / "r1.fib").write_text(FIB_SNAPSHOT)
    return tmp_path


class TestShow:
    def test_show_lists_elements_and_links(self, network_dir, capsys):
        assert main(["show", str(network_dir)]) == 0
        output = capsys.readouterr().out
        assert "sw (switch)" in output
        assert "r1 (router)" in output
        assert "sw:uplink -> r1:in0" in output


class TestReachability:
    def test_json_report_on_stdout(self, network_dir, capsys):
        assert main(["reachability", str(network_dir), "sw", "in0"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["injected_at"] == "sw:in0"
        assert payload["path_count"] >= 1
        assert all("status" in path for path in payload["paths"])

    def test_report_written_to_file(self, network_dir, tmp_path, capsys):
        target = tmp_path / "paths.json"
        assert main(
            ["reachability", str(network_dir), "sw", "in0", "-o", str(target)]
        ) == 0
        payload = json.loads(target.read_text())
        assert payload["path_count"] >= 1
        assert "wrote" in capsys.readouterr().out

    def test_field_overrides_steer_the_packet(self, network_dir, capsys):
        # Pin the destination MAC to the uplink entry and the IP destination
        # outside 10/8: the packet must exit at the router's Internet port.
        assert main(
            [
                "reachability",
                str(network_dir),
                "sw",
                "in0",
                "--field",
                "EtherDst=00:11:22:33:44:55",
                "--field",
                "IpDst=8.8.8.8",
                "--no-failed-paths",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        delivered = [p for p in payload["paths"] if p["status"] == "delivered"]
        assert delivered
        assert all(p["last_port"] == "r1:to-internet" for p in delivered)

    def test_packet_template_selection(self, network_dir, capsys):
        assert main(
            ["reachability", str(network_dir), "sw", "in0", "--packet", "udp"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["path_count"] >= 1

    def test_unknown_field_rejected(self, network_dir):
        with pytest.raises(SystemExit):
            main(
                ["reachability", str(network_dir), "sw", "in0", "--field", "Bogus=1"]
            )

    def test_malformed_field_rejected(self, network_dir):
        with pytest.raises(SystemExit):
            main(["reachability", str(network_dir), "sw", "in0", "--field", "IpDst"])
