"""Tests for the command-line interface (the §7.1 directory workflow)."""

import json

import pytest

from repro.cli import main

MAC_SNAPSHOT = """
Vlan    Mac Address       Type        Ports
----    -----------       ----        -----
 302    0011.2233.4455    DYNAMIC     uplink
 302    0011.2233.4456    DYNAMIC     host0
"""

FIB_SNAPSHOT = """
10.0.0.0/8      to-lan
0.0.0.0/0       to-internet
"""

TOPOLOGY = """
device sw switch sw.mac
device r1 router r1.fib
link sw:uplink -> r1:in0
link r1:to-lan -> sw:in0
"""


@pytest.fixture()
def network_dir(tmp_path):
    (tmp_path / "topology.txt").write_text(TOPOLOGY)
    (tmp_path / "sw.mac").write_text(MAC_SNAPSHOT)
    (tmp_path / "r1.fib").write_text(FIB_SNAPSHOT)
    return tmp_path


class TestShow:
    def test_show_lists_elements_and_links(self, network_dir, capsys):
        assert main(["show", str(network_dir)]) == 0
        output = capsys.readouterr().out
        assert "sw (switch)" in output
        assert "r1 (router)" in output
        assert "sw:uplink -> r1:in0" in output


class TestReachability:
    def test_json_report_on_stdout(self, network_dir, capsys):
        assert main(["reachability", str(network_dir), "sw", "in0"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["injected_at"] == "sw:in0"
        assert payload["path_count"] >= 1
        assert all("status" in path for path in payload["paths"])

    def test_report_written_to_file(self, network_dir, tmp_path, capsys):
        target = tmp_path / "paths.json"
        assert main(
            ["reachability", str(network_dir), "sw", "in0", "-o", str(target)]
        ) == 0
        payload = json.loads(target.read_text())
        assert payload["path_count"] >= 1
        assert "wrote" in capsys.readouterr().out

    def test_field_overrides_steer_the_packet(self, network_dir, capsys):
        # Pin the destination MAC to the uplink entry and the IP destination
        # outside 10/8: the packet must exit at the router's Internet port.
        assert main(
            [
                "reachability",
                str(network_dir),
                "sw",
                "in0",
                "--field",
                "EtherDst=00:11:22:33:44:55",
                "--field",
                "IpDst=8.8.8.8",
                "--no-failed-paths",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        delivered = [p for p in payload["paths"] if p["status"] == "delivered"]
        assert delivered
        assert all(p["last_port"] == "r1:to-internet" for p in delivered)

    def test_packet_template_selection(self, network_dir, capsys):
        assert main(
            ["reachability", str(network_dir), "sw", "in0", "--packet", "udp"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["path_count"] >= 1

    def test_unknown_field_rejected(self, network_dir):
        with pytest.raises(SystemExit):
            main(
                ["reachability", str(network_dir), "sw", "in0", "--field", "Bogus=1"]
            )

    def test_malformed_field_rejected(self, network_dir):
        with pytest.raises(SystemExit):
            main(["reachability", str(network_dir), "sw", "in0", "--field", "IpDst"])


@pytest.fixture()
def dangling_network_dir(tmp_path):
    """A topology whose link names an element that does not exist."""
    (tmp_path / "topology.txt").write_text(
        TOPOLOGY + "link r1:to-internet -> ghost:in0\n"
    )
    (tmp_path / "sw.mac").write_text(MAC_SNAPSHOT)
    (tmp_path / "r1.fib").write_text(FIB_SNAPSHOT)
    return tmp_path


class TestValidationWarnings:
    """Regression: Network.validate() findings must surface before execution
    instead of crashing the parse or being silently ignored."""

    def test_reachability_warns_on_dangling_link(self, dangling_network_dir, capsys):
        assert main(["reachability", str(dangling_network_dir), "sw", "in0"]) == 0
        captured = capsys.readouterr()
        assert "warning" in captured.err
        assert "ghost" in captured.err
        payload = json.loads(captured.out)
        assert payload["path_count"] >= 1

    def test_dangling_link_terminates_paths_explicitly(
        self, dangling_network_dir, capsys
    ):
        # Steer a packet towards the dangling link: it must end as an
        # explicit drop naming the dangling destination, not a crash.
        assert main(
            [
                "reachability",
                str(dangling_network_dir),
                "sw",
                "in0",
                "--field",
                "EtherDst=00:11:22:33:44:55",
                "--field",
                "IpDst=8.8.8.8",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        dangling = [
            p for p in payload["paths"] if "dangling link" in p["stop_reason"]
        ]
        assert dangling
        assert all(p["status"] == "dropped" for p in dangling)

    def test_campaign_warns_on_dangling_link(self, dangling_network_dir, capsys):
        assert main(["campaign", str(dangling_network_dir)]) == 0
        captured = capsys.readouterr()
        assert "warning" in captured.err and "ghost" in captured.err
        payload = json.loads(captured.out)
        assert payload["validation_problems"]

    def test_clean_network_emits_no_warning(self, network_dir, capsys):
        assert main(["reachability", str(network_dir), "sw", "in0"]) == 0
        assert "warning" not in capsys.readouterr().err


class TestCampaign:
    def test_json_report_on_stdout(self, network_dir, capsys):
        assert main(["campaign", str(network_dir)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["queries"] == ["reachability", "loops", "invariants"]
        assert "reachability" in payload
        # This topology is fully wired (both inputs are link-fed), so the
        # default injection set falls back to every input port.
        assert payload["stats"]["jobs"] == 2

    def test_explicit_injection_points(self, network_dir, capsys):
        assert main(
            ["campaign", str(network_dir), "--inject", "sw:in0", "--query", "reachability"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["jobs"] == 1
        sources = payload["reachability"]["sources"]
        assert sources == ["sw:in0"]
        assert "loops" not in payload

    def test_workers_match_sequential(self, network_dir, tmp_path, capsys):
        target_seq = tmp_path / "seq.json"
        target_par = tmp_path / "par.json"
        assert main(
            ["campaign", str(network_dir), "-o", str(target_seq)]
        ) == 0
        assert main(
            ["campaign", str(network_dir), "--workers", "2", "-o", str(target_par)]
        ) == 0
        seq = json.loads(target_seq.read_text())
        par = json.loads(target_par.read_text())
        assert seq["reachability"] == par["reachability"]
        assert seq["loops"]["loop_free"] == par["loops"]["loop_free"]
        assert "wrote campaign report" in capsys.readouterr().out

    def test_workload_mode(self, capsys):
        assert main(
            [
                "campaign",
                "--workload",
                "enterprise",
                "--workload-option",
                "mirror_at_exit=true",
                "--query",
                "reachability",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["network"].startswith("workload:enterprise")
        assert payload["stats"]["jobs"] == 1  # mirrored: only the client entry

    def test_directory_and_workload_are_exclusive(self, network_dir):
        with pytest.raises(SystemExit):
            main(["campaign", str(network_dir), "--workload", "department"])
        with pytest.raises(SystemExit):
            main(["campaign"])

    def test_bad_injection_spec_rejected(self, network_dir):
        with pytest.raises(SystemExit):
            main(["campaign", str(network_dir), "--inject", "missing-colon"])

    def test_failing_job_sets_exit_code(self, network_dir, capsys):
        assert main(
            ["campaign", str(network_dir), "--inject", "nonexistent:in0"]
        ) == 1
        captured = capsys.readouterr()
        assert "error: job nonexistent:in0 failed" in captured.err


class TestQueryCommand:
    """The declarative front door: textual queries compiled onto one plan."""

    def test_directory_queries_on_stdout(self, network_dir, capsys):
        assert main(
            [
                "query",
                str(network_dir),
                "reach(sw:in0, r1:to-internet)",
                "loop()",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["plan"]["queries"] == [
            "reach(sw:in0, r1:to-internet)",
            "loop()",
        ]
        by_query = {entry["query"]: entry for entry in payload["queries"]}
        assert by_query["reach(sw:in0, r1:to-internet)"]["holds"] is True
        # The sw <-> r1 topology genuinely loops on 10/8 traffic.
        assert by_query["loop()"]["holds"] is False
        assert by_query["loop()"]["evidence"]["findings"] >= 1
        assert all(entry["fingerprint"] for entry in payload["queries"])

    def test_shared_port_compiles_to_one_job(self, network_dir, capsys):
        assert main(
            [
                "query",
                str(network_dir),
                "reach(sw:in0, r1:to-internet)",
                "reach(sw:in0, r1:to-lan)",
                "invariant(IpDst, sw:in0)",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["plan"]["jobs"] == 1
        assert payload["stats"]["jobs"] == 1

    def test_workload_mode_first_positional_is_a_query(self, capsys):
        # With --workload, argparse's "directory" slot holds the first query.
        assert main(
            [
                "query",
                "--workload",
                "enterprise",
                "--workload-option",
                "mirror_at_exit=true",
                "loop()",
                "forall_pairs(reach)",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["network"].startswith("workload:enterprise")
        assert payload["plan"]["queries"] == ["loop()", "forall_pairs(reach)"]

    def test_report_written_to_file(self, network_dir, tmp_path, capsys):
        target = tmp_path / "query.json"
        assert main(
            ["query", str(network_dir), "loop()", "-o", str(target)]
        ) == 0
        payload = json.loads(target.read_text())
        assert payload["queries"][0]["holds"] is False  # the loopy topology
        assert "wrote query report" in capsys.readouterr().out

    def test_workers_match_sequential(self, network_dir, tmp_path):
        seq, par = tmp_path / "seq.json", tmp_path / "par.json"
        args = ["query", str(network_dir), "forall_pairs(reach)", "loop()"]
        assert main(args + ["-o", str(seq)]) == 0
        assert main(args + ["--workers", "2", "-o", str(par)]) == 0
        seq_payload = json.loads(seq.read_text())
        par_payload = json.loads(par.read_text())
        assert [q["fingerprint"] for q in seq_payload["queries"]] == [
            q["fingerprint"] for q in par_payload["queries"]
        ]

    def test_validation_warnings_identical_to_campaign(
        self, dangling_network_dir, capsys
    ):
        assert main(["query", str(dangling_network_dir), "loop()"]) == 0
        query_err = capsys.readouterr().err
        assert main(["campaign", str(dangling_network_dir)]) == 0
        campaign_err = capsys.readouterr().err
        query_warnings = [l for l in query_err.splitlines() if "warning" in l]
        campaign_warnings = [
            l for l in campaign_err.splitlines() if "warning" in l
        ]
        assert query_warnings and query_warnings == campaign_warnings

    def test_bad_query_rejected(self, network_dir):
        with pytest.raises(SystemExit, match="bad query"):
            main(["query", str(network_dir), "bogus()"])

    def test_directory_and_workload_are_exclusive(self, network_dir, capsys):
        with pytest.raises(SystemExit, match="not both"):
            main(["query", str(network_dir), "loop()", "--workload", "department"])

    def test_bad_query_fails_before_the_network_is_built(self, network_dir):
        # The typo'd query must be rejected without paying for the build.
        import repro.api.model as model_module

        original = model_module.NetworkModel.network
        def exploding_network(self):
            raise AssertionError("network was built for a malformed query")
        model_module.NetworkModel.network = exploding_network
        try:
            with pytest.raises(SystemExit, match="bad query"):
                main(["query", str(network_dir), "invarint(IpSrc)"])
        finally:
            model_module.NetworkModel.network = original

    def test_failing_reach_source_sets_exit_code(self, network_dir, capsys):
        assert main(
            ["query", str(network_dir), "reach(nonexistent:in0, sw)"]
        ) == 1
        assert "failed" in capsys.readouterr().err


class TestStoreCommands:
    def _query(self, network_dir, store_dir, capsys):
        code = main(
            ["query", str(network_dir), "loop()", "--store-dir", str(store_dir)]
        )
        captured = capsys.readouterr()
        return code, captured

    def test_two_phase_persistence_via_store_dir(
        self, network_dir, tmp_path, capsys
    ):
        from repro.core.campaign import clear_runtime_cache

        store_dir = tmp_path / "the-store"
        clear_runtime_cache()
        code, first = self._query(network_dir, store_dir, capsys)
        assert code == 0
        assert "plan-result cache" not in first.err
        clear_runtime_cache()
        code, second = self._query(network_dir, store_dir, capsys)
        assert code == 0
        assert "plan-result cache" in second.err
        assert json.loads(first.out) == json.loads(second.out)

    def test_store_inspect_compact_clear_plans(
        self, network_dir, tmp_path, capsys
    ):
        store_dir = tmp_path / "the-store"
        assert main(
            ["campaign", str(network_dir), "--store-dir", str(store_dir)]
        ) == 0
        capsys.readouterr()

        assert main(["store", "inspect", str(store_dir)]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["verdicts"] >= 0
        assert summary["shards"] == 8
        assert summary["quarantined"] == []

        assert main(["store", "compact", str(store_dir)]) == 0
        assert "compacted" in capsys.readouterr().out

        assert main(["store", "clear-plans", str(store_dir)]) == 0
        assert "plan result" in capsys.readouterr().out

    def test_store_inspect_rejects_missing_directory(self, tmp_path):
        with pytest.raises(SystemExit, match="not a store directory"):
            main(["store", "inspect", str(tmp_path / "nope")])

    @pytest.mark.parametrize("command", ["query", "campaign"])
    def test_cache_shards_validated_at_parse_time(
        self, network_dir, command, capsys
    ):
        args = [command, str(network_dir), "--cache-shards", "0"]
        if command == "query":
            args.append("loop()")
        with pytest.raises(SystemExit):
            main(args)
        assert "shard count must be >= 1" in capsys.readouterr().err

    def test_unusable_store_fails_cleanly_on_query_and_campaign(
        self, network_dir, tmp_path
    ):
        bad = tmp_path / "bad-store"
        bad.mkdir()
        (bad / "STORE.json").write_text('{"format": 99}')
        with pytest.raises(SystemExit, match="unusable store"):
            main(["query", str(network_dir), "loop()", "--store-dir", str(bad)])
        with pytest.raises(SystemExit, match="unusable store"):
            main(["campaign", str(network_dir), "--store-dir", str(bad)])

    def test_store_commands_never_scaffold_foreign_directories(
        self, network_dir
    ):
        """`store inspect` on a mistyped path (say, the snapshot directory
        itself) must refuse — not silently create store metadata inside it."""
        before = sorted(p.name for p in network_dir.iterdir())
        with pytest.raises(SystemExit, match="no STORE.json"):
            main(["store", "inspect", str(network_dir)])
        with pytest.raises(SystemExit, match="no STORE.json"):
            main(["store", "compact", str(network_dir)])
        assert sorted(p.name for p in network_dir.iterdir()) == before

    def test_campaign_store_json_counters(self, network_dir, tmp_path, capsys):
        from repro.core.campaign import clear_runtime_cache

        store_dir = tmp_path / "the-store"
        report_path = tmp_path / "report.json"
        clear_runtime_cache()
        assert main(
            [
                "campaign", str(network_dir),
                "--store-dir", str(store_dir),
                "-o", str(report_path),
            ]
        ) == 0
        clear_runtime_cache()
        assert main(
            [
                "campaign", str(network_dir),
                "--store-dir", str(store_dir),
                "-o", str(report_path),
            ]
        ) == 0
        stats = json.loads(report_path.read_text())["stats"]
        assert stats["store_entries_loaded"] > 0
        assert stats["store_entries_published"] == 0
        assert stats["solver_cache_misses"] == 0


class TestDeltaCli:
    """``--delta`` / ``--delta-from`` / ``--save-baseline`` plumbing, plus
    the ``--symmetry-audit-seed`` misuse warning."""

    def _export(self, tmp_path):
        from repro.workloads.export import export_stanford_directory

        net = tmp_path / "net"
        net.mkdir()
        export_stanford_directory(
            str(net), zones=3, internal_prefixes_per_zone=6,
            service_acl_rules=3,
        )
        return net

    def _inject_acls(self):
        args = []
        for index in range(3):
            args += ["--inject", f"acl{index}:in0"]
        return args

    def test_audit_seed_without_audit_warns(self, network_dir, capsys):
        assert main(
            ["campaign", str(network_dir), "--symmetry-audit-seed", "3"]
        ) == 0
        err = capsys.readouterr().err
        assert "--symmetry-audit-seed has no effect" in err
        assert main(
            [
                "campaign", str(network_dir),
                "--symmetry-audit", "--symmetry-audit-seed", "3",
            ]
        ) == 0
        assert "has no effect" not in capsys.readouterr().err

    def test_store_delta_splices_and_matches_scratch(self, tmp_path, capsys):
        from repro.core.campaign import clear_runtime_cache

        net = self._export(tmp_path)
        store = tmp_path / "store"
        inject = self._inject_acls()
        clear_runtime_cache()
        assert main(
            [
                "campaign", str(net), "--store-dir", str(store), *inject,
                "-o", str(tmp_path / "cold.json"),
            ]
        ) == 0
        capsys.readouterr()

        (net / "acl1.acl").write_text("block 22\n")
        clear_runtime_cache()
        assert main(
            [
                "campaign", str(net), "--store-dir", str(store), *inject,
                "-o", str(tmp_path / "delta.json"),
            ]
        ) == 0
        err = capsys.readouterr().err
        assert "delta verification spliced 2 of 3" in err
        delta = json.loads((tmp_path / "delta.json").read_text())
        assert delta["delta"]["spliced"] == 2
        assert delta["delta"]["executed"] == 1
        assert delta["delta"]["baseline"] == "store"
        assert delta["delta"]["touched_files"] == ["acl1.acl"]
        assert delta["stats"]["jobs_spliced_by_delta"] == 2

        clear_runtime_cache()
        assert main(
            [
                "campaign", str(net), "--no-shared-cache", "--no-delta",
                *inject, "-o", str(tmp_path / "scratch.json"),
            ]
        ) == 0
        capsys.readouterr()
        scratch = json.loads((tmp_path / "scratch.json").read_text())
        for section in ("reachability", "loops", "invariants"):
            assert delta[section] == scratch[section]

    def test_save_baseline_delta_from_round_trip(self, tmp_path, capsys):
        from repro.core.campaign import clear_runtime_cache

        net = self._export(tmp_path)
        baseline = tmp_path / "baseline.json"
        inject = self._inject_acls()
        clear_runtime_cache()
        assert main(
            ["campaign", str(net), *inject, "--save-baseline", str(baseline)]
        ) == 0
        capsys.readouterr()
        payload = json.loads(baseline.read_text())
        assert payload["format"] == 1
        assert payload["manifest"]["files"]

        (net / "acl0.acl").write_text("block 22\nblock 443\n")
        clear_runtime_cache()
        assert main(
            [
                "campaign", str(net), *inject,
                "--delta-from", str(baseline),
                "-o", str(tmp_path / "out.json"),
            ]
        ) == 0
        capsys.readouterr()
        out = json.loads((tmp_path / "out.json").read_text())
        assert out["delta"]["baseline"] == "file"
        assert out["delta"]["spliced"] == 2
        assert out["delta"]["executed"] == 1

    def test_unusable_delta_from_fails_cleanly(self, tmp_path):
        net = self._export(tmp_path)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit, match="unusable baseline"):
            main(["campaign", str(net), "--delta-from", str(bad)])
