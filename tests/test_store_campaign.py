"""Campaign- and API-level tests for the persistent verification store.

The acceptance criteria under test:

* query/report fingerprints are **bit-identical** across {no store, cold
  store, warm-from-disk store} × {workers 1, 2} — the store changes which
  tier answers, never the answer;
* a warm-from-disk rerun performs **0 full solves** (every verdict comes
  from the merged disk shards), and nothing new is published back;
* a repeated identical query batch hits the **plan-result cache**: zero
  engine jobs, answers and fingerprints verbatim;
* plan-cache entries are invalidated when the network source's content
  changes (directory sources fingerprint every snapshot file), plus the
  explicit ``invalidate_plans`` path;
* the ``CampaignResult.verdict_cache`` warm-start kwarg is deprecated in
  favour of the store (``pytest.warns`` shim test, PR 4 pattern) but still
  functional.
"""

import pytest

from repro.api import Invariant, Loop, NetworkModel, Reach, compile_plan, execute_plan
from repro.core.campaign import (
    NetworkSource,
    VerificationCampaign,
    clear_runtime_cache,
    execution_counters,
    reset_execution_counters,
)
from repro.store import VerificationStore

STANFORD_OPTIONS = dict(
    zones=3, internal_prefixes_per_zone=12, service_acl_rules=3
)


def _fingerprints(result):
    return (
        result.reachability.fingerprint(),
        result.loop_report.fingerprint(),
        result.invariant_report.fingerprint(),
    )


def _run(source, *, store=None, workers=1, shared=True, cache_shards=None):
    clear_runtime_cache()
    kwargs = dict(shared_cache=shared, store=store)
    if cache_shards is not None:
        kwargs["cache_shards"] = cache_shards
    return VerificationCampaign(source, **kwargs).run(workers=workers)


# ---------------------------------------------------------------------------
# Verdict-shard persistence on campaigns
# ---------------------------------------------------------------------------


class TestCampaignPersistence:
    def test_store_on_off_cold_warm_and_workers_bit_identical(self, tmp_path):
        source = NetworkSource.from_workload("stanford", **STANFORD_OPTIONS)
        store_dir = str(tmp_path / "store")

        no_store = _run(source)
        cold = _run(source, store=VerificationStore(store_dir))
        warm = _run(source, store=VerificationStore(store_dir))
        pooled_warm = _run(
            source, store=VerificationStore(store_dir), workers=2
        )
        pooled_sharded = _run(
            source,
            store=VerificationStore(store_dir),
            workers=2,
            cache_shards=1,
        )

        runs = [no_store, cold, warm, pooled_warm, pooled_sharded]
        assert not any(run.job_errors for run in runs)
        expected = _fingerprints(no_store)
        for run in runs[1:]:
            assert _fingerprints(run) == expected

        # The cold run derived verdicts and published them ...
        assert cold.stats.store_entries_published > 0
        assert cold.stats.store_entries_loaded == 0
        # ... and every warm run answered from the disk shards: zero full
        # solves, nothing new to publish, entries merged per worker.
        for run in (warm, pooled_warm, pooled_sharded):
            assert run.stats.solver_cache_misses == 0
            assert run.stats.store_entries_published == 0
            assert run.stats.store_entries_loaded > 0
            assert run.stats.solver_cache_merged > 0

    def test_disabled_shared_cache_ignores_the_store(self, tmp_path):
        source = NetworkSource.from_workload("stanford", **STANFORD_OPTIONS)
        store = VerificationStore(str(tmp_path / "store"))
        baseline = _run(source, store=store, shared=False)
        assert baseline.stats.store_entries_published == 0
        assert store.verdict_count() == 0
        # And the isolated baseline still matches a stored run bit for bit.
        stored = _run(source, store=store)
        assert _fingerprints(baseline) == _fingerprints(stored)

    def test_two_stores_do_not_cross_contaminate(self, tmp_path):
        source = NetworkSource.from_workload("stanford", **STANFORD_OPTIONS)
        _run(source, store=VerificationStore(str(tmp_path / "a")))
        other = VerificationStore(str(tmp_path / "b"))
        assert other.verdict_count() == 0
        fresh = _run(source, store=other)
        assert fresh.stats.store_entries_published > 0

    def test_quarantined_store_still_yields_identical_answers(self, tmp_path):
        """Corrupting a shard on disk degrades the warm start, never the
        verdicts: the campaign re-solves what the store lost."""
        source = NetworkSource.from_workload("stanford", **STANFORD_OPTIONS)
        store_dir = str(tmp_path / "store")
        cold = _run(source, store=VerificationStore(store_dir))

        poisoned = VerificationStore(store_dir)
        segments = [
            path
            for index in range(poisoned.shard_count)
            for path in poisoned._segments_of(index)
        ]
        raw = bytearray(open(segments[0], "rb").read())
        raw[-2] ^= 0xFF
        open(segments[0], "wb").write(bytes(raw))

        degraded = _run(source, store=VerificationStore(store_dir))
        assert _fingerprints(degraded) == _fingerprints(cold)
        assert not degraded.job_errors
        # The lost verdicts were re-derived and published again.
        assert degraded.stats.solver_cache_misses > 0
        assert degraded.stats.store_entries_published > 0
        healed = _run(source, store=VerificationStore(store_dir))
        assert healed.stats.solver_cache_misses == 0

    def test_publish_conflict_warns_but_keeps_the_campaign(
        self, tmp_path, monkeypatch
    ):
        """A store whose contents conflict with the campaign's live solves
        at publish time (corrupted-but-well-formed segments, a concurrent
        writer with an unsound build) must cost only the publish: the
        finished result survives with a RuntimeWarning, it is not
        discarded by the raise."""
        from repro.solver.verdict_cache import CacheConflictError

        source = NetworkSource.from_workload("stanford", **STANFORD_OPTIONS)
        store = VerificationStore(str(tmp_path / "store"))
        reference = _fingerprints(_run(source))

        def conflicting_publish(entries):
            raise CacheConflictError("store has 'sat', incoming 'unsat'")

        monkeypatch.setattr(store, "publish", conflicting_publish)
        clear_runtime_cache()
        with pytest.warns(RuntimeWarning, match="conflicts"):
            degraded = VerificationCampaign(source, store=store).run()
        assert _fingerprints(degraded) == reference
        assert not degraded.job_errors
        assert degraded.stats.store_entries_published == 0

    def test_campaign_json_reports_store_counters(self, tmp_path):
        source = NetworkSource.from_workload("stanford", **STANFORD_OPTIONS)
        result = _run(source, store=VerificationStore(str(tmp_path / "store")))
        stats = result.to_dict()["stats"]
        for key in (
            "store_entries_loaded",
            "store_entries_published",
            "solver_shared_round_trips",
            "solver_shared_publish_batches",
            "solver_shared_publish_entries",
        ):
            assert key in stats


# ---------------------------------------------------------------------------
# The plan-result cache
# ---------------------------------------------------------------------------


class TestPlanResultCache:
    def _model(self):
        return NetworkModel.from_workload("stanford", **STANFORD_OPTIONS)

    def test_repeat_batch_costs_zero_engine_jobs(self, tmp_path):
        store = VerificationStore(str(tmp_path / "store"))
        queries = (Loop(), Invariant("IpSrc"), Reach("zr0:in-hosts", "zr1"))

        clear_runtime_cache()
        reset_execution_counters()
        fresh = self._model().query(*queries, store=store)
        assert not fresh.from_cache
        assert execution_counters()["engine_runs"] > 0

        reset_execution_counters()
        cached = self._model().query(*queries, store=VerificationStore(str(tmp_path / "store")))
        assert cached.from_cache
        assert execution_counters()["engine_runs"] == 0
        # Answers, fingerprints and the serialised report are verbatim.
        assert cached.fingerprint() == fresh.fingerprint()
        assert [r.fingerprint for r in cached] == [r.fingerprint for r in fresh]
        assert [r.holds for r in cached] == [r.holds for r in fresh]
        assert cached.to_dict() == fresh.to_dict()
        assert cached["loop()"].holds == fresh["loop()"].holds
        assert cached.job_errors == []

    def test_permuted_batch_hits_with_correctly_matched_answers(self, tmp_path):
        """Plan fingerprints are order-independent, so a permuted batch
        hits the same cache entry — and every positional answer must still
        belong to the caller's query at that position."""
        store = VerificationStore(str(tmp_path / "store"))
        queries = [Loop(), Invariant("IpSrc"), Reach("zr0:in-hosts", "zr1")]
        clear_runtime_cache()
        fresh = self._model().query(*queries, store=store)

        reset_execution_counters()
        permuted = self._model().query(
            *reversed(queries), store=VerificationStore(str(tmp_path / "store"))
        )
        assert permuted.from_cache
        assert execution_counters()["engine_runs"] == 0
        for query in queries:
            assert permuted[query.describe()].fingerprint == fresh[
                query.describe()
            ].fingerprint
        # Positional access follows the caller's (reversed) order.
        assert permuted[0].query == queries[-1].describe()
        assert permuted[2].query == queries[0].describe()

    def test_cache_hit_rehydrates_stats(self, tmp_path):
        store = VerificationStore(str(tmp_path / "store"))
        clear_runtime_cache()
        fresh = self._model().query(Loop(), store=store)
        cached = self._model().query(
            Loop(), store=VerificationStore(str(tmp_path / "store"))
        )
        assert cached.from_cache
        assert cached.stats is not None
        assert cached.stats.jobs == fresh.stats.jobs
        assert cached.stats.cache_hit_rate == fresh.stats.cache_hit_rate

    def test_different_batch_misses_the_plan_cache(self, tmp_path):
        store = VerificationStore(str(tmp_path / "store"))
        self._model().query(Loop(), store=store)
        reset_execution_counters()
        clear_runtime_cache()
        other = self._model().query(Loop(), Invariant("IpSrc"), store=store)
        assert not other.from_cache
        assert execution_counters()["engine_runs"] > 0

    def test_cached_plans_survive_compaction_and_clear(self, tmp_path):
        store = VerificationStore(str(tmp_path / "store"))
        self._model().query(Loop(), store=store)
        store.compact()
        cached = self._model().query(Loop(), store=VerificationStore(str(tmp_path / "store")))
        assert cached.from_cache
        VerificationStore(str(tmp_path / "store")).invalidate_plans()
        clear_runtime_cache()
        fresh = self._model().query(Loop(), store=VerificationStore(str(tmp_path / "store")))
        assert not fresh.from_cache

    def test_directory_content_change_invalidates_cached_plans(self, tmp_path):
        snapshot = tmp_path / "net"
        snapshot.mkdir()
        (snapshot / "topology.txt").write_text("device sw switch sw.mac\n")
        (snapshot / "sw.mac").write_text(
            "Vlan    Mac Address       Type        Ports\n"
            " 302    0011.2233.4455    DYNAMIC     out0\n"
        )
        store = VerificationStore(str(tmp_path / "store"))
        first = NetworkModel.from_directory(str(snapshot)).query(
            Loop(), store=store
        )
        assert not first.from_cache
        hit = NetworkModel.from_directory(str(snapshot)).query(
            Loop(), store=store
        )
        assert hit.from_cache
        # Grow the MAC table: size changes, so the model fingerprint does.
        with open(snapshot / "sw.mac", "a") as handle:
            handle.write(" 303    0011.2233.4466    DYNAMIC     out0\n")
        clear_runtime_cache()
        changed = NetworkModel.from_directory(str(snapshot)).query(
            Loop(), store=store
        )
        assert not changed.from_cache

    def test_isolated_runs_never_touch_the_plan_cache(self, tmp_path):
        """shared_cache=False is the isolated baseline: it must neither be
        answered from the plan cache nor feed it — even with a store that
        already holds this exact batch."""
        store = VerificationStore(str(tmp_path / "store"))
        self._model().query(Loop(), store=store)
        assert store.plan_count() == 1

        clear_runtime_cache()
        reset_execution_counters()
        isolated = self._model().query(
            Loop(), store=VerificationStore(str(tmp_path / "store")),
            shared_cache=False,
        )
        assert not isolated.from_cache
        assert execution_counters()["engine_runs"] > 0
        # The shared and isolated plans also key differently, so neither
        # can ever shadow the other.
        model = self._model()
        shared_plan = compile_plan(model, [Loop()])
        isolated_plan = compile_plan(model, [Loop()], shared_cache=False)
        assert shared_plan.fingerprint() != isolated_plan.fingerprint()

    def test_byte_identical_snapshots_share_one_plan_identity(self, tmp_path):
        """The model fingerprint is a *content* identity: the same snapshot
        bytes at two different paths (copied checkout, CI workspace) must
        share plan-cache entries in a shared store."""
        store = VerificationStore(str(tmp_path / "store"))
        contents = {
            "topology.txt": "device sw switch sw.mac\n",
            "sw.mac": (
                "Vlan    Mac Address       Type        Ports\n"
                " 302    0011.2233.4455    DYNAMIC     out0\n"
            ),
        }
        for name in ("checkout-a", "checkout-b"):
            directory = tmp_path / name
            directory.mkdir()
            for file_name, text in contents.items():
                (directory / file_name).write_text(text)
        clear_runtime_cache()
        first = NetworkModel.from_directory(str(tmp_path / "checkout-a"))
        first.query(Loop(), store=store)
        clear_runtime_cache()
        second = NetworkModel.from_directory(str(tmp_path / "checkout-b"))
        assert second.fingerprint() == first.fingerprint()
        assert second.query(Loop(), store=store).from_cache

    def test_stale_model_cannot_poison_the_plan_cache(self, tmp_path):
        """A long-lived model keeps executing the snapshot it built — so
        its cache key must be the *built* content's identity, frozen at
        build time.  Otherwise an in-place edit plus a re-query on the old
        model would file stale answers under the fresh content's key, and
        a brand-new process over the edited directory would be served
        wrong verification answers."""
        snapshot = tmp_path / "net"
        snapshot.mkdir()
        (snapshot / "topology.txt").write_text("device sw switch sw.mac\n")
        (snapshot / "sw.mac").write_text(
            "Vlan    Mac Address       Type        Ports\n"
            " 302    0011.2233.4455    DYNAMIC     out0\n"
        )
        store = VerificationStore(str(tmp_path / "store"))
        clear_runtime_cache()
        stale_model = NetworkModel.from_directory(str(snapshot))
        stale_model.query(Loop(), store=store)
        pre_edit_fingerprint = stale_model.fingerprint()

        # Edit in place; the old model must keep its frozen identity ...
        (snapshot / "sw.mac").write_text(
            "Vlan    Mac Address       Type        Ports\n"
            " 302    0011.2233.4455    DYNAMIC     out1\n"
        )
        stale_model.query(Loop(), store=store)
        assert stale_model.fingerprint() == pre_edit_fingerprint
        # ... so a fresh process (fresh model) over the edited directory
        # misses the plan cache and executes the real, edited network.
        clear_runtime_cache()
        fresh = NetworkModel.from_directory(str(snapshot))
        assert fresh.fingerprint() != pre_edit_fingerprint
        answer = fresh.query(Loop(), store=store)
        assert not answer.from_cache

        # A model whose directory changed between its build and its first
        # fingerprint use has no trustworthy identity at all: plan caching
        # is disabled rather than guessed.
        clear_runtime_cache()
        late = NetworkModel.from_directory(str(snapshot))
        late.network()  # build first, without ever fingerprinting
        (snapshot / "sw.mac").write_text(
            "Vlan    Mac Address       Type        Ports\n"
            " 302    0011.2233.4455    DYNAMIC     out2\n"
        )
        assert late.fingerprint() is None
        assert not late.query(Loop(), store=store).from_cache

    def test_in_process_networks_never_hit_the_plan_cache(self, tmp_path):
        from repro.network.element import NetworkElement
        from repro.network.topology import Network
        from repro.sefl import Forward

        network = Network("tiny")
        element = NetworkElement("a", ["in0"], ["out0"])
        element.set_input_program("in0", Forward("out0"))
        network.add_element(element)
        model = NetworkModel.from_network(network)
        assert model.fingerprint() is None
        store = VerificationStore(str(tmp_path / "store"))
        first = model.query(Loop(), store=store)
        second = model.query(Loop(), store=store)
        assert not first.from_cache and not second.from_cache

    def test_failed_jobs_are_not_cached(self, tmp_path, monkeypatch):
        import repro.core.campaign as campaign_module

        store = VerificationStore(str(tmp_path / "store"))
        original = campaign_module.execute_job

        def failing(job):
            report = original(job)
            report.error = "synthetic failure"
            return report

        monkeypatch.setattr(campaign_module, "execute_job", failing)
        clear_runtime_cache()
        broken = self._model().query(Loop(), store=store)
        assert broken.job_errors
        monkeypatch.setattr(campaign_module, "execute_job", original)
        clear_runtime_cache()
        retried = self._model().query(Loop(), store=store)
        assert not retried.from_cache  # the failed run must not have stuck


# ---------------------------------------------------------------------------
# warm_cache deprecation (PR 4 shim pattern)
# ---------------------------------------------------------------------------


class TestWarmCacheDeprecation:
    def test_warm_cache_kwarg_warns_and_still_works(self):
        source = NetworkSource.from_workload("stanford", **STANFORD_OPTIONS)
        clear_runtime_cache()
        cold = VerificationCampaign(source).run()
        clear_runtime_cache()
        with pytest.warns(DeprecationWarning, match="warm_cache.*deprecated"):
            warm_campaign = VerificationCampaign(
                source, warm_cache=cold.verdict_cache
            )
        warm = warm_campaign.run()
        assert _fingerprints(warm) == _fingerprints(cold)
        assert warm.stats.solver_cache_misses == 0

    def test_execute_plan_warm_cache_warns(self):
        model = NetworkModel.from_workload("stanford", **STANFORD_OPTIONS)
        clear_runtime_cache()
        plan = compile_plan(model, [Loop()])
        cold = execute_plan(plan)
        clear_runtime_cache()
        with pytest.warns(DeprecationWarning, match="warm_cache.*deprecated"):
            warm = execute_plan(plan, warm_cache=cold.verdict_cache)
        assert warm.fingerprint() == cold.fingerprint()
