"""Tests for the theory layer: atom classification and conjunction solving."""

import pytest

from repro.solver.ast import Add, Const, Eq, Ge, Gt, Le, Lt, Ne, Sub, Var
from repro.solver.intervals import IntervalSet
from repro.solver.theory import (
    TheorySolver,
    UnsupportedAtomError,
    classify_atom,
    domain_for,
)

x = Var("x", 8)
y = Var("y", 8)
z = Var("z", 8)


class TestClassifyAtom:
    def test_var_vs_const(self):
        info = classify_atom(Eq(x, Const(5)))
        assert info.kind == "domain"
        assert info.var == x
        assert info.constant == 5
        assert info.op == "=="

    def test_const_vs_var_flips_operator(self):
        info = classify_atom(Lt(Const(5), x))
        assert info.kind == "domain"
        assert info.op == ">"
        assert info.constant == 5

    def test_var_plus_offset(self):
        info = classify_atom(Eq(Add(x, Const(3)), Const(10)))
        assert info.kind == "domain"
        assert info.constant == 7

    def test_difference_atom(self):
        info = classify_atom(Le(Sub(x, y), Const(4)))
        assert info.kind == "diff"
        assert info.left == x
        assert info.right == y
        assert info.constant == 4

    def test_var_vs_var(self):
        info = classify_atom(Eq(x, y))
        assert info.kind == "diff"
        assert info.constant == 0

    def test_constant_comparison(self):
        info = classify_atom(Lt(Const(1), Const(2)))
        assert info.kind == "const"

    def test_same_var_both_sides_reduces_to_const(self):
        info = classify_atom(Eq(x, Add(x, Const(1))))
        assert info.kind == "const"

    def test_three_variables_unsupported(self):
        with pytest.raises(UnsupportedAtomError):
            classify_atom(Eq(Add(x, y), z))


class TestDomainFor:
    def test_equality(self):
        assert domain_for("==", 7, 8) == IntervalSet.point(7)

    def test_equality_out_of_range(self):
        assert domain_for("==", 300, 8).is_empty()

    def test_disequality(self):
        domain = domain_for("!=", 7, 8)
        assert 7 not in domain
        assert domain.size() == 255

    def test_orderings(self):
        assert domain_for("<", 10, 8).max() == 9
        assert domain_for("<=", 10, 8).max() == 10
        assert domain_for(">", 250, 8).min() == 251
        assert domain_for(">=", 250, 8).min() == 250

    def test_impossible_bounds(self):
        assert domain_for("<", 0, 8).is_empty()
        assert domain_for(">", 255, 8).is_empty()


class TestTheorySolver:
    def setup_method(self):
        self.solver = TheorySolver()

    def test_simple_sat(self):
        verdict, _ = self.solver.check([Eq(x, Const(5))])
        assert verdict == "sat"

    def test_contradictory_domains(self):
        verdict, _ = self.solver.check([Eq(x, Const(5)), Eq(x, Const(6))])
        assert verdict == "unsat"

    def test_equality_chain_propagates(self):
        verdict, _ = self.solver.check(
            [Eq(x, y), Eq(y, z), Eq(x, Const(5)), Eq(z, Const(6))]
        )
        assert verdict == "unsat"

    def test_equality_with_offsets(self):
        verdict, model = self.solver.check(
            [Eq(x, Add(y, Const(3))), Eq(y, Const(10))], want_model=True
        )
        assert verdict == "sat"
        assert model[x] == 13

    def test_difference_bounds_conflict(self):
        verdict, _ = self.solver.check([Lt(x, y), Lt(y, x)])
        assert verdict == "unsat"

    def test_difference_bounds_chain(self):
        verdict, _ = self.solver.check([Lt(x, y), Lt(y, z), Eq(z, Const(1))])
        assert verdict == "unsat"  # would need x < y < 1 with x, y >= 0... x=0? y must be <1 and >x>=0 -> impossible

    def test_difference_bounds_feasible_chain(self):
        verdict, model = self.solver.check(
            [Lt(x, y), Lt(y, z), Eq(z, Const(4))], want_model=True
        )
        assert verdict == "sat"
        assert model[x] < model[y] < model[z] == 4

    def test_disequality_pruning(self):
        verdict, _ = self.solver.check(
            [Ge(x, Const(3)), Le(x, Const(4)), Ne(x, Const(3)), Ne(x, Const(4))]
        )
        assert verdict == "unsat"

    def test_disequality_between_variables(self):
        verdict, _ = self.solver.check([Eq(x, y), Ne(x, y)])
        assert verdict == "unsat"

    def test_model_respects_disequalities(self):
        verdict, model = self.solver.check(
            [Le(x, Const(1)), Le(y, Const(1)), Ne(x, y)], want_model=True
        )
        assert verdict == "sat"
        assert model[x] != model[y]

    def test_extra_domains_narrow(self):
        verdict, _ = self.solver.check(
            [Eq(x, Const(5))], extra_domains={x: IntervalSet.points([1, 2, 3])}
        )
        assert verdict == "unsat"

    def test_width_respected_in_model(self):
        verdict, model = self.solver.check([Ge(x, Const(200))], want_model=True)
        assert verdict == "sat"
        assert 200 <= model[x] <= 255

    def test_unsupported_atoms_yield_unknown_not_sat(self):
        verdict, _ = self.solver.check([Eq(Add(x, y), z)])
        assert verdict in ("unknown", "unsat")
        assert verdict != "sat"
