"""Tests for IP/MAC literal helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.sefl.util import (
    ip_to_number,
    mac_to_number,
    number_to_ip,
    number_to_mac,
    parse_prefix,
)


class TestIpConversion:
    def test_known_addresses(self):
        assert ip_to_number("0.0.0.0") == 0
        assert ip_to_number("255.255.255.255") == (1 << 32) - 1
        assert ip_to_number("192.168.1.1") == 0xC0A80101
        assert ip_to_number("10.0.0.1") == 0x0A000001

    def test_roundtrip_known(self):
        assert number_to_ip(0xC0A80101) == "192.168.1.1"

    @pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "1.2.3.256", "a.b.c.d", ""])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            ip_to_number(bad)

    def test_number_out_of_range(self):
        with pytest.raises(ValueError):
            number_to_ip(1 << 32)
        with pytest.raises(ValueError):
            number_to_ip(-1)

    @given(st.integers(0, (1 << 32) - 1))
    def test_roundtrip_property(self, value):
        assert ip_to_number(number_to_ip(value)) == value


class TestMacConversion:
    def test_colon_notation(self):
        assert mac_to_number("00:aa:00:aa:00:aa") == 0x00AA00AA00AA

    def test_cisco_dot_notation(self):
        assert mac_to_number("0011.2233.4455") == 0x001122334455

    def test_dash_notation(self):
        assert mac_to_number("00-11-22-33-44-55") == 0x001122334455

    def test_uppercase(self):
        assert mac_to_number("AA:BB:CC:DD:EE:FF") == 0xAABBCCDDEEFF

    @pytest.mark.parametrize("bad", ["00:11:22:33:44", "0011.2233", "zz:zz:zz:zz:zz:zz"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            mac_to_number(bad)

    def test_number_out_of_range(self):
        with pytest.raises(ValueError):
            number_to_mac(1 << 48)

    @given(st.integers(0, (1 << 48) - 1))
    def test_roundtrip_property(self, value):
        assert mac_to_number(number_to_mac(value)) == value


class TestParsePrefix:
    def test_with_length(self):
        address, plen = parse_prefix("10.0.0.0/8")
        assert address == 0x0A000000
        assert plen == 8

    def test_without_length_is_host_route(self):
        address, plen = parse_prefix("192.168.0.1")
        assert plen == 32

    def test_default_route(self):
        assert parse_prefix("0.0.0.0/0") == (0, 0)

    def test_bad_length(self):
        with pytest.raises(ValueError):
            parse_prefix("10.0.0.0/33")
