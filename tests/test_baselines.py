"""Tests for the evaluation baselines: Header Space Analysis and the
Klee-style byte-level symbolic executor."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.hsa import (
    HeaderSpace,
    HsaNetwork,
    TransferFunction,
    TransferRule,
    WildcardExpr,
)
from repro.baselines.kleesim import KleeOptionsAnalysis
from repro.models.tcp_options import (
    ALLOW,
    DROP,
    OPTION_MSS,
    OPTION_SACK_OK,
    OPTION_TIMESTAMP,
    OPTION_WSCALE,
    OptionPolicy,
)


class TestWildcardExpr:
    def test_all_wildcards_matches_everything(self):
        expr = WildcardExpr.all_wildcards(8)
        assert expr.intersect(WildcardExpr.exact(8, 0)) is not None
        assert expr.intersect(WildcardExpr.exact(8, 255)) is not None

    def test_exact_conflict(self):
        a = WildcardExpr.exact(8, 5)
        b = WildcardExpr.exact(8, 6)
        assert a.intersect(b) is None
        assert a.intersect(a) == a

    def test_from_field(self):
        expr = WildcardExpr.from_field(16, 8, 8, 0xAB)
        assert expr.intersect(WildcardExpr.exact(16, 0xAB00)) is not None
        assert expr.intersect(WildcardExpr.exact(16, 0xAB42)) is not None
        assert expr.intersect(WildcardExpr.exact(16, 0xAC00)) is None

    def test_from_prefix(self):
        expr = WildcardExpr.from_prefix(32, 0, 32, 0x0A000000, 8)
        assert expr.intersect(WildcardExpr.exact(32, 0x0A123456)) is not None
        assert expr.intersect(WildcardExpr.exact(32, 0x0B000000)) is None

    def test_rewrite(self):
        expr = WildcardExpr.all_wildcards(8)
        rewritten = expr.rewrite(0x0F, 0xA0)  # overwrite the high nibble with 0xA
        assert rewritten.intersect(WildcardExpr.exact(8, 0xA3)) is not None
        assert rewritten.intersect(WildcardExpr.exact(8, 0x53)) is None

    def test_covers(self):
        broad = WildcardExpr.from_prefix(32, 0, 32, 0x0A000000, 8)
        narrow = WildcardExpr.from_prefix(32, 0, 32, 0x0A0A0000, 16)
        assert broad.covers(narrow)
        assert not narrow.covers(broad)

    def test_string_rendering(self):
        expr = WildcardExpr.from_field(4, 0, 2, 0b10)
        assert str(expr) == "xx10"

    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    def test_intersection_matches_concrete_semantics(self, dc1, v1, dc2, v2):
        a = WildcardExpr(8, dc1, v1)
        b = WildcardExpr(8, dc2, v2)
        joined = a.intersect(b)
        concrete_both = [
            value
            for value in range(256)
            if a.intersect(WildcardExpr.exact(8, value)) is not None
            and b.intersect(WildcardExpr.exact(8, value)) is not None
        ]
        if joined is None:
            assert concrete_both == []
        else:
            matches = [
                value
                for value in range(256)
                if joined.intersect(WildcardExpr.exact(8, value)) is not None
            ]
            assert matches == concrete_both


class TestHeaderSpaceAndTransferFunctions:
    def test_header_space_intersection(self):
        space = HeaderSpace.all_headers(8)
        narrowed = space.intersect_expr(WildcardExpr.exact(8, 7))
        assert not narrowed.is_empty()
        assert narrowed.covers_exact(7)
        assert not narrowed.covers_exact(8)

    def test_transfer_rule_rewrite(self):
        rule = TransferRule(
            match=WildcardExpr.all_wildcards(8),
            out_ports=("out0",),
            rewrite_mask=0x0F,
            rewrite_value=0xA0,
        )
        produced = rule.apply(HeaderSpace.all_headers(8))
        assert produced is not None
        assert produced.covers_exact(0xA5)
        assert not produced.covers_exact(0x15)

    def test_transfer_function_port_dispatch(self):
        box = TransferFunction("fw", 8)
        box.add_rule("in0", TransferRule(WildcardExpr.exact(8, 1), ("out0",)))
        box.add_rule("*", TransferRule(WildcardExpr.exact(8, 2), ("out1",)))
        outputs = box.apply("in0", HeaderSpace.all_headers(8))
        assert {port for port, _ in outputs} == {"out0", "out1"}
        outputs = box.apply("in9", HeaderSpace.all_headers(8))
        assert {port for port, _ in outputs} == {"out1"}

    def test_reachability_over_links(self):
        network = HsaNetwork(8)
        a = TransferFunction("a", 8)
        a.add_rule("in0", TransferRule(WildcardExpr.from_field(8, 4, 4, 0xA), ("out0",)))
        b = TransferFunction("b", 8)
        b.add_rule("in0", TransferRule(WildcardExpr.all_wildcards(8), ("out0",)))
        network.add_box(a)
        network.add_box(b)
        network.add_link(("a", "out0"), ("b", "in0"))
        result = network.reachability("a", "in0")
        assert result.reaches("b", "in0")
        space = result.space_at("b", "out0")
        assert space is not None and space.covers_exact(0xA5)
        assert not space.covers_exact(0x15)

    def test_reachability_terminates_on_loops(self):
        network = HsaNetwork(4)
        a = TransferFunction("a", 4)
        a.add_rule("in0", TransferRule(WildcardExpr.all_wildcards(4), ("out0",)))
        network.add_box(a)
        network.add_link(("a", "out0"), ("a", "in0"))
        result = network.reachability("a", "in0", max_hops=16)
        assert result.reaches("a", "in0")

    def test_hsa_cannot_express_per_packet_invariance(self):
        """The §2 argument: pushing all headers through an identity transfer
        function yields all headers again — the output space equals the input
        space, but that tells us nothing about individual packets (SymNet's
        symbolic values do; see the tunnel tests)."""
        network = HsaNetwork(8)
        identity = TransferFunction("t", 8)
        identity.add_rule(
            "in0", TransferRule(WildcardExpr.all_wildcards(8), ("out0",))
        )
        network.add_box(identity)
        result = network.reachability("t", "in0")
        out_space = result.space_at("t", "out0")
        # The output admits *every* header: a rewriting box would produce the
        # same answer, so invariance is not observable.
        assert all(out_space.covers_exact(value) for value in range(256))


class TestKleeSim:
    def test_path_count_grows_superlinearly(self):
        counts = [KleeOptionsAnalysis(length).run().path_count for length in (1, 2, 3, 4)]
        assert counts[0] < counts[1] < counts[2] < counts[3]
        # Super-linear growth: each extra byte multiplies the path count.
        assert counts[3] >= 2 * counts[2]

    def test_zero_length_options(self):
        result = KleeOptionsAnalysis(0).run()
        assert result.path_count == 1
        assert result.paths[0].accepts

    def test_length_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            KleeOptionsAnalysis(41)

    def test_drop_verdict_paths_present(self):
        policy = OptionPolicy(verdicts={OPTION_MSS: ALLOW, 19: DROP})
        analysis = KleeOptionsAnalysis(3, policy=policy)
        result = analysis.run()
        assert any(not path.accepts for path in result.paths)

    def test_budget_interrupts_exploration(self):
        analysis = KleeOptionsAnalysis(6)
        result = analysis.run(max_paths=5)
        assert not result.finished
        assert result.path_count >= 5

    def test_time_budget_interrupts_exploration(self):
        analysis = KleeOptionsAnalysis(8)
        result = analysis.run(time_budget_seconds=0.0)
        assert not result.finished

    def test_option_allowed_queries(self):
        analysis = KleeOptionsAnalysis(4)
        result = analysis.run()
        assert analysis.option_allowed(result, OPTION_MSS)
        assert analysis.option_allowed(result, OPTION_WSCALE)

    def test_small_length_cannot_see_long_option_combinations(self):
        """The Table 4 phenomenon: with a short options field the analysis
        cannot certify that three 4-byte options fit simultaneously."""
        analysis = KleeOptionsAnalysis(4)
        result = analysis.run()
        assert not analysis.combination_allowed(
            result, [OPTION_MSS, OPTION_SACK_OK, OPTION_WSCALE]
        )

    def test_solver_calls_recorded(self):
        analysis = KleeOptionsAnalysis(2)
        result = analysis.run()
        assert result.solver_calls > 0
