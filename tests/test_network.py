"""Tests for the topology model: elements, ports, links."""

import pytest

from repro.core.errors import ModelError
from repro.network import Network, NetworkElement, PortId, input_port, output_port
from repro.sefl.instructions import Forward, NoOp


class TestPorts:
    def test_port_naming_helpers(self):
        assert input_port(0) == "in0"
        assert output_port(3) == "out3"
        assert input_port("custom") == "custom"

    def test_port_id_string(self):
        assert str(PortId("sw1", "in0")) == "sw1:in0"


class TestNetworkElement:
    def test_declared_ports(self):
        element = NetworkElement("e", ["in0"], ["out0", "out1"])
        assert element.input_ports == ["in0"]
        assert element.output_ports == ["out0", "out1"]

    def test_set_program_registers_port(self):
        element = NetworkElement("e")
        element.set_input_program("in5", NoOp())
        element.set_output_program("out2", NoOp())
        assert element.has_input_port("in5")
        assert element.has_output_port("out2")

    def test_wildcard_input_program(self):
        element = NetworkElement("e", ["in0", "in1"], ["out0"])
        element.set_input_program("*", Forward("out0"))
        assert isinstance(element.input_program("in0"), Forward)
        assert isinstance(element.input_program("in1"), Forward)

    def test_specific_program_overrides_wildcard(self):
        element = NetworkElement("e", ["in0", "in1"], ["out0"])
        element.set_input_program("*", Forward("out0"))
        element.set_input_program("in1", NoOp())
        assert isinstance(element.input_program("in1"), NoOp)
        assert isinstance(element.input_program("in0"), Forward)

    def test_default_program_is_noop(self):
        element = NetworkElement("e", ["in0"], ["out0"])
        assert isinstance(element.input_program("in0"), NoOp)
        assert isinstance(element.output_program("out0"), NoOp)

    def test_resolve_output_port_by_index(self):
        element = NetworkElement("e", [], ["north", "south"])
        assert element.resolve_output_port(0) == "north"
        assert element.resolve_output_port(1) == "south"
        assert element.resolve_output_port("south") == "south"

    def test_resolve_out_of_range_index_falls_back_to_convention(self):
        element = NetworkElement("e", [], ["out0"])
        assert element.resolve_output_port(7) == "out7"


class TestNetwork:
    def setup_method(self):
        self.network = Network("test")
        self.a = NetworkElement("a", ["in0"], ["out0"])
        self.b = NetworkElement("b", ["in0"], ["out0"])
        self.network.add_elements(self.a, self.b)

    def test_duplicate_element_rejected(self):
        with pytest.raises(ModelError):
            self.network.add_element(NetworkElement("a"))

    def test_unknown_element_lookup_fails(self):
        with pytest.raises(ModelError):
            self.network.element("missing")

    def test_add_link_and_lookup(self):
        self.network.add_link(("a", "out0"), ("b", "in0"))
        destination = self.network.link_from("a", "out0")
        assert destination == PortId("b", "in0")
        assert self.network.link_from("b", "out0") is None

    def test_duplicate_source_port_rejected(self):
        self.network.add_link(("a", "out0"), ("b", "in0"))
        with pytest.raises(ModelError):
            self.network.add_link(("a", "out0"), ("b", "in0"))

    def test_link_to_unknown_element_rejected(self):
        with pytest.raises(ModelError):
            self.network.add_link(("a", "out0"), ("ghost", "in0"))

    def test_add_link_registers_new_ports(self):
        self.network.add_link(("a", "extra-out"), ("b", "extra-in"))
        assert self.a.has_output_port("extra-out")
        assert self.b.has_input_port("extra-in")

    def test_duplex_link(self):
        forward, backward = self.network.add_duplex_link(
            "a", "b", "to-b", "from-b", "to-a", "from-a"
        )
        assert self.network.link_from("a", "to-b") == PortId("b", "from-a")
        assert self.network.link_from("b", "to-a") == PortId("a", "from-b")

    def test_links_listing(self):
        self.network.add_link(("a", "out0"), ("b", "in0"))
        assert len(self.network.links) == 1
        assert "a:out0 -> b:in0" in str(self.network.links[0])

    def test_port_count(self):
        assert self.network.port_count() == 4

    def test_len_and_iteration(self):
        assert len(self.network) == 2
        assert {e.name for e in self.network} == {"a", "b"}

    def test_validate_clean_network(self):
        self.network.add_link(("a", "out0"), ("b", "in0"))
        assert self.network.validate() == []

    def test_permissive_link_to_unknown_element_is_a_validate_finding(self):
        self.network.add_link_permissive(("a", "out0"), ("ghost", "in0"))
        problems = self.network.validate()
        assert any("ghost" in problem for problem in problems)

    def test_permissive_link_from_unknown_element_is_a_validate_finding(self):
        self.network.add_link_permissive(("phantom", "out0"), ("b", "in0"))
        problems = self.network.validate()
        assert any("phantom" in problem for problem in problems)

    def test_permissive_link_still_declares_ports_on_known_elements(self):
        self.network.add_link_permissive(("a", "extra-out"), ("b", "extra-in"))
        assert self.a.has_output_port("extra-out")
        assert self.b.has_input_port("extra-in")
        assert self.network.validate() == []

    def test_permissive_link_rejects_duplicate_source_port(self):
        self.network.add_link_permissive(("a", "out0"), ("ghost", "in0"))
        with pytest.raises(ModelError):
            self.network.add_link_permissive(("a", "out0"), ("b", "in0"))
