"""Tests for the campaign layer: network sources, job execution, query
aggregation, and parallel-vs-sequential equivalence."""

import json
import pickle

import pytest

from repro import Network, NetworkElement, models
from repro.core.campaign import (
    CAMPAIGN_QUERIES,
    CampaignJob,
    NetworkSource,
    VerificationCampaign,
    execute_job,
    free_input_ports,
)
from repro.core.queries import (
    InvariantReport,
    LoopFinding,
    LoopReport,
    ReachabilityMatrix,
)
from repro.sefl import Assign, Forward, InstructionBlock, IpDst, ip_to_number

DEPARTMENT_OPTIONS = dict(
    access_switches=4, hosts_per_switch=2, mac_entries=300, extra_routes=20
)


def small_switch_network():
    network = Network("tiny")
    network.add_element(
        models.build_switch("sw", {"out0": [0xAA], "out1": [0xBB]})
    )
    return network


def loop_network():
    """Two forwarders wired into a cycle."""
    network = Network("ring")
    for name in ("a", "b"):
        element = NetworkElement(name, ["in0", "in-entry"], ["out0"])
        element.set_input_program("in0", Forward("out0"))
        element.set_input_program("in-entry", Forward("out0"))
        network.add_element(element)
    network.add_link(("a", "out0"), ("b", "in0"))
    network.add_link(("b", "out0"), ("a", "in0"))
    return network


def rewriting_network():
    """An element that overwrites IpDst — an invariant violation."""
    network = Network("nat-ish")
    element = NetworkElement("nat", ["in0"], ["out0"])
    element.set_input_program(
        "in0",
        InstructionBlock(Assign(IpDst, ip_to_number("9.9.9.9")), Forward("out0")),
    )
    network.add_element(element)
    return network


class TestNetworkSource:
    def test_workload_source_is_picklable(self):
        source = NetworkSource.from_workload("department", **DEPARTMENT_OPTIONS)
        assert source.picklable
        clone = pickle.loads(pickle.dumps(source))
        assert clone == source

    def test_object_source_is_not_picklable(self):
        source = NetworkSource.from_network(small_switch_network())
        assert not source.picklable

    def test_workload_source_builds_network(self):
        source = NetworkSource.from_workload("department", **DEPARTMENT_OPTIONS)
        network, injections = source.build_full()
        assert network.has_element("m1")
        assert injections

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign workload"):
            NetworkSource.from_workload("does-not-exist").build()

    def test_directory_source(self, tmp_path):
        (tmp_path / "topology.txt").write_text("device sw switch sw.mac\n")
        (tmp_path / "sw.mac").write_text(
            "Vlan    Mac Address       Type        Ports\n"
            " 302    0011.2233.4455    DYNAMIC     out0\n"
        )
        source = NetworkSource.from_directory(str(tmp_path))
        assert source.picklable
        assert source.build().has_element("sw")

    def test_edited_directory_is_not_served_stale(self, tmp_path):
        """The runtime cache keys directory sources by topology fingerprint:
        a campaign after an edit must see the new network."""
        import os

        (tmp_path / "sw.mac").write_text(
            "Vlan    Mac Address       Type        Ports\n"
            " 302    0011.2233.4455    DYNAMIC     out0\n"
        )
        (tmp_path / "topology.txt").write_text("device sw switch sw.mac\n")
        first = VerificationCampaign(str(tmp_path)).run()
        assert first.reachability.sources == ["sw:in0"]

        (tmp_path / "topology.txt").write_text("device renamed switch sw.mac\n")
        # Guarantee a different mtime even on coarse filesystem clocks.
        os.utime(tmp_path / "topology.txt", ns=(1, 1))
        second = VerificationCampaign(str(tmp_path)).run()
        assert second.reachability.sources == ["renamed:in0"]

    def test_edited_snapshot_file_is_not_served_stale(self, tmp_path):
        """The fingerprint must cover device snapshots too, not just
        topology.txt: moving a MAC to a new port changes reachability."""
        import os

        (tmp_path / "topology.txt").write_text("device sw switch sw.mac\n")
        (tmp_path / "sw.mac").write_text(
            "Vlan    Mac Address       Type        Ports\n"
            " 302    0011.2233.4455    DYNAMIC     out0\n"
        )
        first = VerificationCampaign(str(tmp_path)).run()
        assert first.reachability.destinations == ["sw:out0"]

        (tmp_path / "sw.mac").write_text(
            "Vlan    Mac Address       Type        Ports\n"
            " 302    0011.2233.4455    DYNAMIC     moved\n"
        )
        os.utime(tmp_path / "sw.mac", ns=(1, 1))
        second = VerificationCampaign(str(tmp_path)).run()
        assert second.reachability.destinations == ["sw:moved"]


class TestFreeInputPorts:
    def test_only_unwired_inputs_are_injection_points(self):
        network = loop_network()
        # in0 on both elements is fed by the ring; only in-entry is free.
        assert sorted(free_input_ports(network)) == [
            ("a", "in-entry"),
            ("b", "in-entry"),
        ]

    def test_dangling_source_link_does_not_wire_its_destination(self):
        # A permissive link from a phantom element carries no traffic: the
        # destination port must remain a default injection point.
        network = Network()
        element = NetworkElement("b", ["in0"], ["out0"])
        element.set_input_program("in0", Forward("out0"))
        network.add_element(element)
        network.add_link_permissive(("phantom", "out0"), ("b", "in0"))
        assert free_input_ports(network) == [("b", "in0")]


class TestJobExecution:
    def test_job_on_object_source_via_campaign(self):
        campaign = VerificationCampaign(small_switch_network())
        result = campaign.run()
        assert result.reachability.pairs() == [
            ("sw:in0", "sw:out0", 1),
            ("sw:in0", "sw:out1", 1),
        ]
        assert result.loop_report.loop_free
        assert result.stats.jobs == 1

    def test_job_error_is_captured_not_raised(self):
        campaign = VerificationCampaign(small_switch_network())
        campaign.add_injection("ghost", "in0")
        result = campaign.run()
        assert result.job_errors
        source, error = result.job_errors[0]
        assert source == "ghost:in0"
        assert "ghost" in error
        assert result.stats.failed_jobs == 1

    def test_unknown_packet_template_is_a_job_error(self):
        campaign = VerificationCampaign(small_switch_network(), packet="gre")
        result = campaign.run()
        assert result.job_errors

    def test_unknown_query_rejected_up_front(self):
        with pytest.raises(ValueError, match="unknown queries"):
            VerificationCampaign(small_switch_network(), queries=("bogus",))

    def test_field_values_pin_headers(self):
        from repro.sefl.util import mac_to_number

        campaign = VerificationCampaign(
            small_switch_network(), field_values={"EtherDst": 0xAA}
        )
        result = campaign.run()
        # Only the out0 MAC group admits the pinned destination.
        assert result.reachability.pairs() == [("sw:in0", "sw:out0", 1)]


class TestQueries:
    def test_loop_report_finds_forwarding_loop(self):
        campaign = VerificationCampaign(loop_network())
        campaign.add_injection("a", "in-entry")
        result = campaign.run()
        assert not result.loop_report.loop_free
        finding = result.loop_report.findings[0]
        assert finding.source == "a:in-entry"
        assert "loop" in finding.reason
        assert len(finding.trace) > 2

    def test_invariant_violation_reported(self):
        campaign = VerificationCampaign(
            rewriting_network(), invariant_fields=("IpDst", "IpSrc")
        )
        result = campaign.run()
        report = result.invariant_report
        assert not report.field_holds("IpDst")
        assert report.field_holds("IpSrc")
        violations = report.violations()
        assert [(src, name) for src, name, _ in violations] == [("nat:in0", "IpDst")]

    def test_invariant_on_missing_field_is_vacuous_not_verified(self):
        # An ICMP packet allocates no TCP header, so TcpDst can't be checked:
        # every path is skipped and the field must NOT be reported as holding.
        campaign = VerificationCampaign(
            small_switch_network(), packet="icmp", invariant_fields=("TcpDst",)
        )
        result = campaign.run()
        assert not result.invariant_report.field_holds("TcpDst")
        assert result.invariant_report.field_vacuous("TcpDst")
        payload = result.to_dict()["invariants"]["fields"]["TcpDst"]
        assert payload["holds"] is False
        assert payload["vacuous"] is True
        cell = payload["by_source"]["sw:in0"]
        assert cell["checked"] == 0
        assert cell["skipped"] > 0

    def test_drop_policy_coverage_collects_reasons(self):
        campaign = VerificationCampaign(
            small_switch_network(), field_values={"EtherDst": 0xCC}
        )
        result = campaign.run()
        # The pinned MAC matches neither port group: both egress constraints
        # fail, and both drops carry explicit reasons.
        assert result.reachability.pair_count() == 0
        assert result.invariant_report.drops_covered
        totals = result.invariant_report.drop_reason_totals()
        assert sum(totals.values()) == 2

    def test_queries_can_be_restricted(self):
        campaign = VerificationCampaign(
            small_switch_network(), queries=("reachability",)
        )
        payload = campaign.run().to_dict()
        assert "reachability" in payload
        assert "loops" not in payload
        assert "invariants" not in payload


class TestQueryObjects:
    def test_matrix_fingerprint_is_order_independent(self):
        a = ReachabilityMatrix()
        a.record("s1", "d1")
        a.record("s2", "d2", 3)
        b = ReachabilityMatrix()
        b.record("s2", "d2", 3)
        b.record("s1", "d1")
        assert a == b
        assert a.fingerprint() == b.fingerprint()

    def test_matrix_queries(self):
        matrix = ReachabilityMatrix()
        matrix.add_source("s0")
        matrix.record("s1", "d1", 2)
        assert matrix.reachable("s1", "d1")
        assert not matrix.reachable("s0", "d1")
        assert matrix.path_count("s1", "d1") == 2
        assert matrix.sources == ["s0", "s1"]
        assert matrix.sources_reaching("d1") == ["s1"]
        assert matrix.destinations_from("s1") == ["d1"]
        assert matrix.pair_count() == 1

    def test_loop_report_fingerprint(self):
        report = LoopReport()
        report.add_source("s")
        report.record(LoopFinding("s", "a:in0", "loop detected", ("a:in0", "b:in0")))
        assert not report.loop_free
        assert report.sources_with_loops() == ["s"]
        assert report.fingerprint() == (("s", "a:in0", ("a:in0", "b:in0")),)

    def test_invariant_report_unexplained_drops(self):
        report = InvariantReport()
        report.record_drops("s", {"": 2, "filtered": 1})
        assert not report.drops_covered
        assert report.drop_reason_totals() == {"<unexplained>": 2, "filtered": 1}


class TestParallelEquivalence:
    """The acceptance criterion: a process-pool campaign produces the same
    query results as sequential execution."""

    def _source(self):
        return NetworkSource.from_workload("department", **DEPARTMENT_OPTIONS)

    def test_department_workers2_matches_sequential(self):
        sequential = VerificationCampaign(self._source()).run(workers=1)
        parallel = VerificationCampaign(self._source()).run(workers=2)
        assert sequential.execution_mode == "in-process"
        # The comparison is vacuous if the pool silently fell back to
        # in-process execution: require real out-of-process jobs here.
        import os

        assert parallel.execution_mode == "process-pool"
        assert all(job.worker_pid != os.getpid() for job in parallel.jobs)
        assert sequential.reachability == parallel.reachability
        assert (
            sequential.loop_report.fingerprint() == parallel.loop_report.fingerprint()
        )
        assert (
            sequential.invariant_report.fingerprint()
            == parallel.invariant_report.fingerprint()
        )
        assert not sequential.job_errors and not parallel.job_errors
        # The department audit of §8.5: the management plane is reachable
        # from outside — the security hole the paper found.
        assert sequential.reachability.reachable(
            "m1:in-internet", "switch-management:reached"
        )

    def test_jobs_pickle(self):
        campaign = VerificationCampaign(self._source())
        for job in campaign.jobs():
            assert pickle.loads(pickle.dumps(job)) == job

    def test_directory_campaign_with_workers(self, tmp_path):
        # sw:in0 has no incoming link, so it is the campaign's default
        # (free) injection point.
        (tmp_path / "topology.txt").write_text(
            "device sw switch sw.mac\n"
            "device r1 router r1.fib\n"
            "link sw:uplink -> r1:in0\n"
        )
        (tmp_path / "sw.mac").write_text(
            "Vlan    Mac Address       Type        Ports\n"
            " 302    0011.2233.4455    DYNAMIC     uplink\n"
            " 302    0011.2233.4456    DYNAMIC     host0\n"
        )
        (tmp_path / "r1.fib").write_text(
            "10.0.0.0/8      to-lan\n0.0.0.0/0       to-internet\n"
        )
        sequential = VerificationCampaign(str(tmp_path)).run(workers=1)
        parallel = VerificationCampaign(str(tmp_path)).run(workers=2)
        assert sequential.reachability == parallel.reachability
        assert sequential.reachability.pair_count() > 0

    def test_json_report_roundtrips(self):
        result = VerificationCampaign(self._source()).run(workers=1)
        payload = json.loads(result.to_json())
        assert payload["reachability"]["reachable_pairs"] == (
            result.reachability.pair_count()
        )
        assert payload["stats"]["jobs"] == result.stats.jobs
        assert payload["loops"]["loop_free"] == result.loop_report.loop_free


# ---------------------------------------------------------------------------
# Pool failure taxonomy
# ---------------------------------------------------------------------------

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor

_PARENT_PID = os.getpid()


def _explode_in_worker(job):
    """A stand-in for execute_job that fails only out-of-process: in the
    parent it delegates to the real thing, so a silent fallback to
    sequential execution would *mask* the failure — exactly the old bug."""
    if os.getpid() != _PARENT_PID:
        raise RuntimeError("job exploded in worker")
    return execute_job(job)


def _die_in_worker(job):
    """A worker that dies outright (SIGKILL-style), breaking the pool."""
    if os.getpid() != _PARENT_PID:
        os._exit(1)
    return execute_job(job)


fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="worker-failure stand-ins are inherited via fork",
)


class TestPoolFailureTaxonomy:
    """Regression: the pool path used to wrap execution in one
    ``except (OSError, RuntimeError)`` that treated *job-level* exceptions
    as "no multiprocessing here" and silently re-ran everything
    sequentially — masking real failures.  Only pool *startup* problems
    and ``BrokenProcessPool`` may fall back; a job raising propagates."""

    def _source(self):
        return NetworkSource.from_workload("department", **DEPARTMENT_OPTIONS)

    @fork_only
    def test_job_runtime_error_propagates_under_workers2(self, monkeypatch):
        monkeypatch.setattr(
            "repro.core.campaign.execute_job", _explode_in_worker
        )
        campaign = VerificationCampaign(self._source())
        with pytest.raises(RuntimeError, match="job exploded in worker"):
            campaign.run(workers=2)

    @fork_only
    def test_broken_pool_recovers_remaining_jobs_in_process(self, monkeypatch):
        sequential = VerificationCampaign(self._source()).run(workers=1)
        monkeypatch.setattr("repro.core.campaign.execute_job", _die_in_worker)
        campaign = VerificationCampaign(self._source())
        with pytest.warns(RuntimeWarning, match="worker process died"):
            result = campaign.run(workers=2)
        # Every job the broken pool never finished was re-executed in
        # process (where the stand-in delegates to the real execute_job),
        # and the answers match the sequential run exactly.
        assert result.execution_mode == "process-pool-recovered"
        assert not result.job_errors
        assert result.reachability == sequential.reachability
        assert (
            result.loop_report.fingerprint()
            == sequential.loop_report.fingerprint()
        )

    def test_broken_borrowed_pool_falls_back_before_submitting(self):
        # A lent pool is probed before any job is trusted to it: a pool
        # that cannot run anything demotes the run to in-process execution
        # (a startup failure, not a job failure — fallback is correct).
        pool = ProcessPoolExecutor(max_workers=1)
        pool.shutdown()
        result = VerificationCampaign(self._source()).run(workers=2, pool=pool)
        assert result.execution_mode == "in-process"
        assert not result.job_errors
