"""E2 — Figure 8: symbolic execution of different switch models.

The paper injects a packet with a symbolic destination MAC into three models
of the same MAC table (basic / ingress / egress) and plots verification time
as the table grows from 440 to 500 000 entries: the basic model explodes
(one path per entry, out of memory beyond ~1 000 entries), the ingress model
is quadratic in constraints, the egress model scales to 480 000 entries in
seconds.  The reproduction sweeps scaled-down table sizes and checks the
ordering egress ≤ ingress ≪ basic, plus the path-count structure behind it.
"""

import time

import pytest

from repro import ExecutionSettings, Network, SymbolicExecutor, models
from repro.models.switch import build_switch
from repro.workloads import generate_mac_table

from conftest import scaled

SETTINGS = ExecutionSettings(record_failed_paths=False)
PORTS = 20

SIZES = {
    "basic": [scaled(100, 440), scaled(200, 1000)],
    "ingress": [scaled(100, 440), scaled(500, 5_000), scaled(1000, 10_000)],
    "egress": [scaled(100, 440), scaled(1000, 10_000), scaled(4000, 480_000)],
}

_MEASURED = {}


def _run_switch(style, entries):
    table = generate_mac_table(entries, ports=PORTS, seed=8)
    network = Network()
    network.add_element(build_switch("sw", table, style=style))
    executor = SymbolicExecutor(network, settings=SETTINGS)
    started = time.perf_counter()
    result = executor.inject(models.symbolic_tcp_packet(), "sw", "in0")
    elapsed = time.perf_counter() - started
    return result, elapsed


@pytest.mark.parametrize(
    "style,entries",
    [(style, entries) for style, sizes in SIZES.items() for entries in sizes],
)
def test_switch_model_scaling(benchmark, style, entries, bench_report):
    result, elapsed = benchmark.pedantic(
        _run_switch, args=(style, entries), rounds=1, iterations=1
    )
    ports_in_use = len(
        {p.last_port.port for p in result.delivered()}
    )
    _MEASURED[(style, entries)] = (elapsed, len(result.delivered()))
    bench_report.append(
        f"Figure 8 | {style:7s} model, {entries:6d} MAC entries: "
        f"{elapsed:7.3f}s, {len(result.delivered())} paths, "
        f"{ports_in_use} ports reached, {result.solver_calls} solver calls"
    )
    assert result.delivered()


def test_fig8_shape_path_counts(bench_report):
    """Basic produces one path per entry; ingress/egress one per port."""
    entries = SIZES["basic"][0]
    basic, _ = _run_switch("basic", entries)
    ingress, _ = _run_switch("ingress", entries)
    egress, _ = _run_switch("egress", entries)
    assert len(basic.delivered()) == entries
    assert len(ingress.delivered()) <= PORTS
    assert len(egress.delivered()) <= PORTS
    bench_report.append(
        f"Figure 8 | paths at {entries} entries: basic={len(basic.delivered())}, "
        f"ingress={len(ingress.delivered())}, egress={len(egress.delivered())}"
    )


def test_fig8_shape_runtime_ordering(bench_report):
    """At equal size the egress model must not be slower than the basic model,
    and the basic model's cost must grow much faster with table size."""
    small, large = SIZES["basic"][0], SIZES["basic"][1]
    basic_small = _MEASURED.get(("basic", small)) or (_run_switch("basic", small)[1], 0)
    basic_large = _MEASURED.get(("basic", large)) or (_run_switch("basic", large)[1], 0)
    egress_large_size = SIZES["egress"][-1]
    egress_large = _MEASURED.get(("egress", egress_large_size)) or (
        _run_switch("egress", egress_large_size)[1],
        0,
    )
    basic_rate = basic_large[0] / large
    egress_rate = egress_large[0] / egress_large_size
    bench_report.append(
        f"Figure 8 | per-entry cost: basic {basic_rate * 1e3:.3f} ms/entry vs "
        f"egress {egress_rate * 1e3:.3f} ms/entry"
    )
    assert egress_rate < basic_rate
    # The basic model's total cost grows superlinearly with the table.
    assert basic_large[0] > basic_small[0]
