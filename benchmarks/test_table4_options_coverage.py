"""E5 — Table 4: Klee vs SymNet on the TCP-options firewall code.

The paper compares what each approach can establish about the ASA's options
processing within a one-hour budget.  Klee (on the C code) proves memory
safety and bounded execution only for up to 6 bytes of options and gives
*wrong* answers about which options are allowed (it misses that timestamps
pass once the field is long enough, and that allowed options combine
freely).  SymNet answers the behavioural questions in about a second on the
SEFL model, which is memory-safe and terminating by construction.

The reproduction runs the byte-level executor under a small time budget and
the SEFL model under SymNet, and rebuilds the table rows.
"""

import time

import pytest

from repro import ExecutionSettings, Network, SymbolicExecutor, models
from repro.baselines.kleesim import KleeOptionsAnalysis
from repro.core import checks as V
from repro.models import build_tcp_options_filter, tcp_options_metadata
from repro.models.tcp_options import (
    OPTION_MPTCP,
    OPTION_MSS,
    OPTION_SACK_OK,
    OPTION_TIMESTAMP,
    OPTION_WSCALE,
    option_var,
)
from repro.sefl import InstructionBlock, TcpDst

from conftest import scaled

KLEE_LENGTH = scaled(4, 6)
KLEE_BUDGET_SECONDS = scaled(5.0, 60.0)


def _symnet_options_run():
    network = Network()
    network.add_element(build_tcp_options_filter("asa"))
    program = InstructionBlock(
        models.symbolic_tcp_packet({TcpDst: 22}),
        tcp_options_metadata(
            {
                OPTION_MSS: 1,
                OPTION_WSCALE: 1,
                OPTION_SACK_OK: 1,
                OPTION_TIMESTAMP: 1,
                OPTION_MPTCP: 1,
            }
        ),
    )
    executor = SymbolicExecutor(
        network, settings=ExecutionSettings(record_failed_paths=False)
    )
    return executor.inject(program, "asa", "in0")


def test_klee_coverage_within_budget(benchmark, bench_report):
    analysis = KleeOptionsAnalysis(KLEE_LENGTH)
    result = benchmark.pedantic(
        analysis.run,
        kwargs={"time_budget_seconds": KLEE_BUDGET_SECONDS},
        rounds=1,
        iterations=1,
    )
    mss = analysis.option_allowed(result, OPTION_MSS)
    three_way = analysis.combination_allowed(
        result, [OPTION_MSS, OPTION_SACK_OK, OPTION_WSCALE]
    )
    timestamp = analysis.option_allowed(result, OPTION_TIMESTAMP)
    bench_report.append(
        f"Table 4 | Klee ({KLEE_LENGTH}B options, {result.runtime_seconds:.2f}s): "
        f"{result.path_count} paths, MSS allowed={mss}, "
        f"MSS+SackOK+WScale together={three_way} (wrong: field too short), "
        f"timestamp allowed={timestamp}"
    )
    # Klee-style analysis of a short options field cannot certify that the
    # three 4-byte options fit together — the wrong answer the paper calls out.
    assert mss
    assert not three_way


def test_symnet_coverage(benchmark, bench_report):
    started = time.perf_counter()
    result = benchmark.pedantic(_symnet_options_run, rounds=1, iterations=1)
    runtime = time.perf_counter() - started
    path = result.delivered()[0]
    rows = {
        "MSS": V.field_concrete_value(path, option_var(OPTION_MSS)),
        "WScale": V.field_concrete_value(path, option_var(OPTION_WSCALE)),
        "SackOK": V.field_concrete_value(path, option_var(OPTION_SACK_OK)),
        "Timestamp": V.field_concrete_value(path, option_var(OPTION_TIMESTAMP)),
        "Multipath": V.field_concrete_value(path, option_var(OPTION_MPTCP)),
    }
    bench_report.append(
        f"Table 4 | SymNet ({runtime:.2f}s, {len(result.delivered())} paths): "
        + ", ".join(f"{name} allowed={bool(value)}" for name, value in rows.items())
    )
    # SymNet's model answers all the behavioural questions: every allowed
    # option passes simultaneously, multipath is always stripped, MSS is
    # always present.
    assert rows["MSS"] == 1
    assert rows["WScale"] == 1
    assert rows["SackOK"] == 1
    assert rows["Timestamp"] == 1
    assert rows["Multipath"] == 0


def test_table4_runtime_gap(bench_report):
    """SymNet on the model is orders of magnitude faster than the byte-level
    analysis for the same behavioural questions."""
    analysis = KleeOptionsAnalysis(KLEE_LENGTH)
    klee_started = time.perf_counter()
    analysis.run(time_budget_seconds=KLEE_BUDGET_SECONDS)
    klee_runtime = time.perf_counter() - klee_started

    symnet_started = time.perf_counter()
    _symnet_options_run()
    symnet_runtime = time.perf_counter() - symnet_started

    bench_report.append(
        f"Table 4 | runtime: Klee-style {klee_runtime:.2f}s vs SymNet {symnet_runtime:.3f}s"
    )
    assert symnet_runtime < klee_runtime
