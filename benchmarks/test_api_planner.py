"""API-planner benchmark: N separate campaign runs vs one planned batch.

The session API's pitch is that a batch of queries compiles onto ONE shared
execution plan: ``ForAllPairs(Reach)``, ``Loop()`` and ``Invariant(...)``
over the same network need each injection port exactly once, where the
legacy workflow ran one full campaign per query kind.  This benchmark runs
both workflows from cold (runtime caches cleared, as separate CLI
invocations would be) on the department and stanford+ACL workloads and
asserts the planned batch does strictly less work: one third of the engine
jobs, fewer full solves, less wall-clock time — with every query answer
bit-identical to its dedicated legacy campaign.

Each comparison lands in ``BENCH_api.json`` (see conftest).
"""

import time

from repro.api import ForAllPairs, Invariant, Loop, NetworkModel, Reach
from repro.core.campaign import (
    DEFAULT_INVARIANT_FIELDS,
    NetworkSource,
    VerificationCampaign,
    clear_runtime_cache,
)

from conftest import FULL_SCALE, scaled

DEPARTMENT_OPTIONS = dict(
    access_switches=scaled(4, 15),
    hosts_per_switch=scaled(2, 8),
    mac_entries=scaled(300, 6000),
    extra_routes=scaled(20, 400),
)
STANFORD_ACL_OPTIONS = dict(
    zones=scaled(4, 16),
    internal_prefixes_per_zone=scaled(30, 200),
    service_acl_rules=scaled(4, 10),
)

KINDS = ("reachability", "loops", "invariants")


def _separate_campaigns(workload, options, workers):
    """The legacy workflow: one dedicated, cold campaign per query kind."""
    source = NetworkSource.from_workload(workload, **options)
    results = {}
    started = time.perf_counter()
    for kind in KINDS:
        clear_runtime_cache()
        results[kind] = VerificationCampaign(
            source,
            queries=(kind,),
            invariant_fields=DEFAULT_INVARIANT_FIELDS,
        ).run(workers=workers)
    return results, time.perf_counter() - started


def _planned_batch(workload, options, workers):
    """The session-API workflow: the same three questions, one plan."""
    clear_runtime_cache()
    model = NetworkModel.from_workload(workload, **options)
    started = time.perf_counter()
    result = model.query(
        ForAllPairs(Reach),
        Loop(),
        Invariant(*DEFAULT_INVARIANT_FIELDS),
        workers=workers,
    )
    return result, time.perf_counter() - started


def _compare(label, workload, options, workers, bench_report, bench_api_json):
    separate, separate_wall = _separate_campaigns(workload, options, workers)
    planned, planned_wall = _planned_batch(workload, options, workers)

    separate_jobs = sum(r.stats.jobs for r in separate.values())
    separate_solves = sum(r.stats.solver_cache_misses for r in separate.values())
    separate_calls = sum(r.stats.solver_calls for r in separate.values())

    # Every query answer bit-identical to its dedicated legacy campaign.
    assert (
        planned[0].backend.fingerprint()
        == separate["reachability"].reachability.fingerprint()
    )
    assert planned[1].backend.fingerprint() == separate["loops"].loop_report.fingerprint()
    assert (
        planned[2].backend.fingerprint()
        == separate["invariants"].invariant_report.fingerprint()
    )

    # The planned batch executes each injection port exactly once; the
    # legacy workflow ran it once per query kind.
    assert planned.stats.jobs * len(KINDS) == separate_jobs
    # Sharing the injections must also shrink the solver bill: fewer full
    # solves (the dominant cost) and less wall-clock time.
    assert planned.stats.solver_cache_misses < separate_solves
    assert planned_wall < separate_wall

    bench_report.append(
        f"API plan | {label} x{workers}: {planned.stats.jobs} jobs vs "
        f"{separate_jobs} separate, full solves "
        f"{planned.stats.solver_cache_misses} vs {separate_solves}, "
        f"wall {planned_wall:.2f}s vs {separate_wall:.2f}s"
    )
    bench_api_json.append(
        {
            "workload": f"{label}-x{workers}",
            "scale": "full" if FULL_SCALE else "small",
            "workers": workers,
            "queries": 3,
            "planned_jobs": planned.stats.jobs,
            "separate_jobs": separate_jobs,
            "planned_full_solves": planned.stats.solver_cache_misses,
            "separate_full_solves": separate_solves,
            "planned_solver_calls": planned.stats.solver_calls,
            "separate_solver_calls": separate_calls,
            "planned_wall_seconds": round(planned_wall, 6),
            "separate_wall_seconds": round(separate_wall, 6),
            "wall_speedup": round(separate_wall / max(planned_wall, 1e-9), 3),
        }
    )


def test_department_batch_beats_separate_campaigns(bench_report, bench_api_json):
    _compare(
        "department", "department", DEPARTMENT_OPTIONS, 1,
        bench_report, bench_api_json,
    )


def test_stanford_acl_batch_beats_separate_campaigns(bench_report, bench_api_json):
    _compare(
        "stanford-acl", "stanford", STANFORD_ACL_OPTIONS, 1,
        bench_report, bench_api_json,
    )


def test_stanford_acl_batch_beats_separate_campaigns_workers2(
    bench_report, bench_api_json
):
    _compare(
        "stanford-acl", "stanford", STANFORD_ACL_OPTIONS, 2,
        bench_report, bench_api_json,
    )
