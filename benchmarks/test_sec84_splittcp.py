"""E7 — §8.4: functional evaluation on the Split-TCP middlebox deployment.

The paper models the Figure 10 topology and statically rediscovers four
operational problems.  Each sub-benchmark runs one of those checks and
asserts the same verdict the deployment experience reports."""

import pytest

from repro import ExecutionSettings, SymbolicExecutor, models
from repro.click.elements import build_vlan_encap
from repro.sefl import Allocate, Assign, EtherSrc, InstructionBlock, IpLength, IpSrc, mac_to_number
from repro.solver.ast import Const, Eq
from repro.solver.solver import Solver
from repro.workloads import build_split_tcp_network
from repro.workloads.enterprise import CLIENT_MAC

SETTINGS = ExecutionSettings(record_failed_paths=False)


def _inject(workload, program=None, entry=None):
    executor = SymbolicExecutor(workload.network, settings=SETTINGS)
    return executor.inject(
        program if program is not None else models.symbolic_tcp_packet(),
        *(entry or workload.client_entry),
    )


def test_asymmetric_routing(benchmark, bench_report):
    workload = build_split_tcp_network(mirror_at_exit=True)
    result = benchmark.pedantic(_inject, args=(workload,), rounds=1, iterations=1)
    returned = result.reaching(*workload.client_return)
    via_proxy = all(p.visited("P", "in0") and p.visited("P", "in1") for p in returned)
    bench_report.append(
        f"Sec 8.4 | asymmetric routing: {len(returned)} return paths, "
        f"all cross the proxy in both directions={via_proxy}"
    )
    assert returned and via_proxy


def _max_client_length(workload):
    result = _inject(workload)
    path = result.reaching("R2", "out0")[0]
    solver = Solver()
    length = path.state.read_variable(IpLength)
    best = 0
    for probe in (1400, 1480, 1500, 1516, 1517, 1530, 1536, 1537):
        if solver.check(list(path.constraints) + [Eq(length, Const(probe))]).is_sat:
            best = max(best, probe)
    return best


def test_mtu_issue_with_tunnel(benchmark, bench_report):
    plain = build_split_tcp_network(with_tunnel=False)
    tunneled = build_split_tcp_network(with_tunnel=True)
    plain_mtu = _max_client_length(plain)
    tunneled_mtu = benchmark.pedantic(
        _max_client_length, args=(tunneled,), rounds=1, iterations=1
    )
    bench_report.append(
        f"Sec 8.4 | MTU: largest client packet {plain_mtu}B without tunnel, "
        f"{tunneled_mtu}B with IP-in-IP (paper: length + 20 < 1536)"
    )
    assert plain_mtu == 1536
    assert tunneled_mtu == 1516


def test_missing_vlan_tagging(benchmark, bench_report):
    def reachable(vlan_bug):
        workload = build_split_tcp_network(use_vlan=True, vlan_bug=vlan_bug)
        tagger = build_vlan_encap("client-vlan", vlan_id=100)
        workload.network.add_element(tagger)
        workload.network.add_link(("client-vlan", "out0"), workload.client_entry)
        result = _inject(workload, entry=("client-vlan", "in0"))
        return result.is_reachable("R2", "out0")

    buggy = benchmark.pedantic(reachable, args=(True,), rounds=1, iterations=1)
    correct = reachable(False)
    bench_report.append(
        f"Sec 8.4 | missing VLAN tag: reachable with bug={buggy}, after fix={correct}"
    )
    assert not buggy
    assert correct


def test_dhcp_security_appliance(benchmark, bench_report):
    def client_packet():
        return InstructionBlock(
            models.symbolic_tcp_packet({EtherSrc: mac_to_number(CLIENT_MAC)}),
            Allocate("origIP", 32),
            Assign("origIP", IpSrc),
            Allocate("origEther", 48),
            Assign("origEther", EtherSrc),
        )

    def reachable(proxy_rewrites):
        workload = build_split_tcp_network(
            dhcp_check=True, proxy_rewrites_src_mac=proxy_rewrites
        )
        result = _inject(workload, program=client_packet())
        return result.is_reachable("R2", "out0")

    broken = benchmark.pedantic(reachable, args=(True,), rounds=1, iterations=1)
    honest = reachable(False)
    bench_report.append(
        f"Sec 8.4 | DHCP lease check: reachable when proxy rewrites MAC={broken}, "
        f"when it preserves it={honest}"
    )
    assert not broken
    assert honest
