"""Resident-service benchmark: time-to-first-result under the streaming
demux vs the batch barrier.

The batch executor answers nothing until the whole campaign finishes; the
streaming executor (and the ``repro.cli serve`` service built on it) emits
each query's answer the moment the jobs in *its* port scope have reported.
For a batch of per-zone queries over the stanford backbone the first
answer therefore lands after ~1/zones of the work — measured here both at
the library seam (:func:`execute_plan_streaming`) and end-to-end through a
live service socket, with the standing invariant re-checked along the way:
streamed fingerprints are bit-identical to the batch run's.

Records merge into ``BENCH_serve.json`` (see conftest).
"""

import asyncio
import json
import queue as queue_module
import threading
import time

from repro.api import (
    NetworkModel,
    compile_plan,
    execute_plan,
    execute_plan_streaming,
    parse_query,
)
from repro.serve import ServiceClient, VerificationService, run_server

from conftest import scaled

ZONES = scaled(6, 16)
STANFORD_OPTIONS = dict(
    zones=ZONES,
    internal_prefixes_per_zone=scaled(12, 120),
    service_acl_rules=scaled(4, 10),
)
# One query per zone-edge ACL port (the workload's default injection
# ports) plus a whole-network one: the first scoped answer streams after
# ~1/zones of the execution while later zones are still running.
# Symmetry off so every zone really pays an engine job (the streaming
# curve is the point here, not the class collapse).
QUERY_TEXTS = [f"loop(acl{i}:in0)" for i in range(ZONES)] + [
    "forall_pairs(reach)"
]
SETTINGS = dict(symmetry=False)


def _model():
    return NetworkModel.from_workload("stanford", **STANFORD_OPTIONS)


def test_streaming_time_to_first_result(bench_report, bench_serve_json):
    queries = [parse_query(text) for text in QUERY_TEXTS]

    start = time.perf_counter()
    batch = execute_plan(compile_plan(_model(), queries, **SETTINGS))
    batch_wall = time.perf_counter() - start
    assert not batch.job_errors

    arrivals = []
    start = time.perf_counter()
    streamed = execute_plan_streaming(
        compile_plan(_model(), queries, **SETTINGS),
        on_result=lambda index, result, reported, total: arrivals.append(
            (time.perf_counter() - start, index, reported, total)
        ),
    )
    streaming_wall = time.perf_counter() - start

    # Parity first: the streamed answers are the batch answers, bit for bit.
    assert [r.fingerprint for r in streamed.results] == [
        r.fingerprint for r in batch.results
    ]
    assert len(arrivals) == len(QUERY_TEXTS)
    first_result = arrivals[0][0]
    # The first scoped answer must land well before the barrier, with jobs
    # still outstanding.
    assert arrivals[0][2] < arrivals[0][3]
    assert first_result < streaming_wall

    bench_serve_json.append(
        {
            "workload": f"stanford-zones{ZONES}-streaming-demux",
            "scale": "full" if ZONES == 16 else "small",
            "queries": len(QUERY_TEXTS),
            "jobs": streamed.plan.job_count,
            "batch_wall_seconds": round(batch_wall, 6),
            "streaming_wall_seconds": round(streaming_wall, 6),
            "time_to_first_result_seconds": round(first_result, 6),
            "time_to_last_result_seconds": round(arrivals[-1][0], 6),
            "first_result_fraction_of_wall": round(
                first_result / streaming_wall, 4
            ),
        }
    )
    bench_report.append(
        f"resident-service streaming (stanford zones={ZONES}): first answer "
        f"at {first_result:.2f}s of {streaming_wall:.2f}s streamed wall "
        f"(batch barrier: {batch_wall:.2f}s), "
        f"{len(QUERY_TEXTS)} queries / {streamed.plan.job_count} jobs"
    )


def test_service_socket_time_to_first_result(bench_report, bench_serve_json):
    service = VerificationService(batch_window=0.01)
    ready: "queue_module.Queue" = queue_module.Queue()
    loop = asyncio.new_event_loop()
    holder = {}

    class ReadyStream:
        def write(self, text):
            ready.put(json.loads(text))

        def flush(self):
            pass

    async def main():
        holder["task"] = asyncio.current_task()
        await run_server(service, port=0, ready_stream=ReadyStream())

    def runner():
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(main())
        except asyncio.CancelledError:
            pass
        finally:
            loop.close()

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    info = ready.get(timeout=60)
    try:
        with ServiceClient(info["host"], info["port"]) as client:
            network = {"workload": "stanford", "options": STANFORD_OPTIONS}
            start = time.perf_counter()
            request_id = client.submit(
                network, QUERY_TEXTS, symmetry=False
            )
            first_result = None
            done_at = None
            while done_at is None:
                message = client.receive()
                if message.get("id") != request_id:
                    continue
                elapsed = time.perf_counter() - start
                if message["type"] == "result" and first_result is None:
                    first_result = elapsed
                    assert message["jobs_reported"] < message["jobs_total"]
                elif message["type"] == "done":
                    done_at = elapsed
                elif message["type"] == "error":
                    raise AssertionError(message["error"])
    finally:
        loop.call_soon_threadsafe(holder["task"].cancel)
        thread.join(timeout=60)

    assert first_result is not None and first_result < done_at
    bench_serve_json.append(
        {
            "workload": f"stanford-zones{ZONES}-service-socket",
            "scale": "full" if ZONES == 16 else "small",
            "queries": len(QUERY_TEXTS),
            "time_to_first_result_seconds": round(first_result, 6),
            "wall_clock_seconds": round(done_at, 6),
            "first_result_fraction_of_wall": round(first_result / done_at, 4),
        }
    )
    bench_report.append(
        f"resident-service socket (stanford zones={ZONES}): client saw its "
        f"first answer at {first_result:.2f}s, last at {done_at:.2f}s"
    )
