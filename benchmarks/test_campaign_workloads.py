"""Campaign benchmarks: network-wide analyses over the evaluation workloads.

The paper's per-port analyses (Tables 2/3, §8.5) answer one question at a
time; the campaign layer sweeps every interesting injection port of the
department, Split-TCP and Stanford-like workloads, checks that a process
pool changes nothing but the wall clock, and reports the aggregated solver
roll-ups.
"""

import pytest

from repro.core.campaign import NetworkSource, VerificationCampaign

from conftest import scaled

DEPARTMENT_OPTIONS = dict(
    access_switches=scaled(4, 15),
    hosts_per_switch=scaled(2, 8),
    mac_entries=scaled(300, 6000),
    extra_routes=scaled(20, 400),
)
STANFORD_OPTIONS = dict(
    zones=scaled(4, 16),
    internal_prefixes_per_zone=scaled(30, 200),
)


def _run(source, workers):
    return VerificationCampaign(source).run(workers=workers)


def _report_row(bench_report, label, result):
    stats = result.stats
    bench_report.append(
        f"Campaign | {label}: {stats.jobs} jobs, {stats.paths} paths, "
        f"{result.reachability.pair_count()} reachable pairs, "
        f"loop_free={result.loop_report.loop_free}, "
        f"solver calls={stats.solver_calls} "
        f"(fast={stats.solver_fast_paths}, hits={stats.solver_cache_hits}), "
        f"wall {stats.wall_clock_seconds:.2f}s ({result.execution_mode})"
    )


def test_department_campaign_parallel_equals_sequential(benchmark, bench_report):
    source = NetworkSource.from_workload("department", **DEPARTMENT_OPTIONS)
    sequential = _run(source, workers=1)
    parallel = benchmark.pedantic(_run, args=(source, 2), rounds=1, iterations=1)
    _report_row(bench_report, "department seq", sequential)
    _report_row(bench_report, "department x2 ", parallel)
    assert sequential.reachability == parallel.reachability
    assert (
        sequential.invariant_report.fingerprint()
        == parallel.invariant_report.fingerprint()
    )
    # §8.5's finding, network-wide: the management plane is reachable both
    # from the Internet and from the cluster.
    for vantage in ("m1:in-internet", "cluster:in-node"):
        assert sequential.reachability.reachable(
            vantage, "switch-management:reached"
        )


def test_stanford_campaign_all_pairs(benchmark, bench_report):
    source = NetworkSource.from_workload("stanford", **STANFORD_OPTIONS)
    result = benchmark.pedantic(_run, args=(source, 2), rounds=1, iterations=1)
    _report_row(bench_report, "stanford all-pairs", result)
    zones = STANFORD_OPTIONS["zones"]
    # Every zone reaches every other zone's hosts port: a full off-diagonal
    # reachability matrix.
    for src in range(zones):
        for dst in range(zones):
            if src == dst:
                continue
            assert result.reachability.reachable(
                f"zr{src}:in-hosts", f"zr{dst}:hosts"
            ), (src, dst)
    assert result.loop_report.loop_free


def test_enterprise_campaign_round_trip(bench_report):
    source = NetworkSource.from_workload("enterprise", mirror_at_exit=True)
    result = _run(source, workers=1)
    _report_row(bench_report, "enterprise mirror", result)
    # With the exit mirror, client traffic must come back to the client.
    assert result.reachability.reachable("AP:in0", "R1:to-client")
