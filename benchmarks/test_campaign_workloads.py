"""Campaign benchmarks: network-wide analyses over the evaluation workloads.

The paper's per-port analyses (Tables 2/3, §8.5) answer one question at a
time; the campaign layer sweeps every interesting injection port of the
department, Split-TCP and Stanford-like workloads, checks that a process
pool changes nothing but the wall clock, and reports the aggregated solver
roll-ups.

The Stanford all-pairs sweep also carries the cross-job verdict-cache
acceptance check: with a campus-wide zone ACL in place (identical rules at
every zone edge, so the per-rule solver work is alpha-equivalent across
jobs), the campaign must perform measurably fewer full solves with the
shared canonical cache than with per-job isolated caches, while every query
fingerprint stays bit-identical with the cache on/off and workers 1/2.
Each run's wall time, solver-call counts and cache hit rate are appended to
``BENCH_campaign.json`` (see conftest) so the perf trajectory accumulates.
"""

import pytest

from repro.core.campaign import (
    NetworkSource,
    VerificationCampaign,
    clear_runtime_cache,
)

from conftest import campaign_record, scaled

DEPARTMENT_OPTIONS = dict(
    access_switches=scaled(4, 15),
    hosts_per_switch=scaled(2, 8),
    mac_entries=scaled(300, 6000),
    extra_routes=scaled(20, 400),
)
STANFORD_OPTIONS = dict(
    zones=scaled(4, 16),
    internal_prefixes_per_zone=scaled(30, 200),
)
STANFORD_ACL_OPTIONS = dict(
    service_acl_rules=scaled(4, 10), **STANFORD_OPTIONS
)


def _run(source, workers, shared_cache=True, warm=None):
    campaign = VerificationCampaign(
        source, shared_cache=shared_cache, warm_cache=warm
    )
    return campaign.run(workers=workers)


def _report_row(bench_report, label, result):
    stats = result.stats
    bench_report.append(
        f"Campaign | {label}: {stats.jobs} jobs, {stats.paths} paths, "
        f"{result.reachability.pair_count()} reachable pairs, "
        f"loop_free={result.loop_report.loop_free}, "
        f"solver calls={stats.solver_calls} "
        f"(fast={stats.solver_fast_paths}, hits={stats.solver_cache_hits}, "
        f"shared={stats.solver_shared_cache_hits}, "
        f"misses={stats.solver_cache_misses}), "
        f"wall {stats.wall_clock_seconds:.2f}s ({result.execution_mode})"
    )


def test_department_campaign_parallel_equals_sequential(
    benchmark, bench_report, bench_json
):
    source = NetworkSource.from_workload("department", **DEPARTMENT_OPTIONS)
    sequential = _run(source, workers=1)
    parallel = benchmark.pedantic(_run, args=(source, 2), rounds=1, iterations=1)
    _report_row(bench_report, "department seq", sequential)
    _report_row(bench_report, "department x2 ", parallel)
    bench_json.append(campaign_record("department-seq", sequential))
    bench_json.append(campaign_record("department-x2", parallel))
    assert sequential.reachability == parallel.reachability
    assert (
        sequential.invariant_report.fingerprint()
        == parallel.invariant_report.fingerprint()
    )
    # §8.5's finding, network-wide: the management plane is reachable both
    # from the Internet and from the cluster.
    for vantage in ("m1:in-internet", "cluster:in-node"):
        assert sequential.reachability.reachable(
            vantage, "switch-management:reached"
        )


def test_stanford_campaign_all_pairs(benchmark, bench_report, bench_json):
    source = NetworkSource.from_workload("stanford", **STANFORD_OPTIONS)
    result = benchmark.pedantic(_run, args=(source, 2), rounds=1, iterations=1)
    _report_row(bench_report, "stanford all-pairs", result)
    bench_json.append(campaign_record("stanford-all-pairs", result))
    zones = STANFORD_OPTIONS["zones"]
    # Every zone reaches every other zone's hosts port: a full off-diagonal
    # reachability matrix.
    for src in range(zones):
        for dst in range(zones):
            if src == dst:
                continue
            assert result.reachability.reachable(
                f"zr{src}:in-hosts", f"zr{dst}:hosts"
            ), (src, dst)
    assert result.loop_report.loop_free


def test_stanford_shared_cache_cuts_full_solves(bench_report, bench_json):
    """The verdict-cache acceptance criterion on the all-pairs sweep."""
    source = NetworkSource.from_workload("stanford", **STANFORD_ACL_OPTIONS)

    def fresh_run(workers, shared_cache):
        clear_runtime_cache()  # measure cache tiers, not leftover workers
        return _run(source, workers=workers, shared_cache=shared_cache)

    isolated = fresh_run(workers=1, shared_cache=False)
    shared_seq = fresh_run(workers=1, shared_cache=True)
    shared_x2 = fresh_run(workers=2, shared_cache=True)
    clear_runtime_cache()
    warm = _run(source, workers=1, warm=shared_seq.verdict_cache)

    _report_row(bench_report, "stanford+acl isolated", isolated)
    _report_row(bench_report, "stanford+acl shared  ", shared_seq)
    _report_row(bench_report, "stanford+acl shared x2", shared_x2)
    _report_row(bench_report, "stanford+acl warm    ", warm)
    bench_json.append(campaign_record("stanford-acl-isolated", isolated))
    bench_json.append(campaign_record("stanford-acl-shared", shared_seq))
    bench_json.append(campaign_record("stanford-acl-shared-x2", shared_x2))
    bench_json.append(campaign_record("stanford-acl-warm", warm))

    # Measurably fewer full solves with the shared cache than without: the
    # isolated baseline pays every zone's ACL solves, the shared cache pays
    # one zone's worth (zones x rules vs ~rules misses).
    assert isolated.stats.solver_cache_misses > 0
    assert (
        shared_seq.stats.solver_cache_misses
        <= isolated.stats.solver_cache_misses // 2
    )
    assert shared_seq.stats.solver_cache_hits > 0
    # Warm-started campaigns re-solve nothing at all.
    assert warm.stats.solver_cache_misses == 0

    # ... while query fingerprints stay bit-identical with the cache on/off
    # and workers 1/2.
    runs = [isolated, shared_seq, shared_x2, warm]
    expected_reach = isolated.reachability.fingerprint()
    expected_loops = isolated.loop_report.fingerprint()
    for result in runs:
        assert result.reachability.fingerprint() == expected_reach
        assert result.loop_report.fingerprint() == expected_loops


def test_enterprise_campaign_round_trip(bench_report, bench_json):
    source = NetworkSource.from_workload("enterprise", mirror_at_exit=True)
    result = _run(source, workers=1)
    _report_row(bench_report, "enterprise mirror", result)
    bench_json.append(campaign_record("enterprise-mirror", result))
    # With the exit mirror, client traffic must come back to the client.
    assert result.reachability.reachable("AP:in0", "R1:to-client")
