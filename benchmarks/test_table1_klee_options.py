"""E1 — Table 1: Klee-style symbolic execution of the TCP options parsing code.

The paper runs Klee on the firewall's C code with a symbolic options field
and reports the number of explored paths and the runtime as the options
length grows (3, 8, 19, 45, 106, 248, 510 paths for lengths 1-7, with
runtimes exploding from 0.2 s to hours).  The reproduction runs the same
algorithm under the byte-level symbolic executor of
:mod:`repro.baselines.kleesim`; the absolute numbers differ but the shape —
super-linear path growth and runtime growth with length — must hold, and it
must dwarf the cost of the SEFL model (Figure 7) which SymNet executes with
a handful of paths regardless of length.
"""

import pytest

from repro import ExecutionSettings, Network, SymbolicExecutor, models
from repro.baselines.kleesim import KleeOptionsAnalysis
from repro.models import build_tcp_options_filter, tcp_options_metadata
from repro.sefl import InstructionBlock

from conftest import scaled

LENGTHS = [1, 2, 3, 4] if not scaled(False, True) else [1, 2, 3, 4, 5]
_RESULTS = {}


def _klee_run(length):
    analysis = KleeOptionsAnalysis(length)
    return analysis.run()


@pytest.mark.parametrize("length", LENGTHS)
def test_klee_path_explosion(benchmark, length, bench_report):
    result = benchmark.pedantic(_klee_run, args=(length,), rounds=1, iterations=1)
    _RESULTS[length] = result
    bench_report.append(
        f"Table 1 | options length {length}: {result.path_count} paths, "
        f"{result.runtime_seconds:.3f}s, {result.solver_calls} solver calls"
    )
    assert result.finished
    assert result.path_count >= 1


def test_klee_growth_is_superlinear(bench_report):
    counts = [
        (_RESULTS.get(length) or _klee_run(length)).path_count for length in LENGTHS
    ]
    # Strictly growing and accelerating, as in Table 1.
    assert all(b > a for a, b in zip(counts, counts[1:]))
    assert counts[-1] / counts[0] >= len(LENGTHS)
    bench_report.append(f"Table 1 | path counts by length {LENGTHS}: {counts}")


def test_symnet_model_is_length_independent(benchmark, bench_report):
    """The SEFL model's cost does not depend on the options-field length: all
    options the packet may carry are pre-parsed metadata (Figure 7)."""
    network = Network()
    network.add_element(build_tcp_options_filter("asa-options"))
    executor = SymbolicExecutor(
        network, settings=ExecutionSettings(record_failed_paths=False)
    )
    program = InstructionBlock(
        models.symbolic_tcp_packet(),
        tcp_options_metadata([2, 3, 4, 5, 8, 30]),
    )

    result = benchmark(executor.inject, program, "asa-options", "in0")
    bench_report.append(
        f"Table 1 | SymNet SEFL options model: {len(result.delivered())} paths "
        f"(independent of options length)"
    )
    assert 1 <= len(result.delivered()) <= 8
    klee_paths = (_RESULTS.get(LENGTHS[-1]) or _klee_run(LENGTHS[-1])).path_count
    assert len(result.delivered()) < klee_paths
