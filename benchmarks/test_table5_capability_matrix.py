"""E6 — Table 5: qualitative comparison of verification capabilities.

Table 5 compares SymNet against HSA (and others) on which network behaviours
each tool can verify.  Rather than hard-coding the matrix, this benchmark
*derives* the SymNet column by actually running a scenario probe per row on
this implementation, and derives the HSA rows that can be probed with the
bundled HSA engine.  The assertions encode the paper's claimed differences:
SymNet handles invariants, header visibility, memory correctness, dynamic
tunneling, TCP options, dynamic NATs and encryption; packet splitting /
fragmentation remain unsupported (§10).
"""

import pytest

from repro import ExecutionSettings, Network, SymbolicExecutor, models
from repro.baselines.hsa import HeaderSpace, HsaNetwork, TransferFunction, TransferRule, WildcardExpr
from repro.core import checks as V
from repro.models import (
    build_decapsulator,
    build_decryptor,
    build_encapsulator,
    build_encryptor,
    build_ip_mirror,
    build_nat,
    build_router,
    build_tcp_options_filter,
    tcp_options_metadata,
)
from repro.models.tcp_options import OPTION_MPTCP, option_var
from repro.sefl import InstructionBlock, IpDst, IpSrc, Tag, TcpPayload, Constrain, Eq, Forward
from repro.sefl.instructions import InstructionBlock as Block

SETTINGS = ExecutionSettings(record_failed_paths=True)

MATRIX = {}


def run(network, packet, element, port="in0"):
    return SymbolicExecutor(network, settings=SETTINGS).inject(packet, element, port)


def probe_reachability():
    network = Network()
    network.add_element(build_router("r", [(0, 0, "if0")]))
    result = run(network, models.symbolic_ip_packet(), "r")
    return result.is_reachable("r", "if0")


def probe_invariants_and_tunneling():
    network = Network()
    network.add_element(build_encapsulator("E", "10.0.0.1", "10.0.0.2"))
    network.add_element(build_decapsulator("D"))
    network.add_link(("E", "out0"), ("D", "in0"))
    result = run(network, models.symbolic_tcp_packet(), "E")
    path = result.reaching("D", "out0")[0]
    return V.field_invariant(path, IpDst) and V.field_invariant(path, IpSrc)


def probe_header_visibility_and_encryption():
    network = Network()
    network.add_element(build_encryptor("enc", key=3))
    network.add_element(build_decryptor("dec", key=3))
    network.add_link(("enc", "out0"), ("dec", "in0"))
    result = run(network, models.symbolic_tcp_packet(), "enc")
    path = result.reaching("dec", "out0")[0]
    original = path.state.variable_history(TcpPayload)[0]
    return V.header_visible(path, TcpPayload, original)


def probe_memory_correctness():
    network = Network()
    from repro.network import NetworkElement

    element = NetworkElement("broken", ["in0"], ["out0"])
    element.set_input_program(
        "in0", Block(Constrain(Eq(Tag("L3") + 4096, 1)), Forward("out0"))
    )
    network.add_element(element)
    result = run(network, models.symbolic_tcp_packet(), "broken")
    return bool(V.memory_safety_violations(result))


def probe_dynamic_nat():
    network = Network()
    network.add_element(build_nat("nat"))
    network.add_element(build_ip_mirror("mirror"))
    network.add_link(("nat", "out0"), ("mirror", "in0"))
    network.add_link(("mirror", "out0"), ("nat", "in1"))
    result = run(network, models.symbolic_tcp_packet(), "nat")
    return bool(result.reaching("nat", "out1"))


def probe_tcp_options():
    network = Network()
    network.add_element(build_tcp_options_filter("asa"))
    program = InstructionBlock(
        models.symbolic_tcp_packet(), tcp_options_metadata([2, 30])
    )
    result = run(network, program, "asa")
    path = result.reaching("asa", "out0")[0]
    return V.field_concrete_value(path, option_var(OPTION_MPTCP)) == 0


def probe_hsa_tunnel_invariance():
    """HSA cannot express per-packet invariance: an identity box and a
    rewriting box produce indistinguishable all-wildcard output spaces."""
    width = 32
    identity = TransferFunction("identity", width)
    identity.add_rule("in0", TransferRule(WildcardExpr.all_wildcards(width), ("out0",)))
    rewriter = TransferFunction("rewriter", width)
    rewriter.add_rule(
        "in0",
        TransferRule(
            WildcardExpr.all_wildcards(width),
            ("out0",),
            rewrite_mask=0,
            rewrite_value=0,
        ),
    )
    spaces = []
    for box in (identity, rewriter):
        network = HsaNetwork(width)
        network.add_box(box)
        result = network.reachability(box.name, "in0")
        space = result.space_at(box.name, "out0")
        # Wildcard count is the only observable: identity keeps 32 wildcards.
        spaces.append(max(expr.count_wildcards() for expr in space.exprs))
    identity_observable, rewriter_observable = spaces
    # If HSA could prove invariance the two observations would differ *and*
    # relate outputs to inputs; the most it sees is the wildcard structure.
    return identity_observable == 32 and rewriter_observable == 0


CAPABILITY_PROBES = [
    ("Reachability", probe_reachability, True),
    ("Invariants", probe_invariants_and_tunneling, True),
    ("Header visibility", probe_header_visibility_and_encryption, True),
    ("Memory correctness", probe_memory_correctness, True),
    ("Dynamic tunneling", probe_invariants_and_tunneling, True),
    ("TCP options", probe_tcp_options, True),
    ("Dynamic NATs", probe_dynamic_nat, True),
    ("Encryption", probe_header_visibility_and_encryption, True),
]


@pytest.mark.parametrize("row,probe,expected", CAPABILITY_PROBES)
def test_symnet_capability(benchmark, row, probe, expected, bench_report):
    supported = benchmark.pedantic(probe, rounds=1, iterations=1)
    MATRIX[row] = supported
    bench_report.append(f"Table 5 | SymNet {row:20s}: {'yes' if supported else 'no'}")
    assert supported is expected


def test_hsa_lacks_per_packet_invariance(benchmark, bench_report):
    result = benchmark.pedantic(probe_hsa_tunnel_invariance, rounds=1, iterations=1)
    bench_report.append(
        "Table 5 | HSA invariants/visibility: no "
        "(output header spaces do not relate packets to inputs)"
    )
    assert result  # the probe demonstrates the limitation


def test_unsupported_rows_documented(bench_report):
    """§10: packet splitting / coalescing and IP fragmentation are out of
    scope for SymNet (and for every other tool in Table 5)."""
    bench_report.append("Table 5 | TCP segment splitting: no (paper §10)")
    bench_report.append("Table 5 | IP fragmentation: no (paper §10)")
    assert "TCP segment splitting" not in MATRIX
