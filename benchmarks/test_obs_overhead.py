"""Observability-overhead benchmark: the same pinned campaign with the
default no-op tracer vs a recording one.

The tracing layer's contract (repro.obs) is that the no-op path is the
default code path — an untraced run must not pay for the instrumentation
hooks — and that enabling tracing only adds bounded bookkeeping per span
(one perf_counter read pair plus a dict append).  This benchmark pins one
campaign workload, runs it untraced and traced (workers 1 and 2, so the
cross-process ship-back channel is on the measured path), asserts the
answers are bit-identical, and records both walls plus the span volume in
``BENCH_obs.json`` so the overhead trajectory is versioned alongside the
perf numbers it must not distort.
"""

import time

from repro.core.campaign import (
    NetworkSource,
    VerificationCampaign,
    clear_runtime_cache,
)
from repro.obs import NullTracer, Tracer, set_tracer

from conftest import FULL_SCALE, scaled

STANFORD_OPTIONS = dict(
    zones=scaled(6, 16),
    internal_prefixes_per_zone=scaled(8, 60),
    service_acl_rules=scaled(3, 8),
)


def _fingerprints(result):
    return (
        result.reachability.fingerprint(),
        result.loop_report.fingerprint(),
        result.invariant_report.fingerprint(),
    )


def _timed_run(*, traced, workers):
    clear_runtime_cache()
    tracer = Tracer() if traced else NullTracer()
    previous = set_tracer(tracer)
    try:
        source = NetworkSource.from_workload("stanford", **STANFORD_OPTIONS)
        campaign = VerificationCampaign(source)
        started = time.perf_counter()
        result = campaign.run(workers=workers)
        wall = time.perf_counter() - started
    finally:
        set_tracer(previous)
    assert not result.job_errors
    return result, wall, len(tracer.export())


def test_tracing_overhead(bench_report, bench_obs_json):
    records = []
    for workers in (1, 2):
        off_result, off_wall, off_spans = _timed_run(
            traced=False, workers=workers
        )
        on_result, on_wall, on_spans = _timed_run(traced=True, workers=workers)
        assert off_spans == 0
        assert on_spans > 0
        # The standing invariant, extended: tracing changes which telemetry
        # is emitted, never the answer.
        assert _fingerprints(on_result) == _fingerprints(off_result)
        overhead = (on_wall - off_wall) / off_wall if off_wall else 0.0
        records.append(
            {
                "workload": f"stanford-obs-workers{workers}",
                "scale": "full" if FULL_SCALE else "small",
                "workers": workers,
                "jobs": on_result.stats.jobs,
                "untraced_wall_seconds": round(off_wall, 6),
                "traced_wall_seconds": round(on_wall, 6),
                "overhead_fraction": round(overhead, 4),
                "spans": on_spans,
            }
        )
        bench_report.append(
            f"obs overhead (workers={workers}): untraced {off_wall:.3f}s, "
            f"traced {on_wall:.3f}s ({overhead:+.1%}), {on_spans} spans"
        )
    bench_obs_json.extend(records)
