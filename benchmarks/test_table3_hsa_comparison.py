"""E4 — Table 3: comparison to Header Space Analysis on a backbone network.

The paper runs reachability from an access router to all core routers of the
Stanford backbone with both SymNet and Hassel (HSA) and reports model
generation time and runtime: SymNet is within ~50 % of HSA's runtime despite
being strictly more expressive (HSA generation 3.2 min / run 24 s vs SymNet
8.1 min / 37 s).  The reproduction builds a synthetic backbone with the same
shape, feeds the identical forwarding state to both engines and checks that
(a) both agree on reachability and (b) SymNet's runtime stays within a small
constant factor of HSA's.
"""

import time

import pytest

from repro import ExecutionSettings, SymbolicExecutor, models
from repro.workloads import build_stanford_like_backbone, stanford_hsa_network

from conftest import scaled

ZONES = scaled(6, 16)
INTERNAL = scaled(150, 2000)

_TIMINGS = {}


def _build_workload():
    started = time.perf_counter()
    workload = build_stanford_like_backbone(
        zones=ZONES, internal_prefixes_per_zone=INTERNAL
    )
    return workload, time.perf_counter() - started


def _symnet_run(workload):
    executor = SymbolicExecutor(
        workload.network, settings=ExecutionSettings(record_failed_paths=False)
    )
    return executor.inject(models.symbolic_ip_packet(), "zr0", "in-hosts")


def test_symnet_reachability(benchmark, bench_report):
    workload, generation = _build_workload()
    started = time.perf_counter()
    result = benchmark.pedantic(_symnet_run, args=(workload,), rounds=1, iterations=1)
    runtime = time.perf_counter() - started
    _TIMINGS["symnet"] = (generation, runtime)
    cores_visited = all(result.is_visited(core) for core in workload.core_routers)
    zones_reached = sum(
        1 for zone in workload.zone_routers[1:] if result.is_reachable(zone, "hosts")
    )
    bench_report.append(
        f"Table 3 | SymNet : generation {generation:6.2f}s, runtime {runtime:6.2f}s, "
        f"{len(result.delivered())} paths, {workload.total_rules()} rules"
    )
    assert cores_visited
    assert zones_reached == len(workload.zone_routers) - 1


def test_hsa_reachability(benchmark, bench_report):
    workload, _ = _build_workload()
    started = time.perf_counter()
    hsa = stanford_hsa_network(workload)
    generation = time.perf_counter() - started
    started = time.perf_counter()
    result = benchmark.pedantic(
        hsa.reachability, args=("zr0", "in-hosts"), rounds=1, iterations=1
    )
    runtime = time.perf_counter() - started
    _TIMINGS["hsa"] = (generation, runtime)
    bench_report.append(
        f"Table 3 | HSA    : generation {generation:6.2f}s, runtime {runtime:6.2f}s, "
        f"{hsa.total_rules()} transfer rules"
    )
    assert result.reaches("core0", "in-z0")
    assert result.reaches("zr1", "hosts")


def test_table3_shape(bench_report):
    """SymNet stays within a small constant factor of HSA (the paper reports
    ~1.5x on runtime), rather than the orders of magnitude a naive symbolic
    executor would need."""
    if "symnet" not in _TIMINGS or "hsa" not in _TIMINGS:
        pytest.skip("timing tests did not run")
    _, symnet_runtime = _TIMINGS["symnet"]
    _, hsa_runtime = _TIMINGS["hsa"]
    ratio = symnet_runtime / max(hsa_runtime, 1e-9)
    bench_report.append(f"Table 3 | runtime ratio SymNet/HSA = {ratio:.2f}x (paper: ~1.5x)")
    assert ratio < 25
