"""Incremental-solver ablation on the paper's evaluation workloads.

Reruns the Table 2 router analysis and the §8.5 department injection with
the incremental solver switched off (every feasibility check re-solves the
whole path conjunction) and on (push/pop scopes + propagated domains +
memoized full checks), asserting:

* the explored path set is identical in both modes — the optimisation is
  purely an engine-internal change;
* the incremental engine issues at most half the full solver calls (in
  practice it fast-paths nearly all of them);
* DFS and BFS worklist strategies explore the same path set.
"""

import pytest

from repro import ExecutionSettings, Network, SymbolicExecutor, models
from repro.models.router import build_router
from repro.workloads import build_department_network, generate_fib
from repro.workloads.fibs import fib_subset

from conftest import scaled

PORTS = 16
_FIB = generate_fib(scaled(3000, 188_500), ports=PORTS, seed=12)

DEPT = build_department_network(
    access_switches=scaled(4, 15),
    hosts_per_switch=scaled(3, 8),
    mac_entries=scaled(600, 6000),
    extra_routes=scaled(60, 400),
)


def _path_set(result):
    return sorted(
        (record.status, str(record.last_port), tuple(record.state.port_trace))
        for record in result.paths
    )


def _settings(**kwargs):
    return ExecutionSettings(record_failed_paths=False, **kwargs)


def _run_router(style, fraction, **kwargs):
    fib = fib_subset(_FIB, fraction, seed=1)
    network = Network()
    network.add_element(build_router("core", fib, style=style))
    executor = SymbolicExecutor(network, settings=_settings(**kwargs))
    return executor.inject(models.symbolic_ip_packet(), "core", "in0")


@pytest.mark.parametrize("style,fraction", [("egress", 1.0), ("ingress", 0.33)])
def test_router_identical_paths_and_2x_fewer_solver_calls(
    style, fraction, bench_report
):
    legacy = _run_router(style, fraction, use_incremental_solver=False)
    incremental = _run_router(style, fraction, use_incremental_solver=True)

    assert _path_set(legacy) == _path_set(incremental)
    assert legacy.solver_calls >= 2
    assert incremental.solver_calls * 2 <= legacy.solver_calls
    bench_report.append(
        f"Incremental | Table 2 {style} ({fraction:.0%}): solver calls "
        f"{legacy.solver_calls} -> {incremental.solver_calls} "
        f"(fast paths {incremental.solver_fast_paths}), solver time "
        f"{legacy.solver_time_seconds:.3f}s -> "
        f"{incremental.solver_time_seconds:.3f}s, identical "
        f"{len(incremental.paths)}-path set"
    )


def test_department_identical_paths_and_2x_fewer_solver_calls(bench_report):
    def run(incremental):
        executor = SymbolicExecutor(
            DEPT.network, settings=_settings(use_incremental_solver=incremental)
        )
        return executor.inject(models.symbolic_tcp_packet(), *DEPT.internet_entry)

    legacy = run(False)
    incremental = run(True)
    assert _path_set(legacy) == _path_set(incremental)
    assert legacy.solver_calls >= 2
    assert incremental.solver_calls * 2 <= legacy.solver_calls
    bench_report.append(
        f"Incremental | Sec 8.5 Internet->dept: solver calls "
        f"{legacy.solver_calls} -> {incremental.solver_calls} "
        f"(fast paths {incremental.solver_fast_paths}, cache hits "
        f"{incremental.solver_cache_hits})"
    )


def test_dfs_and_bfs_explore_same_department_paths(bench_report):
    def run(strategy):
        executor = SymbolicExecutor(
            DEPT.network, settings=_settings(strategy=strategy)
        )
        return executor.inject(models.symbolic_tcp_packet(), *DEPT.office_entry)

    dfs = run("dfs")
    bfs = run("bfs")
    assert _path_set(dfs) == _path_set(bfs)
    bench_report.append(
        f"Incremental | DFS vs BFS on department office injection: "
        f"same {len(dfs.paths)}-path set"
    )
