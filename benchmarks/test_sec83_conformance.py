"""E9 — §8.3: automated testing of SEFL models against the implementation.

The paper's testing framework derives concrete packets from symbolic paths
and replays them against the running code, catching a series of model bugs
(IPMirror forgetting ports, DecIPTTL ordering, HostEtherFilter checking the
wrong field, the IPRewriter/IPMirror cycle).  The benchmark replays those
war stories against the concrete reference dataplane and reports how many
packets were needed and whether each bug is caught.
"""

import pytest

from repro import Network, SymbolicExecutor, models
from repro.click.elements import (
    build_dec_ip_ttl,
    build_host_ether_filter,
    build_ip_mirror_element,
    build_ip_rewriter,
)
from repro.sefl import EtherType, SymbolicValue
from repro.testing import (
    ConcretePacket,
    ConformanceTester,
    ReferenceDataplane,
    reference_dec_ip_ttl,
    reference_host_ether_filter,
    reference_ip_mirror,
)
from repro.sefl import (
    EtherDst,
    EtherSrc,
    IpDst,
    IpLength,
    IpProto,
    IpSrc,
    IpTtl,
    IpVersion,
    TcpDst,
    TcpSrc,
)

FIELDS = [EtherDst, EtherSrc, EtherType, IpVersion, IpSrc, IpDst, IpProto,
          IpTtl, IpLength, TcpSrc, TcpDst]

TTL_PROBES = [
    ConcretePacket(fields={"IpTtl": value, "EtherDst": 1, "EtherSrc": 2, "IpSrc": 3,
                           "IpDst": 4, "TcpSrc": 5, "TcpDst": 6, "IpLength": 100})
    for value in (0, 1, 2)
]

SCENARIOS = [
    (
        "IPMirror forgets transport ports",
        lambda buggy: build_ip_mirror_element("m", buggy=buggy),
        reference_ip_mirror,
        models.symbolic_tcp_packet,
        [],
    ),
    (
        "DecIPTTL decrements before checking",
        lambda buggy: build_dec_ip_ttl("d", buggy=buggy),
        reference_dec_ip_ttl,
        models.symbolic_tcp_packet,
        TTL_PROBES,
    ),
    (
        "HostEtherFilter checks the wrong field",
        lambda buggy: build_host_ether_filter("h", 0xAABB, buggy=buggy),
        lambda: reference_host_ether_filter(0xAABB),
        lambda: models.symbolic_tcp_packet({EtherType: SymbolicValue("etype", 16)}),
        [],
    ),
]


def _run_conformance(model_builder, reference_factory, packet_factory, probes, buggy):
    element = model_builder(buggy)
    network = Network()
    network.add_element(element)
    dataplane = ReferenceDataplane(network)
    dataplane.register(element.name, reference_factory())
    tester = ConformanceTester(network, dataplane, FIELDS)
    return tester.test(
        packet_factory(), element.name, random_trials=10, probe_packets=probes
    )


@pytest.mark.parametrize("name,builder,reference,packet,probes", SCENARIOS)
def test_buggy_model_caught_and_fixed_model_passes(
    benchmark, name, builder, reference, packet, probes, bench_report
):
    buggy_report = benchmark.pedantic(
        _run_conformance, args=(builder, reference, packet, probes, True),
        rounds=1, iterations=1,
    )
    fixed_report = _run_conformance(builder, reference, packet, probes, False)
    bench_report.append(
        f"Sec 8.3 | {name}: buggy model caught={not buggy_report.conformant} "
        f"({len(buggy_report.mismatches)} mismatches, "
        f"{buggy_report.paths_tested} path packets + "
        f"{buggy_report.random_packets_tested} extra packets); "
        f"fixed model conformant={fixed_report.conformant}"
    )
    assert not buggy_report.conformant
    assert fixed_report.conformant


def test_iprewriter_cycle_detection(benchmark, bench_report):
    """Figure 9: the stateful-firewall/IPMirror setup loops when source and
    destination endpoints may coincide; constraining them apart removes the
    false cycle."""

    def analyse(constrain_distinct):
        network = Network()
        network.add_element(
            build_ip_rewriter("rw", constrain_distinct_endpoints=constrain_distinct)
        )
        network.add_element(build_ip_mirror_element("mirror"))
        network.add_link(("rw", "out0"), ("mirror", "in0"))
        network.add_link(("mirror", "out0"), ("rw", "in1"))
        executor = SymbolicExecutor(network)
        return executor.inject(models.symbolic_tcp_packet(), "rw", "in0")

    unconstrained = benchmark.pedantic(analyse, args=(False,), rounds=1, iterations=1)
    fixed = analyse(True)
    bench_report.append(
        f"Sec 8.3 | IPRewriter+IPMirror cycle: loops detected={len(unconstrained.loops())} "
        f"(unconstrained endpoints) vs {len(fixed.loops())} after the fix"
    )
    assert unconstrained.loops()
    assert not fixed.loops()
