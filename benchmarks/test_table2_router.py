"""E3 — Table 2: core router analysis.

The paper generates router models from a public FIB snapshot with 188 500
prefixes and symbolically executes them with 1 %, 33 % and 100 % of the
prefixes, comparing the basic / ingress / egress encodings.  In the paper the
basic model only copes with 1 %, ingress with 33 %, and only the egress model
finishes the full table (~18 s).  The reproduction uses a generated FIB with
the same overlap structure at a scaled-down size and checks the same
qualitative outcome: egress is fastest, basic is slowest and only run at the
smallest fraction, and the egress path count equals the number of interfaces.
"""

import time

import pytest

from repro import ExecutionSettings, Network, SymbolicExecutor, models
from repro.models.router import build_router
from repro.workloads import generate_fib
from repro.workloads.fibs import fib_subset

from conftest import scaled

SETTINGS = ExecutionSettings(record_failed_paths=False)
PORTS = 16
TOTAL_PREFIXES = scaled(3000, 188_500)
FRACTIONS = [0.01, 0.33, 1.0]

_FIB = generate_fib(TOTAL_PREFIXES, ports=PORTS, seed=12)
_MEASURED = {}

# Which (style, fraction) combinations are run, mirroring Table 2's DNFs:
# the basic model is only viable at 1 %.
COMBINATIONS = [
    ("basic", 0.01),
    ("ingress", 0.01),
    ("ingress", 0.33),
    ("egress", 0.01),
    ("egress", 0.33),
    ("egress", 1.0),
]


def _analyse(style, fraction):
    fib = fib_subset(_FIB, fraction, seed=1)
    generation_start = time.perf_counter()
    element = build_router("core", fib, style=style)
    generation = time.perf_counter() - generation_start
    network = Network()
    network.add_element(element)
    executor = SymbolicExecutor(network, settings=SETTINGS)
    run_start = time.perf_counter()
    result = executor.inject(models.symbolic_ip_packet(), "core", "in0")
    runtime = time.perf_counter() - run_start
    return result, generation, runtime, len(fib)


@pytest.mark.parametrize("style,fraction", COMBINATIONS)
def test_router_analysis(benchmark, style, fraction, bench_report):
    result, generation, runtime, prefixes = benchmark.pedantic(
        _analyse, args=(style, fraction), rounds=1, iterations=1
    )
    _MEASURED[(style, fraction)] = runtime
    bench_report.append(
        f"Table 2 | {style:7s} model, {prefixes:6d} prefixes ({fraction:>4.0%}): "
        f"generation {generation:6.2f}s, execution {runtime:7.2f}s, "
        f"{len(result.delivered())} paths"
    )
    assert result.delivered()


def test_table2_shape(bench_report):
    """Egress beats ingress at every shared size and handles the full table;
    the egress path count equals the number of interfaces."""
    assert _MEASURED[("egress", 0.01)] <= _MEASURED[("ingress", 0.01)] * 1.5
    assert _MEASURED[("egress", 0.33)] <= _MEASURED[("ingress", 0.33)]
    assert ("basic", 1.0) not in _MEASURED  # DNF in the paper, not attempted here

    result, _, _, _ = _analyse("egress", 1.0)
    interfaces = len({port for _, _, port in _FIB})
    assert len(result.delivered()) <= interfaces
    bench_report.append(
        f"Table 2 | egress full-table paths = {len(result.delivered())} "
        f"(<= {interfaces} interfaces, the optimal branching factor)"
    )
