"""Delta-verification benchmark: a one-device edit re-executes O(1) engine
jobs instead of the whole campaign.

The delta layer (ROADMAP: delta verification) diffs the per-element content
manifest a directory build records against the baseline a previous campaign
stored, derives the affected injection ports via the reverse link closure,
and splices the stored reports for every unaffected port.  The claims
measured here, on the stanford ``zones=16`` backbone exported as a §7.1
snapshot directory:

* **engine-run reduction** — editing one zone's service ACL re-executes
  ≤ 2 of the 16 engine jobs (in fact exactly 1: nothing links *into* an
  edge ACL, so only its own vantage is affected);
* **answer preservation** — the standing invariant extends: the spliced
  result's fingerprints are bit-identical to a from-scratch rerun of the
  edited directory;
* **composition with symmetry** — with symmetry on, the cold directory run
  already collapses to the two parity classes, and the delta rerun still
  executes only the touched member (which splits into its own class).

Every run's engine-job count, wall time and solver work is merged into
``BENCH_delta.json`` (see conftest) so the perf trajectory accumulates.
"""

from repro.core.campaign import (
    VerificationCampaign,
    clear_runtime_cache,
    execution_counters,
    reset_execution_counters,
)
from repro.parsers.service_acl import format_service_acl
from repro.store import VerificationStore
from repro.workloads.export import export_stanford_directory

from conftest import campaign_record, scaled

STANFORD_DELTA_OPTIONS = dict(
    zones=16,
    internal_prefixes_per_zone=scaled(12, 200),
    service_acl_rules=scaled(4, 10),
)


def _run(directory, injections, *, symmetry, store=None, delta=True,
         shared_cache=True):
    clear_runtime_cache()
    campaign = VerificationCampaign(
        str(directory),
        store=store,
        symmetry=symmetry,
        delta=delta,
        shared_cache=shared_cache,
    )
    campaign.add_injections(injections)
    reset_execution_counters()
    result = campaign.run()
    assert not result.job_errors
    return result, execution_counters()["engine_runs"]


def _fingerprints(result):
    return (
        result.reachability.fingerprint(),
        result.loop_report.fingerprint(),
        result.invariant_report.fingerprint(),
    )


def _delta_record(label, result, engine_runs):
    record = campaign_record(label, result)
    record["engine_runs"] = engine_runs
    record["jobs_spliced_by_delta"] = result.stats.jobs_spliced_by_delta
    return record


def test_one_device_edit_reexecutes_o1_engine_jobs(
    tmp_path, bench_report, bench_delta_json
):
    net = tmp_path / "net"
    net.mkdir()
    injections = export_stanford_directory(str(net), **STANFORD_DELTA_OPTIONS)
    assert len(injections) == 16
    store = VerificationStore(str(tmp_path / "store"))

    # The paper-mode baseline: every injection port through the engine.
    full, full_runs = _run(
        net, injections, symmetry=False, delta=False, shared_cache=False
    )
    assert full_runs == 16

    # Cold directory campaign records the baseline into the store ...
    cold, cold_runs = _run(net, injections, store=store, symmetry=False)
    assert cold_runs == 16
    assert _fingerprints(cold) == _fingerprints(full)

    # ... then one zone's ACL is edited and the rerun splices the rest.
    (net / "acl5.acl").write_text(format_service_acl([22, 8080]))
    delta, delta_runs = _run(net, injections, store=store, symmetry=False)
    assert delta_runs <= 2  # the acceptance bar; exactly 1 in practice
    assert delta.stats.jobs_spliced_by_delta == 15
    assert delta.delta_info["touched_elements"] == ["acl5"]

    # The invariant: spliced answers bit-identical to a scratch rerun.
    scratch, scratch_runs = _run(
        net, injections, symmetry=False, delta=False, shared_cache=False
    )
    assert scratch_runs == 16
    assert _fingerprints(delta) == _fingerprints(scratch)

    bench_delta_json.append(_delta_record("stanford-dir-zones16-full", full, full_runs))
    bench_delta_json.append(_delta_record("stanford-dir-zones16-delta", delta, delta_runs))
    bench_report.append(
        f"delta verification (stanford dir zones=16): one-ACL edit -> "
        f"{delta_runs}/{full_runs} engine runs "
        f"({delta.stats.jobs_spliced_by_delta} spliced), "
        f"wall {full.stats.wall_clock_seconds:.2f}s -> "
        f"{delta.stats.wall_clock_seconds:.2f}s, "
        f"solver calls {full.stats.solver_calls} -> {delta.stats.solver_calls}"
    )


def test_delta_composes_with_symmetry(tmp_path, bench_report, bench_delta_json):
    net = tmp_path / "net"
    net.mkdir()
    injections = export_stanford_directory(str(net), **STANFORD_DELTA_OPTIONS)
    store = VerificationStore(str(tmp_path / "store"))

    # Symmetry already collapses the cold run to the two parity classes.
    cold, cold_runs = _run(net, injections, store=store, symmetry=True)
    assert cold_runs == cold.stats.symmetry_classes == 2

    (net / "acl5.acl").write_text(format_service_acl([22, 8080]))
    delta, delta_runs = _run(net, injections, store=store, symmetry=True)
    # The touched member splits into its own (singleton) class; the 15
    # untouched siblings never reach the symmetry layer at all.
    assert delta_runs == 1
    assert delta.stats.jobs_spliced_by_delta == 15

    scratch, _ = _run(
        net, injections, symmetry=False, delta=False, shared_cache=False
    )
    assert _fingerprints(delta) == _fingerprints(scratch)

    bench_delta_json.append(
        _delta_record("stanford-dir-zones16-symmetry-delta", delta, delta_runs)
    )
    bench_report.append(
        f"delta x symmetry (stanford dir zones=16): cold {cold_runs} class "
        f"runs, one-ACL edit -> {delta_runs} engine run "
        f"({delta.stats.jobs_spliced_by_delta} spliced)"
    )
