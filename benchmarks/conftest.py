"""Shared configuration for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper's
evaluation (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
paper-vs-measured numbers).  The default workload sizes are scaled down from
the paper's (which used a Scala engine + native Z3 on dedicated hardware) so
that the whole suite completes in minutes on a laptop; set
``SYMNET_BENCH_SCALE=full`` to run the larger versions.
"""

import json
import os

import pytest

FULL_SCALE = os.environ.get("SYMNET_BENCH_SCALE", "").lower() == "full"

#: Where the machine-readable campaign benchmark records land.  Overridable
#: so CI can archive per-run files; the default accumulates next to the
#: benchmarks so the perf trajectory is versionable.
BENCH_JSON_PATH = os.environ.get(
    "SYMNET_BENCH_JSON",
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_campaign.json"),
)

#: Machine-readable records for the API-planner benchmark: N separate
#: campaign runs vs one planned query batch over the same network.
BENCH_API_JSON_PATH = os.environ.get(
    "SYMNET_BENCH_API_JSON",
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_api.json"),
)

#: Machine-readable records for the persistent-store benchmark: cold vs
#: warm-from-disk campaigns and single-dict vs sharded shared tiers.
BENCH_STORE_JSON_PATH = os.environ.get(
    "SYMNET_BENCH_STORE_JSON",
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_store.json"),
)

#: Machine-readable records for the job-symmetry benchmark: engine runs,
#: wall time and paths for symmetry off vs on.
BENCH_SYMMETRY_JSON_PATH = os.environ.get(
    "SYMNET_BENCH_SYMMETRY_JSON",
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_symmetry.json"),
)

#: Machine-readable records for the delta-verification benchmark: engine
#: runs, wall time and solver work for a full campaign vs a one-device-edit
#: delta rerun over the same snapshot directory.
BENCH_DELTA_JSON_PATH = os.environ.get(
    "SYMNET_BENCH_DELTA_JSON",
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_delta.json"),
)


#: Machine-readable records for the resident-service benchmark: batch wall
#: time vs time-to-first-result under the streaming demux, and the merged
#: cost of two concurrent clients vs two standalone runs.
BENCH_SERVE_JSON_PATH = os.environ.get(
    "SYMNET_BENCH_SERVE_JSON",
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_serve.json"),
)


#: Machine-readable records for the transient-state scenario benchmark:
#: per-step wall time and engine runs with delta chaining off vs on, plus
#: the spliced-port counts threaded through the scenario report.
BENCH_SCENARIO_JSON_PATH = os.environ.get(
    "SYMNET_BENCH_SCENARIO_JSON",
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_scenario.json"),
)


#: Machine-readable records for the observability-overhead benchmark: wall
#: time of the same pinned campaign with the no-op tracer vs a recording
#: one, plus the span volume the traced run produced.
BENCH_OBS_JSON_PATH = os.environ.get(
    "SYMNET_BENCH_OBS_JSON",
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_obs.json"),
)


def scaled(small, full):
    """Pick a workload size depending on the requested scale."""
    return full if FULL_SCALE else small


def campaign_record(label: str, result) -> dict:
    """Digest one CampaignResult into a flat, JSON-able benchmark record
    (wall time, solver work, verdict-cache effectiveness)."""
    stats = result.stats
    return {
        "workload": label,
        "scale": "full" if FULL_SCALE else "small",
        "jobs": stats.jobs,
        "paths": stats.paths,
        "workers": result.workers,
        "execution_mode": result.execution_mode,
        "wall_clock_seconds": round(stats.wall_clock_seconds, 6),
        "solver_calls": stats.solver_calls,
        "solver_time_seconds": round(stats.solver_time_seconds, 6),
        "solver_fast_paths": stats.solver_fast_paths,
        "solver_cache_hits": stats.solver_cache_hits,
        "solver_cache_misses": stats.solver_cache_misses,
        "solver_shared_cache_hits": stats.solver_shared_cache_hits,
        "cache_hit_rate": round(stats.cache_hit_rate, 4),
        "verdict_cache_entries": stats.verdict_cache_entries,
        "solver_shared_round_trips": stats.solver_shared_round_trips,
        "solver_shared_publish_batches": stats.solver_shared_publish_batches,
        "solver_shared_publish_entries": stats.solver_shared_publish_entries,
        "store_entries_loaded": stats.store_entries_loaded,
        "store_entries_published": stats.store_entries_published,
        "symmetry_classes": stats.symmetry_classes,
        "jobs_skipped_by_symmetry": stats.jobs_skipped_by_symmetry,
    }


def _merge_bench_records(path: str, records) -> None:
    """Merge benchmark records into a JSON file, keyed by (workload, scale):
    re-running a benchmark updates its row, while rows from other
    scales/sessions survive — so the perf trajectory accumulates instead of
    each run clobbering the last."""
    merged = {}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for record in json.load(handle).get("records", []):
                merged[(record.get("workload"), record.get("scale"))] = record
    except (OSError, ValueError):
        pass  # first run, or an unreadable file we simply regenerate
    for record in records:
        merged[(record["workload"], record["scale"])] = record
    ordered = [merged[key] for key in sorted(merged, key=repr)]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"records": ordered}, handle, indent=2, sort_keys=True)
        handle.write("\n")


@pytest.fixture(scope="session")
def bench_json():
    """Collect machine-readable campaign benchmark records and merge them
    into ``BENCH_campaign.json`` at the end of the session."""
    records = []
    yield records
    if records:
        _merge_bench_records(BENCH_JSON_PATH, records)


@pytest.fixture(scope="session")
def bench_api_json():
    """Collect separate-campaigns-vs-planned-batch comparison records and
    merge them into ``BENCH_api.json`` at the end of the session."""
    records = []
    yield records
    if records:
        _merge_bench_records(BENCH_API_JSON_PATH, records)


@pytest.fixture(scope="session")
def bench_store_json():
    """Collect persistent-store benchmark records and merge them into
    ``BENCH_store.json`` at the end of the session."""
    records = []
    yield records
    if records:
        _merge_bench_records(BENCH_STORE_JSON_PATH, records)


@pytest.fixture(scope="session")
def bench_symmetry_json():
    """Collect symmetry-reduction benchmark records and merge them into
    ``BENCH_symmetry.json`` at the end of the session."""
    records = []
    yield records
    if records:
        _merge_bench_records(BENCH_SYMMETRY_JSON_PATH, records)


@pytest.fixture(scope="session")
def bench_delta_json():
    """Collect delta-verification benchmark records and merge them into
    ``BENCH_delta.json`` at the end of the session."""
    records = []
    yield records
    if records:
        _merge_bench_records(BENCH_DELTA_JSON_PATH, records)


@pytest.fixture(scope="session")
def bench_serve_json():
    """Collect resident-service streaming benchmark records and merge them
    into ``BENCH_serve.json`` at the end of the session."""
    records = []
    yield records
    if records:
        _merge_bench_records(BENCH_SERVE_JSON_PATH, records)


@pytest.fixture(scope="session")
def bench_scenario_json():
    """Collect transient-state scenario benchmark records and merge them
    into ``BENCH_scenario.json`` at the end of the session."""
    records = []
    yield records
    if records:
        _merge_bench_records(BENCH_SCENARIO_JSON_PATH, records)


@pytest.fixture(scope="session")
def bench_obs_json():
    """Collect tracing-overhead benchmark records and merge them into
    ``BENCH_obs.json`` at the end of the session."""
    records = []
    yield records
    if records:
        _merge_bench_records(BENCH_OBS_JSON_PATH, records)


@pytest.fixture(scope="session")
def bench_report():
    """Collect human-readable result rows and print them at the end of the
    session, mirroring the tables in the paper."""
    rows = []
    yield rows
    if rows:
        print("\n" + "=" * 72)
        print("Reproduced evaluation rows (paper table/figure -> measured)")
        print("=" * 72)
        for row in rows:
            print(row)
