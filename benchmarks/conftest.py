"""Shared configuration for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper's
evaluation (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
paper-vs-measured numbers).  The default workload sizes are scaled down from
the paper's (which used a Scala engine + native Z3 on dedicated hardware) so
that the whole suite completes in minutes on a laptop; set
``SYMNET_BENCH_SCALE=full`` to run the larger versions.
"""

import os

import pytest

FULL_SCALE = os.environ.get("SYMNET_BENCH_SCALE", "").lower() == "full"


def scaled(small, full):
    """Pick a workload size depending on the requested scale."""
    return full if FULL_SCALE else small


@pytest.fixture(scope="session")
def bench_report():
    """Collect human-readable result rows and print them at the end of the
    session, mirroring the tables in the paper."""
    rows = []
    yield rows
    if rows:
        print("\n" + "=" * 72)
        print("Reproduced evaluation rows (paper table/figure -> measured)")
        print("=" * 72)
        for row in rows:
            print(row)
