"""Job-symmetry benchmark: engine runs, wall time and paths with symmetry
reduction off vs on.

The symmetry layer (ROADMAP: job symmetry reduction) fingerprints every
campaign job's ``(network neighbourhood, injection port)`` up to
element/port/constant renaming and executes one engine job per equivalence
class.  The claims measured here, on the same workloads as the store
benchmark:

* **engine-run reduction** — the ``zones=16`` stanford+ACL sweep collapses
  to its two parity classes (even zones uplink even targets via ``up0``,
  odd via ``up1``): 16 engine runs become 2, every other report is
  instantiated by renaming;
* **answer preservation** — the standing invariant extends: symmetry
  {off, on} x workers {1, 2} x store {off, cold, warm} changes which tier
  answers and how many engine jobs run, never any query fingerprint;
* **department control** — a workload with four genuinely distinct vantage
  points gains nothing (0 classes) and loses nothing (identical answers).

Every run's engine-job count, wall time and path count is merged into
``BENCH_symmetry.json`` (see conftest) so the perf trajectory accumulates.
"""

from repro.core.campaign import (
    NetworkSource,
    VerificationCampaign,
    clear_runtime_cache,
    execution_counters,
    reset_execution_counters,
)
from repro.store import VerificationStore, clear_load_cache

from conftest import campaign_record, scaled

STANFORD_SYMMETRY_OPTIONS = dict(
    zones=16,
    internal_prefixes_per_zone=scaled(12, 200),
    service_acl_rules=scaled(4, 10),
)

#: The stanford zone FIBs alternate uplinks by target parity, so the 16
#: injection ports fall into exactly two renaming-equivalence classes.
STANFORD_EXPECTED_CLASSES = 2


def _source(workload, **options):
    return NetworkSource.from_workload(workload, **options)


def _run(source, *, symmetry, workers=1, store=None):
    clear_runtime_cache()
    reset_execution_counters()
    campaign = VerificationCampaign(source, symmetry=symmetry, store=store)
    result = campaign.run(workers=workers)
    return result, execution_counters()["engine_runs"]


def _fingerprints(result):
    return (
        result.reachability.fingerprint(),
        result.loop_report.fingerprint(),
        result.invariant_report.fingerprint(),
    )


def test_stanford_symmetry_cuts_engine_runs(
    bench_report, bench_json, bench_symmetry_json
):
    source = _source("stanford", **STANFORD_SYMMETRY_OPTIONS)
    off, off_runs = _run(source, symmetry=False)
    on, on_runs = _run(source, symmetry=True)

    assert not off.job_errors and not on.job_errors
    assert _fingerprints(on) == _fingerprints(off)
    # The acceptance criterion: 16 injection ports collapse to the parity
    # classes, and only the class representatives reach the engine.
    assert off_runs == off.stats.jobs == 16
    assert on.stats.symmetry_classes == STANFORD_EXPECTED_CLASSES
    assert on_runs == STANFORD_EXPECTED_CLASSES
    assert on.stats.jobs_skipped_by_symmetry == 16 - STANFORD_EXPECTED_CLASSES
    assert on.stats.jobs == 16  # every port still gets a report
    assert on.stats.paths == off.stats.paths

    for label, result in (
        ("stanford16-symmetry-off", off),
        ("stanford16-symmetry-on", on),
    ):
        record = campaign_record(label, result)
        bench_json.append(record)
        bench_symmetry_json.append(record)
    bench_report.append(
        f"Symmetry | stanford zones=16: {off_runs} engine runs, wall "
        f"{off.stats.wall_clock_seconds:.2f}s -> {on_runs} class "
        f"representatives, wall {on.stats.wall_clock_seconds:.2f}s, "
        f"identical fingerprints"
    )


def test_department_symmetry_is_a_safe_noop(
    bench_report, bench_json, bench_symmetry_json
):
    source = _source("department")
    off, off_runs = _run(source, symmetry=False)
    on, on_runs = _run(source, symmetry=True)

    assert not off.job_errors and not on.job_errors
    assert _fingerprints(on) == _fingerprints(off)
    # Four genuinely distinct vantage points: nothing merges, nothing breaks.
    assert on.stats.symmetry_classes == 0
    assert on.stats.jobs_skipped_by_symmetry == 0
    assert on_runs == off_runs == off.stats.jobs

    for label, result in (
        ("department-symmetry-off", off),
        ("department-symmetry-on", on),
    ):
        record = campaign_record(label, result)
        bench_json.append(record)
        bench_symmetry_json.append(record)
    bench_report.append(
        f"Symmetry | department: {off_runs} engine runs with or without "
        f"symmetry (0 classes), identical fingerprints"
    )


def test_symmetry_invariant_across_workers_and_store(tmp_path, bench_report):
    """The standing invariant: symmetry x workers x store tiers never
    change an answer, only which tier produces it."""
    reference = None
    for symmetry in (False, True):
        for workers in (1, 2):
            for store_state in ("off", "cold", "warm"):
                clear_load_cache()
                store = None
                if store_state != "off":
                    directory = str(
                        tmp_path / f"store-{symmetry}-{workers}"
                    )
                    store = VerificationStore(directory)
                    if store_state == "warm":
                        store = VerificationStore(directory)
                source = _source("stanford", **STANFORD_SYMMETRY_OPTIONS)
                result, _ = _run(
                    source, symmetry=symmetry, workers=workers, store=store
                )
                assert not result.job_errors
                fingerprints = _fingerprints(result)
                if reference is None:
                    reference = fingerprints
                assert fingerprints == reference, (
                    f"fingerprint drift at symmetry={symmetry} "
                    f"workers={workers} store={store_state}"
                )
    bench_report.append(
        "Symmetry | invariant: symmetry {off,on} x workers {1,2} x store "
        "{off,cold,warm} -> identical fingerprints"
    )
