"""E8 — §8.5: verifying the CS department network.

The paper injects symbolic packets into its department model (21 devices,
235 ports, 6 000 MAC entries, 400 routes) and reports path counts, runtimes
and three findings: TCP options are silently tampered with by the ASA,
the management VLAN is reachable from the Internet through router M1, and
every cluster machine can reach the switches' management plane.  The
reproduction runs the same three injections on the generated department
topology (scaled down by default) and checks the findings.
"""

import pytest

from repro import ExecutionSettings, SymbolicExecutor, models
from repro.core import checks as V
from repro.models import tcp_options_metadata
from repro.models.tcp_options import OPTION_MPTCP, OPTION_SACK_OK, option_var
from repro.sefl import InstructionBlock, IpDst, IpSrc, TcpDst, ip_to_number
from repro.workloads import build_department_network
from repro.workloads.department import MANAGEMENT_PREFIX

from conftest import scaled

SETTINGS = ExecutionSettings(record_failed_paths=False)

DEPT = build_department_network(
    access_switches=scaled(6, 15),
    hosts_per_switch=scaled(4, 8),
    mac_entries=scaled(1200, 6000),
    extra_routes=scaled(100, 400),
)


def _executor():
    return SymbolicExecutor(DEPT.network, settings=SETTINGS)


def test_department_inventory(bench_report):
    bench_report.append(
        f"Sec 8.5 | department model: {DEPT.device_count()} devices, "
        f"{DEPT.port_count()} ports, {DEPT.mac_entries} MAC entries, "
        f"{DEPT.route_entries} routes (paper: 21 devices, 235 ports, 6000 MACs, 400 routes)"
    )
    assert DEPT.device_count() >= 15
    assert DEPT.route_entries >= 100


def test_office_to_internet(benchmark, bench_report):
    """Office HTTP traffic reaches the Internet through the ASA, which
    silently disables SACK and strips MPTCP — the finding the admin did not
    know about."""
    program = InstructionBlock(
        models.symbolic_tcp_packet({TcpDst: 80}),
        tcp_options_metadata([2, 4, 30]),
    )
    result = benchmark.pedantic(
        _executor().inject, args=(program, *DEPT.office_entry), rounds=1, iterations=1
    )
    internet = result.reaching(*DEPT.internet_exit)
    bench_report.append(
        f"Sec 8.5 | office->Internet: {len(result.paths)} paths, "
        f"{len(internet)} reach the Internet, {result.elapsed_seconds:.2f}s, "
        f"{result.solver_calls} solver calls"
    )
    assert internet
    path = internet[0]
    assert not V.field_invariant(path, IpSrc)  # NATted
    assert V.field_concrete_value(path, option_var(OPTION_SACK_OK)) == 0
    assert V.field_concrete_value(path, option_var(OPTION_MPTCP)) == 0
    bench_report.append(
        "Sec 8.5 | ASA tampering: SACK disabled for HTTP, MPTCP stripped (as in the paper)"
    )


def test_inbound_reachability_and_management_leak(benchmark, bench_report):
    result = benchmark.pedantic(
        _executor().inject,
        args=(models.symbolic_tcp_packet(), *DEPT.internet_entry),
        rounds=1,
        iterations=1,
    )
    leaked = result.reaching(*DEPT.management_exit)
    bench_report.append(
        f"Sec 8.5 | Internet->department: {len(result.paths)} paths, "
        f"{len(result.delivered())} successful, management VLAN leak={bool(leaked)}"
    )
    assert leaked
    prefix = ip_to_number(MANAGEMENT_PREFIX.split("/")[0])
    value = V.admitted_values(leaked[0], IpDst, samples=1)[0]
    assert prefix <= value < prefix + 256
    # The inside hosts themselves stay protected by the ASA.
    assert not [p for p in result.delivered() if p.reached(DEPT.office_entry[0])]


def test_cluster_reaches_switch_management(benchmark, bench_report):
    result = benchmark.pedantic(
        _executor().inject,
        args=(models.symbolic_tcp_packet(), *DEPT.cluster_entry),
        rounds=1,
        iterations=1,
    )
    reachable = result.reaching(*DEPT.management_exit)
    bench_report.append(
        f"Sec 8.5 | cluster->switch management: reachable={bool(reachable)} "
        "(the security risk reported to the admins)"
    )
    assert reachable
