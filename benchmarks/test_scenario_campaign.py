"""Transient-state scenario benchmark: delta chaining off vs on.

A seed-pinned stanford scenario (8 steps, one injected transient
forwarding loop) runs twice over byte-identical exports — once with every
state verified from scratch, once with each state's campaign chained as the
next state's delta baseline.  The records landing in ``BENCH_scenario.json``
hold per-step wall time, engine runs and spliced-port counts for both modes;
the assertions pin the subsystem's contract:

* every state's query fingerprints are bit-identical across the two modes
  (delta changes which tier answers, never the answer);
* the delta path executes strictly fewer engine jobs than scratch on at
  least half of the steps;
* the reducer collapses the violating traces into at most 3 ranked clusters
  whose representatives all reproduce on their snapshot.
"""

import os

from repro.api.model import NetworkModel
from repro.api.queries import ForAllPairs, Loop, Reach
from repro.scenarios import ScenarioCampaign, generate_scenario
from repro.workloads.export import export_stanford_directory

from conftest import FULL_SCALE

#: Pinned scenario: seed 15 over this export yields 8 steps with the
#: violation injected at step 2 and reverted at step 4, no link flap, and a
#: churn mix dominated by source-island edits (ACL + ASA) — the delta-win
#: shape the subsystem exists for.
EXPORT_OPTIONS = dict(
    zones=3,
    internal_prefixes_per_zone=8,
    service_acl_rules=3,
    seed=11,
    edge_asa=True,
)
SCENARIO_STEPS = 8
SCENARIO_SEED = 15


def _queries():
    # Loop detection plus the reachability matrix: the two answers the
    # injected forwarding loop perturbs.  (The NAT in the edge ASA rewrites
    # source addresses by design, so the invariant query would report a
    # standing — non-transient — violation; the scenario CLI keeps it in
    # the default batch, this benchmark pins the transient story.)
    return [ForAllPairs(Reach), Loop()]


def _run(tmp_path, name, delta):
    directory = str(tmp_path / name)
    os.makedirs(directory)
    export_stanford_directory(directory, **EXPORT_OPTIONS)
    scenario = generate_scenario(
        directory, steps=SCENARIO_STEPS, seed=SCENARIO_SEED, workload="stanford"
    )
    run = ScenarioCampaign(
        directory, scenario, queries=_queries(), workers=1, delta=delta
    ).run()
    return scenario, run


def _step_rows(run):
    return [
        {
            "step": outcome.index,
            "kind": outcome.kind,
            "wall_seconds": round(outcome.wall_seconds, 6),
            "engine_runs": outcome.engine_runs,
            "executed_jobs": outcome.executed_jobs,
            "spliced_jobs": outcome.spliced_jobs,
            "violations": len(outcome.violations),
        }
        for outcome in run.outcomes
    ]


def _reproduces(tmp_path, scenario, representative):
    """Replay the scenario up to the representative's step on a fresh
    export and check the loop finding is really there."""
    directory = str(tmp_path / f"repro-step{representative['step']}")
    os.makedirs(directory)
    export_stanford_directory(directory, **EXPORT_OPTIONS)
    for step in scenario.steps:
        if step.index > int(representative["step"]):
            break
        for name, text in step.writes:
            with open(
                os.path.join(directory, name), "w", encoding="utf-8", newline="\n"
            ) as handle:
                handle.write(text)
    result = NetworkModel.from_directory(directory).query(Loop())
    findings = result[0].value["findings"]
    return any(
        finding["source"] == representative["source"]
        and finding["detected_at"] == representative["detected_at"]
        and list(finding["trace"]) == list(representative["trace"])
        for finding in findings
    )


def test_scenario_campaign_delta_vs_scratch(
    tmp_path, bench_scenario_json, bench_report
):
    scenario, scratch = _run(tmp_path, "scratch", delta=False)
    _, chained = _run(tmp_path, "delta", delta=True)

    # The pinned seed produced the shape the benchmark documents: a
    # transient violation (injected, then reverted before the end).
    kinds = [step.kind for step in scenario.steps]
    assert "violation-inject" in kinds and "violation-revert" in kinds

    # Bit-identity per state, and therefore for the whole run.
    for a, b in zip(scratch.outcomes, chained.outcomes):
        assert a.fingerprints == b.fingerprints, f"state {a.index} diverged"
    assert scratch.fingerprint() == chained.fingerprint()

    # The delta path must beat scratch on at least half of the steps
    # (strictly fewer engine jobs executed).
    pairs = list(zip(scratch.outcomes[1:], chained.outcomes[1:]))
    faster = sum(1 for a, b in pairs if b.executed_jobs < a.executed_jobs)
    assert faster >= len(pairs) / 2, (
        f"delta executed fewer jobs on only {faster}/{len(pairs)} steps"
    )
    assert chained.steps_delta_spliced == faster

    # Counterexample clustering: every violating trace accounted for, at
    # most 3 ranked clusters, and each representative reproduces on a
    # scratch rebuild of its snapshot.
    assert chained.violations, "the injected violation produced no traces"
    assert len(chained.clusters) <= 3
    assert sum(c.size for c in chained.clusters) == len(chained.violations)
    for cluster in chained.clusters:
        assert _reproduces(tmp_path, scenario, cluster.representative)

    scale = "full" if FULL_SCALE else "small"
    for label, run in (("scenario-scratch", scratch), ("scenario-delta", chained)):
        bench_scenario_json.append(
            {
                "workload": f"stanford-{label}",
                "scale": scale,
                "steps": len(scenario.steps),
                "delta": run.delta,
                "steps_delta_spliced": run.steps_delta_spliced,
                "violations_total": len(run.violations),
                "clusters": len(run.clusters),
                "engine_runs_total": sum(o.engine_runs for o in run.outcomes),
                "executed_jobs_total": sum(o.executed_jobs for o in run.outcomes),
                "spliced_jobs_total": sum(o.spliced_jobs for o in run.outcomes),
                "wall_seconds_total": round(
                    sum(o.wall_seconds for o in run.outcomes), 6
                ),
                "per_step": _step_rows(run),
            }
        )
    scratch_jobs = sum(o.executed_jobs for o in scratch.outcomes)
    chained_jobs = sum(o.executed_jobs for o in chained.outcomes)
    bench_report.append(
        f"scenario (8-step stanford, transient loop): scratch executed "
        f"{scratch_jobs} jobs, delta chaining executed {chained_jobs} "
        f"({chained.steps_delta_spliced}/{len(scenario.steps)} steps spliced, "
        f"{len(chained.violations)} violations -> "
        f"{len(chained.clusters)} cluster(s))"
    )
