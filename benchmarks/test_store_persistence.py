"""Persistent-store benchmark: cold vs warm-from-disk, single dict vs shards.

The ROADMAP's verdict-cache sharding item, measured on the full-shape
``zones=16`` stanford+ACL sweep (every zone edge applies the same campus
ACL, so the per-rule solver work is alpha-equivalent across all 16 zones —
the store's best and most realistic case):

* **cold vs warm-from-disk** — a campaign run against an empty store pays
  the full solver bill and publishes its verdicts; rerunning against the
  populated store must perform **0 full solves** (every verdict merges from
  the disk shards, nothing travels in job pickles) and publish nothing new;
* **plan-result cache** — repeating an identical query batch through the
  session API must cost **0 engine jobs** and return bit-identical answers;
* **single dict vs 8 shards** — the PR 3 shared tier (one Manager dict,
  one proxy round-trip per publish) against the sharded tier with batched
  publishes, compared on proxy round-trips under ``--workers 2``.

Every run's wall time, solver work and store/tier traffic is merged into
``BENCH_store.json`` (see conftest) so the perf trajectory accumulates.
"""

from repro.api import Invariant, Loop, NetworkModel
from repro.core.campaign import (
    NetworkSource,
    VerificationCampaign,
    clear_runtime_cache,
    execution_counters,
    reset_execution_counters,
)
from repro.store import VerificationStore

from conftest import campaign_record, scaled

#: The full-shape backbone: 16 zones even at small scale (the sweep is the
#: point), with table sizes scaled to keep small runs in CI budgets.
STANFORD_STORE_OPTIONS = dict(
    zones=16,
    internal_prefixes_per_zone=scaled(12, 200),
    service_acl_rules=scaled(4, 10),
)


def _source():
    return NetworkSource.from_workload("stanford", **STANFORD_STORE_OPTIONS)


def _run(store=None, *, workers=1, cache_shards=None, publish_batch=None):
    clear_runtime_cache()
    kwargs = {}
    if cache_shards is not None:
        kwargs["cache_shards"] = cache_shards
    if publish_batch is not None:
        kwargs["publish_batch"] = publish_batch
    campaign = VerificationCampaign(_source(), store=store, **kwargs)
    return campaign.run(workers=workers)


def _fingerprints(result):
    return (
        result.reachability.fingerprint(),
        result.loop_report.fingerprint(),
        result.invariant_report.fingerprint(),
    )


def test_cold_vs_warm_from_disk(tmp_path, bench_report, bench_json, bench_store_json):
    store_dir = str(tmp_path / "store")

    cold = _run(VerificationStore(store_dir))
    warm = _run(VerificationStore(store_dir))

    assert not cold.job_errors and not warm.job_errors
    assert _fingerprints(warm) == _fingerprints(cold)
    # The acceptance criterion: the cold run paid full solves and persisted
    # them; the warm-from-disk rerun performs 0 full solves and publishes
    # nothing new.
    assert cold.stats.solver_cache_misses > 0
    assert cold.stats.store_entries_published == cold.stats.solver_cache_misses
    assert warm.stats.solver_cache_misses == 0
    assert warm.stats.store_entries_published == 0
    assert warm.stats.store_entries_loaded == cold.stats.store_entries_published

    for label, result in (("stanford16-store-cold", cold), ("stanford16-store-warm", warm)):
        record = campaign_record(label, result)
        bench_json.append(record)
        bench_store_json.append(record)
    bench_report.append(
        f"Store | stanford zones=16 cold: {cold.stats.solver_cache_misses} full "
        f"solves, wall {cold.stats.wall_clock_seconds:.2f}s -> warm-from-disk: "
        f"{warm.stats.solver_cache_misses} full solves, wall "
        f"{warm.stats.wall_clock_seconds:.2f}s "
        f"({warm.stats.store_entries_loaded} verdicts from disk)"
    )


def test_plan_result_cache_skips_execution(tmp_path, bench_report, bench_store_json):
    store_dir = str(tmp_path / "plan-store")
    queries = (Loop(), Invariant("IpSrc"))

    clear_runtime_cache()
    reset_execution_counters()
    model = NetworkModel.from_workload("stanford", **STANFORD_STORE_OPTIONS)
    fresh = model.query(*queries, store=VerificationStore(store_dir))
    fresh_runs = execution_counters()["engine_runs"]

    reset_execution_counters()
    model = NetworkModel.from_workload("stanford", **STANFORD_STORE_OPTIONS)
    cached = model.query(*queries, store=VerificationStore(store_dir))
    cached_runs = execution_counters()["engine_runs"]

    assert fresh_runs > 0
    assert cached_runs == 0 and cached.from_cache
    assert cached.fingerprint() == fresh.fingerprint()
    assert cached.to_dict() == fresh.to_dict()

    bench_store_json.append(
        {
            "workload": "stanford16-plan-cache",
            "scale": campaign_record("x", fresh.campaign)["scale"],
            "jobs": fresh.campaign.stats.jobs,
            "engine_runs_fresh": fresh_runs,
            "engine_runs_cached": cached_runs,
            "wall_clock_seconds": round(
                fresh.campaign.stats.wall_clock_seconds, 6
            ),
            "workers": 1,
            "execution_mode": "plan-cache",
        }
    )
    bench_report.append(
        f"Store | stanford zones=16 plan cache: {fresh_runs} engine runs fresh "
        f"-> {cached_runs} on the repeated identical batch"
    )


def test_sharded_tier_vs_single_dict(bench_report, bench_json, bench_store_json):
    """The PR 3 tier (1 shard, publish-per-solve) vs the sharded tier
    (8 shards, batched publishes) on a --workers 2 pool, compared on proxy
    round-trips; fingerprints must not move."""
    single = _run(workers=2, cache_shards=1, publish_batch=1)
    sharded = _run(workers=2, cache_shards=8)

    assert not single.job_errors and not sharded.job_errors
    assert _fingerprints(single) == _fingerprints(sharded)
    # Per-run invariants (cross-run solve counts vary with pool timing):
    # publish-per-solve means one round-trip per entry, batching means at
    # most one per entry and usually fewer.
    assert (
        single.stats.solver_shared_publish_batches
        == single.stats.solver_shared_publish_entries
    )
    assert (
        sharded.stats.solver_shared_publish_batches
        <= sharded.stats.solver_shared_publish_entries
    )

    for label, result in (
        ("stanford16-tier-1shard", single),
        ("stanford16-tier-8shards", sharded),
    ):
        record = campaign_record(label, result)
        bench_json.append(record)
        bench_store_json.append(record)
    bench_report.append(
        f"Store | stanford zones=16 shared tier x2 workers: single dict "
        f"{single.stats.solver_shared_round_trips} round-trips "
        f"({single.stats.solver_shared_publish_batches} publishes) vs 8 shards "
        f"{sharded.stats.solver_shared_round_trips} round-trips "
        f"({sharded.stats.solver_shared_publish_batches} batched publishes)"
    )
