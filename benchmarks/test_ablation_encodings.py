"""E10 — ablation of the design choices called out in §7 / DESIGN.md.

Three choices make the generated models symbolic-execution friendly:

1. egress filtering instead of ingress If-cascades (constraint count);
2. mutually-exclusive per-port prefix groups instead of per-prefix branches
   for longest-prefix match (branching factor);
3. per-flow state carried in packet metadata instead of branching on a
   global table (NAT path count).

Each ablation runs the same workload with and without the optimisation and
reports the difference in paths, constraints and time.
"""

import time

import pytest

from repro import ExecutionSettings, Network, SymbolicExecutor, models
from repro.models.router import build_router
from repro.models.switch import build_switch
from repro.models.nat import build_nat
from repro.workloads import generate_fib, generate_mac_table

from conftest import scaled

SETTINGS = ExecutionSettings(record_failed_paths=False)

MAC_ENTRIES = scaled(400, 4000)
PREFIXES = scaled(800, 10_000)


def _run(element, packet):
    network = Network()
    network.add_element(element)
    executor = SymbolicExecutor(network, settings=SETTINGS)
    started = time.perf_counter()
    result = executor.inject(packet, element.name, element.input_ports[0])
    return result, time.perf_counter() - started


def test_ablation_switch_encoding(benchmark, bench_report):
    table = generate_mac_table(MAC_ENTRIES, ports=16, seed=3)
    packet = models.symbolic_tcp_packet()

    egress_result, egress_time = benchmark.pedantic(
        _run, args=(build_switch("sw", table, style="egress"), packet),
        rounds=1, iterations=1,
    )
    ingress_result, ingress_time = _run(
        build_switch("sw", table, style="ingress"), packet
    )
    egress_constraints = max(len(p.constraints) for p in egress_result.delivered())
    ingress_constraints = max(len(p.constraints) for p in ingress_result.delivered())
    bench_report.append(
        f"Ablation | switch encoding ({MAC_ENTRIES} MACs): egress {egress_time:.2f}s "
        f"(max {egress_constraints} constraints/path) vs ingress {ingress_time:.2f}s "
        f"(max {ingress_constraints} constraints/path)"
    )
    assert egress_constraints < ingress_constraints
    assert egress_time <= ingress_time


def test_ablation_lpm_encoding(benchmark, bench_report):
    fib = generate_fib(PREFIXES, ports=12, seed=5)
    packet = models.symbolic_ip_packet()

    egress_result, egress_time = benchmark.pedantic(
        _run, args=(build_router("r", fib, style="egress"), packet),
        rounds=1, iterations=1,
    )
    # Per-prefix branching (the "basic" model) at a tenth of the size is
    # already slower per prefix; running it at full size would dominate the
    # suite, which is exactly the paper's DNF.
    small_fib = fib[: max(50, PREFIXES // 10)]
    basic_result, basic_time = _run(build_router("r", small_fib, style="basic"), packet)
    egress_rate = egress_time / len(fib)
    basic_rate = basic_time / len(small_fib)
    bench_report.append(
        f"Ablation | LPM encoding: grouped egress {egress_time:.2f}s for {len(fib)} prefixes "
        f"({len(egress_result.delivered())} paths) vs per-prefix branching "
        f"{basic_time:.2f}s for {len(small_fib)} prefixes "
        f"({len(basic_result.delivered())} paths)"
    )
    assert len(egress_result.delivered()) <= 12
    assert len(basic_result.delivered()) > 12
    assert egress_rate < basic_rate


def test_ablation_flow_state_in_metadata(benchmark, bench_report):
    """The NAT keeps per-flow state in packet metadata: its model adds no
    branches at all (one path in, one path out), which is what lets stateful
    middleboxes scale (§7)."""
    packet = models.symbolic_tcp_packet()
    result, elapsed = benchmark.pedantic(
        _run, args=(build_nat("nat"), packet), rounds=1, iterations=1
    )
    bench_report.append(
        f"Ablation | NAT with metadata flow state: {len(result.delivered())} path(s), "
        f"{elapsed * 1000:.1f} ms"
    )
    assert len(result.delivered()) == 1
