"""A concrete reference dataplane.

The conformance-testing loop of §8.3 needs an executable ground truth: the
paper uses real Click instances and the ASA hardware; this module provides
concrete (non-symbolic) Python implementations of the same behaviours.  Each
behaviour is a function ``(packet, in_port, state) -> [(out_port, packet')]``
— returning an empty list means the packet was dropped.

The behaviours are intentionally written independently of the SEFL models
(straightforward imperative code operating on concrete field values), so a
bug in a model really is caught by the comparison rather than being shared
by construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.models.router import FibEntry, longest_prefix_match
from repro.models.tcp_options import ALLOW, DROP, OptionPolicy
from repro.network.topology import Network
from repro.solver.intervals import prefix_to_interval
from repro.sefl.util import parse_prefix


@dataclass
class ConcretePacket:
    """A concrete packet: named header fields plus TCP-option metadata."""

    fields: Dict[str, int] = field(default_factory=dict)
    options: Dict[int, Dict[str, int]] = field(default_factory=dict)

    def get(self, name: str, default: int = 0) -> int:
        return self.fields.get(name, default)

    def copy(self) -> "ConcretePacket":
        return ConcretePacket(
            fields=dict(self.fields),
            options={kind: dict(data) for kind, data in self.options.items()},
        )

    def with_fields(self, **updates: int) -> "ConcretePacket":
        clone = self.copy()
        clone.fields.update(updates)
        return clone


Behaviour = Callable[
    [ConcretePacket, str, Dict[str, object]], List[Tuple[str, ConcretePacket]]
]


# ---------------------------------------------------------------------------
# Element behaviours
# ---------------------------------------------------------------------------


def reference_wire(out_port: str = "out0") -> Behaviour:
    """Forward every packet unchanged."""

    def behave(packet, in_port, state):
        return [(out_port, packet.copy())]

    return behave


def reference_switch(table: Mapping[str, Sequence[int]]) -> Behaviour:
    """Exact-match MAC forwarding; unknown destinations are dropped."""
    lookup: Dict[int, str] = {}
    for port, macs in table.items():
        for mac in macs:
            lookup.setdefault(mac, port)

    def behave(packet, in_port, state):
        port = lookup.get(packet.get("EtherDst"))
        if port is None:
            return []
        return [(port, packet.copy())]

    return behave


def reference_router(fib: Sequence[FibEntry]) -> Behaviour:
    """Longest-prefix-match forwarding on the destination address."""

    def behave(packet, in_port, state):
        port = longest_prefix_match(fib, packet.get("IpDst"))
        if port is None:
            return []
        return [(port, packet.copy())]

    return behave


def reference_ip_mirror(swap_ports: bool = True) -> Behaviour:
    """Swap source/destination addresses (and ports)."""

    def behave(packet, in_port, state):
        out = packet.copy()
        out.fields["IpSrc"], out.fields["IpDst"] = (
            packet.get("IpDst"),
            packet.get("IpSrc"),
        )
        if swap_ports:
            out.fields["TcpSrc"], out.fields["TcpDst"] = (
                packet.get("TcpDst"),
                packet.get("TcpSrc"),
            )
        return [("out0", out)]

    return behave


def reference_dec_ip_ttl() -> Behaviour:
    """Decrement the TTL, dropping packets whose TTL would expire.

    This is the *correct* behaviour of the Click element: packets arriving
    with TTL 0 are dropped (no unsigned wrap-around), every other packet is
    forwarded with TTL − 1.
    """

    def behave(packet, in_port, state):
        ttl = packet.get("IpTtl")
        if ttl < 1:
            return []
        return [("out0", packet.with_fields(IpTtl=ttl - 1))]

    return behave


def reference_host_ether_filter(mac: int) -> Behaviour:
    """Only accept frames destined to this host's MAC address."""

    def behave(packet, in_port, state):
        if packet.get("EtherDst") != mac:
            return []
        return [("out0", packet.copy())]

    return behave


def _matches_filter(packet: ConcretePacket, spec: Mapping[str, object]) -> bool:
    if "src" in spec:
        address, plen = parse_prefix(str(spec["src"]))
        interval = prefix_to_interval(address, plen)
        if not interval.lo <= packet.get("IpSrc") <= interval.hi:
            return False
    if "dst" in spec:
        address, plen = parse_prefix(str(spec["dst"]))
        interval = prefix_to_interval(address, plen)
        if not interval.lo <= packet.get("IpDst") <= interval.hi:
            return False
    if "proto" in spec and packet.get("IpProto") != int(spec["proto"]):  # type: ignore[arg-type]
        return False
    for key, fname in (("src_port", "TcpSrc"), ("dst_port", "TcpDst")):
        if key in spec:
            value = spec[key]
            if isinstance(value, tuple):
                low, high = value
                if not low <= packet.get(fname) <= high:
                    return False
            elif packet.get(fname) != int(value):  # type: ignore[arg-type]
                return False
    return True


def reference_ip_classifier(filters: Sequence[Mapping[str, object]]) -> Behaviour:
    """Forward to the output of the first matching filter; else drop."""

    def behave(packet, in_port, state):
        for index, spec in enumerate(filters):
            if _matches_filter(packet, spec):
                return [(f"out{index}", packet.copy())]
        return []

    return behave


def reference_acl_firewall(
    rules: Sequence, default_action: str = "deny"
) -> Behaviour:
    """Ordered allow/deny rules over the five-tuple (AclRule objects)."""

    def behave(packet, in_port, state):
        for rule in rules:
            spec: Dict[str, object] = {}
            if rule.src is not None:
                spec["src"] = rule.src
            if rule.dst is not None:
                spec["dst"] = rule.dst
            if rule.proto is not None:
                spec["proto"] = rule.proto
            if rule.src_port is not None:
                spec["src_port"] = rule.src_port
            if rule.dst_port is not None:
                spec["dst_port"] = rule.dst_port
            if _matches_filter(packet, spec):
                if rule.action == "allow":
                    return [("out0", packet.copy())]
                return []
        if default_action == "allow":
            return [("out0", packet.copy())]
        return []

    return behave


def reference_ip_rewriter() -> Behaviour:
    """Stateful firewall: record outbound flows, admit only their reverses."""

    def behave(packet, in_port, state):
        flows = state.setdefault("flows", set())
        five_tuple = (
            packet.get("IpSrc"),
            packet.get("IpDst"),
            packet.get("TcpSrc"),
            packet.get("TcpDst"),
        )
        if in_port == "in0":
            flows.add(five_tuple)
            return [("out0", packet.copy())]
        reverse = (five_tuple[1], five_tuple[0], five_tuple[3], five_tuple[2])
        if reverse in flows:
            return [("out1", packet.copy())]
        return []

    return behave


def reference_nat(
    public_address: int, port_range: Tuple[int, int] = (1024, 65535), seed: int = 7
) -> Behaviour:
    """Source NAT with per-flow port allocation (quasi-random, as in practice)."""
    rng = random.Random(seed)

    def behave(packet, in_port, state):
        mappings = state.setdefault("mappings", {})
        if in_port == "in0":
            key = (packet.get("IpSrc"), packet.get("TcpSrc"))
            if key not in mappings:
                mappings[key] = rng.randint(*port_range)
            out = packet.with_fields(IpSrc=public_address, TcpSrc=mappings[key])
            return [("out0", out)]
        # Return traffic: find the flow whose mapped port matches.
        for (orig_ip, orig_port), mapped in mappings.items():
            if (
                packet.get("IpDst") == public_address
                and packet.get("TcpDst") == mapped
            ):
                out = packet.with_fields(IpDst=orig_ip, TcpDst=orig_port)
                return [("out1", out)]
        return []

    return behave


def reference_options_filter(policy: OptionPolicy) -> Behaviour:
    """Concrete TCP-options processing mirroring the ASA behaviour."""

    def behave(packet, in_port, state):
        out = packet.copy()
        for kind in list(out.options):
            verdict = policy.verdict(kind)
            present = out.options[kind].get("present", 0)
            if not present:
                continue
            if verdict == DROP:
                return []
            if verdict != ALLOW:
                out.options[kind]["present"] = 0
        if policy.strip_sackok_for_http and out.get("TcpDst") == 80:
            if 4 in out.options:
                out.options[4]["present"] = 0
        if policy.always_add_mss:
            entry = out.options.setdefault(2, {"present": 0, "size": 4, "value": 1380})
            entry["present"] = 1
            entry["size"] = 4
        if policy.mss_clamp is not None and 2 in out.options:
            entry = out.options[2]
            if entry.get("value", 0) > policy.mss_clamp:
                entry["value"] = policy.mss_clamp
        return [("out0", out)]

    return behave


# ---------------------------------------------------------------------------
# Dataplane
# ---------------------------------------------------------------------------


@dataclass
class DeliveredPacket:
    element: str
    port: str
    packet: ConcretePacket


class ReferenceDataplane:
    """Propagate concrete packets through a :class:`Network` topology using
    registered concrete behaviours (the stand-in for the paper's testbed)."""

    def __init__(self, network: Network, max_hops: int = 64) -> None:
        self.network = network
        self.max_hops = max_hops
        self._behaviours: Dict[str, Behaviour] = {}
        self._state: Dict[str, Dict[str, object]] = {}

    def register(self, element: str, behaviour: Behaviour) -> None:
        self._behaviours[element] = behaviour
        self._state.setdefault(element, {})

    def reset_state(self) -> None:
        for key in self._state:
            self._state[key] = {}

    def inject(
        self, packet: ConcretePacket, element: str, port: str
    ) -> List[DeliveredPacket]:
        """Send one concrete packet and capture everything that leaves the
        modeled network (output ports with no outgoing link)."""
        outputs: List[DeliveredPacket] = []
        worklist: List[Tuple[ConcretePacket, str, str, int]] = [
            (packet.copy(), element, port, 0)
        ]
        while worklist:
            current, element_name, in_port, hops = worklist.pop()
            if hops > self.max_hops:
                continue
            behaviour = self._behaviours.get(element_name)
            if behaviour is None:
                # Unmodeled elements behave as wires out of their first port.
                element_obj = self.network.element(element_name)
                ports = element_obj.output_ports
                emitted = [(ports[0], current.copy())] if ports else []
            else:
                emitted = behaviour(current, in_port, self._state[element_name])
            for out_port, out_packet in emitted:
                destination = self.network.link_from(element_name, out_port)
                if destination is None:
                    outputs.append(DeliveredPacket(element_name, out_port, out_packet))
                else:
                    worklist.append(
                        (out_packet, destination.element, destination.port, hops + 1)
                    )
        return outputs
