"""Concrete test-packet generation from symbolic execution paths.

Step 2 of the paper's testing procedure: "Pick an unexplored execution path
and use Z3 and the path constraints to generate concrete values for all the
header fields, resulting in a concrete packet p."
"""

from __future__ import annotations

import logging
import random
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.core.paths import PathRecord
from repro.sefl.fields import HeaderField
from repro.solver.ast import Add, Const, Sub, Term, Var
from repro.solver.solver import Solver
from repro.testing.reference import ConcretePacket


def evaluate_term(term: Term, model: Mapping[str, int], default: int = 0) -> int:
    """Evaluate a solver term under a model (unbound symbols → ``default``)."""
    if isinstance(term, Const):
        return term.value
    if isinstance(term, Var):
        return model.get(term.name, default)
    if isinstance(term, Add):
        return evaluate_term(term.left, model, default) + evaluate_term(
            term.right, model, default
        )
    if isinstance(term, Sub):
        return evaluate_term(term.left, model, default) - evaluate_term(
            term.right, model, default
        )
    raise TypeError(f"not a term: {term!r}")


def injected_symbols(
    path: PathRecord, fields: Sequence[HeaderField]
) -> Dict[str, Term]:
    """The term each field held when the packet was created (first value of
    the oldest allocation visible on the path)."""
    symbols: Dict[str, Term] = {}
    for field in fields:
        try:
            history = path.state.variable_history(field)
        except Exception:
            # Expected control flow, not degradation: the field is not
            # present on this path (e.g. decapsulated), so it has no
            # injected symbol to report.
            logging.getLogger(__name__).debug(
                "field %s not present on path, no injected symbol", field.name
            )
            continue
        if history:
            symbols[field.name] = history[0]
    return symbols


def concrete_packet_from_path(
    path: PathRecord,
    fields: Sequence[HeaderField],
    solver: Optional[Solver] = None,
    defaults: Optional[Mapping[str, int]] = None,
    rng: Optional[random.Random] = None,
) -> Optional[ConcretePacket]:
    """Solve the path constraints and build a concrete packet for injection.

    ``defaults`` provides values for fields left completely unconstrained by
    the path (the paper constrains them to be "valid" after hitting the
    IPClassifier zero-port bug; here the caller passes sensible defaults or a
    random generator).
    """
    solver = solver or Solver()
    model = solver.get_model(list(path.constraints)) or {}
    packet = ConcretePacket()
    rng = rng or random.Random(0)
    for field in fields:
        injected = injected_symbols(path, [field]).get(field.name)
        if injected is None:
            continue
        if isinstance(injected, Var) and injected.name not in model:
            if defaults and field.name in defaults:
                value = defaults[field.name]
            else:
                value = rng.randrange(1, 1 << min(field.width, 30))
            packet.fields[field.name] = value
        else:
            packet.fields[field.name] = evaluate_term(injected, model)
    return packet


def random_packet(
    fields: Sequence[HeaderField],
    rng: Optional[random.Random] = None,
    overrides: Optional[Mapping[str, int]] = None,
) -> ConcretePacket:
    """A uniformly random concrete packet (step 6 of the testing procedure)."""
    rng = rng or random.Random()
    packet = ConcretePacket()
    for field in fields:
        packet.fields[field.name] = rng.randrange(0, 1 << min(field.width, 30))
    if overrides:
        packet.fields.update(overrides)
    return packet
