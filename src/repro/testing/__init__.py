"""Automated conformance testing of SEFL models (§8.3).

SEFL models are only useful if they reflect the behaviour of the code they
mimic.  The paper's testing framework is ATPG-like: derive concrete test
packets from the symbolic paths, inject them into the running implementation
and check that the observed outputs satisfy the path's constraints.  Here the
"running implementation" is a concrete reference dataplane
(:mod:`repro.testing.reference`) standing in for the Click instances / ASA
hardware of the paper's testbed — the testing loop itself
(:mod:`repro.testing.conformance`) is unchanged.
"""

from repro.testing.conformance import ConformanceReport, ConformanceTester, Mismatch
from repro.testing.packet_gen import (
    concrete_packet_from_path,
    evaluate_term,
    injected_symbols,
)
from repro.testing.reference import (
    ConcretePacket,
    ReferenceDataplane,
    reference_acl_firewall,
    reference_dec_ip_ttl,
    reference_host_ether_filter,
    reference_ip_classifier,
    reference_ip_mirror,
    reference_ip_rewriter,
    reference_nat,
    reference_options_filter,
    reference_router,
    reference_switch,
    reference_wire,
)

__all__ = [
    "ConcretePacket",
    "ConformanceReport",
    "ConformanceTester",
    "Mismatch",
    "ReferenceDataplane",
    "concrete_packet_from_path",
    "evaluate_term",
    "injected_symbols",
    "reference_acl_firewall",
    "reference_dec_ip_ttl",
    "reference_host_ether_filter",
    "reference_ip_classifier",
    "reference_ip_mirror",
    "reference_ip_rewriter",
    "reference_nat",
    "reference_options_filter",
    "reference_router",
    "reference_switch",
    "reference_wire",
]
