"""The conformance-testing loop (§8.3).

The procedure mirrors the paper's six steps:

1. run a reachability test over the SEFL model with a symbolic packet;
2. for each symbolic path, solve the constraints into a concrete packet;
3. inject the packet into the running implementation (here: the concrete
   reference dataplane) and capture the outputs;
4. add the observed header values as constraints at the end of the symbolic
   path and check satisfiability — a contradiction is a model bug;
5. repeat for every path;
6. finish with random packets, checking that the implementation's verdict
   matches *some* feasible model path.
"""

from __future__ import annotations

import logging
import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.engine import ExecutionSettings, SymbolicExecutor
from repro.core.paths import ExecutionResult, PathRecord, PathStatus
from repro.network.ports import PortId
from repro.network.topology import Network
from repro.sefl.fields import HeaderField
from repro.sefl.instructions import Instruction
from repro.solver.ast import Const, Eq, Formula
from repro.solver.solver import Solver
from repro.testing.packet_gen import (
    concrete_packet_from_path,
    injected_symbols,
    random_packet,
)
from repro.testing.reference import ConcretePacket, ReferenceDataplane


@dataclass
class Mismatch:
    """One detected disagreement between the model and the implementation."""

    kind: str  # "missing-output", "unexpected-output", "value-mismatch"
    description: str
    packet: Optional[ConcretePacket] = None
    path_id: Optional[int] = None


@dataclass
class ConformanceReport:
    """Summary of a conformance-testing run."""

    paths_tested: int = 0
    random_packets_tested: int = 0
    mismatches: List[Mismatch] = field(default_factory=list)

    @property
    def conformant(self) -> bool:
        return not self.mismatches

    def add(self, mismatch: Mismatch) -> None:
        self.mismatches.append(mismatch)


class ConformanceTester:
    """Compare a SEFL model network against a concrete reference dataplane."""

    def __init__(
        self,
        network: Network,
        dataplane: ReferenceDataplane,
        fields: Sequence[HeaderField],
        solver: Optional[Solver] = None,
        settings: Optional[ExecutionSettings] = None,
    ) -> None:
        self.network = network
        self.dataplane = dataplane
        self.fields = list(fields)
        self.solver = solver or Solver()
        self.settings = settings or ExecutionSettings()

    # -- main entry points ------------------------------------------------------

    def test(
        self,
        packet_program: Instruction,
        element: str,
        port: str = "in0",
        random_trials: int = 20,
        probe_packets: Optional[Sequence[ConcretePacket]] = None,
        rng: Optional[random.Random] = None,
    ) -> ConformanceReport:
        """Run the full procedure: path-derived packets, then random packets.

        ``probe_packets`` lets the caller add targeted concrete packets (e.g.
        boundary TTL values) that are checked the same way as random ones.
        """
        rng = rng or random.Random(1)
        report = ConformanceReport()
        executor = SymbolicExecutor(
            self.network, solver=self.solver, settings=self.settings
        )
        result = executor.inject(packet_program, element, port)

        for path in result.delivered():
            self._test_path(path, element, port, report, rng)
        report.paths_tested = len(result.delivered())

        # Fields the injection program pins to concrete values (EtherType,
        # IpVersion, IpProto, …) must keep those values in generated packets,
        # otherwise the comparison would reject packets the model never
        # claims to describe.
        pinned = self._pinned_fields(result)
        trials = 0
        for packet in list(probe_packets or []):
            merged = packet.copy()
            for name, value in pinned.items():
                merged.fields.setdefault(name, value)
            self._test_random_packet(merged, element, port, result, report)
            trials += 1
        for _ in range(random_trials):
            packet = random_packet(self.fields, rng, overrides=pinned)
            self._test_random_packet(packet, element, port, result, report)
            trials += 1
        report.random_packets_tested = trials
        return report

    def _pinned_fields(self, result: ExecutionResult) -> Dict[str, int]:
        """Concrete values the injection program assigned to header fields."""
        pinned: Dict[str, int] = {}
        for path in result.paths:
            terms = injected_symbols(path, self.fields)
            for name, term in terms.items():
                if isinstance(term, Const):
                    pinned[name] = term.value
            if terms:
                break
        return pinned

    # -- path-derived packets -----------------------------------------------------

    def _test_path(
        self,
        path: PathRecord,
        element: str,
        port: str,
        report: ConformanceReport,
        rng: random.Random,
    ) -> None:
        packet = concrete_packet_from_path(path, self.fields, self.solver, rng=rng)
        if packet is None:
            return
        self.dataplane.reset_state()
        outputs = self.dataplane.inject(packet, element, port)
        if not outputs:
            report.add(
                Mismatch(
                    kind="missing-output",
                    description=(
                        f"model path {path.path_id} predicts delivery at "
                        f"{path.last_port}, but the implementation dropped the packet"
                    ),
                    packet=packet,
                    path_id=path.path_id,
                )
            )
            return
        # The observed output must satisfy the path constraints once the
        # injected values and the observed header values are pinned.
        observed_ports = {(out.element, out.port) for out in outputs}
        predicted = (path.last_port.element, path.last_port.port)
        if predicted not in observed_ports:
            report.add(
                Mismatch(
                    kind="value-mismatch",
                    description=(
                        f"model path {path.path_id} exits at {path.last_port} but the "
                        f"implementation emitted the packet at {sorted(observed_ports)}"
                    ),
                    packet=packet,
                    path_id=path.path_id,
                )
            )
            return
        for out in outputs:
            if (out.element, out.port) != predicted:
                continue
            constraints = self._observation_constraints(path, packet, out.packet)
            if constraints is None:
                continue
            if self.solver.check(constraints).is_unsat:
                report.add(
                    Mismatch(
                        kind="value-mismatch",
                        description=(
                            f"observed header values at {out.element}:{out.port} "
                            f"contradict the constraints of model path {path.path_id}"
                        ),
                        packet=packet,
                        path_id=path.path_id,
                    )
                )

    def _observation_constraints(
        self,
        path: PathRecord,
        injected: ConcretePacket,
        observed: ConcretePacket,
    ) -> Optional[List[Formula]]:
        constraints: List[Formula] = list(path.constraints)
        injected_terms = injected_symbols(path, self.fields)
        for name, term in injected_terms.items():
            if name in injected.fields:
                constraints.append(Eq(term, Const(injected.fields[name])))
        for field_obj in self.fields:
            if field_obj.name not in observed.fields:
                continue
            try:
                final_term = path.state.read_variable(field_obj)
            except Exception:
                # Expected control flow, not degradation: the field was
                # deallocated on this path (e.g. decapsulated), so the
                # observed value has nothing to constrain against.
                logging.getLogger(__name__).debug(
                    "field %s absent on path, skipping observed-value "
                    "constraint", field_obj.name,
                )
                continue
            constraints.append(Eq(final_term, Const(observed.fields[field_obj.name])))
        return constraints

    # -- random packets -------------------------------------------------------------

    def _test_random_packet(
        self,
        packet: ConcretePacket,
        element: str,
        port: str,
        result: ExecutionResult,
        report: ConformanceReport,
    ) -> None:
        """Check that the implementation's verdict on a random packet matches
        some feasible model path."""
        self.dataplane.reset_state()
        outputs = self.dataplane.inject(packet, element, port)
        matching_delivery = self._admitting_path(result.delivered(), packet)
        if outputs and matching_delivery is None:
            report.add(
                Mismatch(
                    kind="unexpected-output",
                    description=(
                        "the implementation forwarded a packet that no model path admits"
                    ),
                    packet=packet,
                )
            )
            return
        if not outputs and matching_delivery is not None:
            report.add(
                Mismatch(
                    kind="missing-output",
                    description=(
                        f"model path {matching_delivery.path_id} admits a packet "
                        "that the implementation dropped"
                    ),
                    packet=packet,
                    path_id=matching_delivery.path_id,
                )
            )
            return
        if outputs and matching_delivery is not None:
            # Both forward: the observed exit point must agree with at least
            # one admitting model path.
            observed = {(out.element, out.port) for out in outputs}
            admitting_exits = set()
            for path in result.delivered():
                if path.last_port is None:
                    continue
                exit_point = (path.last_port.element, path.last_port.port)
                if exit_point in admitting_exits:
                    continue
                if self._path_admits(path, packet):
                    admitting_exits.add(exit_point)
            if observed.isdisjoint(admitting_exits):
                report.add(
                    Mismatch(
                        kind="value-mismatch",
                        description=(
                            f"the implementation emitted the packet at {sorted(observed)} "
                            f"but the model only admits it at {sorted(admitting_exits)}"
                        ),
                        packet=packet,
                    )
                )

    def _path_admits(self, path: PathRecord, packet: ConcretePacket) -> bool:
        constraints: List[Formula] = list(path.constraints)
        injected_terms = injected_symbols(path, self.fields)
        for name, term in injected_terms.items():
            if name in packet.fields:
                constraints.append(Eq(term, Const(packet.fields[name])))
        return self.solver.check(constraints).is_sat

    def _admitting_path(
        self, paths: Sequence[PathRecord], packet: ConcretePacket
    ) -> Optional[PathRecord]:
        for path in paths:
            if self._path_admits(path, packet):
                return path
        return None
