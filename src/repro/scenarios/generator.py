"""Seed-pinned update-sequence generation over exported snapshot directories.

A :class:`Scenario` is a pure description: ``steps`` of file rewrites over a
snapshot directory (the format :func:`repro.parsers.topology_file.
load_network_directory` reads).  Generation threads a virtual copy of the
directory state through every step, so the same seed over the same initial
directory always produces the same step sequence — and, because steps carry
the full new file contents, a scenario generated against one export can be
replayed against any byte-identical export of the same workload.

Update kinds (each materialized as a directory edit so the delta manifest
machinery attributes it to exactly the elements it touched):

``acl-insert`` / ``acl-delete``
    Add or remove one ``block PORT`` rule of a zone-edge service ACL.
``fib-insert`` / ``fib-delete``
    Add a more-specific route inside an existing prefix (pointed at a port
    the router already uses) or withdraw a non-default route.  Hub routers
    (the highest-in-degree devices, e.g. the stanford cores) are excluded:
    real update churn lives at the edges, and edits there keep the delta
    closure small.
``mac-insert`` / ``mac-delete``
    Learn or age out one entry of a switch MAC table.
``asa-churn``
    Rewrite a stateful middlebox's config: rotate a static NAT binding and
    its inbound ``permit`` rule (the :mod:`repro.models` ASA pipeline —
    NAT bindings plus firewall state — rebuilt from the edited config).
``link-down`` / ``link-up``
    Remove a topology link line, then restore it at its original position a
    couple of steps later (the flap).  Topology edits are deliberately
    incompatible with delta splicing, so these steps exercise the full-rerun
    fallback.
``violation-inject`` / ``violation-revert``
    The seeded transient violation: redirect one edge router's
    most-specific route onto an uplink whose neighbor routes the same
    prefix straight back — a forwarding loop that exists only between the
    inject and revert steps.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.models.router import longest_prefix_match
from repro.parsers.mac_table import format_mac_table, parse_mac_table
from repro.parsers.routing_table import format_routing_table, parse_routing_table
from repro.parsers.topology_file import referenced_snapshot_files
from repro.sefl.util import number_to_ip

#: Service ports the ACL churn draws from — disjoint from the seed policy in
#: :data:`repro.workloads.stanford.SERVICE_ACL_PORTS` is not required;
#: inserts skip ports the file already blocks.
ACL_PORT_POOL = (21, 22, 25, 53, 80, 110, 143, 443, 8080, 8443)

_DEVICE_LINE = re.compile(
    r"^device\s+(?P<name>\S+)\s+(?P<kind>\S+)\s+(?P<file>\S+)\s*$"
)
_LINK_LINE = re.compile(
    r"^link\s+(?P<src>\S+):(?P<srcport>\S+)\s*->\s*(?P<dst>\S+):(?P<dstport>\S+)\s*$"
)
_MAC_VLAN = re.compile(r"^\s*(?P<vlan>\d+)\s+[0-9a-fA-F.:-]+\s+\w+\s+\S+\s*$")


@dataclass(frozen=True)
class UpdateStep:
    """One transient state: the file rewrites that produce it.

    ``writes`` maps snapshot file names to their complete new text — full
    contents rather than patches, so applying a step is idempotent and the
    executor never depends on what a previous (possibly skipped) state left
    behind.
    """

    index: int
    kind: str
    description: str
    writes: Tuple[Tuple[str, str], ...]
    violation: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "kind": self.kind,
            "description": self.description,
            "files": sorted(name for name, _ in self.writes),
            "violation": self.violation,
        }


@dataclass(frozen=True)
class Scenario:
    """A seed-pinned update sequence over one exported directory."""

    workload: str
    seed: int
    steps: Tuple[UpdateStep, ...]
    #: Digest of the directory state the sequence was generated against —
    #: replaying against a different export of the "same" workload is a
    #: user error this makes detectable.
    base_digest: str = ""

    def fingerprint(self) -> str:
        payload = {
            "workload": self.workload,
            "seed": self.seed,
            "base": self.base_digest,
            "steps": [
                (step.kind, step.description, list(step.writes))
                for step in self.steps
            ],
        }
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()
        ).hexdigest()

    def to_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "seed": self.seed,
            "base_digest": self.base_digest,
            "steps": [step.to_dict() for step in self.steps],
            "fingerprint": self.fingerprint(),
        }


# ---------------------------------------------------------------------------
# Directory state
# ---------------------------------------------------------------------------


def read_directory_state(directory: str) -> Dict[str, str]:
    """The text of ``topology.txt`` plus every snapshot file it references
    (the same file-set policy the manifest uses, so scenario edits can never
    touch a file delta verification would not see)."""
    with open(os.path.join(directory, "topology.txt"), encoding="utf-8") as handle:
        topology = handle.read()
    state = {"topology.txt": topology}
    for name in referenced_snapshot_files(topology):
        path = os.path.join(directory, name)
        with open(path, encoding="utf-8") as handle:
            state[name] = handle.read()
    return state


def state_digest(state: Dict[str, str]) -> str:
    payload = json.dumps(sorted(state.items()), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def _parse_devices(
    topology: str,
) -> Tuple[Dict[str, Tuple[str, str]], List[Tuple[str, str, str, str]]]:
    """``{device: (kind, file)}`` plus the link list, straight from the
    topology grammar."""
    devices: Dict[str, Tuple[str, str]] = {}
    links: List[Tuple[str, str, str, str]] = []
    for raw in topology.splitlines():
        line = raw.strip()
        device = _DEVICE_LINE.match(line)
        if device:
            devices[device.group("name")] = (
                device.group("kind"),
                device.group("file"),
            )
            continue
        link = _LINK_LINE.match(line)
        if link:
            links.append(
                (
                    link.group("src"),
                    link.group("srcport"),
                    link.group("dst"),
                    link.group("dstport"),
                )
            )
    return devices, links


def _edge_fib_files(
    devices: Dict[str, Tuple[str, str]],
    links: Sequence[Tuple[str, str, str, str]],
) -> List[str]:
    """Router snapshot files eligible for FIB churn: every router except the
    highest-in-degree hubs (unless that would leave none).  In-degree only
    counts links from other *routers* — injection shims (service ACLs)
    feeding a router say nothing about whether it is a hub."""
    in_degree: Dict[str, int] = {}
    for src, _, dst, _ in links:
        if devices.get(src, ("", ""))[0] == "router":
            in_degree[dst] = in_degree.get(dst, 0) + 1
    routers = sorted(
        name for name, (kind, _) in devices.items() if kind == "router"
    )
    if not routers:
        return []
    peak = max(in_degree.get(name, 0) for name in routers)
    edges = [name for name in routers if in_degree.get(name, 0) < peak]
    chosen = edges or routers
    return [devices[name][1] for name in chosen]


# ---------------------------------------------------------------------------
# Per-kind editors (each returns (new file text, description) or None when
# the kind cannot apply to the current state)
# ---------------------------------------------------------------------------


def _acl_edit(
    text: str, target: str, rng: random.Random, insert: bool
) -> Optional[Tuple[str, str]]:
    lines = [line for line in text.splitlines() if line.strip()]
    blocked = set()
    for line in lines:
        parts = line.split()
        if len(parts) == 2 and parts[0] == "block" and parts[1].isdigit():
            blocked.add(int(parts[1]))
    if insert:
        pool = [port for port in ACL_PORT_POOL if port not in blocked]
        if not pool:
            return None
        port = rng.choice(pool)
        lines.insert(rng.randrange(len(lines) + 1), f"block {port}")
        description = f"insert 'block {port}' into {target}"
    else:
        if len(lines) <= 1:
            return None
        removed = lines.pop(rng.randrange(len(lines)))
        description = f"delete '{removed.strip()}' from {target}"
    return "\n".join(lines) + "\n", description


def _fib_edit(
    text: str, target: str, rng: random.Random, insert: bool
) -> Optional[Tuple[str, str]]:
    fib = parse_routing_table(text)
    if insert:
        covers = [
            (index, entry)
            for index, entry in enumerate(fib)
            if 8 <= entry[1] <= 28
        ]
        if not covers:
            return None
        _, (address, plen, _) = covers[rng.randrange(len(covers))]
        new_len = min(plen + 4, 30)
        subnet = rng.randrange(1 << (new_len - plen))
        new_address = address | (subnet << (32 - new_len))
        port = rng.choice(sorted({entry[2] for entry in fib}))
        fib.insert(rng.randrange(len(fib) + 1), (new_address, new_len, port))
        description = (
            f"insert route {number_to_ip(new_address)}/{new_len} -> {port} "
            f"into {target}"
        )
    else:
        removable = [index for index, entry in enumerate(fib) if entry[1] > 0]
        if len(fib) <= 1 or not removable:
            return None
        index = removable[rng.randrange(len(removable))]
        address, plen, port = fib.pop(index)
        description = (
            f"delete route {number_to_ip(address)}/{plen} -> {port} "
            f"from {target}"
        )
    return format_routing_table(fib), description


def _mac_vlan(text: str) -> int:
    for line in text.splitlines():
        match = _MAC_VLAN.match(line)
        if match:
            return int(match.group("vlan"))
    return 1


def _mac_edit(
    text: str, target: str, rng: random.Random, insert: bool
) -> Optional[Tuple[str, str]]:
    table = parse_mac_table(text)
    if not table:
        return None
    vlan = _mac_vlan(text)
    known = {mac for macs in table.values() for mac in macs}
    if insert:
        port = rng.choice(sorted(table))
        mac = (max(known) + 1 + rng.randrange(64)) & 0xFFFF_FFFF_FFFF
        while mac in known:  # deterministic: advances from a seeded draw
            mac = (mac + 1) & 0xFFFF_FFFF_FFFF
        table[port].append(mac)
        description = f"learn MAC {mac:012x} on {target}:{port}"
    else:
        rich = [port for port in sorted(table) if len(table[port]) > 1]
        if not rich:
            return None
        port = rng.choice(rich)
        mac = table[port].pop(rng.randrange(len(table[port])))
        description = f"age out MAC {mac:012x} from {target}:{port}"
    return format_mac_table(table, vlan=vlan), description


def _asa_churn(
    text: str,
    target: str,
    rng: random.Random,
    fib_state: Dict[str, str],
) -> Optional[Tuple[str, str]]:
    """Rotate one static NAT binding (and its inbound permit rule) to a new
    private address sampled from the routed address space."""
    from repro.parsers.asa_config import format_asa_config, parse_asa_config

    config = parse_asa_config(text)
    prefixes: List[Tuple[int, int]] = []
    for fib_text in fib_state.values():
        prefixes.extend(
            (address, plen)
            for address, plen, _ in parse_routing_table(fib_text)
            if 8 <= plen <= 28
        )
    if not prefixes:
        return None
    address, plen = prefixes[rng.randrange(len(prefixes))]
    private = number_to_ip(address + rng.randrange(1, 1 << min(32 - plen, 8)))
    public_base = (config.public_address or "141.85.37.1").rsplit(".", 1)[0]
    public = f"{public_base}.{rng.randrange(10, 250)}"
    service = rng.choice(ACL_PORT_POOL)
    from repro.models.firewall import AclRule

    if config.static_nat:
        slot = rng.randrange(len(config.static_nat))
        config.static_nat[slot] = (public, private)
    else:
        config.static_nat.append((public, private))
    rule = AclRule(
        action="allow", src=None, dst=f"{private}/32", proto=6, dst_port=service
    )
    permits = [r for r in config.inbound_rules if r.action == "allow"]
    if permits and rng.random() < 0.5:
        config.inbound_rules[config.inbound_rules.index(rng.choice(permits))] = rule
    else:
        config.inbound_rules.append(rule)
    description = (
        f"rebind static NAT {public} -> {private} (permit tcp/{service}) "
        f"in {target}"
    )
    return format_asa_config(config), description


# ---------------------------------------------------------------------------
# The seeded violation: a transient forwarding loop
# ---------------------------------------------------------------------------


def _loop_candidates(
    state: Dict[str, str],
    devices: Dict[str, Tuple[str, str]],
    links: Sequence[Tuple[str, str, str, str]],
) -> List[Tuple[str, int, str, str]]:
    """Every ``(fib file, entry index, redirect port, neighbor)`` whose
    redirect provably creates a two-router forwarding loop: the neighbor's
    longest-prefix match for the redirected prefix points straight back."""
    fib_of = {
        name: parse_routing_table(state[file])
        for name, (kind, file) in devices.items()
        if kind == "router" and file in state
    }
    out_link = {(src, port): dst for src, port, dst, _ in links}
    candidates: List[Tuple[str, int, str, str]] = []
    for name in sorted(fib_of):
        fib = fib_of[name]
        prefix_count: Dict[Tuple[int, int], int] = {}
        for address, plen, _ in fib:
            prefix_count[(address, plen)] = prefix_count.get((address, plen), 0) + 1
        for index, (address, plen, port) in enumerate(fib):
            if plen < 17 or prefix_count[(address, plen)] != 1:
                continue
            # The entry must be the unique most-specific cover of its own
            # base address, or the redirect would not win the LPM.
            if longest_prefix_match(fib, address) != port:
                continue
            for redirect in sorted({p for _, _, p in fib if p != port}):
                neighbor = out_link.get((name, redirect))
                if neighbor is None or neighbor not in fib_of:
                    continue
                back = longest_prefix_match(fib_of[neighbor], address)
                if back is not None and out_link.get((neighbor, back)) == name:
                    file = devices[name][1]
                    candidates.append((file, index, redirect, neighbor))
                    break
    return candidates


def _violation_edit(
    state: Dict[str, str],
    devices: Dict[str, Tuple[str, str]],
    links: Sequence[Tuple[str, str, str, str]],
    rng: random.Random,
) -> Optional[Tuple[str, str, str, Tuple[int, int, str]]]:
    """Pick one loop candidate; returns ``(file, new text, description,
    original entry)`` — the original entry is what the revert restores."""
    candidates = _loop_candidates(state, devices, links)
    if not candidates:
        return None
    file, index, redirect, neighbor = candidates[rng.randrange(len(candidates))]
    fib = parse_routing_table(state[file])
    address, plen, port = fib[index]
    fib[index] = (address, plen, redirect)
    description = (
        f"redirect {number_to_ip(address)}/{plen} from {port} to {redirect} "
        f"in {file} (forwarding loop via {neighbor})"
    )
    return file, format_routing_table(fib), description, (address, plen, port)


# ---------------------------------------------------------------------------
# The generator
# ---------------------------------------------------------------------------


def generate_scenario(
    directory: str,
    steps: int,
    seed: int,
    workload: str = "directory",
    inject_violation: bool = True,
) -> Scenario:
    """Generate a seed-pinned update sequence over an exported directory.

    Same ``(directory contents, steps, seed, inject_violation)`` always
    yields the same scenario; the directory itself is never modified (the
    executor applies steps).  With ``inject_violation`` a forwarding-loop
    edit lands around one third of the way in and is reverted around two
    thirds, so the violation is transient — present in some intermediate
    states, absent at both ends.
    """
    if steps < 1:
        raise ValueError("a scenario needs at least one step")
    state = read_directory_state(directory)
    base_digest = state_digest(state)
    rng = random.Random(seed)
    devices, _ = _parse_devices(state["topology.txt"])

    inject_at = revert_at = 0
    if inject_violation:
        inject_at = max(1, steps // 3)
        revert_at = min(steps, inject_at + max(1, steps // 3))

    update_steps: List[UpdateStep] = []
    down_link: Optional[Tuple[int, str, int]] = None  # (line index, line, since)
    violation: Optional[Tuple[str, Tuple[int, int, str]]] = None
    violation_file: Optional[str] = None

    for index in range(1, steps + 1):
        devices, links = _parse_devices(state["topology.txt"])
        acl_files = sorted(
            file for _, (kind, file) in devices.items() if kind == "service-acl"
        )
        mac_files = sorted(
            file for _, (kind, file) in devices.items() if kind == "switch"
        )
        asa_files = sorted(
            file for _, (kind, file) in devices.items() if kind == "asa"
        )
        fib_files = sorted(
            file
            for file in _edge_fib_files(devices, links)
            if file != violation_file
        )
        fib_state = {
            file: state[file]
            for _, (kind, file) in sorted(devices.items())
            if kind == "router" and file in state
        }
        step: Optional[UpdateStep] = None

        if inject_violation and index == inject_at:
            edit = _violation_edit(state, devices, links, rng)
            if edit is not None:
                file, text, description, original = edit
                violation = (file, original)
                violation_file = file
                step = UpdateStep(
                    index=index,
                    kind="violation-inject",
                    description=description,
                    writes=((file, text),),
                    violation=True,
                )
        elif violation is not None and index == revert_at:
            file, (address, plen, port) = violation
            fib = parse_routing_table(state[file])
            restored = [
                (address, plen, port) if entry[:2] == (address, plen) else entry
                for entry in fib
            ]
            step = UpdateStep(
                index=index,
                kind="violation-revert",
                description=(
                    f"restore {number_to_ip(address)}/{plen} -> {port} in {file}"
                ),
                writes=((file, format_routing_table(restored)),),
                violation=True,
            )
            violation = None
            violation_file = None

        if step is None and down_link is not None:
            line_index, line, since = down_link
            if index - since >= 2 or index == steps:
                lines = state["topology.txt"].splitlines()
                lines.insert(line_index, line)
                step = UpdateStep(
                    index=index,
                    kind="link-up",
                    description=f"restore {line.strip()!r}",
                    writes=(("topology.txt", "\n".join(lines) + "\n"),),
                )
                down_link = None

        if step is None:
            step = _pick_update(
                state,
                index,
                rng,
                acl_files=acl_files,
                fib_files=fib_files,
                mac_files=mac_files,
                asa_files=asa_files,
                fib_state=fib_state,
                allow_flap=down_link is None,
            )
            if step is not None and step.kind == "link-down":
                # Diff old vs new topology to find the removed line's index;
                # link-up reinserts it there, restoring the exact bytes.
                old_lines = state["topology.txt"].splitlines()
                new_lines = dict(step.writes)["topology.txt"].splitlines()
                removed = next(
                    i
                    for i in range(len(old_lines))
                    if i >= len(new_lines) or old_lines[i] != new_lines[i]
                )
                down_link = (removed, old_lines[removed], index)
        if step is None:
            raise RuntimeError(
                f"no applicable update kind at step {index} "
                f"(directory {directory!r} has no editable snapshots)"
            )
        for name, text in step.writes:
            state[name] = text
        update_steps.append(step)

    return Scenario(
        workload=workload,
        seed=seed,
        steps=tuple(update_steps),
        base_digest=base_digest,
    )


def _pick_update(
    state: Dict[str, str],
    index: int,
    rng: random.Random,
    *,
    acl_files: Sequence[str],
    fib_files: Sequence[str],
    mac_files: Sequence[str],
    asa_files: Sequence[str],
    fib_state: Dict[str, str],
    allow_flap: bool,
) -> Optional[UpdateStep]:
    """One weighted, seeded draw over the kinds the directory supports.
    Kinds that turn out inapplicable (an ACL down to its last rule, say)
    fall through to the next draw, so generation never dead-ends early."""
    # ACL and ASA edits dominate the mix on purpose: they touch source-island
    # elements whose delta closure is one or two ports, so the typical step
    # splices most of the campaign — which is the point of the subsystem.
    # FIB churn and link flaps are the expensive tail (a routing change
    # taints every injection that can reach the router; a topology edit is
    # incompatible with splicing outright).
    weighted: List[Tuple[str, int]] = []
    if acl_files:
        weighted += [("acl-insert", 4), ("acl-delete", 2)]
    if fib_files:
        weighted += [("fib-insert", 2), ("fib-delete", 1)]
    if mac_files:
        weighted += [("mac-insert", 2), ("mac-delete", 1)]
    if asa_files:
        weighted += [("asa-churn", 3)]
    if allow_flap:
        weighted += [("link-down", 1)]
    kinds = [kind for kind, weight in weighted for _ in range(weight)]
    for _ in range(16):  # a few seeded retries before giving up
        if not kinds:
            return None
        kind = rng.choice(kinds)
        edit: Optional[Tuple[str, str]] = None
        target = ""
        if kind.startswith("acl-"):
            target = rng.choice(list(acl_files))
            edit = _acl_edit(state[target], target, rng, kind.endswith("insert"))
        elif kind.startswith("fib-"):
            target = rng.choice(list(fib_files))
            edit = _fib_edit(state[target], target, rng, kind.endswith("insert"))
        elif kind.startswith("mac-"):
            target = rng.choice(list(mac_files))
            edit = _mac_edit(state[target], target, rng, kind.endswith("insert"))
        elif kind == "asa-churn":
            target = rng.choice(list(asa_files))
            edit = _asa_churn(state[target], target, rng, fib_state)
        elif kind == "link-down":
            lines = state["topology.txt"].splitlines()
            link_lines = [
                i for i, line in enumerate(lines) if line.strip().startswith("link ")
            ]
            if link_lines:
                removed = rng.choice(link_lines)
                line = lines.pop(removed)
                return UpdateStep(
                    index=index,
                    kind="link-down",
                    description=f"remove '{line.strip()}'",
                    writes=(("topology.txt", "\n".join(lines) + "\n"),),
                )
        if edit is not None:
            text, description = edit
            return UpdateStep(
                index=index,
                kind=kind,
                description=description,
                writes=((target, text),),
            )
        kinds = [k for k in kinds if k != kind]
    return None
