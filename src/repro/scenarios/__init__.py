"""Transient-state scenario campaigns (the dynamic-network story).

Every workload the campaign machinery verifies is one static snapshot, but
the bugs the paper cares about live in *changing* networks: a rule pushed
before its covering drop rule, a link flapping while routes still point at
it, a middlebox whose NAT bindings churn under traffic.  This package turns
one exported snapshot directory into a whole update sequence and verifies
every transient state along the way:

``generator``
    Seed-pinned :class:`~repro.scenarios.generator.Scenario` objects — an
    update sequence (ACL/FIB rule inserts and deletes, link flaps, stateful
    middlebox churn) where every step is materialized as a directory edit,
    so the delta-manifest machinery (:mod:`repro.core.delta`) sees each
    transient state natively.

``executor``
    :class:`~repro.scenarios.executor.ScenarioCampaign` — a baseline
    campaign at step 0, then one delta-spliced re-verification per
    transient state, replaying a query batch compiled once
    (:mod:`repro.api`).  Invariant: each step's answers are bit-identical
    to a scratch campaign over that snapshot.

``reduce``
    Structural feature extraction over the violating traces, DBSCAN-style
    clustering and representative ranking, so a sequence that emits
    thousands of violations reports a handful of root causes.
"""

from repro.scenarios.executor import ScenarioCampaign, ScenarioRun, StepOutcome
from repro.scenarios.generator import Scenario, UpdateStep, generate_scenario
from repro.scenarios.reduce import (
    ViolationCluster,
    cluster_violations,
    trace_features,
    violation_fingerprint,
)

__all__ = [
    "Scenario",
    "UpdateStep",
    "generate_scenario",
    "ScenarioCampaign",
    "ScenarioRun",
    "StepOutcome",
    "ViolationCluster",
    "cluster_violations",
    "trace_features",
    "violation_fingerprint",
]
