"""Counterexample clustering: thousands of violating traces, a handful of
root causes.

A transient scenario that breaks one forwarding rule can emit a violation
per injection port per step — the same root cause restated dozens of times.
This module collapses them the SDNRacer way: extract *structural* features
from each violating trace (the ports it crossed, the kinds of element those
ports belong to, which query failed, a short prefix of the violation's
content fingerprint), cluster under Jaccard distance with a DBSCAN-style
density sweep, and rank one representative (the medoid) per cluster.

Everything is deterministic: points are processed in sorted fingerprint
order, neighbours are expanded in sorted order, and ties rank by
fingerprint — the same violations always produce the same clusters, which
is what the seed-pinned scenario tests pin down.  No numpy/sklearn: the
distance matrix is a dict and the sweep is a worklist, which is plenty for
the few hundred violations a scenario campaign emits (``max_points`` caps
the quadratic part deterministically and reports what it dropped).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple


def violation_fingerprint(violation: Mapping[str, object]) -> str:
    """Content identity of one violation record: the query it failed, the
    evidence trace, and the reason — but *not* the step index, so the same
    broken state reappearing at a later step fingerprints identically."""
    payload = {
        "query": str(violation.get("query", "")),
        "query_kind": str(violation.get("query_kind", "")),
        "source": str(violation.get("source", "")),
        "trace": [str(hop) for hop in violation.get("trace", ())],
        "reason": str(violation.get("reason", "")),
        "detected_at": str(violation.get("detected_at", "")),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def trace_features(
    violation: Mapping[str, object],
    element_kinds: Optional[Mapping[str, str]] = None,
) -> FrozenSet[str]:
    """The structural feature set clustering compares.

    Features are deliberately coarse: the violated query *kind* (not its
    full text — an all-pairs batch fails one ``reach`` per source, and
    those should cluster together), the elements and ports the trace
    crossed, the kinds of those elements, where a loop was detected, and a
    2-hex-digit prefix of the content fingerprint as a weak tiebreaker
    that separates genuinely different evidence without shattering
    clusters.
    """
    kinds = element_kinds or {}
    features = {
        f"query-kind:{violation.get('query_kind', '')}",
        f"reason:{violation.get('reason', '')}",
    }
    detected = str(violation.get("detected_at", "") or "")
    if detected:
        features.add(f"detected-at:{detected}")
    trace = [str(hop) for hop in violation.get("trace", ())]
    for hop in trace:
        features.add(f"port:{hop}")
        element = hop.split(":", 1)[0]
        features.add(f"element:{element}")
        kind = kinds.get(element)
        if kind:
            features.add(f"element-kind:{kind}")
    if not trace:
        # Trace-less evidence (a reach query that simply stopped holding):
        # the source port is the only structure there is.
        features.add(f"source:{violation.get('source', '')}")
    fingerprint = str(
        violation.get("fingerprint") or violation_fingerprint(violation)
    )
    features.add(f"fp-prefix:{fingerprint[:2]}")
    return frozenset(features)


def jaccard_distance(a: FrozenSet[str], b: FrozenSet[str]) -> float:
    """1 - |a ∩ b| / |a ∪ b|; two empty sets are identical (distance 0)."""
    if not a and not b:
        return 0.0
    union = len(a | b)
    return 1.0 - len(a & b) / union


@dataclass
class ViolationCluster:
    """One root cause: its member violations and a ranked representative."""

    rank: int
    members: List[Dict[str, object]]
    representative: Dict[str, object]
    noise: bool = False

    @property
    def size(self) -> int:
        return len(self.members)

    def to_dict(self) -> Dict[str, object]:
        steps = sorted({int(m.get("step", 0)) for m in self.members})
        queries = sorted({str(m.get("query", "")) for m in self.members})
        kinds = sorted({str(m.get("query_kind", "")) for m in self.members})
        ports = sorted(
            {str(hop) for m in self.members for hop in m.get("trace", ())}
        )
        return {
            "rank": self.rank,
            "size": self.size,
            "noise": self.noise,
            "steps": steps,
            "query_kinds": kinds,
            "queries": queries,
            "ports": ports,
            "representative": dict(self.representative),
            "fingerprints": sorted(
                {str(m.get("fingerprint", "")) for m in self.members}
            ),
        }


def _dbscan(
    distances: Dict[Tuple[int, int], float],
    count: int,
    eps: float,
    min_points: int,
) -> Tuple[Dict[int, int], List[int]]:
    """Deterministic density sweep over a precomputed distance matrix.

    Returns (point index -> cluster id, noise indices).  Points are visited
    in index order and neighbourhoods expand in index order, so the labels
    depend only on the inputs.
    """

    def neighbours(i: int) -> List[int]:
        out = []
        for j in range(count):
            if i == j:
                continue
            key = (i, j) if i < j else (j, i)
            if distances[key] <= eps:
                out.append(j)
        return out

    labels: Dict[int, int] = {}
    noise: List[int] = []
    next_cluster = 0
    for i in range(count):
        if i in labels:
            continue
        seed = neighbours(i)
        if len(seed) + 1 < min_points:
            noise.append(i)
            continue
        cluster = next_cluster
        next_cluster += 1
        labels[i] = cluster
        worklist = list(seed)
        while worklist:
            j = worklist.pop(0)
            if j in noise:
                noise.remove(j)  # border point adopted by the cluster
                labels[j] = cluster
                continue
            if j in labels:
                continue
            labels[j] = cluster
            reach = neighbours(j)
            if len(reach) + 1 >= min_points:
                worklist.extend(k for k in reach if k not in labels)
    return labels, noise


def _medoid(indices: Sequence[int], distances: Dict[Tuple[int, int], float]) -> int:
    """The member minimising total distance to the rest (ties: lowest
    index, i.e. lowest fingerprint in the pre-sorted point order)."""
    best = indices[0]
    best_cost = None
    for i in indices:
        cost = 0.0
        for j in indices:
            if i == j:
                continue
            key = (i, j) if i < j else (j, i)
            cost += distances[key]
        if best_cost is None or cost < best_cost:
            best, best_cost = i, cost
    return best


def cluster_violations(
    violations: Sequence[Mapping[str, object]],
    element_kinds: Optional[Mapping[str, str]] = None,
    *,
    eps: float = 0.5,
    min_points: int = 2,
    max_points: int = 512,
) -> List[ViolationCluster]:
    """Cluster violation records and rank a representative per cluster.

    Clusters are ranked by size (descending), then by their smallest
    member fingerprint — so the dominant root cause is rank 1 and the
    ordering is stable across runs.  DBSCAN noise points become trailing
    singleton clusters (``noise: true``) rather than vanishing: a
    one-of-a-kind counterexample is a *finding*, not an outlier.

    ``max_points`` bounds the O(n²) distance matrix; beyond it the input
    is truncated *after* sorting (deterministically) and the truncation is
    visible as fewer fingerprints than violations in the report.
    """
    if not violations:
        return []
    # Deterministic point order: fingerprint, then step (the fingerprint
    # excludes the step on purpose — see violation_fingerprint).
    records = [dict(v) for v in violations]
    for record in records:
        record.setdefault("fingerprint", violation_fingerprint(record))
    records.sort(key=lambda r: (str(r["fingerprint"]), int(r.get("step", 0))))
    if len(records) > max_points:
        records = records[:max_points]
    # NOTE: the mutation test monkeypatches the module-global
    # ``trace_features``, so this must resolve it dynamically — do not
    # bind it to a local or import it into another namespace.
    feature_sets = [trace_features(r, element_kinds) for r in records]
    count = len(records)
    distances: Dict[Tuple[int, int], float] = {}
    for i in range(count):
        for j in range(i + 1, count):
            distances[(i, j)] = jaccard_distance(feature_sets[i], feature_sets[j])
    labels, noise = _dbscan(distances, count, eps, min_points)
    groups: Dict[int, List[int]] = {}
    for index, cluster in labels.items():
        groups.setdefault(cluster, []).append(index)
    raw: List[Tuple[List[int], bool]] = [
        (sorted(indices), False) for indices in groups.values()
    ]
    raw.extend(([index], True) for index in sorted(noise))
    raw.sort(key=lambda entry: (-len(entry[0]), str(records[entry[0][0]]["fingerprint"])))
    clusters = []
    for rank, (indices, is_noise) in enumerate(raw, start=1):
        representative = records[_medoid(indices, distances)]
        clusters.append(
            ViolationCluster(
                rank=rank,
                members=[records[i] for i in indices],
                representative=representative,
                noise=is_noise,
            )
        )
    return clusters
