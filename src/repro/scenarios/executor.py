"""Per-step delta-spliced re-verification of an update sequence.

:class:`ScenarioCampaign` compiles one query batch (:mod:`repro.api`) against
the step-0 snapshot, then walks the scenario: each step's directory edits are
applied, a fresh :class:`~repro.api.model.NetworkModel` is built over the
edited directory, and the *same* plan — rebound to the new model — executes
with the previous state's campaign as its delta baseline.  The baseline
chains: every step's result becomes the next step's ``--delta-from``
payload, so a K-step sequence costs one full campaign plus K splice-gated
re-verifications instead of K+1 full campaigns.

Invariant (asserted by the test suite, inherited from the delta layer):
each step's query answers are bit-identical to a scratch campaign over that
snapshot — delta, symmetry, the store and worker count change which tier
answers, never the answer.  Anything the manifest diff cannot prove
untouched (a topology edit, say) falls back to a full re-execution.

Violations are recorded per step with full traces (loop port traces,
invariant violation cells, unreachable sources) and handed to
:mod:`repro.scenarios.reduce` for clustering.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.model import NetworkModel
from repro.api.planner import Plan, compile_plan, execute_plan
from repro.obs import get_tracer
from repro.api.queries import ForAllPairs, Invariant, Loop, Query, Reach
from repro.scenarios import reduce as reduce_mod
from repro.scenarios.generator import Scenario, UpdateStep, read_directory_state, state_digest


def default_scenario_queries() -> List[Query]:
    """The fixed query batch a scenario replays per step: the all-pairs
    reachability matrix, network-wide loop freedom and source-IP
    invariance — the three answers whose transient regressions the
    generator's update kinds can cause."""
    return [ForAllPairs(Reach), Loop(), Invariant("IpSrc")]


@dataclass
class StepOutcome:
    """One verified state: step 0 is the pre-update baseline."""

    index: int
    kind: str
    description: str
    fingerprints: Tuple[str, ...]
    holds: Tuple[Optional[bool], ...]
    violations: List[Dict[str, object]]
    stats: Dict[str, object]
    delta: Dict[str, object]
    plan_cache_hit: bool
    wall_seconds: float
    engine_runs: int

    @property
    def executed_jobs(self) -> int:
        """Injection jobs this state actually executed (total minus
        delta-spliced minus symmetry-instantiated)."""
        return int(
            self.stats.get("jobs", 0)
            - self.stats.get("jobs_spliced_by_delta", 0)
            - self.stats.get("jobs_skipped_by_symmetry", 0)
        )

    @property
    def spliced_jobs(self) -> int:
        return int(self.stats.get("jobs_spliced_by_delta", 0))

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "kind": self.kind,
            "description": self.description,
            "fingerprints": list(self.fingerprints),
            "holds": list(self.holds),
            "violations": len(self.violations),
            "executed_jobs": self.executed_jobs,
            "spliced_jobs": self.spliced_jobs,
            "engine_runs": self.engine_runs,
            "plan_cache_hit": self.plan_cache_hit,
            "wall_seconds": round(self.wall_seconds, 6),
            "delta": dict(self.delta),
            "stats": dict(self.stats),
        }


@dataclass
class ScenarioRun:
    """The executed scenario: per-step outcomes plus the clustered
    violations, serialised through the existing stats plumbing."""

    scenario: Scenario
    outcomes: List[StepOutcome]
    clusters: List["reduce_mod.ViolationCluster"]
    workers: int
    delta: bool

    @property
    def violations(self) -> List[Dict[str, object]]:
        return [v for outcome in self.outcomes for v in outcome.violations]

    @property
    def steps_delta_spliced(self) -> int:
        """Transient states (step >= 1) where delta splicing answered at
        least one injection port without executing it."""
        return sum(
            1 for o in self.outcomes if o.index > 0 and o.spliced_jobs > 0
        )

    def fingerprint(self) -> str:
        payload = (
            self.scenario.fingerprint(),
            tuple(outcome.fingerprints for outcome in self.outcomes),
        )
        return hashlib.sha256(repr(payload).encode()).hexdigest()

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario.to_dict(),
            "scenario_steps": len(self.scenario.steps),
            "steps_delta_spliced": self.steps_delta_spliced,
            "violations_total": len(self.violations),
            "clusters": [cluster.to_dict() for cluster in self.clusters],
            "steps": [outcome.to_dict() for outcome in self.outcomes],
            "workers": self.workers,
            "delta": self.delta,
            "fingerprint": self.fingerprint(),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


# ---------------------------------------------------------------------------
# Violation extraction
# ---------------------------------------------------------------------------


def _violating_traces(result_dict: Dict[str, object]) -> List[Dict[str, object]]:
    """Pull the concrete evidence out of one failed query answer.  Works on
    the serialised form (``QueryResult.to_dict()``), so fresh and
    plan-cache-restored answers yield identical violation records."""
    kind = str(result_dict.get("kind", ""))
    value = result_dict.get("value")
    evidence = result_dict.get("evidence") or {}
    out: List[Dict[str, object]] = []
    if kind in ("all", "any", "not") and isinstance(value, list):
        for child in value:
            if isinstance(child, dict) and child.get("holds") is False:
                out.extend(_violating_traces(child))
        return out
    if kind == "loop" and isinstance(value, dict):
        for finding in value.get("findings", ()):
            out.append(
                {
                    "source": finding.get("source", ""),
                    "trace": list(finding.get("trace", ())),
                    "reason": finding.get("reason", ""),
                    "detected_at": finding.get("detected_at", ""),
                }
            )
        return out
    if kind == "invariant":
        for cell in evidence.get("violations", ()):
            if isinstance(cell, dict):
                out.append(
                    {
                        "source": cell.get("source", ""),
                        "trace": [cell.get("source", "")],
                        "reason": f"field {cell.get('field', '?')} not preserved",
                        "detail": {
                            k: v for k, v in cell.items() if k not in ("source",)
                        },
                    }
                )
        return out
    # Default (reach and any other decidable leaf): the source itself is the
    # evidence — there is no path to trace.
    query = str(result_dict.get("query", ""))
    out.append({"source": query, "trace": [], "reason": f"{kind} does not hold"})
    return out


def violations_for_step(
    index: int, step: Optional[UpdateStep], results: Sequence[object]
) -> List[Dict[str, object]]:
    """Every violation one verified state produced, as flat JSON-able
    records the reducer clusters."""
    violations: List[Dict[str, object]] = []
    for result in results:
        result_dict = result.to_dict() if hasattr(result, "to_dict") else dict(result)
        if result_dict.get("holds") is not False:
            continue
        for trace in _violating_traces(result_dict):
            record = {
                "step": index,
                "step_kind": step.kind if step is not None else "baseline",
                "query": result_dict.get("query", ""),
                "query_kind": result_dict.get("kind", ""),
                **trace,
            }
            record["fingerprint"] = reduce_mod.violation_fingerprint(record)
            violations.append(record)
    return violations


# ---------------------------------------------------------------------------
# The campaign
# ---------------------------------------------------------------------------


class ScenarioCampaign:
    """Walk an update sequence, re-verifying each transient state.

    ``delta`` toggles the chained-baseline splicing (off = every state runs
    from scratch — the comparison baseline the tests hold the delta path
    to).  ``store`` optionally adds the persistent tiers; answers are
    bit-identical with or without it.
    """

    def __init__(
        self,
        directory: str,
        scenario: Scenario,
        *,
        queries: Optional[Sequence[Query]] = None,
        workers: int = 1,
        store: Optional[object] = None,
        cache_shards: Optional[int] = None,
        delta: bool = True,
        symmetry: bool = True,
        shared_cache: bool = True,
        packet: str = "tcp",
        cluster_eps: float = 0.5,
        cluster_min_points: int = 2,
    ) -> None:
        self.directory = directory
        self.scenario = scenario
        self.queries = list(queries) if queries else default_scenario_queries()
        self.workers = workers
        self.store = store
        self.cache_shards = cache_shards
        self.delta = delta
        self.symmetry = symmetry
        self.shared_cache = shared_cache
        self.packet = packet
        self.cluster_eps = cluster_eps
        self.cluster_min_points = cluster_min_points

    def _check_base(self) -> None:
        if not self.scenario.base_digest:
            return
        digest = state_digest(read_directory_state(self.directory))
        if digest != self.scenario.base_digest:
            raise ValueError(
                "scenario was generated against a different directory state "
                f"(expected {self.scenario.base_digest[:16]}, "
                f"found {digest[:16]}); re-export the workload or regenerate"
            )

    def _apply(self, step: UpdateStep) -> None:
        for name, text in step.writes:
            path = os.path.join(self.directory, name)
            with open(path, "w", encoding="utf-8", newline="\n") as handle:
                handle.write(text)

    def _execute_state(
        self,
        plan: Plan,
        index: int,
        step: Optional[UpdateStep],
        baseline: Optional[Dict[str, object]],
    ) -> Tuple[StepOutcome, Optional[Dict[str, object]]]:
        from repro.core.campaign import execution_counters

        runs_before = execution_counters()["engine_runs"]
        started = time.perf_counter()
        with get_tracer().span(
            "scenario.state",
            state=index,
            edit=step.description if step is not None else "",
        ):
            result = execute_plan(
                plan,
                workers=self.workers,
                store=self.store,
                cache_shards=self.cache_shards,
                baseline=baseline if (self.delta and index > 0) else None,
                delta=self.delta,
            )
        wall = time.perf_counter() - started
        engine_runs = execution_counters()["engine_runs"] - runs_before
        if result.job_errors:
            details = "; ".join(
                f"{key}: {error}" for key, error in result.job_errors
            )
            raise RuntimeError(f"state {index} had job errors: {details}")
        stats = result.stats.to_dict() if result.stats is not None else {}
        delta_info: Dict[str, object] = {}
        if result.campaign is not None:
            delta_info = dict(result.campaign.delta_info)
        outcome = StepOutcome(
            index=index,
            kind=step.kind if step is not None else "baseline",
            description=step.description if step is not None else "initial snapshot",
            fingerprints=tuple(r.fingerprint for r in result.results),
            holds=tuple(r.holds for r in result.results),
            violations=violations_for_step(index, step, result.results),
            stats=stats,
            delta=delta_info,
            plan_cache_hit=result.from_cache,
            wall_seconds=wall,
            engine_runs=engine_runs,
        )
        next_baseline = baseline
        if result.campaign is not None and result.campaign.baseline_payload:
            next_baseline = result.campaign.baseline_payload
        return outcome, next_baseline

    def run(self) -> ScenarioRun:
        """Verify the initial snapshot and every transient state, then
        cluster whatever violated."""
        self._check_base()
        model = NetworkModel.from_directory(self.directory)
        plan = compile_plan(
            model,
            self.queries,
            packet=self.packet,
            shared_cache=self.shared_cache,
            symmetry=self.symmetry,
        )
        element_kinds = {
            element.name: element.kind for element in model.network()
        }
        outcomes: List[StepOutcome] = []
        baseline: Optional[Dict[str, object]] = None
        outcome, baseline = self._execute_state(plan, 0, None, baseline)
        outcomes.append(outcome)
        for step in self.scenario.steps:
            self._apply(step)
            step_model = NetworkModel.from_directory(self.directory)
            step_plan = replace(plan, model=step_model)
            outcome, baseline = self._execute_state(
                step_plan, step.index, step, baseline
            )
            outcomes.append(outcome)
        violations = [v for o in outcomes for v in o.violations]
        clusters = reduce_mod.cluster_violations(
            violations,
            element_kinds=element_kinds,
            eps=self.cluster_eps,
            min_points=self.cluster_min_points,
        )
        return ScenarioRun(
            scenario=self.scenario,
            outcomes=outcomes,
            clusters=clusters,
            workers=self.workers,
            delta=self.delta,
        )
