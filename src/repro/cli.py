"""Command-line interface.

The paper's workflow (§7.1): "All the user has to do is place all these
files in a single directory, together with a file describing the links
between the boxes.  Then, the user can run SymNet by specifying an input
port to start the reachability and loop detection analysis.  The output of
the tool is the list of explored paths in json format."

Usage::

    python -m repro.cli query NETWORK_DIR "forall_pairs(reach)" "loop()"
    python -m repro.cli query --workload department "invariant(IpSrc)" [--workers N]
    python -m repro.cli reachability NETWORK_DIR ELEMENT PORT [options]
    python -m repro.cli campaign NETWORK_DIR [--workers N] [--store-dir DIR]
    python -m repro.cli campaign --workload department [--workers N]
    python -m repro.cli scenario --workload stanford --steps 8 --seed 3 [--workers N]
    python -m repro.cli store inspect|compact|clear-plans STORE_DIR
    python -m repro.cli show NETWORK_DIR

``NETWORK_DIR`` must contain ``topology.txt`` plus the per-device snapshot
files it references (see :mod:`repro.parsers.topology_file` for the format).
The injected packet is a fully symbolic TCP packet unless ``--packet`` picks
another template, and individual header fields can be pinned with
``--field NAME=VALUE`` (IP addresses and MAC addresses are accepted in their
usual textual forms).

``query`` is the declarative front door: a batch of textual queries (see
:mod:`repro.api.text` for the grammar) is compiled onto one shared campaign
plan — queries over the same injection port share one symbolic execution —
and each query's answer is demultiplexed from the shared run.

``campaign`` runs the raw network-wide workflow: one symbolic execution per
injection port (every free input port unless ``--inject`` narrows it),
optionally on a process pool, aggregated into a reachability matrix, a loop
report and invariant checks.  ``--workload`` swaps the directory for one of
the built-in synthetic workloads (department / enterprise / stanford).

``--store-dir DIR`` (on ``query`` and ``campaign``) makes runs persistent:
solver verdicts warm-start from — and publish back to — the disk shards of
a :class:`repro.store.VerificationStore` at ``DIR``, and a repeated
identical ``query`` batch over an unchanged network is answered from the
store's plan-result cache without running any engine job.  ``store``
inspects, compacts or invalidates such a directory.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import warnings
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api import NetworkModel, QueryParseError, parse_query
from repro.core.campaign import (
    CAMPAIGN_QUERIES,
    DEFAULT_INVARIANT_FIELDS,
    PACKET_TEMPLATES,
)
from repro.core.engine import ExecutionSettings, SymbolicExecutor
from repro.core.strategy import STRATEGIES
from repro.obs import (
    Tracer,
    configure_logging,
    get_logger,
    set_tracer,
    write_trace,
)
from repro.sefl.fields import HeaderField, standard_fields
from repro.sefl.util import ip_to_number, mac_to_number
from repro.workloads import CAMPAIGN_WORKLOADS
from repro.workloads.export import EXPORTERS

_LOG = get_logger("repro.cli")


def _parse_field_value(field: HeaderField, text: str) -> int:
    """Interpret a field override: integers, hex, dotted IPs or MACs."""
    text = text.strip()
    if text.lower().startswith("0x"):
        return int(text, 16)
    if ":" in text or (text.count(".") == 3 and field.width == 48):
        return mac_to_number(text)
    if text.count(".") == 3:
        return ip_to_number(text)
    return int(text)


def _parse_overrides(pairs: Sequence[str]) -> Dict[HeaderField, int]:
    fields = standard_fields()
    overrides: Dict[HeaderField, int] = {}
    for pair in pairs:
        name, _, raw = pair.partition("=")
        if not raw:
            raise SystemExit(f"--field expects NAME=VALUE, got {pair!r}")
        if name not in fields:
            known = ", ".join(sorted(fields))
            raise SystemExit(f"unknown field {name!r}; known fields: {known}")
        field = fields[name]
        overrides[field] = _parse_field_value(field, raw)
    return overrides


def _warn_validation_problems(model: NetworkModel) -> List[str]:
    """Surface Network.validate() findings (dangling links etc.) on stderr
    before execution starts; the analysis still runs.

    Validation lives on the NetworkModel, which computes it exactly once —
    every command and every campaign spawned from the model sees the same
    findings without re-validating."""
    problems = model.validate()
    for problem in problems:
        _LOG.warning("%s", problem)
    return problems


def _model_from_args(args: argparse.Namespace) -> NetworkModel:
    """The one construction site for NetworkModels: a directory or a
    registered workload (with ``--workload-option`` overrides)."""
    if bool(args.directory) == bool(args.workload):
        raise SystemExit(
            f"{args.command} needs a network directory or --workload (not both)"
        )
    if args.workload:
        options = dict(_parse_workload_option(pair) for pair in args.workload_option)
        return NetworkModel.from_workload(args.workload, **options)
    return NetworkModel.from_directory(args.directory)


def _parse_workload_option(pair: str) -> Tuple[str, object]:
    key, _, raw = pair.partition("=")
    if not raw:
        raise SystemExit(f"--workload-option expects KEY=VALUE, got {pair!r}")
    value: object
    if raw.lower() in ("true", "false"):
        value = raw.lower() == "true"
    else:
        try:
            value = int(raw)
        except ValueError:
            value = raw
    return key, value


def _parse_injection(text: str) -> Tuple[str, str]:
    element, sep, port = text.partition(":")
    if not sep or not element or not port:
        raise SystemExit(f"--inject expects ELEMENT:PORT, got {text!r}")
    return element, port


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="symnet", description="SymNet reproduction command-line tool"
    )
    # Diagnostics flags shared by every subcommand (parents=, so each
    # subparser both accepts and documents them).
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--log-level", choices=("debug", "info", "warning", "error"),
        default=None,
        help="diagnostics verbosity on stderr (default: info)",
    )
    common.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="shortcut for --log-level debug, with timestamps",
    )
    traced = argparse.ArgumentParser(add_help=False)
    traced.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="record hierarchical spans (session, plan compile, campaign, "
        "engine jobs — including pool workers — solver checks, store "
        "publishes) and write them to FILE on exit: Chrome trace-event "
        "JSON loadable in Perfetto, or JSONL when FILE ends in .jsonl",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    show = sub.add_parser(
        "show", parents=[common],
        help="list the elements, ports and links of a network directory",
    )
    show.add_argument("directory")

    reach = sub.add_parser(
        "reachability", parents=[common],
        help="inject a symbolic packet and dump the explored paths as JSON",
    )
    reach.add_argument("directory")
    reach.add_argument("element", help="element whose input port receives the packet")
    reach.add_argument("port", nargs="?", default="in0", help="input port (default in0)")
    reach.add_argument(
        "--packet", choices=sorted(PACKET_TEMPLATES), default="tcp",
        help="packet template to inject (default: tcp)",
    )
    reach.add_argument(
        "--field", action="append", default=[], metavar="NAME=VALUE",
        help="pin a header field to a concrete value (repeatable)",
    )
    defaults = ExecutionSettings()
    reach.add_argument("--max-hops", type=int, default=defaults.max_hops)
    reach.add_argument(
        "--max-paths", type=int, default=defaults.max_paths,
        help="stop exploring after this many recorded paths (the report is "
        "marked as truncated when the budget cuts exploration short)",
    )
    reach.add_argument(
        "--strategy", choices=sorted(STRATEGIES), default=defaults.strategy,
        help=f"worklist exploration strategy (default: {defaults.strategy})",
    )
    reach.add_argument(
        "--no-incremental", action="store_true",
        help="disable the incremental solver and re-solve every path "
        "conjunction from scratch (for debugging/benchmarking)",
    )
    reach.add_argument(
        "--no-failed-paths", action="store_true",
        help="omit failed/filtered paths from the output",
    )
    reach.add_argument(
        "--output", "-o", default=None, help="write the JSON report to a file"
    )

    query = sub.add_parser(
        "query", parents=[common, traced],
        help="declarative network queries compiled onto one shared campaign "
        "plan (queries over the same injection port share one execution)",
    )
    query.add_argument(
        "directory", nargs="?", default=None,
        help="network directory (omit when using --workload)",
    )
    query.add_argument(
        "queries", nargs="+", metavar="QUERY",
        help='textual queries, e.g. "forall_pairs(reach)", "loop()", '
        '"invariant(IpSrc)", "reach(sw0:in0, r1:to-internet)", '
        '"header_visible(IpSrc, at=r1:out0)", "admitted_values(TcpDst, samples=3)"',
    )
    query.add_argument(
        "--workload", choices=sorted(CAMPAIGN_WORKLOADS),
        help="analyze a registered synthetic workload instead of a directory",
    )
    query.add_argument(
        "--workload-option", action="append", default=[], metavar="KEY=VALUE",
        help="builder option for --workload, e.g. access_switches=4 (repeatable)",
    )
    query.add_argument(
        "--workers", type=int, default=1,
        help="run the plan's jobs on a process pool of this size",
    )
    query.add_argument(
        "--packet", choices=sorted(PACKET_TEMPLATES), default="tcp",
        help="packet template to inject (default: tcp)",
    )
    query.add_argument(
        "--field", action="append", default=[], metavar="NAME=VALUE",
        help="pin a header field to a concrete value (repeatable)",
    )
    query.add_argument("--max-hops", type=int, default=defaults.max_hops)
    query.add_argument("--max-paths", type=int, default=defaults.max_paths)
    query.add_argument(
        "--strategy", choices=sorted(STRATEGIES), default=defaults.strategy,
    )
    query.add_argument(
        "--no-incremental", action="store_true",
        help="disable the incremental solver in every job",
    )
    query.add_argument(
        "--shared-cache", action=argparse.BooleanOptionalAction, default=True,
        help="share the canonical verdict cache across the plan's jobs",
    )
    query.add_argument(
        "--symmetry", action=argparse.BooleanOptionalAction, default=True,
        help="execute one engine job per renaming-equivalence class of the "
        "plan's injection ports and instantiate the rest (default: enabled; "
        "answers are bit-identical either way)",
    )
    query.add_argument(
        "--delta", action=argparse.BooleanOptionalAction, default=True,
        help="when the store holds a recorded baseline for this directory, "
        "re-execute only the injection ports the directory diff could have "
        "touched and splice the rest from the baseline (default: enabled; "
        "answers are bit-identical either way)",
    )
    _add_store_options(query)
    query.add_argument(
        "--output", "-o", default=None, help="write the JSON report to a file"
    )

    camp = sub.add_parser(
        "campaign", parents=[common, traced],
        help="network-wide verification: run one symbolic execution per "
        "injection port (optionally in parallel) and aggregate the results",
    )
    camp.add_argument(
        "directory", nargs="?", default=None,
        help="network directory (omit when using --workload)",
    )
    camp.add_argument(
        "--workload", choices=sorted(CAMPAIGN_WORKLOADS),
        help="analyze a registered synthetic workload instead of a directory",
    )
    camp.add_argument(
        "--workload-option", action="append", default=[], metavar="KEY=VALUE",
        help="builder option for --workload, e.g. access_switches=4 (repeatable)",
    )
    camp.add_argument(
        "--inject", action="append", default=[], metavar="ELEMENT:PORT",
        help="injection point (repeatable; default: the workload's registered "
        "entry points, or every input port with no incoming link)",
    )
    camp.add_argument(
        "--workers", type=int, default=1,
        help="run jobs on a process pool of this size (default: in-process)",
    )
    camp.add_argument(
        "--query", action="append", default=[], dest="queries",
        choices=sorted(CAMPAIGN_QUERIES) + ["all"],
        help="[deprecated: use the 'query' subcommand] query to aggregate "
        "(repeatable; default: all)",
    )
    camp.add_argument(
        "--packet", choices=sorted(PACKET_TEMPLATES), default="tcp",
        help="packet template to inject (default: tcp)",
    )
    camp.add_argument(
        "--field", action="append", default=[], metavar="NAME=VALUE",
        help="pin a header field to a concrete value (repeatable)",
    )
    camp.add_argument(
        "--invariant-field", action="append", default=[], metavar="NAME",
        help="header field checked by the invariants query (repeatable; "
        f"default: {', '.join(DEFAULT_INVARIANT_FIELDS)})",
    )
    camp.add_argument("--max-hops", type=int, default=defaults.max_hops)
    camp.add_argument("--max-paths", type=int, default=defaults.max_paths)
    camp.add_argument(
        "--strategy", choices=sorted(STRATEGIES), default=defaults.strategy,
    )
    camp.add_argument(
        "--no-incremental", action="store_true",
        help="disable the incremental solver in every job",
    )
    camp.add_argument(
        "--shared-cache", action=argparse.BooleanOptionalAction, default=True,
        help="share the canonical verdict cache across jobs (per-worker "
        "persistent cache, plus a sharded process-shared tier when "
        "--workers > 1); --no-shared-cache isolates every job "
        "(default: enabled)",
    )
    camp.add_argument(
        "--symmetry", action=argparse.BooleanOptionalAction, default=True,
        help="execute one engine job per renaming-equivalence class of "
        "injection ports and instantiate the remaining reports via the "
        "recorded renaming (default: enabled; answers are bit-identical "
        "either way)",
    )
    camp.add_argument(
        "--symmetry-audit", action="store_true",
        help="additionally re-execute one random non-representative job per "
        "symmetry class and fail unless its directly computed report is "
        "bit-identical to the instantiated one (soundness self-check)",
    )
    camp.add_argument(
        "--symmetry-audit-seed", type=int, default=None, metavar="N",
        help="seed for the audit's member choice (default: 0; only "
        "meaningful together with --symmetry-audit)",
    )
    camp.add_argument(
        "--delta", action=argparse.BooleanOptionalAction, default=True,
        help="when a baseline is available (--delta-from, or recorded in "
        "the store), re-execute only the injection ports the directory "
        "diff could have touched and splice the rest from the baseline "
        "(default: enabled; answers are bit-identical either way)",
    )
    camp.add_argument(
        "--delta-from", default=None, metavar="FILE",
        help="use FILE (written by a previous --save-baseline) as the "
        "delta baseline instead of the store's recorded one",
    )
    camp.add_argument(
        "--save-baseline", default=None, metavar="FILE",
        help="after the run, write this campaign's delta baseline "
        "(element manifest + per-port reports) to FILE",
    )
    _add_store_options(camp)
    camp.add_argument(
        "--output", "-o", default=None, help="write the JSON report to a file"
    )

    serve = sub.add_parser(
        "serve", parents=[common, traced],
        help="run the resident verification service: a line-delimited JSON "
        "session server that keeps models, the worker pool and the store "
        "hot across requests, merges compatible concurrent query batches "
        "into one shared plan, and streams each answer as soon as its own "
        "engine jobs have reported",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port; 0 (the default) binds an ephemeral port — read the "
        "actual one from the printed JSON ready line",
    )
    serve.add_argument(
        "--workers", type=int, default=1,
        help="persistent process-pool size shared by every request "
        "(default: 1, in-process)",
    )
    serve.add_argument(
        "--max-pending", type=int, default=8, metavar="N",
        help="admission control: refuse (with an explicit 'overloaded' "
        "response) when N requests are already queued (default: 8)",
    )
    serve.add_argument(
        "--batch-window", type=float, default=0.05, metavar="SECONDS",
        help="how long the scheduler keeps collecting concurrent requests "
        "into one merged plan after the first arrives (default: 0.05)",
    )
    _add_store_options(serve)

    scen = sub.add_parser(
        "scenario", parents=[common, traced],
        help="transient-state scenario campaign: generate a seed-pinned "
        "update sequence over an exported (or given) snapshot directory, "
        "re-verify every transient state with delta splicing, and cluster "
        "the violating traces into ranked root causes",
    )
    scen.add_argument(
        "directory", nargs="?", default=None,
        help="existing snapshot directory to run the scenario over "
        "(omit when using --workload)",
    )
    scen.add_argument(
        "--workload", choices=sorted(EXPORTERS),
        help="export this workload into a scratch directory (see --dir) "
        "and run the scenario over the export",
    )
    scen.add_argument(
        "--workload-option", action="append", default=[], metavar="KEY=VALUE",
        help="exporter option for --workload, e.g. zones=4 edge_asa=true "
        "(repeatable)",
    )
    scen.add_argument(
        "--dir", default=None, metavar="DIR", dest="export_dir",
        help="directory to export --workload into (default: a fresh "
        "temporary directory)",
    )
    scen.add_argument(
        "--steps", type=int, default=8,
        help="number of update steps to generate (default: 8)",
    )
    scen.add_argument(
        "--seed", type=int, default=0,
        help="generator seed; same seed + same directory bytes = same "
        "scenario (default: 0)",
    )
    scen.add_argument(
        "--no-violation", action="store_true",
        help="generate pure churn without the seeded transient "
        "forwarding-loop violation",
    )
    scen.add_argument(
        "--workers", type=int, default=1,
        help="run each state's jobs on a process pool of this size",
    )
    scen.add_argument(
        "--query", action="append", default=[], dest="queries", metavar="QUERY",
        help="textual query replacing the default per-step batch "
        '(default: "forall_pairs(reach)" "loop()" "invariant(IpSrc)"; '
        "repeatable)",
    )
    scen.add_argument(
        "--packet", choices=sorted(PACKET_TEMPLATES), default="tcp",
        help="packet template to inject (default: tcp)",
    )
    scen.add_argument(
        "--delta", action=argparse.BooleanOptionalAction, default=True,
        help="chain each state's campaign as the next state's baseline and "
        "re-execute only the ports the step's edit could have touched "
        "(default: enabled; answers are bit-identical either way)",
    )
    scen.add_argument(
        "--symmetry", action=argparse.BooleanOptionalAction, default=True,
        help="collapse renaming-equivalent injection ports per state "
        "(default: enabled; answers are bit-identical either way)",
    )
    scen.add_argument(
        "--shared-cache", action=argparse.BooleanOptionalAction, default=True,
        help="share the canonical verdict cache across each state's jobs",
    )
    scen.add_argument(
        "--eps", type=float, default=0.5,
        help="clustering: maximum Jaccard distance between neighbouring "
        "violation feature sets (default: 0.5)",
    )
    scen.add_argument(
        "--min-points", type=int, default=2,
        help="clustering: neighbourhood size that forms a dense cluster; "
        "sparser violations become noise singletons (default: 2)",
    )
    _add_store_options(scen)
    scen.add_argument(
        "--output", "-o", default=None, help="write the JSON report to a file"
    )

    store = sub.add_parser(
        "store", parents=[common],
        help="inspect or maintain a persistent verification store directory "
        "(the --store-dir of previous runs)",
    )
    store.add_argument(
        "action", choices=("inspect", "compact", "clear-plans"),
        help="inspect: summarize shards/segments/plans as JSON; compact: "
        "fold each shard's segments into one; clear-plans: drop cached "
        "plan results (the explicit invalidation path when a network "
        "source changed in ways the model fingerprint cannot see)",
    )
    store.add_argument("store_dir", help="store directory")
    store.add_argument(
        "--model", default=None, metavar="FINGERPRINT",
        help="clear-plans: only drop plans of this model fingerprint",
    )
    return parser


def _add_store_options(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--store-dir", default=None, metavar="DIR",
        help="persist solver verdicts (and, for 'query', finished plan "
        "results) in a verification store at DIR: runs warm-start from the "
        "store's disk shards and publish fresh verdicts back",
    )
    command.add_argument(
        "--cache-shards", type=_shard_count, default=None, metavar="N",
        help="shard the process-shared verdict tier (and a newly created "
        "store) across N partitions (default: 8)",
    )


def _shard_count(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError("shard count must be >= 1")
    return value


def _open_store(args: argparse.Namespace):
    """The --store-dir flag as a VerificationStore (None when unset)."""
    if not getattr(args, "store_dir", None):
        return None
    from repro.store import DEFAULT_SHARD_COUNT, StoreError, VerificationStore

    shards = args.cache_shards or DEFAULT_SHARD_COUNT
    try:
        return VerificationStore(args.store_dir, shards=shards)
    except (StoreError, ValueError) as exc:
        raise SystemExit(f"unusable store {args.store_dir}: {exc}")


def _command_show(directory: str) -> int:
    network = NetworkModel.from_directory(directory).network()
    print(f"network: {network.name}")
    print(f"elements: {len(network)}")
    for element in network:
        print(
            f"  {element.name} ({element.kind}) "
            f"in={element.input_ports} out={element.output_ports}"
        )
    print(f"links: {len(network.links)}")
    for link in network.links:
        print(f"  {link}")
    problems = network.validate()
    if problems:
        print("problems:")
        for problem in problems:
            print(f"  ! {problem}")
        return 1
    return 0


def _command_reachability(args: argparse.Namespace) -> int:
    model = NetworkModel.from_directory(args.directory)
    network = model.network()
    _warn_validation_problems(model)
    overrides = _parse_overrides(args.field)
    packet_program = PACKET_TEMPLATES[args.packet](overrides or None)
    settings = ExecutionSettings(
        max_hops=args.max_hops,
        max_paths=args.max_paths,
        record_failed_paths=not args.no_failed_paths,
        strategy=args.strategy,
        use_incremental_solver=not args.no_incremental,
    )
    executor = SymbolicExecutor(network, settings=settings)
    result = executor.inject(packet_program, args.element, args.port)
    report = result.to_json()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        counts = ", ".join(f"{k}={v}" for k, v in sorted(result.summary_counts().items()))
        suffix = " [truncated]" if result.truncated else ""
        print(f"wrote {len(result.paths)} paths to {args.output} ({counts}){suffix}")
    else:
        print(report)
    if result.truncated:
        _LOG.warning(
            "exploration truncated at --max-paths=%d; pending states were "
            "discarded", args.max_paths,
        )
    return 0


def _command_campaign(args: argparse.Namespace) -> int:
    model = _model_from_args(args)

    queries = tuple(args.queries) if args.queries else CAMPAIGN_QUERIES
    if args.queries:
        warnings.warn(
            "the campaign --query flag is deprecated; use the declarative "
            "'query' subcommand (e.g. \"forall_pairs(reach)\", \"loop()\", "
            "\"invariant(IpSrc)\"), which compiles query batches onto one "
            "shared plan",
            DeprecationWarning,
            stacklevel=2,
        )
        _LOG.warning("--query is deprecated; use the 'query' subcommand")
    if "all" in queries:
        queries = CAMPAIGN_QUERIES
    if args.symmetry_audit_seed is not None and not args.symmetry_audit:
        _LOG.warning(
            "--symmetry-audit-seed has no effect without --symmetry-audit"
        )
    baseline = None
    if args.delta_from:
        try:
            with open(args.delta_from, "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"unusable baseline {args.delta_from}: {exc}")
    overrides = _parse_overrides(args.field)
    # The model validated exactly once; the campaign inherits those findings.
    campaign_kwargs = dict(
        packet=args.packet,
        field_values={field.name: value for field, value in overrides.items()},
        queries=queries,
        invariant_fields=tuple(args.invariant_field) or DEFAULT_INVARIANT_FIELDS,
        max_hops=args.max_hops,
        max_paths=args.max_paths,
        strategy=args.strategy,
        use_incremental_solver=not args.no_incremental,
        shared_cache=args.shared_cache,
        symmetry=args.symmetry,
        symmetry_audit=args.symmetry_audit,
        symmetry_audit_seed=args.symmetry_audit_seed or 0,
        delta=args.delta,
        baseline=baseline,
        store=_open_store(args),
    )
    if args.cache_shards:
        campaign_kwargs["cache_shards"] = args.cache_shards
    campaign = model.campaign(**campaign_kwargs)
    _warn_validation_problems(model)
    if args.inject:
        campaign.add_injections(_parse_injection(text) for text in args.inject)

    result = campaign.run(workers=args.workers)
    if result.stats.jobs_spliced_by_delta:
        _LOG.info(
            "delta verification spliced %d of %d ports from the recorded "
            "baseline (%d executed)",
            result.stats.jobs_spliced_by_delta,
            result.stats.jobs,
            result.delta_info.get("executed", 0),
        )
    if args.save_baseline:
        if result.baseline_payload is None:
            _LOG.warning(
                "--save-baseline needs a snapshot-directory network; "
                "no baseline written"
            )
        else:
            with open(args.save_baseline, "w", encoding="utf-8") as handle:
                json.dump(result.baseline_payload, handle, indent=2)
                handle.write("\n")
            _LOG.info(
                "wrote delta baseline to %s (%d ports)",
                args.save_baseline,
                len(result.baseline_payload["reports"]),
            )
    report = result.to_json()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        pairs = (
            f"{result.reachability.pair_count()} reachable pairs, "
            if "reachability" in result.queries
            else ""
        )
        print(
            f"wrote campaign report to {args.output} "
            f"({result.stats.jobs} jobs, {result.stats.paths} paths, "
            f"{pairs}{result.execution_mode})"
        )
    else:
        print(report)
    for source_key, error in result.job_errors:
        _LOG.error("job %s failed: %s", source_key, error)
    return 1 if result.job_errors else 0


def _command_query(args: argparse.Namespace) -> int:
    # Re-split the positionals ourselves: argparse's chunking cannot tell
    # the directory from the first query (and splits the list when options
    # are interleaved, see main()), but the distinction is trivial here —
    # without --workload the first positional is the directory, with it
    # every positional is a query.
    positionals = (
        [args.directory] if args.directory is not None else []
    ) + args.queries
    if args.workload:
        if positionals and os.path.isdir(positionals[0]):
            raise SystemExit(
                "query needs a network directory or --workload (not both)"
            )
        args.directory, args.queries = None, positionals
    else:
        if not positionals:
            raise SystemExit("query needs a network directory or --workload")
        args.directory, args.queries = positionals[0], positionals[1:]
    if not args.queries:
        raise SystemExit("query needs at least one QUERY argument")
    # Parse the queries before touching the network: a typo'd query must
    # fail instantly, not after a multi-second snapshot build.
    try:
        queries = [parse_query(text) for text in args.queries]
    except QueryParseError as exc:
        raise SystemExit(f"bad query: {exc}")
    overrides = _parse_overrides(args.field)
    model = _model_from_args(args)
    _warn_validation_problems(model)
    result = model.query(
        *queries,
        workers=args.workers,
        store=_open_store(args),
        cache_shards=args.cache_shards,
        packet=args.packet,
        field_values={field.name: value for field, value in overrides.items()},
        max_hops=args.max_hops,
        max_paths=args.max_paths,
        strategy=args.strategy,
        use_incremental_solver=not args.no_incremental,
        shared_cache=args.shared_cache,
        symmetry=args.symmetry,
        delta=args.delta,
    )
    if result.from_cache:
        _LOG.info(
            "answered from the store's plan-result cache (0 engine jobs)"
        )
    report = result.to_json()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        verdicts = ", ".join(
            f"{answer.query}={'?' if answer.holds is None else answer.holds}"
            for answer in result
        )
        print(
            f"wrote query report to {args.output} "
            f"({result.plan.job_count} jobs shared by {len(result)} queries: "
            f"{verdicts})"
        )
    else:
        print(report)
    for source_key, error in result.job_errors:
        _LOG.error("job %s failed: %s", source_key, error)
    return 1 if result.job_errors else 0


def _command_scenario(args: argparse.Namespace) -> int:
    from repro.scenarios import ScenarioCampaign, generate_scenario
    from repro.workloads.export import export_workload_directory

    if bool(args.directory) == bool(args.workload):
        raise SystemExit(
            "scenario needs a network directory or --workload (not both)"
        )
    if args.steps < 1:
        raise SystemExit("--steps must be >= 1")
    workload = args.workload or "directory"
    if args.workload:
        directory = args.export_dir
        if directory:
            os.makedirs(directory, exist_ok=True)
        else:
            import tempfile

            directory = tempfile.mkdtemp(prefix="symnet-scenario-")
        options = dict(_parse_workload_option(pair) for pair in args.workload_option)
        try:
            export_workload_directory(args.workload, directory, **options)
        except (TypeError, ValueError) as exc:
            raise SystemExit(f"cannot export workload {args.workload!r}: {exc}")
        _LOG.info("exported %s workload to %s", args.workload, directory)
    else:
        directory = args.directory

    queries = None
    if args.queries:
        try:
            queries = [parse_query(text) for text in args.queries]
        except QueryParseError as exc:
            raise SystemExit(f"bad query: {exc}")

    scenario = generate_scenario(
        directory,
        steps=args.steps,
        seed=args.seed,
        workload=workload,
        inject_violation=not args.no_violation,
    )
    campaign = ScenarioCampaign(
        directory,
        scenario,
        queries=queries,
        workers=args.workers,
        store=_open_store(args),
        cache_shards=args.cache_shards,
        delta=args.delta,
        symmetry=args.symmetry,
        shared_cache=args.shared_cache,
        packet=args.packet,
        cluster_eps=args.eps,
        cluster_min_points=args.min_points,
    )
    try:
        run = campaign.run()
    except (RuntimeError, ValueError) as exc:
        raise SystemExit(f"scenario failed: {exc}")
    _LOG.info(
        "verified %d states (%d steps): %d delta-spliced, %d violations "
        "in %d clusters",
        len(run.outcomes),
        len(scenario.steps),
        run.steps_delta_spliced,
        len(run.violations),
        len(run.clusters),
    )
    report = run.to_json()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"wrote scenario report to {args.output}")
    else:
        print(report)
    return 0


def _command_store(args: argparse.Namespace) -> int:
    from repro.store import StoreError, VerificationStore

    # Opening a VerificationStore scaffolds the directory; maintenance
    # commands must never do that to a mistyped path, so require the
    # store's metadata file to already exist.
    if not os.path.isdir(args.store_dir) or not os.path.isfile(
        os.path.join(args.store_dir, "STORE.json")
    ):
        raise SystemExit(
            f"not a store directory (no STORE.json): {args.store_dir}"
        )
    try:
        store = VerificationStore(args.store_dir)
    except StoreError as exc:
        raise SystemExit(f"unusable store: {exc}")
    if args.action == "inspect":
        summary = store.describe()
        print(json.dumps(summary, indent=2, sort_keys=True))
        for path, reason in store.quarantined:
            _LOG.warning("quarantined %s: %s", path, reason)
        return 0
    if args.action == "compact":
        outcome = store.compact()
        print(
            f"compacted {store.directory}: {outcome['entries']} verdicts, "
            f"{outcome['segments_before']} -> {outcome['segments_after']} segments"
        )
        for path, reason in store.quarantined:
            _LOG.warning("quarantined %s: %s", path, reason)
        return 0
    if args.action == "clear-plans":
        removed = store.invalidate_plans(args.model)
        scope = f"model {args.model}" if args.model else "all models"
        print(f"dropped {removed} cached plan result(s) ({scope})")
        return 0
    raise SystemExit(2)


def _command_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import VerificationService, run_server

    store = _open_store(args)
    service = VerificationService(
        workers=args.workers,
        store=store,
        max_pending=args.max_pending,
        batch_window=args.batch_window,
    )
    try:
        asyncio.run(run_server(service, host=args.host, port=args.port))
    except KeyboardInterrupt:
        pass
    return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "show":
        return _command_show(args.directory)
    if args.command == "reachability":
        return _command_reachability(args)
    if args.command == "campaign":
        return _command_campaign(args)
    if args.command == "query":
        return _command_query(args)
    if args.command == "scenario":
        return _command_scenario(args)
    if args.command == "store":
        return _command_store(args)
    if args.command == "serve":
        return _command_serve(args)
    raise SystemExit(2)


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args, extras = parser.parse_known_args(argv)
    if extras:
        # Positionals split by interleaved options ("query DIR --workers 2
        # 'loop()'") land here; only the query command accepts them, and
        # only for non-option tokens.
        if getattr(args, "command", None) != "query" or any(
            token.startswith("-") for token in extras
        ):
            parser.error(f"unrecognized arguments: {' '.join(extras)}")
        args.queries.extend(extras)
    configure_logging(
        level=getattr(args, "log_level", None),
        verbosity=getattr(args, "verbose", 0),
    )
    trace_out = getattr(args, "trace_out", None)
    if not trace_out:
        return _dispatch(args)
    # Tracing is opt-in per invocation: install a recording tracer for the
    # command's lifetime, restore the previous (no-op) one, and flush the
    # recorded spans regardless of how the command ended.
    tracer = Tracer()
    previous = set_tracer(tracer)
    try:
        with tracer.span("session", command=args.command):
            return _dispatch(args)
    finally:
        set_tracer(previous)
        try:
            count = write_trace(trace_out, tracer)
        except OSError as exc:
            _LOG.warning("cannot write trace to %s: %s", trace_out, exc)
        else:
            _LOG.info("wrote %d spans to %s", count, trace_out)


if __name__ == "__main__":
    sys.exit(main())
