"""The persistent verification store: verdict shards + plan-result cache.

A :class:`VerificationStore` owns a directory of cross-run verification
state::

    <store-dir>/
      STORE.json                 # {"format": 1, "shards": N}
      shards/00/…/segment-*.seg  # append-only verdict segments (segments.py)
      plans/<model-fp>/<plan-fp>.json   # finished plan results
      quarantine/                # segments that failed integrity checks

Two kinds of state live here:

* **verdict shards** — canonical-fingerprint → verdict entries, the same
  data a :class:`~repro.solver.verdict_cache.VerdictCache` holds in memory,
  prefix-partitioned across ``shards`` directories.  Campaigns *load* the
  store once per worker process (instead of pickling warm entries into
  every job) and *publish* the fresh verdicts they derived as one new
  segment per affected shard.
* **plan results** — finished
  :class:`~repro.api.planner.PlanResult` payloads keyed on
  ``(NetworkModel fingerprint, Plan fingerprint)``, so a repeated identical
  query batch is answered without running a single engine job.

Trust model: disk contents are *evidence, never truth*.  Every segment is
checksummed and fully validated before a single entry is used
(:func:`repro.store.segments.read_segment`), loaded entries are folded in
with the verdict cache's own conflict-refusing policy
(:func:`~repro.solver.verdict_cache.resolve_verdict` /
:meth:`~repro.solver.verdict_cache.VerdictCache.merge`), and a segment that
fails either check is moved to ``quarantine/`` and ignored — the store
degrades to a smaller cache, it never crashes a campaign and never serves
data it cannot vouch for.  The soundness backstop is unchanged from PR 3:
caching (including this store) changes *which tier answers*, never the
answer, and the mutation suite in ``tests/test_store.py`` corrupts segments
deliberately to prove it.
"""

from __future__ import annotations

import hashlib
import json
import os
import uuid
import warnings
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, List, Mapping, Optional, Tuple

try:  # POSIX-only advisory locks; the store degrades gracefully without.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.solver.verdict_cache import (
    CacheConflictError,
    VerdictCache,
    resolve_verdict,
)
from repro.store.segments import (
    SEGMENT_SUFFIX,
    SegmentFormatError,
    atomic_write_bytes,
    read_segment,
    segment_stat,
    write_segment,
)
from repro.store.sharding import DEFAULT_SHARD_COUNT, shard_index

STORE_FORMAT = 1
_META_NAME = "STORE.json"


class StoreError(RuntimeError):
    """The store directory is unusable (bad metadata, wrong format)."""


# Read-through cache in front of ``VerificationStore.load()``, keyed by
# (directory, content token): campaign workers construct a fresh store
# instance per job, and without this every one of them re-read and
# re-validated every segment on disk.  The content token changes whenever
# any segment does, so a publish (from this or another process) naturally
# invalidates — stale entries just age out of the LRU.
_LOAD_CACHE: "OrderedDict[Tuple[str, str], Dict[str, str]]" = OrderedDict()
_LOAD_CACHE_LIMIT = 8


def clear_load_cache() -> None:
    """Drop this process's cached store loads (tests, memory pressure)."""
    _LOAD_CACHE.clear()


def _atomic_write_json(path: str, payload: Dict[str, object]) -> None:
    data = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    atomic_write_bytes(path, data.encode("utf-8"))


class VerificationStore:
    """Disk-backed verdict shards plus a plan-result cache (module docs)."""

    def __init__(self, directory: str, shards: int = DEFAULT_SHARD_COUNT) -> None:
        if shards < 1:
            raise ValueError("a store needs at least one shard")
        self.directory = os.path.abspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        meta_path = os.path.join(self.directory, _META_NAME)
        if os.path.exists(meta_path):
            try:
                with open(meta_path, "r", encoding="utf-8") as handle:
                    meta = json.load(handle)
            except (OSError, ValueError) as exc:
                raise StoreError(f"unreadable store metadata {meta_path}: {exc}")
            if meta.get("format") != STORE_FORMAT:
                raise StoreError(
                    f"store format {meta.get('format')!r} is not {STORE_FORMAT}"
                )
            # The shard layout is pinned at creation time; opening with a
            # different count silently uses the on-disk layout (the caller's
            # value is only a default for *new* stores).  The on-disk value
            # is untrusted input like everything else in the directory:
            # reject anything that is not a usable shard count here, not
            # deep inside a campaign's end-of-run publish.
            stored_shards = meta.get("shards", shards)
            if (
                not isinstance(stored_shards, int)
                or isinstance(stored_shards, bool)
                or stored_shards < 1
            ):
                raise StoreError(
                    f"store metadata declares an unusable shard count "
                    f"{stored_shards!r}"
                )
            self.shard_count = stored_shards
        else:
            self.shard_count = shards
            _atomic_write_json(
                meta_path, {"format": STORE_FORMAT, "shards": self.shard_count}
            )
        for index in range(self.shard_count):
            os.makedirs(self._shard_dir(index), exist_ok=True)
        os.makedirs(self._plan_dir(), exist_ok=True)
        os.makedirs(self._quarantine_dir(), exist_ok=True)
        self._verdicts: Optional[Dict[str, str]] = None
        #: (segment path, reason) pairs quarantined by the last load.
        self.quarantined: List[Tuple[str, str]] = []
        #: Segments the last load skipped on transient read errors.
        self._transient_skips = 0
        #: Best-effort operations that failed on this instance (quarantine
        #: moves, plan-cache unlinks, baseline writes, shard-lock
        #: acquisition).  None of them affect answers, but a long-lived
        #: service must see them: the campaign driver folds the delta into
        #: ``CampaignStats.degraded_operations``.
        self.degraded_operations = 0

    # -- layout ----------------------------------------------------------------

    def _shard_dir(self, index: int) -> str:
        return os.path.join(self.directory, "shards", f"{index:02d}")

    def _plan_dir(self) -> str:
        return os.path.join(self.directory, "plans")

    def _quarantine_dir(self) -> str:
        return os.path.join(self.directory, "quarantine")

    def _segments_of(self, index: int) -> List[str]:
        shard_dir = self._shard_dir(index)
        try:
            names = sorted(
                name
                for name in os.listdir(shard_dir)
                if name.endswith(SEGMENT_SUFFIX) and not name.startswith(".")
            )
        except OSError:
            # Provably best-effort: an unlistable (usually not-yet-created)
            # shard directory holds no loadable segments by definition.
            return []
        return [os.path.join(shard_dir, name) for name in names]

    def _segment_path(self, index: int) -> str:
        """A fresh, collision-free segment name.  The counter keeps load
        order deterministic (sorted by name ≈ publish order); the random
        suffix keeps concurrent writers from clobbering each other."""
        existing = self._segments_of(index)
        counter = len(existing)
        for path in existing:
            name = os.path.basename(path)
            try:
                counter = max(counter, int(name.split("-")[1]) + 1)
            except (IndexError, ValueError):
                pass
        name = f"segment-{counter:08d}-{uuid.uuid4().hex[:8]}{SEGMENT_SUFFIX}"
        return os.path.join(self._shard_dir(index), name)

    @contextmanager
    def _shard_lock(self, index: int):
        """Advisory per-shard file lock held around choosing a segment name
        and writing the segment, so two processes publishing into one store
        directory cannot race ``_segment_path``'s counter scan and interleave
        (or clobber) each other's appends.  Locking is best-effort: platforms
        without ``fcntl`` (and lock-file I/O errors) fall back to the old
        uuid-suffix collision avoidance instead of failing the publish."""
        if fcntl is None:
            yield
            return
        lock_path = os.path.join(self._shard_dir(index), ".lock")
        # One flat acquire/yield/release: whatever happens — open failure,
        # flock failure, an exception out of the caller's body — the single
        # ``finally`` below releases the lock iff it was taken and closes
        # the handle iff it was opened, so no branch can leak the file
        # handle or leave the shard locked.
        handle = None
        locked = False
        try:
            try:
                handle = open(lock_path, "a+b")
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                locked = True
            except OSError:
                # Best-effort: uuid-suffixed segment names still avoid
                # clobbers — but publishing unlocked is a degraded mode
                # worth counting.
                self.degraded_operations += 1
            yield
        finally:
            if handle is not None:
                if locked:
                    try:
                        fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
                    except OSError:
                        # Provably best-effort: close() below drops the
                        # flock anyway; the explicit unlock only shortens
                        # the window.
                        pass
                handle.close()

    # -- integrity / quarantine ------------------------------------------------

    def _quarantine(self, path: str, reason: str) -> None:
        self.quarantined.append((path, reason))
        target = os.path.join(
            self._quarantine_dir(),
            f"{os.path.basename(path)}.{uuid.uuid4().hex[:8]}",
        )
        try:
            os.replace(path, target)
            _atomic_write_json(target + ".reason", {"segment": path, "reason": reason})
        except OSError as exc:
            # The segment is already ignored for *this* load, but a failed
            # move means every future load re-reads and re-convicts it —
            # warn instead of hiding the creeping cost.
            self.degraded_operations += 1
            warnings.warn(
                f"could not move bad segment {path} to quarantine ({exc}); "
                "it stays in place and will be re-checked on every load",
                RuntimeWarning,
                stacklevel=3,
            )

    # -- verdict shards ----------------------------------------------------------

    def load(self, refresh: bool = False) -> Dict[str, str]:
        """Every trustworthy verdict in the store, merged across shards.

        Each segment is checksum-validated, then probed entry-by-entry
        against everything already accepted under the verdict cache's one
        combination policy (:func:`resolve_verdict`): a definite verdict may
        supersede an "unknown", but a definite-vs-definite disagreement
        convicts the *segment* — it is quarantined wholesale, never
        half-trusted.  The surviving map is cached on the instance.
        """
        if self._verdicts is not None and not refresh:
            return dict(self._verdicts)
        cache_key = (self.directory, self.content_token())
        if not refresh:
            cached = _LOAD_CACHE.get(cache_key)
            if cached is not None:
                _LOAD_CACHE.move_to_end(cache_key)
                self._verdicts = dict(cached)
                return dict(self._verdicts)
        self._verdicts = self._load_segments(
            {
                index: self._segments_of(index)
                for index in range(self.shard_count)
            }
        )
        if not self.quarantined and not self._transient_skips:
            # A load that quarantined segments changed the directory out
            # from under its own key, and one that skipped an unreadable
            # segment saw less than the key describes; only clean,
            # complete loads are reusable.
            _LOAD_CACHE[cache_key] = dict(self._verdicts)
            _LOAD_CACHE.move_to_end(cache_key)
            while len(_LOAD_CACHE) > _LOAD_CACHE_LIMIT:
                _LOAD_CACHE.popitem(last=False)
        return dict(self._verdicts)

    def _load_segments(self, segment_lists: Dict[int, List[str]]) -> Dict[str, str]:
        """Validate-and-merge exactly the listed segment files (quarantining
        failures), returning the surviving verdict map."""
        accepted = VerdictCache(max_entries=2**31)
        self._transient_skips = 0
        for index in sorted(segment_lists):
            for path in segment_lists[index]:
                try:
                    entries = read_segment(path, index)
                except SegmentFormatError as exc:
                    # Content-level failure: the file is provably bad.
                    self._quarantine(path, str(exc))
                    continue
                except OSError:
                    # Could not *read* the file (permissions hiccup,
                    # transient I/O error): proves nothing about its
                    # content — skip it for this load, never quarantine.
                    self._transient_skips += 1
                    continue
                # Probe the whole segment against everything accepted so
                # far, then commit: a conflicting segment is refused
                # wholesale, never half-trusted.
                staged = {}
                conflict = None
                for fingerprint in sorted(entries):
                    action = resolve_verdict(
                        accepted.peek(fingerprint), entries[fingerprint]
                    )
                    if action == "conflict":
                        conflict = (
                            f"fingerprint {fingerprint[:12]}… maps to "
                            f"{accepted.peek(fingerprint)!r} elsewhere, "
                            f"{entries[fingerprint]!r} here"
                        )
                        break
                    if action == "replace":
                        staged[fingerprint] = entries[fingerprint]
                if conflict is not None:
                    self._quarantine(path, conflict)
                    continue
                for fingerprint, verdict in staged.items():
                    accepted.put(fingerprint, verdict, fresh=False)
        return accepted.snapshot()

    def verdict_count(self) -> int:
        return len(self.load())

    def content_token(self) -> str:
        """Identity of the store's current segment set.  Campaign jobs carry
        this token so each worker process merges the store into its verdict
        cache exactly once per store state (the same idempotence scheme as
        PR 3's warm-map tokens), and a later publish changes the token."""
        stats = []
        for index in range(self.shard_count):
            for path in self._segments_of(index):
                try:
                    stats.append((index,) + segment_stat(path))
                except OSError:
                    # Provably best-effort: the segment vanished between
                    # listing and stat (concurrent compaction) — the token
                    # correctly describes the files that remain.
                    continue
        payload = repr((self.shard_count, sorted(stats)))
        return "store:" + hashlib.sha256(payload.encode()).hexdigest()

    def publish(self, entries: Mapping[str, str]) -> int:
        """Persist every entry the store does not already hold, as one new
        segment per affected shard (atomic tmp-file + rename each).  Returns
        how many entries were written.  "unknown" verdicts are never
        persisted: they are budget-dependent incompleteness, worthless on a
        later run that might solve the set definitively."""
        known = self.load()
        fresh: List[Dict[str, str]] = [{} for _ in range(self.shard_count)]
        added = 0
        for fingerprint in sorted(entries):
            verdict = entries[fingerprint]
            if verdict == "unknown":
                continue
            action = resolve_verdict(known.get(fingerprint), verdict)
            if action == "conflict":
                raise CacheConflictError(
                    f"publish conflicts with store on {fingerprint[:12]}…: "
                    f"store has {known[fingerprint]!r}, incoming {verdict!r}"
                )
            if action == "replace":
                fresh[shard_index(fingerprint, self.shard_count)][fingerprint] = verdict
                added += 1
        for index, batch in enumerate(fresh):
            if batch:
                with self._shard_lock(index):
                    write_segment(self._segment_path(index), index, batch)
        if added:
            self._verdicts = None  # next load() sees the new segments
        return added

    def compact(self) -> Dict[str, int]:
        """Fold every shard's segments into one, dropping duplicates (and
        quarantining anything untrustworthy on the way in).

        Race-safe against concurrent publishers: the segment lists are
        snapshotted once, the replacement is built from — and the deletions
        limited to — exactly those files, so a segment published while the
        compaction runs is neither folded in nor deleted; it simply
        survives alongside the compacted one."""
        listed = {
            index: self._segments_of(index)
            for index in range(self.shard_count)
        }
        merged = self._load_segments(listed)
        segments_before = sum(len(paths) for paths in listed.values())
        per_shard: List[Dict[str, str]] = [{} for _ in range(self.shard_count)]
        for fingerprint, verdict in merged.items():
            per_shard[shard_index(fingerprint, self.shard_count)][fingerprint] = verdict
        for index, batch in enumerate(per_shard):
            with self._shard_lock(index):
                if batch:
                    write_segment(self._segment_path(index), index, batch)
                # Quarantined files are already gone; a concurrently deleted
                # segment (another compactor) is not this compaction's
                # problem.
                for path in listed[index]:
                    try:
                        os.unlink(path)
                    except OSError:
                        # Provably best-effort: the snapshotted segment was
                        # already deleted by a concurrent compactor; its
                        # entries are in the replacement segment either way.
                        pass
        self._verdicts = None
        return {
            "entries": len(merged),
            "segments_before": segments_before,
            "segments_after": sum(
                1 for i in range(self.shard_count) if per_shard[i]
            ),
        }

    # -- plan-result cache -------------------------------------------------------

    def _plan_path(self, model_fingerprint: str, plan_fingerprint: str) -> str:
        return os.path.join(
            self._plan_dir(), model_fingerprint, plan_fingerprint + ".json"
        )

    def get_plan(
        self, model_fingerprint: str, plan_fingerprint: str
    ) -> Optional[Dict[str, object]]:
        """The stored payload of a finished plan, or None.  An unreadable or
        structurally wrong file is treated as a miss (and removed) — same
        distrust-and-degrade policy as the verdict shards."""
        path = self._plan_path(model_fingerprint, plan_fingerprint)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except OSError:
            # Provably best-effort: no (readable) file simply means a plan
            # cache miss, the caller recomputes.
            return None
        except ValueError:
            self._drop_bad_plan(path)
            return None
        if (
            not isinstance(record, dict)
            or record.get("plan_fingerprint") != plan_fingerprint
            or record.get("model_fingerprint") != model_fingerprint
            or not isinstance(record.get("payload"), dict)
        ):
            self._drop_bad_plan(path)
            return None
        return record["payload"]

    def _drop_bad_plan(self, path: str) -> None:
        """Remove an unparseable/mismatched plan-cache file.  It is already
        treated as a miss; a failed unlink only means the next lookup pays
        the re-read again, so count it instead of failing the query."""
        try:
            os.unlink(path)
        except OSError:
            self.degraded_operations += 1

    def put_plan(
        self,
        model_fingerprint: str,
        plan_fingerprint: str,
        payload: Mapping[str, object],
    ) -> None:
        path = self._plan_path(model_fingerprint, plan_fingerprint)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        _atomic_write_json(
            path,
            {
                "model_fingerprint": model_fingerprint,
                "plan_fingerprint": plan_fingerprint,
                "payload": dict(payload),
            },
        )

    def invalidate_plans(self, model_fingerprint: Optional[str] = None) -> int:
        """Drop cached plan results — all of them, or one model's.  This is
        the explicit invalidation path for network sources whose content the
        model fingerprint cannot see change (workload builders edited in
        place, regenerated snapshot directories restored with old mtimes)."""
        removed = 0
        plan_dir = self._plan_dir()
        try:
            model_dirs = sorted(os.listdir(plan_dir))
        except OSError:
            return 0
        for name in model_dirs:
            if model_fingerprint is not None and name != model_fingerprint:
                continue
            model_dir = os.path.join(plan_dir, name)
            if not os.path.isdir(model_dir):
                continue
            for entry in sorted(os.listdir(model_dir)):
                try:
                    os.unlink(os.path.join(model_dir, entry))
                    removed += 1
                except OSError as exc:
                    # A plan file that survives an explicit invalidation
                    # keeps getting *served* — silently reporting it
                    # removed would defeat the caller's whole intent.
                    self.degraded_operations += 1
                    warnings.warn(
                        f"could not remove cached plan "
                        f"{os.path.join(model_dir, entry)} ({exc}); it will "
                        "still be served until removed",
                        RuntimeWarning,
                        stacklevel=2,
                    )
            try:
                os.rmdir(model_dir)
            except OSError:
                # Provably best-effort: the directory is only cosmetic —
                # non-empty (concurrent put_plan) or already gone, either
                # way lookups behave identically.
                pass
        return removed

    def plan_count(self) -> int:
        count = 0
        plan_dir = self._plan_dir()
        try:
            names = os.listdir(plan_dir)
        except OSError:
            return 0
        for name in names:
            model_dir = os.path.join(plan_dir, name)
            if os.path.isdir(model_dir):
                count += sum(
                    1 for entry in os.listdir(model_dir) if entry.endswith(".json")
                )
        return count

    # -- delta baselines ---------------------------------------------------------

    def _baseline_dir(self) -> str:
        return os.path.join(self.directory, "baselines")

    def _baseline_path(self, directory: str) -> str:
        key = hashlib.sha256(os.path.abspath(directory).encode()).hexdigest()
        return os.path.join(self._baseline_dir(), key + ".json")

    def get_baseline(self, directory: str) -> Optional[Dict[str, object]]:
        """The recorded delta baseline for one snapshot directory (element
        manifest + per-port job reports), or ``None``.  Unreadable or
        structurally wrong files are a miss, never an error — baselines
        only ever accelerate, and :mod:`repro.core.delta` re-validates the
        payload anyway."""
        path = self._baseline_path(directory)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            return None
        return record if isinstance(record, dict) else None

    def put_baseline(
        self, directory: str, payload: Mapping[str, object]
    ) -> None:
        """Record a campaign's baseline payload for its directory, replacing
        any previous one (the payload already merges spliced-forward ports,
        so chains of edits keep a complete baseline)."""
        os.makedirs(self._baseline_dir(), exist_ok=True)
        try:
            _atomic_write_json(self._baseline_path(directory), dict(payload))
        except OSError as exc:
            # Best-effort — losing a baseline only costs a full rerun — but
            # a resident service leaning on delta verification should see
            # that its baselines stopped persisting.
            self.degraded_operations += 1
            warnings.warn(
                f"could not persist delta baseline for {directory} ({exc}); "
                "the next campaign over it runs full",
                RuntimeWarning,
                stacklevel=2,
            )

    def baseline_count(self) -> int:
        try:
            return sum(
                1
                for name in os.listdir(self._baseline_dir())
                if name.endswith(".json")
            )
        except OSError:
            return 0

    # -- inspection ---------------------------------------------------------------

    def describe(self) -> Dict[str, object]:
        """JSON-able summary for ``repro.cli store inspect``."""
        verdicts = self.load(refresh=True)
        per_shard = {}
        for index in range(self.shard_count):
            segments = self._segments_of(index)
            per_shard[f"{index:02d}"] = {
                "segments": len(segments),
                "entries": sum(
                    1
                    for fingerprint in verdicts
                    if shard_index(fingerprint, self.shard_count) == index
                ),
            }
        try:
            quarantine_files = [
                name
                for name in sorted(os.listdir(self._quarantine_dir()))
                if not name.endswith(".reason")
            ]
        except OSError:
            quarantine_files = []
        return {
            "directory": self.directory,
            "format": STORE_FORMAT,
            "shards": self.shard_count,
            "verdicts": len(verdicts),
            "segments": sum(cell["segments"] for cell in per_shard.values()),
            "per_shard": per_shard,
            "plans": self.plan_count(),
            "baselines": self.baseline_count(),
            "quarantined": quarantine_files,
            "content_token": self.content_token(),
        }
