"""Prefix-sharded cross-process verdict tier with batched publishes.

PR 3's shared tier was a single ``multiprocessing.Manager`` dict: every miss
is one proxy round-trip, every publish another, and all of them serialise on
one writer lock.  :class:`ShardedTier` partitions the canonical fingerprint
space by hex prefix across N Manager dicts and buffers publishes per shard,
flushing a whole batch in one ``dict.update`` round-trip — so W workers
publishing into N shards contend N-ways instead of queueing on one proxy,
and the proxy traffic drops by the batch factor.

The tier duck-types the plain-dict protocol the
:class:`~repro.solver.incremental.IncrementalSolver` already speaks
(``get``/``__setitem__``) plus ``flush()`` (called by the engine at the end
of every injection so buffered verdicts are never lost) and
``bind_stats()`` (so batch/flush/round-trip counters land in the job's
:class:`~repro.solver.result.SolverStats` and surface in campaign reports).

Pickling ships only the shard proxies and the configuration; each worker
process gets its own empty write buffer and its own counters.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

#: Default number of fingerprint-space shards for campaign shared tiers.
DEFAULT_SHARD_COUNT = 8
#: Default per-shard publish batch size (1 reproduces PR 3's
#: publish-per-solve behaviour; see benchmarks/test_store_persistence.py).
#: Deliberately small: a buffer that outlives the handful of full solves a
#: typical injection performs would defer every publish to the
#: end-of-injection flush and cost concurrent workers their live hits —
#: the batch should absorb bursts, not whole jobs.
DEFAULT_PUBLISH_BATCH = 4


def shard_index(fingerprint: str, shards: int) -> int:
    """Which shard owns a canonical fingerprint.  Prefix-partitioned: the
    first eight hex digits (32 bits) of SHA-256 output spread uniformly
    over any practical shard count, and the mapping depends only on
    (fingerprint, shard count) — every process agrees."""
    if shards <= 1:
        return 0
    return int(fingerprint[:8], 16) % shards


class ShardedTier:
    """N dict shards + a per-process write buffer with batched publishes."""

    def __init__(
        self,
        shards: Sequence,
        batch_size: int = DEFAULT_PUBLISH_BATCH,
    ) -> None:
        if not shards:
            raise ValueError("ShardedTier needs at least one shard")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.shards = tuple(shards)
        self.batch_size = batch_size
        self._buffers: List[Dict[str, str]] = [{} for _ in self.shards]
        self._stats = None
        # Set when a shard proxy died mid-run (Manager gone).  A degraded
        # tier never touches the proxies again: buffered verdicts stay in
        # the per-process buffers and keep serving local hits, mirroring
        # how IncrementalSolver degrades to its local tiers.
        self._degraded = False
        # Local mirrors of the stats counters, so the tier is observable
        # even when no SolverStats was bound (unit tests, ad-hoc use).
        self.round_trips = 0
        self.publish_batches = 0
        self.published_entries = 0

    # -- pickling: proxies travel, buffers and counters stay home -------------

    def __getstate__(self):
        return {"shards": self.shards, "batch_size": self.batch_size}

    def __setstate__(self, state):
        self.__init__(state["shards"], batch_size=state["batch_size"])

    # -- stats plumbing --------------------------------------------------------

    def bind_stats(self, stats) -> None:
        """Route counters into a :class:`SolverStats` (the incremental
        solver binds its own stats when handed a tier)."""
        self._stats = stats

    def _count_round_trip(self) -> None:
        self.round_trips += 1
        if self._stats is not None:
            self._stats.record_shared_round_trip()

    def _count_publish(self, entries: int) -> None:
        self.publish_batches += 1
        self.published_entries += entries
        if self._stats is not None:
            self._stats.record_shared_publish(entries)

    def _degrade(self) -> None:
        self._degraded = True
        if self._stats is not None:
            self._stats.record_degraded_operation()

    @property
    def degraded(self) -> bool:
        """True once a dead shard proxy switched the tier to local-only."""
        return self._degraded

    # -- the dict-like protocol ------------------------------------------------

    def get(self, fingerprint: str) -> Optional[str]:
        """Cross-process lookup: exactly one proxy round-trip, against the
        single shard that owns the fingerprint."""
        index = shard_index(fingerprint, len(self.shards))
        buffered = self._buffers[index].get(fingerprint)
        if buffered is not None:
            return buffered
        if self._degraded:
            return None
        self._count_round_trip()
        try:
            return self.shards[index].get(fingerprint)
        except Exception:
            self._degrade()
            return None

    def __setitem__(self, fingerprint: str, verdict: str) -> None:
        """Buffer a publish; the owning shard is flushed (one ``update``
        round-trip for the whole batch) when its buffer reaches
        ``batch_size``."""
        index = shard_index(fingerprint, len(self.shards))
        buffer = self._buffers[index]
        buffer[fingerprint] = verdict
        if len(buffer) >= self.batch_size:
            self._flush_shard(index)

    def _flush_shard(self, index: int) -> None:
        buffer = self._buffers[index]
        if not buffer or self._degraded:
            return
        # Publish from a copy and only clear on success: if the Manager
        # proxy died, the verdicts must stay buffered (they keep serving
        # this process's hits) and the tier degrades instead of raising —
        # a resident service cannot afford a flush that loses verdicts or
        # kills the job.
        batch = dict(buffer)
        self._count_round_trip()
        try:
            self.shards[index].update(batch)
        except Exception:
            self._degrade()
            return
        buffer.clear()
        self._count_publish(len(batch))

    def flush(self) -> None:
        """Publish every buffered entry (end of an engine injection; also
        safe to call at any time).  Never raises: a dead proxy degrades
        the tier and keeps the entries buffered."""
        for index in range(len(self.shards)):
            self._flush_shard(index)

    def pending(self) -> int:
        """Entries buffered but not yet published (for tests)."""
        return sum(len(buffer) for buffer in self._buffers)

    def snapshot(self) -> Dict[str, str]:
        """Merged contents of every shard (one round-trip per shard)."""
        merged: Dict[str, str] = {}
        for shard in self.shards:
            self._count_round_trip()
            merged.update(dict(shard))
        return merged

    def seed(self, entries: Dict[str, str]) -> None:
        """Bulk-load entries shard by shard (campaign warm starts), one
        ``update`` round-trip per non-empty shard."""
        split: List[Dict[str, str]] = [{} for _ in self.shards]
        for fingerprint, verdict in entries.items():
            split[shard_index(fingerprint, len(self.shards))][fingerprint] = verdict
        for index, batch in enumerate(split):
            if batch:
                self._count_round_trip()
                self.shards[index].update(batch)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)
