"""Append-only verdict segment files — the store's unit of disk I/O.

A *segment* is one immutable file holding (fingerprint, verdict) pairs for
one shard of the fingerprint space.  Publishing verdicts never rewrites an
existing file: each publish writes a brand-new segment (to a temp file in
the same directory, then an atomic ``os.replace``), so a crash mid-flush
leaves either the complete new segment or nothing — never a torn file that
a later load could half-trust.  Compaction folds a shard's segments into
one and deletes the originals.

Format (version 1, line-oriented JSON)::

    {"magic": "symnet-verdict-segment", "version": 1, "shard": 3,
     "entries": 2, "checksum": "<sha256 of the body bytes>"}
    {"f": "<64 hex chars>", "v": "sat"}
    {"f": "<64 hex chars>", "v": "unsat"}

The header's checksum covers every byte after the header line, so any
truncation, bit flip or splice inside the body is detected before a single
entry is parsed.  :func:`read_segment` raises :class:`SegmentFormatError`
on *any* inconsistency — the store quarantines such files rather than
trusting them (see :mod:`repro.store.store`).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
from typing import Dict, Mapping, Tuple

SEGMENT_MAGIC = "symnet-verdict-segment"
SEGMENT_VERSION = 1
SEGMENT_SUFFIX = ".seg"

_FINGERPRINT_RE = re.compile(r"^[0-9a-f]{64}$")
_VERDICTS = ("sat", "unsat", "unknown")


class SegmentFormatError(ValueError):
    """A segment file failed an integrity check and must not be trusted."""


def _checksum(body: bytes) -> str:
    return hashlib.sha256(body).hexdigest()


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically: temp file in the same
    directory, fsync, ``os.replace``.  A reader (or a crash) never sees a
    partial file.  Shared by segment and store-metadata/plan writers."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(prefix=".tmp-", dir=directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def write_segment(path: str, shard: int, entries: Mapping[str, str]) -> int:
    """Atomically write ``entries`` as a new segment file at ``path``.

    The payload is assembled in memory, written to a temp file in the same
    directory and moved into place with ``os.replace`` — a reader never sees
    a partially written segment.  Returns the number of entries written.
    """
    body_lines = []
    for fingerprint in sorted(entries):
        verdict = entries[fingerprint]
        if not _FINGERPRINT_RE.match(fingerprint):
            raise ValueError(f"not a canonical fingerprint: {fingerprint!r}")
        if verdict not in _VERDICTS:
            raise ValueError(f"not a solver verdict: {verdict!r}")
        body_lines.append(
            json.dumps({"f": fingerprint, "v": verdict}, sort_keys=True)
        )
    body = ("".join(line + "\n" for line in body_lines)).encode("utf-8")
    header = json.dumps(
        {
            "magic": SEGMENT_MAGIC,
            "version": SEGMENT_VERSION,
            "shard": shard,
            "entries": len(body_lines),
            "checksum": _checksum(body),
        },
        sort_keys=True,
    ).encode("utf-8")
    atomic_write_bytes(path, header + b"\n" + body)
    return len(body_lines)


def read_segment(path: str, expected_shard: int) -> Dict[str, str]:
    """Read and fully validate one segment file.

    Raises :class:`SegmentFormatError` on any *content* inconsistency: bad
    header, wrong shard, checksum mismatch (truncation / bit flips),
    malformed entry lines, non-canonical fingerprints, unknown verdicts,
    or entry counts that disagree with the header.  Never returns partial
    data.  An ``OSError`` (permissions hiccup, transient NFS failure)
    propagates unchanged — failing to *read* a file proves nothing about
    its content, so callers must not treat it as corruption.
    """
    with open(path, "rb") as handle:
        raw = handle.read()
    newline = raw.find(b"\n")
    if newline < 0:
        raise SegmentFormatError("segment has no header line")
    header_bytes, body = raw[:newline], raw[newline + 1:]
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise SegmentFormatError(f"unparsable segment header: {exc}")
    if not isinstance(header, dict) or header.get("magic") != SEGMENT_MAGIC:
        raise SegmentFormatError("not a verdict segment (bad magic)")
    if header.get("version") != SEGMENT_VERSION:
        raise SegmentFormatError(
            f"unsupported segment version {header.get('version')!r}"
        )
    if header.get("shard") != expected_shard:
        raise SegmentFormatError(
            f"segment belongs to shard {header.get('shard')!r}, "
            f"found in shard {expected_shard}"
        )
    if _checksum(body) != header.get("checksum"):
        raise SegmentFormatError(
            "checksum mismatch (truncated or corrupted body)"
        )
    entries: Dict[str, str] = {}
    for line_number, line in enumerate(body.splitlines(), start=1):
        if not line.strip():
            raise SegmentFormatError(f"blank entry line {line_number}")
        try:
            record = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise SegmentFormatError(f"bad entry line {line_number}: {exc}")
        if not isinstance(record, dict):
            raise SegmentFormatError(f"entry line {line_number} is not an object")
        fingerprint, verdict = record.get("f"), record.get("v")
        if not isinstance(fingerprint, str) or not _FINGERPRINT_RE.match(fingerprint):
            raise SegmentFormatError(
                f"entry line {line_number}: not a canonical fingerprint"
            )
        if verdict not in _VERDICTS:
            raise SegmentFormatError(
                f"entry line {line_number}: not a solver verdict: {verdict!r}"
            )
        if entries.get(fingerprint, verdict) != verdict:
            raise SegmentFormatError(
                f"entry line {line_number}: fingerprint {fingerprint[:12]}… "
                "appears twice with different verdicts"
            )
        entries[fingerprint] = record["v"]
    if len(entries) != header.get("entries"):
        raise SegmentFormatError(
            f"header promises {header.get('entries')!r} entries, "
            f"body holds {len(entries)}"
        )
    return entries


def segment_stat(path: str) -> Tuple[str, int, int]:
    """(name, size, mtime_ns) triple used for store content tokens."""
    stat = os.stat(path)
    return (os.path.basename(path), stat.st_size, stat.st_mtime_ns)
