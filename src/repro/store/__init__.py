"""Persistent sharded verification store.

The :class:`VerificationStore` owns every piece of cross-process and
cross-run verdict state:

* a **sharded shared tier** (:class:`ShardedTier`) — the fingerprint space
  prefix-partitioned across N ``multiprocessing.Manager`` dicts with
  per-worker write buffers and batched publishes, replacing PR 3's single
  Manager dict;
* **disk persistence** — append-only, checksummed verdict segment files
  per shard with atomic writes, quarantine-on-corruption loading and
  compaction, so campaign warm starts open the store instead of pickling
  entries into every job;
* a **plan-result cache** — finished plan payloads keyed on
  ``(NetworkModel fingerprint, Plan fingerprint)``, so a repeated identical
  query batch never runs a campaign at all.

The store inherits PR 3's invariant verbatim: any combination of
{no store, cold store, warm store} × {1 shard, N shards} × {workers 1, N}
changes *which tier answers* a satisfiability query, never the answer.
"""

from repro.store.segments import SegmentFormatError, read_segment, write_segment
from repro.store.sharding import (
    DEFAULT_PUBLISH_BATCH,
    DEFAULT_SHARD_COUNT,
    ShardedTier,
    shard_index,
)
from repro.store.store import StoreError, VerificationStore, clear_load_cache

__all__ = [
    "DEFAULT_PUBLISH_BATCH",
    "DEFAULT_SHARD_COUNT",
    "SegmentFormatError",
    "ShardedTier",
    "StoreError",
    "VerificationStore",
    "clear_load_cache",
    "read_segment",
    "shard_index",
    "write_segment",
]
