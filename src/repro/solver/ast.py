"""Term and formula abstract syntax for the constraint solver.

The fragment mirrors what SEFL expressions can produce (§5 of the paper:
"SymNet (via SEFL) only supports simple expressions — referencing,
subtraction, addition, negation"):

* terms are variables, constants and sums/differences of a variable and a
  constant (``x + 3``) or of two variables (``x - y``);
* atoms compare two terms;
* formulas are boolean combinations of atoms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Tuple, Union


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Var:
    """A solver variable: a symbolic value with a unique name and bit width."""

    name: str
    width: int = 32

    def __repr__(self) -> str:
        return f"Var({self.name!r}, w={self.width})"


@dataclass(frozen=True)
class Const:
    """An integer constant."""

    value: int

    def __repr__(self) -> str:
        return f"Const({self.value})"


@dataclass(frozen=True)
class Add:
    """Sum of two terms."""

    left: "Term"
    right: "Term"


@dataclass(frozen=True)
class Sub:
    """Difference of two terms."""

    left: "Term"
    right: "Term"


Term = Union[Var, Const, Add, Sub]


# ---------------------------------------------------------------------------
# Linear normal form
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LinearTerm:
    """A term normalised to ``sum(coeff_i * var_i) + constant``.

    The solver only decides the fragment where, after normalisation, an atom
    relates at most two variables with coefficients ``+1`` / ``-1``.  Atoms
    outside the fragment are still representable and are handled by the
    (sound but incomplete) fallback path in the theory solver.
    """

    coeffs: Tuple[Tuple[Var, int], ...]
    constant: int

    @property
    def variables(self) -> Tuple[Var, ...]:
        return tuple(v for v, _ in self.coeffs)

    def is_constant(self) -> bool:
        return not self.coeffs


def _merge_coeffs(
    pairs: Iterable[Tuple[Var, int]]
) -> Tuple[Tuple[Var, int], ...]:
    acc: dict = {}
    for var, coeff in pairs:
        acc[var] = acc.get(var, 0) + coeff
    items = [(v, c) for v, c in acc.items() if c != 0]
    items.sort(key=lambda item: item[0].name)
    return tuple(items)


def linearize(term: Term) -> LinearTerm:
    """Normalise ``term`` to a linear combination of variables."""
    if isinstance(term, Var):
        return LinearTerm(((term, 1),), 0)
    if isinstance(term, Const):
        return LinearTerm((), term.value)
    if isinstance(term, Add):
        left = linearize(term.left)
        right = linearize(term.right)
        return LinearTerm(
            _merge_coeffs(left.coeffs + right.coeffs),
            left.constant + right.constant,
        )
    if isinstance(term, Sub):
        left = linearize(term.left)
        right = linearize(term.right)
        negated = tuple((v, -c) for v, c in right.coeffs)
        return LinearTerm(
            _merge_coeffs(left.coeffs + negated),
            left.constant - right.constant,
        )
    raise TypeError(f"not a term: {term!r}")


def term_variables(term: Term) -> FrozenSet[Var]:
    return frozenset(linearize(term).variables)


# ---------------------------------------------------------------------------
# Atoms and formulas
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Comparison:
    left: Term
    right: Term

    op: str = ""

    def variables(self) -> FrozenSet[Var]:
        return term_variables(self.left) | term_variables(self.right)


@dataclass(frozen=True)
class Eq(_Comparison):
    op: str = "=="


@dataclass(frozen=True)
class Ne(_Comparison):
    op: str = "!="


@dataclass(frozen=True)
class Lt(_Comparison):
    op: str = "<"


@dataclass(frozen=True)
class Le(_Comparison):
    op: str = "<="


@dataclass(frozen=True)
class Gt(_Comparison):
    op: str = ">"


@dataclass(frozen=True)
class Ge(_Comparison):
    op: str = ">="


Atom = Union[Eq, Ne, Lt, Le, Gt, Ge]


@dataclass(frozen=True)
class Member:
    """Set-membership atom: ``term`` takes a value inside ``values``.

    ``values`` is an :class:`repro.solver.intervals.IntervalSet`.  Member is
    semantically the disjunction ``Or(term == v for v in values)`` but is
    decided directly against the variable's domain, which keeps constraints
    generated from MAC tables and FIBs (hundreds of thousands of allowed
    values) cheap — this is the "egress model" optimisation from §7 of the
    paper expressed at the solver level.
    """

    term: Term
    values: object  # IntervalSet; typed loosely to avoid an import cycle
    negated: bool = False

    def variables(self) -> FrozenSet[Var]:
        return term_variables(self.term)


@dataclass(frozen=True)
class And:
    operands: Tuple["Formula", ...]

    def __init__(self, *operands: "Formula") -> None:
        flat = []
        for op in operands:
            if isinstance(op, And):
                flat.extend(op.operands)
            else:
                flat.append(op)
        object.__setattr__(self, "operands", tuple(flat))


@dataclass(frozen=True)
class Or:
    operands: Tuple["Formula", ...]

    def __init__(self, *operands: "Formula") -> None:
        flat = []
        for op in operands:
            if isinstance(op, Or):
                flat.extend(op.operands)
            else:
                flat.append(op)
        object.__setattr__(self, "operands", tuple(flat))


@dataclass(frozen=True)
class Not:
    operand: "Formula"


@dataclass(frozen=True)
class BoolTrue:
    pass


@dataclass(frozen=True)
class BoolFalse:
    pass


TRUE = BoolTrue()
FALSE = BoolFalse()

Formula = Union[Eq, Ne, Lt, Le, Gt, Ge, Member, And, Or, Not, BoolTrue, BoolFalse]


def conjoin(formulas: Iterable[Formula]) -> Formula:
    """Build the conjunction of ``formulas`` (``TRUE`` if empty)."""
    items = [f for f in formulas if not isinstance(f, BoolTrue)]
    if any(isinstance(f, BoolFalse) for f in items):
        return FALSE
    if not items:
        return TRUE
    if len(items) == 1:
        return items[0]
    return And(*items)


def disjoin(formulas: Iterable[Formula]) -> Formula:
    """Build the disjunction of ``formulas`` (``FALSE`` if empty)."""
    items = [f for f in formulas if not isinstance(f, BoolFalse)]
    if any(isinstance(f, BoolTrue) for f in items):
        return TRUE
    if not items:
        return FALSE
    if len(items) == 1:
        return items[0]
    return Or(*items)


def split_conjuncts(formula: Formula) -> "list":
    """NNF-normalise ``formula`` and flatten it into a top-level conjunct
    list (the shape the memoized/canonical solver tiers key on)."""
    nnf = to_nnf(formula)
    if isinstance(nnf, And):
        return list(nnf.operands)
    return [nnf]


def negate(formula: Formula) -> Formula:
    """Negate ``formula`` pushing the negation down to atoms (NNF step)."""
    if isinstance(formula, BoolTrue):
        return FALSE
    if isinstance(formula, BoolFalse):
        return TRUE
    if isinstance(formula, Not):
        return formula.operand
    if isinstance(formula, And):
        return Or(*(negate(op) for op in formula.operands))
    if isinstance(formula, Or):
        return And(*(negate(op) for op in formula.operands))
    if isinstance(formula, Member):
        return Member(formula.term, formula.values, negated=not formula.negated)
    if isinstance(formula, Eq):
        return Ne(formula.left, formula.right)
    if isinstance(formula, Ne):
        return Eq(formula.left, formula.right)
    if isinstance(formula, Lt):
        return Ge(formula.left, formula.right)
    if isinstance(formula, Le):
        return Gt(formula.left, formula.right)
    if isinstance(formula, Gt):
        return Le(formula.left, formula.right)
    if isinstance(formula, Ge):
        return Lt(formula.left, formula.right)
    raise TypeError(f"not a formula: {formula!r}")


def to_nnf(formula: Formula) -> Formula:
    """Rewrite ``formula`` to negation normal form."""
    if isinstance(formula, Not):
        return to_nnf(negate(formula.operand))
    if isinstance(formula, And):
        return And(*(to_nnf(op) for op in formula.operands))
    if isinstance(formula, Or):
        return Or(*(to_nnf(op) for op in formula.operands))
    return formula


def formula_variables(formula: Formula) -> FrozenSet[Var]:
    """Collect every variable mentioned in ``formula``."""
    if isinstance(formula, (BoolTrue, BoolFalse)):
        return frozenset()
    if isinstance(formula, Not):
        return formula_variables(formula.operand)
    if isinstance(formula, (And, Or)):
        result: FrozenSet[Var] = frozenset()
        for op in formula.operands:
            result |= formula_variables(op)
        return result
    if isinstance(formula, Member):
        return formula.variables()
    return formula.variables()


def formula_size(formula: Formula) -> int:
    """Number of atoms in the formula (used by benchmark instrumentation)."""
    if isinstance(formula, (BoolTrue, BoolFalse)):
        return 0
    if isinstance(formula, Not):
        return formula_size(formula.operand)
    if isinstance(formula, (And, Or)):
        return sum(formula_size(op) for op in formula.operands)
    return 1
