"""Solver result and statistics containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class SolverStats:
    """Counters mirroring the instrumentation used in the paper's evaluation
    ("time spent in and number of calls to the constraint solver")."""

    calls: int = 0
    sat: int = 0
    unsat: int = 0
    unknown: int = 0
    time_seconds: float = 0.0
    atoms_processed: int = 0
    case_splits: int = 0
    # Incremental-solver instrumentation: queries answered without a full
    # solve, either because domain propagation alone decided them
    # (``fast_paths``) or because a canonically-equal formula was memoized
    # (``cache_hits``).  ``cache_misses`` counts memoized full solves.
    fast_paths: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    # Cross-job verdict-cache instrumentation: hits served by the
    # process-shared tier (``shared_cache_hits``) and entries imported into
    # a local cache from another job's results (``merged_entries``).
    shared_cache_hits: int = 0
    merged_entries: int = 0
    # Sharded shared-tier instrumentation (repro.store.sharding): proxy
    # round-trips to the Manager shards, and batched verdict publishes
    # (``shared_publish_batches`` flushes carrying
    # ``shared_publish_entries`` verdicts in total).
    shared_round_trips: int = 0
    shared_publish_batches: int = 0
    shared_publish_entries: int = 0
    # Best-effort operations that failed and were absorbed by a degrade
    # path (dead Manager proxy, failed quarantine move, ...).  The answers
    # stay correct; the counter makes the degradation observable instead of
    # silent.
    degraded_operations: int = 0

    def record(self, verdict: str, elapsed: float, atoms: int, splits: int) -> None:
        self.calls += 1
        self.time_seconds += elapsed
        self.atoms_processed += atoms
        self.case_splits += splits
        if verdict == "sat":
            self.sat += 1
        elif verdict == "unsat":
            self.unsat += 1
        else:
            self.unknown += 1

    def record_fast_path(self) -> None:
        self.fast_paths += 1

    def record_cache_hit(self) -> None:
        self.cache_hits += 1

    def record_cache_miss(self) -> None:
        self.cache_misses += 1

    def record_shared_cache_hit(self) -> None:
        self.shared_cache_hits += 1

    def record_merged_entries(self, count: int) -> None:
        self.merged_entries += count

    def record_shared_round_trip(self) -> None:
        self.shared_round_trips += 1

    def record_shared_publish(self, entries: int) -> None:
        self.shared_publish_batches += 1
        self.shared_publish_entries += entries

    def record_degraded_operation(self, count: int = 1) -> None:
        self.degraded_operations += count

    def merge(self, other: "SolverStats") -> None:
        self.calls += other.calls
        self.sat += other.sat
        self.unsat += other.unsat
        self.unknown += other.unknown
        self.time_seconds += other.time_seconds
        self.atoms_processed += other.atoms_processed
        self.case_splits += other.case_splits
        self.fast_paths += other.fast_paths
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.shared_cache_hits += other.shared_cache_hits
        self.merged_entries += other.merged_entries
        self.shared_round_trips += other.shared_round_trips
        self.shared_publish_batches += other.shared_publish_batches
        self.shared_publish_entries += other.shared_publish_entries
        self.degraded_operations += other.degraded_operations


@dataclass
class SolverResult:
    """Outcome of a satisfiability query.

    ``verdict`` is one of ``"sat"``, ``"unsat"`` or ``"unknown"``; ``model``
    maps variable names to concrete values when ``verdict == "sat"`` and a
    model was requested.
    """

    verdict: str
    model: Optional[Dict[str, int]] = None
    reason: str = ""

    @property
    def is_sat(self) -> bool:
        return self.verdict == "sat"

    @property
    def is_unsat(self) -> bool:
        return self.verdict == "unsat"

    @property
    def is_unknown(self) -> bool:
        return self.verdict == "unknown"

    def __bool__(self) -> bool:
        return self.is_sat
