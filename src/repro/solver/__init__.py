"""Constraint solver used as the backend of symbolic execution.

The paper uses Z3 as its constraint solver.  Z3 is not available in this
environment, so this package implements a purpose-built SMT-lite solver that
decides exactly the constraint fragment SEFL programs emit:

* terms: variables of fixed bit width, integer constants, ``var +/- const``
  offsets and ``var - var`` differences;
* atoms: equality, disequality and ordering comparisons between terms;
* formulas: arbitrary boolean combinations (``And`` / ``Or`` / ``Not``) of
  atoms.

The solver combines three engines:

* :mod:`repro.solver.intervals` — interval-set domains (used for constraints
  between a variable and constants, including the very large "one of these
  500 000 MAC addresses" disjunctions emitted by switch models);
* a union-find over variable equalities plus difference-bound propagation
  (used by invariance checks and NAT/stateful-firewall models);
* a DPLL-style case split for disjunctions that mix several variables.

It also produces *models* (concrete satisfying assignments), which the
conformance-testing framework of the paper (§8.3) needs in order to derive
test packets from symbolic paths.
"""

from repro.solver.ast import (
    Add,
    And,
    BoolFalse,
    BoolTrue,
    Const,
    Eq,
    FALSE,
    Formula,
    Ge,
    Gt,
    Le,
    Lt,
    Member,
    Ne,
    Not,
    Or,
    Sub,
    Term,
    Var,
    conjoin,
    disjoin,
)
from repro.solver.canonical import CanonicalForm, canonical_fingerprint, canonical_form
from repro.solver.incremental import IncrementalSolver, SolverContext
from repro.solver.intervals import Interval, IntervalSet
from repro.solver.result import SolverResult, SolverStats
from repro.solver.solver import Solver
from repro.solver.verdict_cache import (
    CacheConflictError,
    CacheCorruptionError,
    VerdictCache,
    resolve_verdict,
)

__all__ = [
    "Add",
    "And",
    "BoolFalse",
    "BoolTrue",
    "CacheConflictError",
    "CacheCorruptionError",
    "CanonicalForm",
    "Const",
    "Eq",
    "FALSE",
    "Formula",
    "Ge",
    "Gt",
    "IncrementalSolver",
    "Interval",
    "IntervalSet",
    "Le",
    "Lt",
    "Member",
    "Ne",
    "Not",
    "Or",
    "Solver",
    "SolverContext",
    "SolverResult",
    "SolverStats",
    "Sub",
    "Term",
    "Var",
    "VerdictCache",
    "canonical_fingerprint",
    "canonical_form",
    "conjoin",
    "disjoin",
    "resolve_verdict",
]
