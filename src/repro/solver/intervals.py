"""Interval sets over non-negative integers.

Every variable tracked by the solver has a fixed bit width, so its domain is
a subset of ``[0, 2**width - 1]``.  The solver represents domains as sorted,
disjoint, closed integer intervals.  The large disjunctions produced by the
egress switch and router models ("EtherDst is one of these 480 000
addresses") become interval sets with one point interval per address, which
keeps satisfiability checks linear in the number of intervals instead of
requiring boolean case splits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Interval:
    """A closed integer interval ``[lo, hi]``.

    ``lo`` must be less than or equal to ``hi``; empty intervals are never
    constructed (the empty domain is an :class:`IntervalSet` with no
    intervals).
    """

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    def __contains__(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def __len__(self) -> int:
        return self.hi - self.lo + 1

    def intersects(self, other: "Interval") -> bool:
        return self.lo <= other.hi and other.lo <= self.hi

    def intersection(self, other: "Interval") -> Optional["Interval"]:
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return Interval(lo, hi)


class IntervalSet:
    """A set of non-overlapping, sorted, closed integer intervals."""

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Iterable[Tuple[int, int]] = ()) -> None:
        normalized = self._normalize(list(intervals))
        self._intervals: Tuple[Interval, ...] = tuple(
            Interval(lo, hi) for lo, hi in normalized
        )

    # -- construction helpers -------------------------------------------------

    @classmethod
    def empty(cls) -> "IntervalSet":
        return cls(())

    @classmethod
    def full(cls, width: int) -> "IntervalSet":
        """Domain of an unsigned integer with ``width`` bits."""
        return cls([(0, (1 << width) - 1)])

    @classmethod
    def point(cls, value: int) -> "IntervalSet":
        return cls([(value, value)])

    @classmethod
    def points(cls, values: Iterable[int]) -> "IntervalSet":
        return cls([(v, v) for v in values])

    @classmethod
    def range(cls, lo: int, hi: int) -> "IntervalSet":
        if lo > hi:
            return cls.empty()
        return cls([(lo, hi)])

    @classmethod
    def at_most(cls, value: int) -> "IntervalSet":
        if value < 0:
            return cls.empty()
        return cls([(0, value)])

    @classmethod
    def at_least(cls, value: int, width: int) -> "IntervalSet":
        hi = (1 << width) - 1
        if value > hi:
            return cls.empty()
        return cls([(max(0, value), hi)])

    @staticmethod
    def _normalize(pairs: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
        valid = [(lo, hi) for lo, hi in pairs if lo <= hi]
        if not valid:
            return []
        valid.sort()
        merged: List[Tuple[int, int]] = [valid[0]]
        for lo, hi in valid[1:]:
            last_lo, last_hi = merged[-1]
            if lo <= last_hi + 1:
                merged[-1] = (last_lo, max(last_hi, hi))
            else:
                merged.append((lo, hi))
        return merged

    # -- queries --------------------------------------------------------------

    @property
    def intervals(self) -> Tuple[Interval, ...]:
        return self._intervals

    def is_empty(self) -> bool:
        return not self._intervals

    def __bool__(self) -> bool:
        return bool(self._intervals)

    def __contains__(self, value: int) -> bool:
        lo, hi = 0, len(self._intervals) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            iv = self._intervals[mid]
            if value < iv.lo:
                hi = mid - 1
            elif value > iv.hi:
                lo = mid + 1
            else:
                return True
        return False

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(self._intervals)

    def __repr__(self) -> str:
        parts = ", ".join(f"[{iv.lo},{iv.hi}]" for iv in self._intervals)
        return f"IntervalSet({parts})"

    def size(self) -> int:
        """Number of integers contained in the set."""
        return sum(len(iv) for iv in self._intervals)

    def min(self) -> int:
        if not self._intervals:
            raise ValueError("empty interval set has no minimum")
        return self._intervals[0].lo

    def max(self) -> int:
        if not self._intervals:
            raise ValueError("empty interval set has no maximum")
        return self._intervals[-1].hi

    def is_singleton(self) -> bool:
        return (
            len(self._intervals) == 1
            and self._intervals[0].lo == self._intervals[0].hi
        )

    def singleton_value(self) -> int:
        if not self.is_singleton():
            raise ValueError("interval set is not a singleton")
        return self._intervals[0].lo

    def sample(self) -> int:
        """Return an arbitrary member (the smallest)."""
        return self.min()

    def iter_values(self, limit: Optional[int] = None) -> Iterator[int]:
        """Iterate over contained integers, optionally stopping after ``limit``."""
        count = 0
        for iv in self._intervals:
            for value in range(iv.lo, iv.hi + 1):
                if limit is not None and count >= limit:
                    return
                yield value
                count += 1

    # -- set algebra ----------------------------------------------------------

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        result: List[Tuple[int, int]] = []
        i = j = 0
        a, b = self._intervals, other._intervals
        while i < len(a) and j < len(b):
            lo = max(a[i].lo, b[j].lo)
            hi = min(a[i].hi, b[j].hi)
            if lo <= hi:
                result.append((lo, hi))
            if a[i].hi < b[j].hi:
                i += 1
            else:
                j += 1
        return IntervalSet(result)

    def union(self, other: "IntervalSet") -> "IntervalSet":
        pairs = [(iv.lo, iv.hi) for iv in self._intervals]
        pairs.extend((iv.lo, iv.hi) for iv in other._intervals)
        return IntervalSet(pairs)

    def complement(self, width: int) -> "IntervalSet":
        """Complement relative to the full domain of ``width`` bits."""
        top = (1 << width) - 1
        gaps: List[Tuple[int, int]] = []
        cursor = 0
        for iv in self._intervals:
            if iv.lo > cursor:
                gaps.append((cursor, iv.lo - 1))
            cursor = iv.hi + 1
            if cursor > top:
                break
        if cursor <= top:
            gaps.append((cursor, top))
        return IntervalSet(gaps)

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        if not self._intervals or not other._intervals:
            return self
        width = max(self.max(), other.max()).bit_length() or 1
        return self.intersection(other.complement(width))

    def remove_point(self, value: int) -> "IntervalSet":
        """Return a copy of the set with ``value`` removed."""
        if value not in self:
            return self
        pairs: List[Tuple[int, int]] = []
        for iv in self._intervals:
            if value < iv.lo or value > iv.hi:
                pairs.append((iv.lo, iv.hi))
                continue
            if iv.lo <= value - 1:
                pairs.append((iv.lo, value - 1))
            if value + 1 <= iv.hi:
                pairs.append((value + 1, iv.hi))
        return IntervalSet(pairs)

    def shift(self, offset: int, width: Optional[int] = None) -> "IntervalSet":
        """Translate every interval by ``offset``, clamping at 0 and the width."""
        top = (1 << width) - 1 if width is not None else None
        pairs: List[Tuple[int, int]] = []
        for iv in self._intervals:
            lo = iv.lo + offset
            hi = iv.hi + offset
            if hi < 0 or (top is not None and lo > top):
                continue
            lo = max(0, lo)
            if top is not None:
                hi = min(hi, top)
            if lo <= hi:
                pairs.append((lo, hi))
        return IntervalSet(pairs)

    def covers(self, other: "IntervalSet") -> bool:
        """True if every value of ``other`` is contained in this set."""
        return other.difference(self).is_empty()


def prefix_to_interval(address: int, prefix_len: int, width: int = 32) -> Interval:
    """Return the interval of addresses covered by ``address/prefix_len``.

    This is the translation used by the router models: an IP prefix match is
    exactly a contiguous range of destination addresses.
    """
    if not 0 <= prefix_len <= width:
        raise ValueError(f"prefix length {prefix_len} out of range for width {width}")
    host_bits = width - prefix_len
    mask = ((1 << prefix_len) - 1) << host_bits if prefix_len else 0
    lo = address & mask
    hi = lo | ((1 << host_bits) - 1)
    return Interval(lo, hi)


def intervals_from_prefixes(
    prefixes: Sequence[Tuple[int, int]], width: int = 32
) -> IntervalSet:
    """Build the interval set covered by a list of ``(address, prefix_len)``."""
    pairs = []
    for address, plen in prefixes:
        iv = prefix_to_interval(address, plen, width)
        pairs.append((iv.lo, iv.hi))
    return IntervalSet(pairs)
