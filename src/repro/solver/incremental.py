"""Incremental satisfiability: push/pop assertion scopes over a base solver.

The symbolic execution engine accumulates path constraints one conjunct at a
time, and at every branch point it asks "is the conjunction still
satisfiable?".  The plain :class:`repro.solver.solver.Solver` answers that by
re-normalising and re-propagating the *entire* conjunction, which makes the
per-branch cost grow linearly with path length (quadratic over a whole path).

:class:`SolverContext` keeps the committed prefix in solved form instead:

* every asserted formula is NNF-normalised once, and its conjuncts are
  classified exactly the way the base solver would classify them;
* conjuncts that constrain a single variable against constants (ordinary
  comparisons, ``Member`` interval sets, single-variable disjunctions) are
  absorbed immediately into a running per-variable domain map — asserting a
  new constraint only re-propagates its own atoms;
* everything else (difference atoms, mixed disjunctions, unsupported atoms)
  is kept in a *residual* list.

``check()`` then has three tiers, cheapest first:

1. if domain propagation already emptied a variable's domain the context is
   known unsat — no solver work at all (counted as a *fast path*);
2. if the residual is empty, the constraints are exactly the per-variable
   domains, which are non-empty by construction — satisfiable, again without
   a solver call (also a fast path);
3. otherwise the full conjunction is handed to the base solver, behind a
   memoization cache keyed on the canonicalized (order- and
   duplicate-insensitive) set of conjuncts, with hit/miss counters recorded
   in :class:`repro.solver.result.SolverStats`.

``push()``/``pop()`` bracket speculative assertions (the engine probes each
``If`` branch with ``push(); assume(formula); check(); pop()``) using an undo
log, so popping a scope is O(size of the scope), not O(path length).

Verdict parity: tiers 1 and 2 reproduce exactly the answers the base
solver's own domain propagation would give, and tier 3 *is* the base solver,
so a context never disagrees with ``Solver.check`` on the same conjunction.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.solver.ast import (
    And,
    Atom,
    BoolFalse,
    BoolTrue,
    Formula,
    Member,
    Or,
    Var,
    linearize,
    to_nnf,
)
from repro.obs.trace import get_tracer
from repro.solver.canonical import canonical_fingerprint
from repro.solver.intervals import IntervalSet
from repro.solver.result import SolverResult, SolverStats
from repro.solver.solver import _ATOM_TYPES, Solver
from repro.solver.verdict_cache import VerdictCache
from repro.solver.theory import (
    UnsupportedAtomError,
    _const_holds,
    classify_atom,
    domain_for,
)

_MISSING = object()  # undo-log sentinel: variable had no narrowed domain yet


class _Frame:
    """Undo information for one ``push()`` scope."""

    __slots__ = ("saved_domains", "conjunct_len", "residual_len", "unsat")

    def __init__(self, conjunct_len: int, residual_len: int, unsat: bool) -> None:
        self.saved_domains: Dict[Var, object] = {}
        self.conjunct_len = conjunct_len
        self.residual_len = residual_len
        self.unsat = unsat


class SolverContext:
    """One path's incremental assertion stack (see module docstring)."""

    __slots__ = ("_owner", "_domains", "_conjuncts", "_residual", "_unsat", "_frames")

    def __init__(self, owner: "IncrementalSolver") -> None:
        self._owner = owner
        self._domains: Dict[Var, IntervalSet] = {}
        self._conjuncts: List[Formula] = []
        self._residual: List[Formula] = []
        self._unsat = False
        self._frames: List[_Frame] = []

    @property
    def owner(self) -> "IncrementalSolver":
        return self._owner

    # -- lifecycle ------------------------------------------------------------

    def clone(self) -> "SolverContext":
        """Copy for a forked path.  Formulas and interval sets are immutable,
        so only the container objects are duplicated."""
        if self._frames:
            raise RuntimeError("cannot clone a context with open push() scopes")
        copy = SolverContext(self._owner)
        copy._domains = dict(self._domains)
        copy._conjuncts = list(self._conjuncts)
        copy._residual = list(self._residual)
        copy._unsat = self._unsat
        return copy

    # -- scopes ---------------------------------------------------------------

    def push(self) -> None:
        """Open a speculative scope; ``pop()`` undoes everything asserted in it."""
        self._frames.append(
            _Frame(len(self._conjuncts), len(self._residual), self._unsat)
        )

    def pop(self) -> None:
        """Discard the most recent ``push()`` scope."""
        if not self._frames:
            raise RuntimeError("pop() without a matching push()")
        frame = self._frames.pop()
        del self._conjuncts[frame.conjunct_len:]
        del self._residual[frame.residual_len:]
        for var, previous in frame.saved_domains.items():
            if previous is _MISSING:
                del self._domains[var]
            else:
                self._domains[var] = previous  # type: ignore[assignment]
        self._unsat = frame.unsat

    @property
    def depth(self) -> int:
        return len(self._frames)

    # -- assertion ------------------------------------------------------------

    def assume(self, formula: Formula) -> None:
        """Assert ``formula``, propagating only its own atoms."""
        stack = [to_nnf(formula)]
        while stack:
            item = stack.pop()
            if isinstance(item, BoolTrue):
                continue
            if isinstance(item, And):
                stack.extend(item.operands)
                continue
            self._conjuncts.append(item)
            if self._unsat:
                continue  # keep recording conjuncts, but no propagation needed
            if isinstance(item, BoolFalse):
                self._mark_unsat()
            elif isinstance(item, _ATOM_TYPES):
                self._assume_atom(item)
            elif isinstance(item, Member):
                self._assume_member(item)
            elif isinstance(item, Or):
                self._assume_disjunction(item)
            else:
                # to_nnf eliminates Not entirely, so anything else here is
                # not a formula node at all.
                raise TypeError(f"unexpected formula node: {item!r}")

    def _assume_atom(self, atom: Atom) -> None:
        try:
            info = classify_atom(atom)
        except UnsupportedAtomError:
            self._residual.append(atom)
            return
        if info.kind == "const":
            if not _const_holds(info.op, info.constant):
                self._mark_unsat()
            return
        if info.kind == "domain":
            assert info.var is not None
            self._narrow(
                info.var, domain_for(info.op, info.constant, info.var.width)
            )
            return
        self._residual.append(atom)  # difference atom

    def _assume_member(self, member: Member) -> None:
        linear = linearize(member.term)
        if linear.is_constant():
            if not Solver._constant_member_holds(member, linear.constant):
                self._mark_unsat()
            return
        resolved = Solver._member_domain(member)
        if resolved is None:
            self._residual.append(member)
            return
        var, allowed = resolved
        self._narrow(var, allowed)

    def _assume_disjunction(self, disjunction: Or) -> None:
        domain = Solver._single_variable_domain(disjunction)
        if domain is None:
            self._residual.append(disjunction)
            return
        var, allowed = domain
        self._narrow(var, allowed)

    def _narrow(self, var: Var, allowed: IntervalSet) -> None:
        current = self._domains.get(var)
        if self._frames:
            frame = self._frames[-1]
            if var not in frame.saved_domains:
                frame.saved_domains[var] = (
                    current if current is not None else _MISSING
                )
        if current is None:
            current = IntervalSet.full(var.width)
        narrowed = current.intersection(allowed)
        self._domains[var] = narrowed
        if narrowed.is_empty():
            self._mark_unsat()

    def _mark_unsat(self) -> None:
        self._unsat = True

    # -- queries --------------------------------------------------------------

    def check(self, want_model: bool = False) -> SolverResult:
        """Satisfiability of everything asserted so far."""
        stats = self._owner.stats
        if self._unsat:
            stats.record_fast_path()
            return SolverResult(verdict="unsat")
        if not want_model and not self._residual:
            # Pure per-variable domains, all non-empty: trivially satisfiable.
            stats.record_fast_path()
            return SolverResult(verdict="sat")
        if want_model:
            return self._owner.base.check(list(self._conjuncts), want_model=True)
        return self._owner.check_cached(self._conjuncts)

    def constraint_count(self) -> int:
        return len(self._conjuncts)


class IncrementalSolver:
    """Factory for :class:`SolverContext` plus a canonical verdict cache.

    Wraps a base :class:`Solver`; all statistics (including cache and
    fast-path counters) accumulate in ``base.stats`` so existing
    instrumentation keeps working.

    Full solves are memoized in a :class:`VerdictCache` keyed on the
    alpha-renaming-invariant :func:`canonical_fingerprint` of the conjunct
    set, so structurally similar paths — different variable names, shuffled
    conjunct order, linear-arithmetic variants of the same atoms — share one
    entry.  Passing ``verdict_cache`` lets many solvers (e.g. every job a
    campaign worker runs) share one persistent cache; ``shared_cache`` adds
    an optional cross-process tier (any dict-like object, typically a
    ``multiprocessing.Manager().dict()``) consulted on local misses and fed
    on full solves.  ``paranoid`` re-verifies every local hit against a
    from-scratch solve — a debug tripwire used by the mutation tests.
    """

    def __init__(
        self,
        base: Optional[Solver] = None,
        max_cache_entries: int = 10_000,
        verdict_cache: Optional[VerdictCache] = None,
        shared_cache: Optional[object] = None,
        paranoid: bool = False,
    ) -> None:
        self.base = base if base is not None else Solver()
        self.cache = (
            verdict_cache
            if verdict_cache is not None
            else VerdictCache(max_entries=max_cache_entries)
        )
        self.shared = shared_cache
        if shared_cache is not None and hasattr(shared_cache, "bind_stats"):
            # A sharded tier (repro.store.sharding) reports its round-trip
            # and batched-publish counters through this solver's stats.
            shared_cache.bind_stats(self.base.stats)
        self.paranoid = paranoid
        # Exact-match memo: frozenset(conjuncts) -> fingerprint.  Repeated
        # checks of the *same* growing conjunct list (every feasibility
        # probe along a path) skip re-canonicalization entirely; only the
        # first sight of a structurally new set pays the WL refinement.
        self._fingerprints: "OrderedDict[frozenset, str]" = OrderedDict()
        self._max_fingerprints = max_cache_entries
        # "unknown" results are memoized under the exact conjunct set only:
        # sound (the solver is deterministic on identical input) without
        # letting budget-dependent unknowns poison alpha-variants that a
        # fresh solve might answer definitively.
        self._exact_unknowns: "OrderedDict[frozenset, None]" = OrderedDict()
        # Per-instance counters (SolverStats aggregates across every
        # IncrementalSolver sharing the base solver).
        self._hits = 0
        self._misses = 0

    @property
    def stats(self) -> SolverStats:
        return self.base.stats

    def context(self) -> SolverContext:
        return SolverContext(self)

    # -- memoized full checks --------------------------------------------------

    @staticmethod
    def canonical_key(conjuncts: List[Formula]) -> str:
        """Order-, duplicate- and variable-name-insensitive key for a
        conjunction (see :mod:`repro.solver.canonical`)."""
        return canonical_fingerprint(conjuncts)

    def _fingerprint_of(self, exact: frozenset, conjuncts: List[Formula]) -> str:
        key = self._fingerprints.get(exact)
        if key is not None:
            self._fingerprints.move_to_end(exact)
            return key
        key = canonical_fingerprint(conjuncts)
        self._fingerprints[exact] = key
        if len(self._fingerprints) > self._max_fingerprints:
            self._fingerprints.popitem(last=False)
        return key

    def check_cached(self, conjuncts: List[Formula]) -> SolverResult:
        exact = frozenset(conjuncts)
        if exact in self._exact_unknowns:
            self._exact_unknowns.move_to_end(exact)
            self._hits += 1
            self.stats.record_cache_hit()
            return SolverResult(verdict="unknown")
        key = self._fingerprint_of(exact, conjuncts)
        verdict = self.cache.get(key)
        if verdict == "unknown":
            # Entries injected by merge/warm maps may carry "unknown";
            # serving one would suppress the very solve that could upgrade
            # it (and diverge from an uncached run).  Treat as a miss.
            verdict = None
        if verdict is not None:
            if self.paranoid:
                self.cache.verify_entry(key, conjuncts)
            self._hits += 1
            self.stats.record_cache_hit()
            return SolverResult(verdict=verdict)
        if self.shared is not None:
            try:
                verdict = self.shared.get(key)
            except Exception:
                # Broken proxy (manager gone, pipe closed): degrade to the
                # local tiers for the rest of this solver's lifetime.  The
                # counter keeps the degrade observable — answers stay
                # correct, the shared tier's speedup is what was lost.
                verdict = None
                self.shared = None
                self.stats.record_degraded_operation()
            if verdict == "unknown":
                verdict = None
            if verdict is not None:
                # Promote into the local cache; it counts as a fresh entry
                # so campaign jobs report verdicts they imported this way.
                self.cache.put(key, verdict)
                self.stats.record_shared_cache_hit()
                return SolverResult(verdict=verdict)
        self._misses += 1
        self.stats.record_cache_miss()
        tracer = get_tracer()
        if tracer.enabled:
            # Trace only full solves: they carry essentially all the solver
            # wall time, and fast paths / cache hits are far too many to
            # record span-per-check.  Guarding on ``enabled`` keeps the
            # untraced hot path free of even the kwargs dict.
            with tracer.span("solver.check", conjuncts=len(conjuncts)):
                result = self.base.check(list(conjuncts))
        else:
            result = self.base.check(list(conjuncts))
        if result.verdict == "unknown":
            # Incompleteness, not an answer: budgets are consumed in
            # conjunct order, so an alpha-variant of this set might solve
            # definitively.  Memoize only under the exact conjunct set.
            self._exact_unknowns[exact] = None
            if len(self._exact_unknowns) > self._max_fingerprints:
                self._exact_unknowns.popitem(last=False)
            return result
        self.cache.put(
            key,
            result.verdict,
            witness=list(conjuncts) if self.cache.debug else None,
        )
        if self.shared is not None:
            try:
                self.shared[key] = result.verdict
            except Exception:
                self.shared = None
                self.stats.record_degraded_operation()
        return result

    def cache_info(self) -> Tuple[int, int, int]:
        """``(hits, misses, size)`` of *this* solver's memoization cache."""
        return (self._hits, self._misses, len(self.cache))

    def clear_cache(self) -> None:
        self.cache.clear()
        self._fingerprints.clear()
        self._exact_unknowns.clear()
        self._hits = 0
        self._misses = 0
