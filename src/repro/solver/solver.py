"""Top-level satisfiability interface.

:class:`Solver` plays the role Z3 plays in the paper: SymNet hands it the
conjunction of all constraints accumulated along an execution path and asks
whether the path is feasible, optionally requesting a concrete model (used by
the conformance-testing framework to build test packets).
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.solver.ast import (
    And,
    Atom,
    BoolFalse,
    BoolTrue,
    Eq,
    Formula,
    Ge,
    Gt,
    Le,
    Lt,
    Member,
    Ne,
    Not,
    Or,
    Var,
    conjoin,
    formula_size,
    linearize,
    to_nnf,
)
from repro.solver.intervals import IntervalSet
from repro.solver.result import SolverResult, SolverStats
from repro.solver.theory import (
    TheorySolver,
    UnsupportedAtomError,
    classify_atom,
    domain_for,
)

_ATOM_TYPES = (Eq, Ne, Lt, Le, Gt, Ge)
_FORMULA_NODES = (
    Eq, Ne, Lt, Le, Gt, Ge, Member, And, Or, Not, BoolTrue, BoolFalse,
)


class Solver:
    """Decide boolean combinations of SEFL-fragment constraints.

    Parameters
    ----------
    max_case_splits:
        Upper bound on the number of disjunction branches explored before the
        solver gives up and reports "unknown".  Network models keep mixed
        disjunctions tiny, so the default is generous.
    model_search_budget:
        Budget for the concrete-assignment search used to back "sat" answers
        and to produce models.
    """

    def __init__(
        self,
        max_case_splits: int = 20_000,
        model_search_budget: int = 256,
        stats: Optional[SolverStats] = None,
    ) -> None:
        self.stats = stats if stats is not None else SolverStats()
        self._max_case_splits = max_case_splits
        self._theory = TheorySolver(model_search_budget=model_search_budget)

    # -- public API -----------------------------------------------------------

    def check(
        self,
        constraints: Union[Formula, Sequence[Formula]],
        want_model: bool = False,
    ) -> SolverResult:
        """Check satisfiability of ``constraints`` (a formula or a sequence)."""
        start = time.perf_counter()
        formula = self._as_formula(constraints)
        atoms = formula_size(formula)
        splits = [0]
        verdict, model = self._check_formula(formula, want_model, splits)
        elapsed = time.perf_counter() - start
        self.stats.record(verdict, elapsed, atoms, splits[0])
        named_model = None
        if model is not None:
            named_model = {var.name: value for var, value in model.items()}
        return SolverResult(verdict=verdict, model=named_model)

    def is_satisfiable(
        self, constraints: Union[Formula, Sequence[Formula]]
    ) -> bool:
        """Convenience wrapper treating "unknown" as satisfiable.

        The symbolic execution engine is conservative: a path is only killed
        when its constraints are *provably* unsatisfiable.
        """
        return not self.check(constraints).is_unsat

    def get_model(
        self, constraints: Union[Formula, Sequence[Formula]]
    ) -> Optional[Dict[str, int]]:
        """Return a satisfying assignment, or ``None`` if unsat/unknown."""
        result = self.check(constraints, want_model=True)
        if result.is_sat:
            return result.model
        return None

    # -- internals ------------------------------------------------------------

    @staticmethod
    def _as_formula(constraints: Union[Formula, Sequence[Formula]]) -> Formula:
        if isinstance(constraints, _FORMULA_NODES):
            return constraints
        # Any other iterable (list, tuple, generator, AppendLog, ...) is a
        # conjunction of formulas.
        return conjoin(constraints)

    def _check_formula(
        self, formula: Formula, want_model: bool, splits: List[int]
    ) -> Tuple[str, Optional[Dict[Var, int]]]:
        formula = to_nnf(formula)
        if isinstance(formula, BoolFalse):
            return "unsat", None
        if isinstance(formula, BoolTrue):
            return ("sat", {}) if want_model else ("sat", None)

        conjuncts = (
            list(formula.operands) if isinstance(formula, And) else [formula]
        )
        return self._check_conjunction(conjuncts, {}, want_model, splits)

    def _check_conjunction(
        self,
        conjuncts: List[Formula],
        extra_domains: Dict[Var, IntervalSet],
        want_model: bool,
        splits: List[int],
    ) -> Tuple[str, Optional[Dict[Var, int]]]:
        atoms: List[Atom] = []
        disjunctions: List[Or] = []
        domains: Dict[Var, IntervalSet] = dict(extra_domains)
        # Member atoms outside the single-variable fragment cannot narrow a
        # domain.  They are conjuncts, so dropping them only *relaxes* the
        # problem: an "unsat" verdict on the rest is still sound, while a
        # "sat" must degrade to "unknown" at the end.  (Mirrors how the
        # theory solver treats unsupported comparison atoms — and keeps
        # verdicts aligned with the incremental SolverContext, which also
        # keeps propagating the remaining conjuncts.)
        unsupported_member = False

        stack = list(conjuncts)
        while stack:
            item = stack.pop()
            if isinstance(item, BoolTrue):
                continue
            if isinstance(item, BoolFalse):
                return "unsat", None
            if isinstance(item, And):
                stack.extend(item.operands)
                continue
            if isinstance(item, Not):
                stack.append(to_nnf(item))
                continue
            if isinstance(item, _ATOM_TYPES):
                atoms.append(item)
                continue
            if isinstance(item, Member):
                linear = linearize(item.term)
                if linear.is_constant():
                    if not self._constant_member_holds(item, linear.constant):
                        return "unsat", None
                    continue
                resolved = self._member_domain(item)
                if resolved is None:
                    unsupported_member = True
                    continue
                var, allowed = resolved
                current = domains.get(var, IntervalSet.full(var.width))
                narrowed = current.intersection(allowed)
                if narrowed.is_empty():
                    return "unsat", None
                domains[var] = narrowed
                continue
            if isinstance(item, Or):
                domain = self._single_variable_domain(item)
                if domain is not None:
                    var, allowed = domain
                    current = domains.get(var, IntervalSet.full(var.width))
                    narrowed = current.intersection(allowed)
                    if narrowed.is_empty():
                        return "unsat", None
                    domains[var] = narrowed
                else:
                    disjunctions.append(item)
                continue
            raise TypeError(f"unexpected formula node: {item!r}")

        if not disjunctions:
            verdict, model = self._theory.check(atoms, domains, want_model)
            if unsupported_member and verdict == "sat":
                return "unknown", None
            return verdict, model

        # Quick feasibility check of the non-disjunctive part before splitting.
        base_verdict, _ = self._theory.check(atoms, domains, want_model=False)
        if base_verdict == "unsat":
            return "unsat", None

        # DPLL-style case split over the smallest disjunction first.
        disjunctions.sort(key=lambda d: len(d.operands))
        chosen = disjunctions[0]
        rest = disjunctions[1:]
        saw_unknown = False
        for branch in chosen.operands:
            if splits[0] >= self._max_case_splits:
                return "unknown", None
            splits[0] += 1
            branch_conjuncts: List[Formula] = list(atoms)
            branch_conjuncts.extend(rest)
            branch_conjuncts.append(branch)
            verdict, model = self._check_conjunction(
                branch_conjuncts, domains, want_model, splits
            )
            if verdict == "sat":
                if unsupported_member:
                    return "unknown", None
                return "sat", model
            if verdict == "unknown":
                saw_unknown = True
        # All branches unsat: sound even with a dropped unsupported Member,
        # since dropping a conjunct only relaxes the problem.
        return ("unknown", None) if saw_unknown else ("unsat", None)

    @staticmethod
    def _constant_member_holds(atom: Member, constant: int) -> bool:
        """Decide a Member atom whose term linearized to a constant.  Shared
        with the incremental solver so the two tiers cannot diverge."""
        values: IntervalSet = atom.values  # type: ignore[assignment]
        return (constant in values) != atom.negated

    @staticmethod
    def _member_domain(atom: Member) -> Optional[Tuple[Var, IntervalSet]]:
        """Turn a membership atom into a variable-domain constraint."""
        linear = linearize(atom.term)
        if len(linear.coeffs) != 1 or linear.coeffs[0][1] != 1:
            return None
        var = linear.coeffs[0][0]
        values: IntervalSet = atom.values  # type: ignore[assignment]
        # term = var + constant in values  <=>  var in (values - constant)
        allowed = values.shift(-linear.constant) if linear.constant else values
        if atom.negated:
            allowed = allowed.complement(var.width)
        return var, allowed

    @staticmethod
    def _single_variable_domain(
        disjunction: Or,
    ) -> Optional[Tuple[Var, IntervalSet]]:
        """If every disjunct constrains the same single variable against
        constants, collapse the disjunction into one interval-set domain.

        This is the optimisation that makes the egress switch/router models
        cheap: a 480 000-way ``Or`` of MAC equalities becomes a single domain
        with 480 000 points instead of 480 000 case splits.
        """
        target: Optional[Var] = None
        allowed = IntervalSet.empty()
        for operand in disjunction.operands:
            if not isinstance(operand, _ATOM_TYPES):
                return None
            try:
                info = classify_atom(operand)
            except UnsupportedAtomError:
                return None
            if info.kind != "domain" or info.var is None:
                return None
            if target is None:
                target = info.var
            elif info.var != target:
                return None
            allowed = allowed.union(
                domain_for(info.op, info.constant, info.var.width)
            )
        if target is None:
            return None
        return target, allowed
