"""Theory reasoning for conjunctions of atoms.

The theory solver decides conjunctions of:

* domain atoms — comparisons between one variable and a constant;
* equality atoms — ``x == y + c`` (weighted union-find);
* difference atoms — ``x - y <= c`` and friends (difference-bound matrix);
* disequality atoms — ``x != c`` and ``x != y + c``.

It is sound for both "sat" and "unsat" answers within this fragment.  Atoms
outside the fragment (e.g. ``x + y == z``) make the result "unknown"; the
SEFL models shipped with the library never generate such atoms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.solver.ast import (
    Atom,
    Eq,
    Ge,
    Gt,
    Le,
    Lt,
    Ne,
    Var,
    linearize,
)
from repro.solver.intervals import IntervalSet


class UnsupportedAtomError(Exception):
    """Raised when an atom falls outside the decidable fragment."""


@dataclass
class _ClassifiedAtom:
    """An atom reduced to at most two variables with unit coefficients."""

    kind: str  # "const", "domain", "diff"
    op: str
    # for "domain": var, constant
    var: Optional[Var] = None
    constant: int = 0
    # for "diff": left - right op constant
    left: Optional[Var] = None
    right: Optional[Var] = None


def classify_atom(atom: Atom) -> _ClassifiedAtom:
    """Normalise an atom into the var-vs-const / var-vs-var fragment."""
    lhs = linearize(atom.left)
    rhs = linearize(atom.right)
    # move everything to the left: lhs - rhs op 0
    coeffs: Dict[Var, int] = {}
    for var, coeff in lhs.coeffs:
        coeffs[var] = coeffs.get(var, 0) + coeff
    for var, coeff in rhs.coeffs:
        coeffs[var] = coeffs.get(var, 0) - coeff
    coeffs = {v: c for v, c in coeffs.items() if c != 0}
    constant = lhs.constant - rhs.constant
    op = atom.op

    if not coeffs:
        return _ClassifiedAtom(kind="const", op=op, constant=constant)

    if len(coeffs) == 1:
        (var, coeff), = coeffs.items()
        if coeff == 1:
            # var + constant op 0  ->  var op -constant
            return _ClassifiedAtom(kind="domain", op=op, var=var, constant=-constant)
        if coeff == -1:
            # -var + constant op 0  ->  constant op var  -> var flipped_op constant
            return _ClassifiedAtom(
                kind="domain", op=_flip(op), var=var, constant=constant
            )
        raise UnsupportedAtomError(f"non-unit coefficient in {atom!r}")

    if len(coeffs) == 2:
        items = sorted(coeffs.items(), key=lambda kv: kv[0].name)
        (v1, c1), (v2, c2) = items
        if c1 == 1 and c2 == -1:
            left, right = v1, v2
        elif c1 == -1 and c2 == 1:
            left, right = v2, v1
        else:
            raise UnsupportedAtomError(f"non-difference atom {atom!r}")
        # left - right + constant op 0  ->  left - right op -constant
        return _ClassifiedAtom(
            kind="diff", op=op, left=left, right=right, constant=-constant
        )

    raise UnsupportedAtomError(f"atom mentions more than two variables: {atom!r}")


def _flip(op: str) -> str:
    return {"==": "==", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]


def _const_holds(op: str, value: int) -> bool:
    if op == "==":
        return value == 0
    if op == "!=":
        return value != 0
    if op == "<":
        return value < 0
    if op == "<=":
        return value <= 0
    if op == ">":
        return value > 0
    if op == ">=":
        return value >= 0
    raise ValueError(op)


def domain_for(op: str, constant: int, width: int) -> IntervalSet:
    """Interval set of values of a ``width``-bit variable satisfying
    ``var op constant``."""
    full = IntervalSet.full(width)
    top = (1 << width) - 1
    if op == "==":
        if 0 <= constant <= top:
            return IntervalSet.point(constant)
        return IntervalSet.empty()
    if op == "!=":
        return full.remove_point(constant) if 0 <= constant <= top else full
    if op == "<":
        return IntervalSet.at_most(min(constant - 1, top))
    if op == "<=":
        return IntervalSet.at_most(min(constant, top))
    if op == ">":
        return IntervalSet.at_least(constant + 1, width)
    if op == ">=":
        return IntervalSet.at_least(constant, width)
    raise ValueError(op)


class _UnionFind:
    """Weighted union-find tracking ``var = root + offset`` relations."""

    def __init__(self) -> None:
        self._parent: Dict[Var, Var] = {}
        self._offset: Dict[Var, int] = {}

    def add(self, var: Var) -> None:
        if var not in self._parent:
            self._parent[var] = var
            self._offset[var] = 0

    def find(self, var: Var) -> Tuple[Var, int]:
        """Return ``(root, offset)`` such that ``var == root + offset``."""
        self.add(var)
        root = var
        offset = 0
        while self._parent[root] != root:
            offset += self._offset[root]
            root = self._parent[root]
        # path compression
        node = var
        acc = offset
        while self._parent[node] != node:
            parent = self._parent[node]
            step = self._offset[node]
            self._parent[node] = root
            self._offset[node] = acc
            acc -= step
            node = parent
        return root, offset

    def union(self, a: Var, b: Var, diff: int) -> bool:
        """Record ``a == b + diff``.  Returns False on contradiction."""
        root_a, off_a = self.find(a)
        root_b, off_b = self.find(b)
        if root_a == root_b:
            return off_a == off_b + diff
        # a = root_a + off_a ; b = root_b + off_b ; a = b + diff
        # => root_a = root_b + (off_b + diff - off_a)
        self._parent[root_a] = root_b
        self._offset[root_a] = off_b + diff - off_a
        return True

    def variables(self) -> Iterable[Var]:
        return self._parent.keys()


@dataclass
class TheoryProblem:
    """The result of analysing a conjunction of atoms."""

    domains: Dict[Var, IntervalSet] = field(default_factory=dict)
    diff_upper: Dict[Tuple[Var, Var], int] = field(default_factory=dict)
    diseqs: List[Tuple[Var, Var, int]] = field(default_factory=list)  # a != b + c
    const_diseqs: List[Tuple[Var, int]] = field(default_factory=list)  # a != c
    unsupported: List[Atom] = field(default_factory=list)


class TheorySolver:
    """Decide conjunctions of classified atoms and produce models."""

    def __init__(self, model_search_budget: int = 256) -> None:
        self._budget = model_search_budget

    # -- public API -----------------------------------------------------------

    def check(
        self,
        atoms: Iterable[Atom],
        extra_domains: Optional[Dict[Var, IntervalSet]] = None,
        want_model: bool = False,
    ) -> Tuple[str, Optional[Dict[Var, int]]]:
        """Return ``(verdict, model)`` for the conjunction of ``atoms``.

        ``extra_domains`` lets the DPLL layer pass down domain constraints
        extracted from single-variable disjunctions.
        """
        union = _UnionFind()
        domains: Dict[Var, IntervalSet] = {}
        diff_upper: Dict[Tuple[Var, Var], int] = {}
        diseqs: List[Tuple[Var, Var, int]] = []
        has_unsupported = False

        def narrow(var: Var, allowed: IntervalSet) -> bool:
            current = domains.get(var, IntervalSet.full(var.width))
            updated = current.intersection(allowed)
            domains[var] = updated
            return not updated.is_empty()

        if extra_domains:
            for var, allowed in extra_domains.items():
                union.add(var)
                if not narrow(var, allowed):
                    return "unsat", None

        for atom in atoms:
            try:
                info = classify_atom(atom)
            except UnsupportedAtomError:
                has_unsupported = True
                continue
            if info.kind == "const":
                if not _const_holds(info.op, info.constant):
                    return "unsat", None
                continue
            if info.kind == "domain":
                assert info.var is not None
                union.add(info.var)
                allowed = domain_for(info.op, info.constant, info.var.width)
                if not narrow(info.var, allowed):
                    return "unsat", None
                continue
            # difference atom: left - right op constant
            assert info.left is not None and info.right is not None
            left, right, c, op = info.left, info.right, info.constant, info.op
            union.add(left)
            union.add(right)
            if op == "==":
                if not union.union(left, right, c):
                    return "unsat", None
            elif op == "!=":
                diseqs.append((left, right, c))
            elif op == "<=":
                self._add_diff(diff_upper, left, right, c)
            elif op == "<":
                self._add_diff(diff_upper, left, right, c - 1)
            elif op == ">=":
                self._add_diff(diff_upper, right, left, -c)
            elif op == ">":
                self._add_diff(diff_upper, right, left, -c - 1)

        # Collapse everything onto union-find representatives.
        rep_domains: Dict[Var, IntervalSet] = {}
        for var in list(domains.keys()) + list(union.variables()):
            root, offset = union.find(var)
            base = rep_domains.get(root, IntervalSet.full(root.width))
            # var = root + offset; domain(var) constrains root to domain(var) - offset
            own = domains.get(var, IntervalSet.full(var.width))
            shifted = own.shift(-offset) if offset else own
            base = base.intersection(shifted)
            rep_domains[root] = base
            if base.is_empty():
                return "unsat", None

        # Difference bounds between representatives.
        rep_diff: Dict[Tuple[Var, Var], int] = {}
        for (left, right), bound in diff_upper.items():
            root_l, off_l = union.find(left)
            root_r, off_r = union.find(right)
            # (root_l + off_l) - (root_r + off_r) <= bound
            adjusted = bound - off_l + off_r
            if root_l == root_r:
                if adjusted < 0:
                    return "unsat", None
                continue
            self._add_diff(rep_diff, root_l, root_r, adjusted)

        # Disequalities between representatives.
        rep_diseqs: List[Tuple[Var, Var, int]] = []
        for left, right, c in diseqs:
            root_l, off_l = union.find(left)
            root_r, off_r = union.find(right)
            # (root_l + off_l) != (root_r + off_r) + c
            adjusted = c + off_r - off_l
            if root_l == root_r:
                if adjusted == 0:
                    return "unsat", None
                continue
            rep_diseqs.append((root_l, root_r, adjusted))

        verdict, assignment = self._solve_core(rep_domains, rep_diff, rep_diseqs)
        if verdict != "sat":
            return verdict, None
        if has_unsupported:
            # We found a model of the supported part only.
            return "unknown", None
        if not want_model:
            return "sat", None
        assert assignment is not None
        model: Dict[Var, int] = {}
        for var in union.variables():
            root, offset = union.find(var)
            model[var] = assignment[root] + offset
        for var, value in assignment.items():
            model.setdefault(var, value)
        return "sat", model

    # -- internals ------------------------------------------------------------

    @staticmethod
    def _add_diff(
        table: Dict[Tuple[Var, Var], int], left: Var, right: Var, bound: int
    ) -> None:
        key = (left, right)
        if key not in table or bound < table[key]:
            table[key] = bound

    def _solve_core(
        self,
        domains: Dict[Var, IntervalSet],
        diff_upper: Dict[Tuple[Var, Var], int],
        diseqs: List[Tuple[Var, Var, int]],
    ) -> Tuple[str, Optional[Dict[Var, int]]]:
        """Decide the representative-level problem and build an assignment."""
        variables: Set[Var] = set(domains)
        for left, right in diff_upper:
            variables.add(left)
            variables.add(right)
        for left, right, _ in diseqs:
            variables.add(left)
            variables.add(right)
        for var in variables:
            domains.setdefault(var, IntervalSet.full(var.width))

        # Tighten domains using difference bounds (Bellman-Ford style passes).
        if diff_upper:
            changed = True
            passes = 0
            limit = len(variables) + 2
            while changed and passes <= limit:
                changed = False
                passes += 1
                for (left, right), bound in diff_upper.items():
                    dom_l, dom_r = domains[left], domains[right]
                    if dom_l.is_empty() or dom_r.is_empty():
                        return "unsat", None
                    # left <= right + bound  => left_max <= right_max + bound
                    new_l = dom_l.intersection(
                        IntervalSet.at_most(dom_r.max() + bound)
                    )
                    # right >= left - bound
                    new_r = dom_r.intersection(
                        IntervalSet.at_least(dom_l.min() - bound, right.width)
                    )
                    if new_l != dom_l:
                        domains[left] = new_l
                        changed = True
                    if new_r != dom_r:
                        domains[right] = new_r
                        changed = True
                    if new_l.is_empty() or new_r.is_empty():
                        return "unsat", None
            if passes > limit and changed:
                # Negative-cycle style divergence: bounds keep shrinking.
                return "unsat", None

        # Prune constant disequalities into domains.
        remaining_diseqs: List[Tuple[Var, Var, int]] = []
        for left, right, c in diseqs:
            dom_r = domains[right]
            if dom_r.is_singleton():
                value = dom_r.singleton_value() + c
                domains[left] = domains[left].remove_point(value)
                if domains[left].is_empty():
                    return "unsat", None
                continue
            dom_l = domains[left]
            if dom_l.is_singleton():
                value = dom_l.singleton_value() - c
                domains[right] = domains[right].remove_point(value)
                if domains[right].is_empty():
                    return "unsat", None
                continue
            remaining_diseqs.append((left, right, c))

        for dom in domains.values():
            if dom.is_empty():
                return "unsat", None

        assignment = self._find_assignment(domains, diff_upper, remaining_diseqs)
        if assignment is None:
            return "unknown", None
        return "sat", assignment

    def _find_assignment(
        self,
        domains: Dict[Var, IntervalSet],
        diff_upper: Dict[Tuple[Var, Var], int],
        diseqs: List[Tuple[Var, Var, int]],
    ) -> Optional[Dict[Var, int]]:
        """Search for a concrete assignment satisfying all constraints."""
        order = sorted(domains, key=lambda v: (domains[v].size(), v.name))
        assignment: Dict[Var, int] = {}

        def consistent(var: Var, value: int) -> bool:
            for (left, right), bound in diff_upper.items():
                if left == var and right in assignment:
                    if value - assignment[right] > bound:
                        return False
                if right == var and left in assignment:
                    if assignment[left] - value > bound:
                        return False
            for left, right, c in diseqs:
                if left == var and right in assignment:
                    if value == assignment[right] + c:
                        return False
                if right == var and left in assignment:
                    if assignment[left] == value + c:
                        return False
            return True

        budget = [self._budget * max(1, len(order))]

        def backtrack(index: int) -> bool:
            if index == len(order):
                return True
            var = order[index]
            candidates = domains[var].iter_values(limit=self._budget)
            for value in candidates:
                if budget[0] <= 0:
                    return False
                budget[0] -= 1
                if consistent(var, value):
                    assignment[var] = value
                    if backtrack(index + 1):
                        return True
                    del assignment[var]
            return False

        if backtrack(0):
            return assignment
        return None
