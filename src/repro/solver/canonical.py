"""Canonical constraint fingerprints: alpha-renaming-invariant cache keys.

The incremental solver memoizes full solves on the conjunct set of a path.
A plain ``frozenset`` key only merges *literally identical* sets, but the
huge number of structurally similar paths a network induces (the paper's
scalability argument) produces conjunct sets that differ **only** in the
names of the fresh symbols the engine allocated along the way: two campaign
jobs injecting at symmetric ports, or two branches of the same job whose
symbol counters diverged, re-solve the same problem under different names.

:func:`canonical_form` maps a conjunct set to a normal form that is

* **order-independent** — conjuncts are normalised and sorted;
* **duplicate-insensitive** — structurally equal conjuncts collapse (after
  linearisation, so ``x + 1 == 5`` and ``x == 4`` are the same conjunct);
* **variable-name-independent** — variables are alpha-renamed to canonical
  indices chosen by iterated structural refinement (colour each variable by
  the multiset of its occurrences, re-render occurrences under the current
  colouring, repeat to fixpoint — a Weisfeiler-Lehman-style partition).

**Soundness invariant**: the canonical renaming is always a *bijection*
from the set's variables onto ``0..n-1``, so the canonical rendering is a
renamed copy of the original set.  Equal renderings therefore imply the two
sets are alpha-equivalent, hence equisatisfiable — a cache keyed on the
fingerprint can never serve a verdict for a semantically different set
(fingerprints are SHA-256 over the rendering; hash collisions aside).
Variables the refinement cannot separate (automorphic-looking ties) are
split by individualise-and-refine: try each member of the first tied class,
recurse, keep the lexicographically smallest rendering.  If that search
exceeds :data:`SYMMETRY_BUDGET` leaves, we fall back to breaking ties by
the original variable names — still a bijection (still sound), merely no
longer name-independent for that pathological set (a missed cache hit, not
a wrong one).  ``CanonicalForm.used_name_fallback`` reports when this
happened; the mutation/soundness suite in ``tests/test_canonical_cache.py``
pins both directions.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.solver.ast import (
    And,
    BoolFalse,
    BoolTrue,
    Formula,
    Member,
    Or,
    Var,
    linearize,
    to_nnf,
)

#: Leaf budget for the individualise-and-refine symmetry search.  Conjunct
#: sets produced by network models have tiny symmetric classes (usually
#: none), so this is generous; exceeding it triggers the sound name-order
#: fallback.
SYMMETRY_BUDGET = 64

#: Colour marking the focused variable while computing occurrence
#: signatures.  Real colours are >= 0.
_FOCUS = -1

_OP_NAMES = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le"}
_FLIPPED = {">": "lt", ">=": "le"}


# ---------------------------------------------------------------------------
# Structural normalisation (phase 1): formulas -> IR trees with Var leaves
# ---------------------------------------------------------------------------
#
# IR nodes are plain tuples so that phase 2 can render them cheaply:
#   ("bool", 0|1)
#   ("cmp", op, coeffs, k)            -- sum(c_i * v_i) + k  op  0
#   ("member", negated, coeffs, k, values)
#   ("and"|"or", (children...))
# ``coeffs`` is a tuple of (Var, int) pairs; eq/ne keep an ambiguous sign
# that rendering resolves by taking the smaller of the two orientations.

_IR = Tuple


def _negated_coeffs(coeffs: Tuple[Tuple[Var, int], ...]) -> Tuple[Tuple[Var, int], ...]:
    return tuple((var, -coeff) for var, coeff in coeffs)


def _normalize(formula: Formula) -> _IR:
    formula = to_nnf(formula)
    if isinstance(formula, BoolTrue):
        return ("bool", 1)
    if isinstance(formula, BoolFalse):
        return ("bool", 0)
    if isinstance(formula, (And, Or)):
        tag = "and" if isinstance(formula, And) else "or"
        return (tag, tuple(_normalize(op) for op in formula.operands))
    if isinstance(formula, Member):
        linear = linearize(formula.term)
        values = tuple(
            (interval.lo, interval.hi) for interval in formula.values.intervals
        )
        return (
            "member",
            1 if formula.negated else 0,
            linear.coeffs,
            linear.constant,
            values,
        )
    # Comparison atom: move everything left (lhs - rhs op 0) and orient
    # > / >= as < / <= by negating the linear combination.
    lhs = linearize(formula.left)
    rhs = linearize(formula.right)
    merged: Dict[Var, int] = {}
    for var, coeff in lhs.coeffs:
        merged[var] = merged.get(var, 0) + coeff
    for var, coeff in rhs.coeffs:
        merged[var] = merged.get(var, 0) - coeff
    coeffs = tuple(
        sorted(
            ((v, c) for v, c in merged.items() if c != 0),
            key=lambda item: item[0].name,
        )
    )
    constant = lhs.constant - rhs.constant
    op = formula.op
    if op in _FLIPPED:
        return ("cmp", _FLIPPED[op], _negated_coeffs(coeffs), -constant)
    return ("cmp", _OP_NAMES[op], coeffs, constant)


def _ir_variables(node: _IR, into: Dict[Var, None]) -> None:
    tag = node[0]
    if tag == "bool":
        return
    if tag in ("and", "or"):
        for child in node[1]:
            _ir_variables(child, into)
        return
    coeffs = node[2]
    for var, _ in coeffs:
        into.setdefault(var, None)


# ---------------------------------------------------------------------------
# Rendering (phase 2): IR + colouring -> comparable nested tuples
# ---------------------------------------------------------------------------


def _render_coeffs(
    coeffs: Tuple[Tuple[Var, int], ...],
    colors: Dict[Var, int],
    focus: Optional[Var],
) -> Tuple[Tuple[int, int, int], ...]:
    """Each occurrence renders as (colour, width, coefficient); the width is
    inlined so two sets differing only in a variable's bit width can never
    share a rendering."""
    return tuple(
        sorted(
            (
                _FOCUS if var == focus else colors[var],
                var.width,
                coeff,
            )
            for var, coeff in coeffs
        )
    )


def _render(node: _IR, colors: Dict[Var, int], focus: Optional[Var] = None) -> _IR:
    tag = node[0]
    if tag == "bool":
        return node
    if tag in ("and", "or"):
        children = sorted(
            (_render(child, colors, focus) for child in node[1]), key=repr
        )
        return (tag, tuple(children))
    if tag == "member":
        _, negated, coeffs, k, values = node
        return ("member", negated, _render_coeffs(coeffs, colors, focus), k, values)
    _, op, coeffs, k = node
    if op in ("eq", "ne"):
        # x - y == k and y - x == -k are the same atom: keep whichever
        # orientation renders smaller under the current colouring.
        forward = ("cmp", op, _render_coeffs(coeffs, colors, focus), k)
        backward = ("cmp", op, _render_coeffs(_negated_coeffs(coeffs), colors, focus), -k)
        return min(forward, backward, key=repr)
    return ("cmp", op, _render_coeffs(coeffs, colors, focus), k)


def _final_rendering(irs: Sequence[_IR], indices: Dict[Var, int]) -> Tuple:
    rendered = {_render(ir, indices) for ir in irs}
    return ("cf1", tuple(sorted(rendered, key=repr)))


# ---------------------------------------------------------------------------
# Colour refinement and symmetry breaking
# ---------------------------------------------------------------------------


def _partition(colors: Dict[Var, int]) -> Dict[int, Tuple[Var, ...]]:
    classes: Dict[int, List[Var]] = {}
    for var, color in colors.items():
        classes.setdefault(color, []).append(var)
    return {color: tuple(members) for color, members in classes.items()}


def _refine(
    irs: Sequence[_IR],
    occurrences: Dict[Var, List[_IR]],
    colors: Dict[Var, int],
) -> Dict[Var, int]:
    """Iterate occurrence-signature colouring to a fixpoint partition."""
    for _ in range(len(colors) + 1):
        signatures: Dict[Var, Tuple] = {}
        for var in colors:
            occ = sorted(
                (_render(ir, colors, focus=var) for ir in occurrences[var]),
                key=repr,
            )
            signatures[var] = (colors[var], var.width, tuple(occ))
        ranked = sorted(set(signatures.values()), key=repr)
        rank = {sig: index for index, sig in enumerate(ranked)}
        new_colors = {var: rank[signatures[var]] for var in colors}
        if len(ranked) == len(set(colors.values())):
            return new_colors
        colors = new_colors
    return colors


def _canonical_indices(
    irs: Sequence[_IR],
    occurrences: Dict[Var, List[_IR]],
    colors: Dict[Var, int],
    budget: List[int],
) -> Optional[Dict[Var, int]]:
    """Assign each variable a unique canonical index, individualising tied
    colour classes.  Returns ``None`` when the symmetry budget is exhausted
    (caller falls back to name-order tie-breaking)."""
    colors = _refine(irs, occurrences, colors)
    classes = _partition(colors)
    tied = sorted(
        (color for color, members in classes.items() if len(members) > 1)
    )
    if not tied:
        order = sorted(colors, key=colors.get)
        return {var: index for index, var in enumerate(order)}
    members = classes[tied[0]]
    fresh = max(colors.values()) + 1
    best_map: Optional[Dict[Var, int]] = None
    best_key: Optional[str] = None
    for candidate in members:
        if budget[0] <= 0:
            return None
        budget[0] -= 1
        individualized = dict(colors)
        individualized[candidate] = fresh
        submap = _canonical_indices(irs, occurrences, individualized, budget)
        if submap is None:
            return None
        key = repr(_final_rendering(irs, submap))
        if best_key is None or key < best_key:
            best_key = key
            best_map = submap
    return best_map


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CanonicalForm:
    """The canonical normal form of one conjunct set."""

    #: SHA-256 hex digest of ``rendering`` — the cross-process cache key.
    fingerprint: str
    #: The canonical rendering itself (nested tuples of ints/strings only,
    #: so it is hashable, comparable and stable across processes).
    rendering: Tuple
    #: The original variables in canonical-index order: ``variables[i]`` is
    #: the variable renamed to index ``i`` (the witness bijection).
    variables: Tuple[Var, ...]
    #: True when symmetry breaking exceeded the budget and ties were broken
    #: by original variable names (sound, but not name-independent).
    used_name_fallback: bool = False


def canonical_form(conjuncts: Iterable[Formula]) -> CanonicalForm:
    """Canonicalize a conjunct set (see module docstring)."""
    irs: List[_IR] = []
    for formula in conjuncts:
        node = _normalize(formula)
        if node == ("bool", 1):
            continue  # TRUE conjuncts carry no information
        irs.append(node)

    var_table: Dict[Var, None] = {}
    for node in irs:
        _ir_variables(node, var_table)
    variables = list(var_table)

    occurrences: Dict[Var, List[_IR]] = {var: [] for var in variables}
    for node in irs:
        node_vars: Dict[Var, None] = {}
        _ir_variables(node, node_vars)
        for var in node_vars:
            occurrences[var].append(node)

    used_fallback = False
    if variables:
        colors = {var: 0 for var in variables}
        budget = [SYMMETRY_BUDGET]
        indices = _canonical_indices(irs, occurrences, colors, budget)
        if indices is None:
            # Sound fallback: a deterministic bijection that consults the
            # original names to break the remaining ties.
            refined = _refine(irs, occurrences, {var: 0 for var in variables})
            order = sorted(
                variables, key=lambda v: (refined[v], v.width, v.name)
            )
            indices = {var: index for index, var in enumerate(order)}
            used_fallback = True
    else:
        indices = {}

    rendering = _final_rendering(irs, indices)
    digest = hashlib.sha256(repr(rendering).encode("utf-8")).hexdigest()
    ordered = tuple(sorted(indices, key=indices.get))
    return CanonicalForm(
        fingerprint=digest,
        rendering=rendering,
        variables=ordered,
        used_name_fallback=used_fallback,
    )


def canonical_fingerprint(conjuncts: Iterable[Formula]) -> str:
    """The alpha-renaming-invariant cache key of a conjunct set."""
    return canonical_form(conjuncts).fingerprint


# ---------------------------------------------------------------------------
# Generic entity-graph canonicalization (the job symmetry layer)
# ---------------------------------------------------------------------------
#
# The machinery above is specialised to conjunct sets whose only renameable
# objects are solver variables.  The campaign symmetry layer needs the same
# WL-refinement + individualise-and-refine idea over an arbitrary relational
# structure: a set of *entities* (network elements, ports, constant cells,
# string literals) related by *atoms* — nested tuples in which entity
# occurrences are wrapped in :class:`Ent` and unordered sub-collections in
# :class:`USet`.  Everything not wrapped is treated as a literal and must
# match exactly.
#
# The soundness argument is the same as for conjunct sets: the canonical
# index assignment is always a bijection from entities onto ``0..n-1``, and
# the final rendering replaces every entity occurrence by its canonical
# index, so equal renderings imply the index-aligned entity pairing is an
# isomorphism of the two atom structures.  Ties the refinement cannot break
# within :data:`ENTITY_SYMMETRY_BUDGET` leaves fall back to a greedy
# individualise-and-refine pass ordered by the caller's ``fallback_keys`` —
# still a bijection (any deterministic tie-break is sound), and whenever the
# surviving tied classes are full symmetric orbits (interchangeable campaign
# zones), the greedy pass produces aligned renderings for automorphic jobs,
# which a flat name sort does not: relative name order shifts with the
# focused port (``zr10`` sorts before ``zr2``), while orbit-transitivity
# guarantees an automorphism matching any greedy choice sequence.

#: Leaf budget for entity-graph individualise-and-refine.  Campaign
#: topologies routinely keep large automorphism groups even after the
#: injection port is individualised (the 15 unmarked Stanford zones), so a
#: deep search is pointless: the greedy fallback below is cheap and still
#: merges same-network jobs.
ENTITY_SYMMETRY_BUDGET = 24


class Ent:
    """Marks an entity occurrence inside an atom tree."""

    __slots__ = ("token",)

    def __init__(self, token) -> None:
        self.token = token

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Ent({self.token!r})"


class USet:
    """Marks an unordered sub-collection inside an atom tree (rendered as a
    sorted tuple, so member order never influences the canonical form)."""

    __slots__ = ("items",)

    def __init__(self, items) -> None:
        self.items = tuple(items)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"USet({self.items!r})"


@dataclass(frozen=True)
class EntityCanonicalForm:
    """Canonical form of an entity-graph structure."""

    #: SHA-256 hex digest of ``rendering``.
    fingerprint: str
    #: The canonical rendering (nested tuples of literals and entity
    #: indices).
    rendering: Tuple
    #: Entity tokens in canonical-index order: ``entities[i]`` was renamed
    #: to index ``i``.  Two forms with equal renderings are isomorphic via
    #: ``A.entities[i] -> B.entities[i]`` — the recorded bijection.
    entities: Tuple
    #: True when the symmetry search fell back to ``fallback_keys`` order.
    used_name_fallback: bool = False


def _render_atom(atom, colors: Dict, focus) -> Tuple:
    """Slow, fully general render used for final renderings (once per form)."""
    if isinstance(atom, Ent):
        if focus is not None and atom.token == focus:
            return ("ent*",)
        return ("ent", colors[atom.token])
    if isinstance(atom, USet):
        return (
            "set",
            tuple(sorted((_render_atom(i, colors, focus) for i in atom.items), key=repr)),
        )
    if isinstance(atom, tuple):
        return tuple(_render_atom(item, colors, focus) for item in atom)
    return atom


def _atom_entities(atom, into: Dict) -> None:
    if isinstance(atom, Ent):
        into.setdefault(atom.token, None)
    elif isinstance(atom, USet):
        for item in atom.items:
            _atom_entities(item, into)
    elif isinstance(atom, tuple):
        for item in atom:
            _atom_entities(item, into)


class _FlatAtom:
    """An atom compiled for fast refinement renders: a literal *template*
    (entity slots and unordered groups replaced by positional markers), the
    ordered entity slots, and the unordered all-entity groups.  ``complex``
    flags USets with non-entity members, which keep the slow render path."""

    __slots__ = ("tree", "template", "slots", "groups", "complex", "template_id")

    def __init__(self, tree) -> None:
        self.tree = tree
        self.slots: List = []
        self.groups: List[List] = []
        self.complex = False
        self.template = self._compile(tree)
        self.template_id = -1  # assigned deterministically by the caller

    def _compile(self, node):
        if isinstance(node, Ent):
            self.slots.append(node.token)
            return ("slot#", len(self.slots) - 1)
        if isinstance(node, USet):
            if all(isinstance(item, Ent) for item in node.items):
                self.groups.append([item.token for item in node.items])
                return ("uset#", len(self.groups) - 1)
            self.complex = True
            return ("uset!",)
        if isinstance(node, tuple):
            return tuple(self._compile(item) for item in node)
        return node

    def render(self, colors: Dict, focus) -> Tuple:
        if self.complex:
            # -1 keeps the first component an int so mixed fast/slow renders
            # stay mutually comparable when sorted.
            return (-1, repr(_render_atom(self.tree, colors, focus)), ())
        slot_colors = tuple(
            _FOCUS if (focus is not None and token == focus) else colors[token]
            for token in self.slots
        )
        group_colors = tuple(
            tuple(
                sorted(
                    _FOCUS if (focus is not None and token == focus) else colors[token]
                    for token in group
                )
            )
            for group in self.groups
        )
        return (self.template_id, slot_colors, group_colors)


def _entity_refine(flats_of: Dict, colors: Dict) -> Dict:
    """Iterate WL occurrence-signature colouring over entities to fixpoint."""
    for _ in range(len(colors) + 1):
        signatures: Dict = {}
        for token in colors:
            occ = sorted(flat.render(colors, token) for flat in flats_of[token])
            signatures[token] = (colors[token], tuple(occ))
        ranked = sorted(set(signatures.values()))
        rank = {sig: index for index, sig in enumerate(ranked)}
        new_colors = {token: rank[signatures[token]] for token in colors}
        if len(ranked) == len(set(colors.values())):
            return new_colors
        colors = new_colors
    return colors


def _entity_rendering(atoms: Sequence, indices: Dict) -> Tuple:
    rendered = sorted((_render_atom(atom, indices, None) for atom in atoms), key=repr)
    return ("ecf1", tuple(rendered))


def _entity_indices(
    atoms: Sequence, flats_of: Dict, colors: Dict, budget: List[int]
) -> Optional[Dict]:
    colors = _entity_refine(flats_of, colors)
    classes: Dict[int, List] = {}
    for token, color in colors.items():
        classes.setdefault(color, []).append(token)
    tied = sorted(color for color, members in classes.items() if len(members) > 1)
    if not tied:
        order = sorted(colors, key=colors.get)
        return {token: index for index, token in enumerate(order)}
    # A residual symmetry bigger than the whole budget cannot be searched;
    # bail out immediately instead of burning the budget on a lost cause
    # (campaign topologies keep 10!-sized automorphism groups).
    residual = sum(len(classes[color]) - 1 for color in tied)
    if residual > budget[0]:
        return None
    members = sorted(classes[tied[0]], key=repr)
    fresh = max(colors.values()) + 1
    best_map: Optional[Dict] = None
    best_key: Optional[str] = None
    for candidate in members:
        if budget[0] <= 0:
            return None
        budget[0] -= 1
        individualized = dict(colors)
        individualized[candidate] = fresh
        submap = _entity_indices(atoms, flats_of, individualized, budget)
        if submap is None:
            return None
        key = repr(_entity_rendering(atoms, submap))
        if best_key is None or key < best_key:
            best_key = key
            best_map = submap
    return best_map


def _aligned_fallback_indices(
    atoms: Sequence, flats_of: Dict, colors: Dict, fallback_keys: Dict
) -> Dict:
    """Greedy individualise-and-refine used when the exact search exceeds
    its budget.  Each round batch-individualises the smallest surviving
    tied colour class (members ordered by ``fallback_keys``) and
    re-refines until the colouring is discrete.

    Any deterministic tie-break keeps merging sound — equal renderings
    still certify an isomorphism — so the only question is *alignment*:
    do two automorphic structures end up with corresponding orders?  When
    every surviving tied class is a full symmetric orbit (interchangeable
    zones — the campaign case), yes: orbit transitivity supplies an
    automorphism matching any pair of greedy choice sequences.  A flat
    name sort lacks this property because relative name order shifts with
    the focused port (``zr10`` sorts before ``zr2``)."""
    colors = _entity_refine(flats_of, colors)
    for _ in range(len(colors) + 1):
        classes: Dict[int, List] = {}
        for token, color in colors.items():
            classes.setdefault(color, []).append(token)
        tied = sorted(
            color for color, members in classes.items() if len(members) > 1
        )
        if not tied:
            break
        members = sorted(classes[tied[0]], key=lambda t: fallback_keys[t])
        fresh = max(colors.values()) + 1
        colors = dict(colors)
        for offset, token in enumerate(members):
            colors[token] = fresh + offset
        colors = _entity_refine(flats_of, colors)
    order = sorted(colors, key=lambda t: (colors[t], fallback_keys[t]))
    return {token: index for index, token in enumerate(order)}


def canonical_entity_form(
    atoms: Sequence,
    base_colors: Dict,
    fallback_keys: Dict,
    budget: int = ENTITY_SYMMETRY_BUDGET,
) -> EntityCanonicalForm:
    """Canonicalize an entity-graph structure.

    ``atoms`` is a sequence of nested tuples with :class:`Ent` / :class:`USet`
    wrappers; ``base_colors`` maps every entity token to its initial colour
    (entities with distinct base colours can never be identified — this is
    how callers pin roles and config-referenced objects); ``fallback_keys``
    maps every entity token to a *unique* orderable key consulted only when
    the symmetry search exceeds its budget.
    """
    entity_table: Dict = {}
    for atom in atoms:
        _atom_entities(atom, entity_table)
    for token in base_colors:
        entity_table.setdefault(token, None)
    tokens = list(entity_table)

    flats = [_FlatAtom(atom) for atom in atoms]
    templates = sorted({repr(flat.template) for flat in flats})
    template_rank = {template: index for index, template in enumerate(templates)}
    for flat in flats:
        flat.template_id = template_rank[repr(flat.template)]

    flats_of: Dict = {token: [] for token in tokens}
    for flat in flats:
        seen: Dict = {}
        _atom_entities(flat.tree, seen)
        for token in seen:
            flats_of[token].append(flat)

    used_fallback = False
    if tokens:
        ranked = sorted({repr(base_colors[t]) for t in tokens})
        rank = {key: index for index, key in enumerate(ranked)}
        colors = {t: rank[repr(base_colors[t])] for t in tokens}
        search_budget = [budget]
        indices = _entity_indices(atoms, flats_of, colors, search_budget)
        if indices is None:
            indices = _aligned_fallback_indices(
                atoms, flats_of, colors, fallback_keys
            )
            used_fallback = True
    else:
        indices = {}

    rendering = _entity_rendering(atoms, indices)
    digest = hashlib.sha256(repr(rendering).encode("utf-8")).hexdigest()
    ordered = tuple(sorted(indices, key=indices.get))
    return EntityCanonicalForm(
        fingerprint=digest,
        rendering=rendering,
        entities=ordered,
        used_name_fallback=used_fallback,
    )
