"""Canonical constraint fingerprints: alpha-renaming-invariant cache keys.

The incremental solver memoizes full solves on the conjunct set of a path.
A plain ``frozenset`` key only merges *literally identical* sets, but the
huge number of structurally similar paths a network induces (the paper's
scalability argument) produces conjunct sets that differ **only** in the
names of the fresh symbols the engine allocated along the way: two campaign
jobs injecting at symmetric ports, or two branches of the same job whose
symbol counters diverged, re-solve the same problem under different names.

:func:`canonical_form` maps a conjunct set to a normal form that is

* **order-independent** — conjuncts are normalised and sorted;
* **duplicate-insensitive** — structurally equal conjuncts collapse (after
  linearisation, so ``x + 1 == 5`` and ``x == 4`` are the same conjunct);
* **variable-name-independent** — variables are alpha-renamed to canonical
  indices chosen by iterated structural refinement (colour each variable by
  the multiset of its occurrences, re-render occurrences under the current
  colouring, repeat to fixpoint — a Weisfeiler-Lehman-style partition).

**Soundness invariant**: the canonical renaming is always a *bijection*
from the set's variables onto ``0..n-1``, so the canonical rendering is a
renamed copy of the original set.  Equal renderings therefore imply the two
sets are alpha-equivalent, hence equisatisfiable — a cache keyed on the
fingerprint can never serve a verdict for a semantically different set
(fingerprints are SHA-256 over the rendering; hash collisions aside).
Variables the refinement cannot separate (automorphic-looking ties) are
split by individualise-and-refine: try each member of the first tied class,
recurse, keep the lexicographically smallest rendering.  If that search
exceeds :data:`SYMMETRY_BUDGET` leaves, we fall back to breaking ties by
the original variable names — still a bijection (still sound), merely no
longer name-independent for that pathological set (a missed cache hit, not
a wrong one).  ``CanonicalForm.used_name_fallback`` reports when this
happened; the mutation/soundness suite in ``tests/test_canonical_cache.py``
pins both directions.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.solver.ast import (
    And,
    BoolFalse,
    BoolTrue,
    Formula,
    Member,
    Or,
    Var,
    linearize,
    to_nnf,
)

#: Leaf budget for the individualise-and-refine symmetry search.  Conjunct
#: sets produced by network models have tiny symmetric classes (usually
#: none), so this is generous; exceeding it triggers the sound name-order
#: fallback.
SYMMETRY_BUDGET = 64

#: Colour marking the focused variable while computing occurrence
#: signatures.  Real colours are >= 0.
_FOCUS = -1

_OP_NAMES = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le"}
_FLIPPED = {">": "lt", ">=": "le"}


# ---------------------------------------------------------------------------
# Structural normalisation (phase 1): formulas -> IR trees with Var leaves
# ---------------------------------------------------------------------------
#
# IR nodes are plain tuples so that phase 2 can render them cheaply:
#   ("bool", 0|1)
#   ("cmp", op, coeffs, k)            -- sum(c_i * v_i) + k  op  0
#   ("member", negated, coeffs, k, values)
#   ("and"|"or", (children...))
# ``coeffs`` is a tuple of (Var, int) pairs; eq/ne keep an ambiguous sign
# that rendering resolves by taking the smaller of the two orientations.

_IR = Tuple


def _negated_coeffs(coeffs: Tuple[Tuple[Var, int], ...]) -> Tuple[Tuple[Var, int], ...]:
    return tuple((var, -coeff) for var, coeff in coeffs)


def _normalize(formula: Formula) -> _IR:
    formula = to_nnf(formula)
    if isinstance(formula, BoolTrue):
        return ("bool", 1)
    if isinstance(formula, BoolFalse):
        return ("bool", 0)
    if isinstance(formula, (And, Or)):
        tag = "and" if isinstance(formula, And) else "or"
        return (tag, tuple(_normalize(op) for op in formula.operands))
    if isinstance(formula, Member):
        linear = linearize(formula.term)
        values = tuple(
            (interval.lo, interval.hi) for interval in formula.values.intervals
        )
        return (
            "member",
            1 if formula.negated else 0,
            linear.coeffs,
            linear.constant,
            values,
        )
    # Comparison atom: move everything left (lhs - rhs op 0) and orient
    # > / >= as < / <= by negating the linear combination.
    lhs = linearize(formula.left)
    rhs = linearize(formula.right)
    merged: Dict[Var, int] = {}
    for var, coeff in lhs.coeffs:
        merged[var] = merged.get(var, 0) + coeff
    for var, coeff in rhs.coeffs:
        merged[var] = merged.get(var, 0) - coeff
    coeffs = tuple(
        sorted(
            ((v, c) for v, c in merged.items() if c != 0),
            key=lambda item: item[0].name,
        )
    )
    constant = lhs.constant - rhs.constant
    op = formula.op
    if op in _FLIPPED:
        return ("cmp", _FLIPPED[op], _negated_coeffs(coeffs), -constant)
    return ("cmp", _OP_NAMES[op], coeffs, constant)


def _ir_variables(node: _IR, into: Dict[Var, None]) -> None:
    tag = node[0]
    if tag == "bool":
        return
    if tag in ("and", "or"):
        for child in node[1]:
            _ir_variables(child, into)
        return
    coeffs = node[2]
    for var, _ in coeffs:
        into.setdefault(var, None)


# ---------------------------------------------------------------------------
# Rendering (phase 2): IR + colouring -> comparable nested tuples
# ---------------------------------------------------------------------------


def _render_coeffs(
    coeffs: Tuple[Tuple[Var, int], ...],
    colors: Dict[Var, int],
    focus: Optional[Var],
) -> Tuple[Tuple[int, int, int], ...]:
    """Each occurrence renders as (colour, width, coefficient); the width is
    inlined so two sets differing only in a variable's bit width can never
    share a rendering."""
    return tuple(
        sorted(
            (
                _FOCUS if var == focus else colors[var],
                var.width,
                coeff,
            )
            for var, coeff in coeffs
        )
    )


def _render(node: _IR, colors: Dict[Var, int], focus: Optional[Var] = None) -> _IR:
    tag = node[0]
    if tag == "bool":
        return node
    if tag in ("and", "or"):
        children = sorted(
            (_render(child, colors, focus) for child in node[1]), key=repr
        )
        return (tag, tuple(children))
    if tag == "member":
        _, negated, coeffs, k, values = node
        return ("member", negated, _render_coeffs(coeffs, colors, focus), k, values)
    _, op, coeffs, k = node
    if op in ("eq", "ne"):
        # x - y == k and y - x == -k are the same atom: keep whichever
        # orientation renders smaller under the current colouring.
        forward = ("cmp", op, _render_coeffs(coeffs, colors, focus), k)
        backward = ("cmp", op, _render_coeffs(_negated_coeffs(coeffs), colors, focus), -k)
        return min(forward, backward, key=repr)
    return ("cmp", op, _render_coeffs(coeffs, colors, focus), k)


def _final_rendering(irs: Sequence[_IR], indices: Dict[Var, int]) -> Tuple:
    rendered = {_render(ir, indices) for ir in irs}
    return ("cf1", tuple(sorted(rendered, key=repr)))


# ---------------------------------------------------------------------------
# Colour refinement and symmetry breaking
# ---------------------------------------------------------------------------


def _partition(colors: Dict[Var, int]) -> Dict[int, Tuple[Var, ...]]:
    classes: Dict[int, List[Var]] = {}
    for var, color in colors.items():
        classes.setdefault(color, []).append(var)
    return {color: tuple(members) for color, members in classes.items()}


def _refine(
    irs: Sequence[_IR],
    occurrences: Dict[Var, List[_IR]],
    colors: Dict[Var, int],
) -> Dict[Var, int]:
    """Iterate occurrence-signature colouring to a fixpoint partition."""
    for _ in range(len(colors) + 1):
        signatures: Dict[Var, Tuple] = {}
        for var in colors:
            occ = sorted(
                (_render(ir, colors, focus=var) for ir in occurrences[var]),
                key=repr,
            )
            signatures[var] = (colors[var], var.width, tuple(occ))
        ranked = sorted(set(signatures.values()), key=repr)
        rank = {sig: index for index, sig in enumerate(ranked)}
        new_colors = {var: rank[signatures[var]] for var in colors}
        if len(ranked) == len(set(colors.values())):
            return new_colors
        colors = new_colors
    return colors


def _canonical_indices(
    irs: Sequence[_IR],
    occurrences: Dict[Var, List[_IR]],
    colors: Dict[Var, int],
    budget: List[int],
) -> Optional[Dict[Var, int]]:
    """Assign each variable a unique canonical index, individualising tied
    colour classes.  Returns ``None`` when the symmetry budget is exhausted
    (caller falls back to name-order tie-breaking)."""
    colors = _refine(irs, occurrences, colors)
    classes = _partition(colors)
    tied = sorted(
        (color for color, members in classes.items() if len(members) > 1)
    )
    if not tied:
        order = sorted(colors, key=colors.get)
        return {var: index for index, var in enumerate(order)}
    members = classes[tied[0]]
    fresh = max(colors.values()) + 1
    best_map: Optional[Dict[Var, int]] = None
    best_key: Optional[str] = None
    for candidate in members:
        if budget[0] <= 0:
            return None
        budget[0] -= 1
        individualized = dict(colors)
        individualized[candidate] = fresh
        submap = _canonical_indices(irs, occurrences, individualized, budget)
        if submap is None:
            return None
        key = repr(_final_rendering(irs, submap))
        if best_key is None or key < best_key:
            best_key = key
            best_map = submap
    return best_map


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CanonicalForm:
    """The canonical normal form of one conjunct set."""

    #: SHA-256 hex digest of ``rendering`` — the cross-process cache key.
    fingerprint: str
    #: The canonical rendering itself (nested tuples of ints/strings only,
    #: so it is hashable, comparable and stable across processes).
    rendering: Tuple
    #: The original variables in canonical-index order: ``variables[i]`` is
    #: the variable renamed to index ``i`` (the witness bijection).
    variables: Tuple[Var, ...]
    #: True when symmetry breaking exceeded the budget and ties were broken
    #: by original variable names (sound, but not name-independent).
    used_name_fallback: bool = False


def canonical_form(conjuncts: Iterable[Formula]) -> CanonicalForm:
    """Canonicalize a conjunct set (see module docstring)."""
    irs: List[_IR] = []
    for formula in conjuncts:
        node = _normalize(formula)
        if node == ("bool", 1):
            continue  # TRUE conjuncts carry no information
        irs.append(node)

    var_table: Dict[Var, None] = {}
    for node in irs:
        _ir_variables(node, var_table)
    variables = list(var_table)

    occurrences: Dict[Var, List[_IR]] = {var: [] for var in variables}
    for node in irs:
        node_vars: Dict[Var, None] = {}
        _ir_variables(node, node_vars)
        for var in node_vars:
            occurrences[var].append(node)

    used_fallback = False
    if variables:
        colors = {var: 0 for var in variables}
        budget = [SYMMETRY_BUDGET]
        indices = _canonical_indices(irs, occurrences, colors, budget)
        if indices is None:
            # Sound fallback: a deterministic bijection that consults the
            # original names to break the remaining ties.
            refined = _refine(irs, occurrences, {var: 0 for var in variables})
            order = sorted(
                variables, key=lambda v: (refined[v], v.width, v.name)
            )
            indices = {var: index for index, var in enumerate(order)}
            used_fallback = True
    else:
        indices = {}

    rendering = _final_rendering(irs, indices)
    digest = hashlib.sha256(repr(rendering).encode("utf-8")).hexdigest()
    ordered = tuple(sorted(indices, key=indices.get))
    return CanonicalForm(
        fingerprint=digest,
        rendering=rendering,
        variables=ordered,
        used_name_fallback=used_fallback,
    )


def canonical_fingerprint(conjuncts: Iterable[Formula]) -> str:
    """The alpha-renaming-invariant cache key of a conjunct set."""
    return canonical_form(conjuncts).fingerprint
