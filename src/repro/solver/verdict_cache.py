"""Cross-job verdict cache keyed on canonical constraint fingerprints.

A :class:`VerdictCache` maps :func:`repro.solver.canonical.canonical_fingerprint`
keys to solver verdicts (``"sat"`` / ``"unsat"`` / ``"unknown"``).  Because
the key is alpha-renaming-invariant, one cache serves every structurally
similar path of every campaign job that shares it: per-worker caches live in
the campaign runtime cache and survive across jobs, their fresh entries are
merged back into the campaign report (warming later campaigns), and an
optional process-shared tier (a ``multiprocessing.Manager`` dict) lets
parallel workers exchange verdicts live.

Soundness instrumentation
-------------------------

Aggressive caching is only shippable with a tripwire for silent weakening:

* ``put``/``merge`` refuse to overwrite an entry with a *different* verdict
  (:class:`CacheConflictError`) — the solver is deterministic, so a conflict
  proves either canonicalization collapsed two inequivalent sets or an entry
  was corrupted;
* in ``debug`` mode the cache retains a witness conjunct set per entry, and
  :meth:`VerdictCache.verify_entry` / :meth:`VerdictCache.verify_witnesses`
  re-derive the fingerprint and re-solve from scratch, raising
  :class:`CacheCorruptionError` on any mismatch.  The mutation tests in
  ``tests/test_canonical_cache.py`` corrupt entries deliberately and assert
  these hooks catch it.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.solver.ast import Formula
from repro.solver.canonical import canonical_fingerprint

_VERDICTS = ("sat", "unsat", "unknown")


class CacheCorruptionError(RuntimeError):
    """A cache entry failed re-verification against a from-scratch solve."""


class CacheConflictError(RuntimeError):
    """Two different verdicts were recorded for the same fingerprint."""


def resolve_verdict(existing: Optional[str], incoming: str) -> str:
    """The one policy for combining verdicts recorded under one fingerprint:
    ``"replace"`` (take the incoming verdict), ``"keep"`` (retain the
    existing one) or ``"conflict"``.

    "unknown" is budget-dependent solver incompleteness, not a semantic
    claim — the split/model-search budgets are consumed in conjunct order,
    so alpha-variants of one set may legitimately land on "unknown" vs a
    definite verdict.  A definite verdict therefore supersedes an unknown
    and is never downgraded by one; only definite-vs-definite disagreement
    proves a cache (or canonicalization) is corrupt.
    """
    if incoming not in _VERDICTS:
        raise ValueError(f"not a solver verdict: {incoming!r}")
    if existing is None or (existing == "unknown" and incoming != "unknown"):
        return "replace"
    if existing == incoming or incoming == "unknown":
        return "keep"
    return "conflict"


class VerdictCache:
    """Bounded LRU map from canonical fingerprints to solver verdicts."""

    __slots__ = ("_entries", "_witnesses", "_fresh", "_max_entries", "debug",
                 "hits", "misses", "merged", "applied_tokens")

    def __init__(self, max_entries: int = 100_000, debug: bool = False) -> None:
        self._entries: "OrderedDict[str, str]" = OrderedDict()
        self._witnesses: Dict[str, Tuple[Formula, ...]] = {}
        # Entries added (computed or imported from a shared tier) since the
        # last begin_collection() — what a campaign job reports back.
        # Tracked independently of the LRU so eviction cannot lose verdicts
        # a job already paid for.
        self._fresh: Dict[str, str] = {}
        self._max_entries = max_entries
        self.debug = debug
        self.hits = 0
        self.misses = 0
        self.merged = 0
        # Idempotence tokens for bulk imports: a campaign stamps its warm
        # map with a content token so only the first job per worker pays
        # the merge (see campaign.execute_job).
        self.applied_tokens: set = set()

    # -- basic mapping ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def get(self, fingerprint: str) -> Optional[str]:
        verdict = self._entries.get(fingerprint)
        if verdict is None:
            self.misses += 1
            return None
        self._entries.move_to_end(fingerprint)
        self.hits += 1
        return verdict

    def peek(self, fingerprint: str) -> Optional[str]:
        """Look up an entry without touching LRU order or hit/miss counters
        (the store's load-time conflict probing must not skew statistics)."""
        return self._entries.get(fingerprint)

    def put(
        self,
        fingerprint: str,
        verdict: str,
        witness: Optional[Iterable[Formula]] = None,
        fresh: bool = True,
    ) -> None:
        existing = self._entries.get(fingerprint)
        action = resolve_verdict(existing, verdict)
        if action == "conflict":
            raise CacheConflictError(
                f"fingerprint {fingerprint[:12]}… already maps to "
                f"{existing!r}, refusing to overwrite with {verdict!r}"
            )
        if action == "keep" and existing != verdict:
            return  # an "unknown" never downgrades a definite entry
        self._entries[fingerprint] = verdict
        self._entries.move_to_end(fingerprint)
        if self.debug and witness is not None:
            self._witnesses[fingerprint] = tuple(witness)
        if fresh:
            self._fresh[fingerprint] = verdict
        while len(self._entries) > self._max_entries:
            evicted, _ = self._entries.popitem(last=False)
            self._witnesses.pop(evicted, None)

    def snapshot(self) -> Dict[str, str]:
        """Picklable copy of every entry (for merging / warm starts)."""
        return dict(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self._witnesses.clear()
        self._fresh.clear()
        self.applied_tokens.clear()
        self.hits = 0
        self.misses = 0
        self.merged = 0

    # -- campaign plumbing -----------------------------------------------------

    def begin_collection(self) -> None:
        """Start a fresh-entry collection window (one per campaign job)."""
        self._fresh = {}

    def fresh_entries(self) -> Dict[str, str]:
        """Entries added since :meth:`begin_collection`."""
        return dict(self._fresh)

    def merge(self, entries: Mapping[str, str], strict: bool = True) -> int:
        """Import ``entries`` (a snapshot / campaign report), returning how
        many were new.  A definite verdict supersedes an "unknown"; a
        definite-vs-definite conflict raises :class:`CacheConflictError`
        unless ``strict`` is False (then the existing entry wins)."""
        added = 0
        for fingerprint in sorted(entries):
            verdict = entries[fingerprint]
            existing = self._entries.get(fingerprint)
            action = resolve_verdict(existing, verdict)
            if action == "conflict" and strict:
                raise CacheConflictError(
                    f"merge conflict on {fingerprint[:12]}…: "
                    f"cache has {existing!r}, incoming {verdict!r}"
                )
            if action == "replace":
                self.put(fingerprint, verdict, fresh=False)
                if existing is None:
                    added += 1
        self.merged += added
        return added

    # -- soundness hooks -------------------------------------------------------

    def verify_entry(
        self,
        fingerprint: str,
        conjuncts: Iterable[Formula],
        solver: Optional[object] = None,
    ) -> bool:
        """Re-derive ``fingerprint`` from ``conjuncts`` and re-solve them
        from scratch; raise :class:`CacheCorruptionError` on any mismatch."""
        conjuncts = list(conjuncts)
        recomputed = canonical_fingerprint(conjuncts)
        if recomputed != fingerprint:
            raise CacheCorruptionError(
                f"fingerprint mismatch: entry keyed {fingerprint[:12]}… but "
                f"witness canonicalizes to {recomputed[:12]}…"
            )
        stored = self._entries.get(fingerprint)
        if stored is None:
            raise CacheCorruptionError(
                f"no entry for fingerprint {fingerprint[:12]}…"
            )
        if solver is None:
            from repro.solver.solver import Solver

            solver = Solver()
        fresh = solver.check(conjuncts)
        # An "unknown" on either side contradicts nothing (budget-dependent
        # incompleteness); only definite-vs-definite disagreement is proof
        # of corruption.
        if (
            fresh.verdict != stored
            and fresh.verdict != "unknown"
            and stored != "unknown"
        ):
            raise CacheCorruptionError(
                f"verdict mismatch for {fingerprint[:12]}…: cache says "
                f"{stored!r}, fresh solve says {fresh.verdict!r}"
            )
        return True

    def verify_witnesses(self, solver: Optional[object] = None) -> int:
        """Verify every retained debug witness; returns how many were
        checked.  Only meaningful when the cache was built with
        ``debug=True``."""
        checked = 0
        for fingerprint, witness in list(self._witnesses.items()):
            self.verify_entry(fingerprint, witness, solver)
            checked += 1
        return checked
