"""The declarative query object model of the session API.

A :class:`Query` is a *description* of a network-wide question — it carries
no execution state.  The plan compiler (:mod:`repro.api.planner`) inspects a
batch of queries for (a) the injection ports they jointly need and (b) the
raw per-job facts the campaign workers must collect, runs the minimal set of
engine jobs, and calls :meth:`Query.evaluate` to demultiplex each query's
answer out of the shared campaign result.

Leaf queries
    :class:`Reach`, :class:`Loop`, :class:`Invariant`,
    :class:`HeaderVisible`, :class:`AdmittedValues`
Combinators
    :class:`All`, :class:`Any_`, :class:`Not` (over queries with a boolean
    verdict)
Quantifiers over port sets
    :class:`ForAllPairs` (the model's default injection ports),
    :class:`FromPorts` (an explicit port set)

Every query has a canonical textual form (:meth:`Query.describe`) — the same
form the CLI's ``query`` subcommand parses — and every answer is a
:class:`QueryResult` with a verdict, a JSON-able value, evidence, and a
stable fingerprint.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.queries import port_key

PortLike = Union[str, Tuple[str, str]]


def normalize_port(port: PortLike, default_port: str = "in0") -> Tuple[str, str]:
    """Accept ``(element, port)`` tuples, ``"element:port"`` strings, or bare
    element names (which get the conventional ``in0`` input port)."""
    if isinstance(port, tuple):
        element, name = port
        return (str(element), str(name))
    element, sep, name = str(port).partition(":")
    if not element:
        raise ValueError(f"invalid port {port!r}")
    return (element, name if sep else default_port)


def _endpoint_text(endpoint: str) -> str:
    """Destination endpoints may be a full ``element:port`` or a bare
    element (matching every port of that element)."""
    return endpoint


def _fingerprint_payload(payload: object) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, default=str).encode()
    ).hexdigest()


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


@dataclass
class QueryResult:
    """One query's demultiplexed answer.

    ``holds`` is the boolean verdict (``None`` for report-style queries such
    as the all-pairs matrix or witness sampling), ``value`` the JSON-able
    answer body, ``evidence`` supporting facts (example delivery traces, loop
    port traces, violation lists), and ``backend`` the aggregation object the
    answer was computed from (:class:`~repro.core.queries.ReachabilityMatrix`
    and friends) — kept for bit-identical comparison against legacy campaign
    results, never serialised.
    """

    query: str
    kind: str
    holds: Optional[bool]
    value: object
    evidence: Dict[str, object] = field(default_factory=dict)
    backend: object = None
    #: Fingerprint restored from a persistent plan-result cache entry
    #: (repro.store).  Backend objects are never serialised, so a cached
    #: answer carries the fingerprint its original computed — which the
    #: store-parity tests assert is bit-identical to a fresh execution.
    stored_fingerprint: Optional[str] = None

    @property
    def fingerprint(self) -> str:
        """Stable content hash of the answer: identical for any execution
        order, worker count, or cache configuration."""
        if self.stored_fingerprint is not None:
            return self.stored_fingerprint
        if self.backend is not None and hasattr(self.backend, "fingerprint"):
            payload: object = repr(self.backend.fingerprint())
        else:
            payload = self.value
        return _fingerprint_payload(
            {"query": self.query, "kind": self.kind, "holds": self.holds,
             "payload": payload}
        )

    @classmethod
    def from_cached(cls, payload: Dict[str, object]) -> "QueryResult":
        """Rebuild an answer from its serialised form (plan-result cache)."""
        return cls(
            query=str(payload.get("query", "")),
            kind=str(payload.get("kind", "")),
            holds=payload.get("holds"),  # type: ignore[arg-type]
            value=payload.get("value"),
            evidence=dict(payload.get("evidence") or {}),
            stored_fingerprint=str(payload.get("fingerprint", "")) or None,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "query": self.query,
            "kind": self.kind,
            "holds": self.holds,
            "value": self.value,
            "evidence": self.evidence,
            "fingerprint": self.fingerprint,
        }


# ---------------------------------------------------------------------------
# Requirements (what the jobs must collect)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Requirements:
    """The raw per-job facts a query needs the campaign workers to collect."""

    kinds: frozenset = frozenset()
    invariant_fields: frozenset = frozenset()
    visibility_fields: frozenset = frozenset()
    witness_fields: frozenset = frozenset()  # of (field, samples)
    record_examples: bool = False

    def merge(self, other: "Requirements") -> "Requirements":
        return Requirements(
            kinds=self.kinds | other.kinds,
            invariant_fields=self.invariant_fields | other.invariant_fields,
            visibility_fields=self.visibility_fields | other.visibility_fields,
            witness_fields=self.witness_fields | other.witness_fields,
            record_examples=self.record_examples or other.record_examples,
        )


# ---------------------------------------------------------------------------
# Query base
# ---------------------------------------------------------------------------


class Query:
    """Base class: a declarative, executable-by-plan network question."""

    #: Whether the query has a boolean verdict (required under All/Any/Not).
    decidable = True

    def requirements(self) -> Requirements:
        raise NotImplementedError

    def injections(self) -> Tuple[Tuple[str, str], ...]:
        """Injection ports this query explicitly needs."""
        return ()

    def needs_default_injections(self) -> bool:
        """True when the query quantifies over the model's default ports."""
        return False

    def describe(self) -> str:
        raise NotImplementedError

    def evaluate(self, ctx) -> QueryResult:
        return self._evaluate(ctx, ctx.resolve_scope(self))

    def _evaluate(self, ctx, scope: Tuple[str, ...]) -> QueryResult:
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.describe()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Query):
            return NotImplemented
        return self.describe() == other.describe()

    def __hash__(self) -> int:
        return hash(self.describe())


# ---------------------------------------------------------------------------
# Leaf queries
# ---------------------------------------------------------------------------


class Reach(Query):
    """Can packets injected at ``src`` be delivered at ``dst``?

    ``src`` is an injection port (``"element:port"``, ``(element, port)`` or
    a bare element name, defaulting to ``in0``).  ``dst`` is a terminal
    output port, or a bare element name matching any of its ports.
    """

    def __init__(self, src: PortLike, dst: PortLike) -> None:
        self.src = normalize_port(src)
        if isinstance(dst, tuple):
            self.dst = port_key(*dst)
        else:
            self.dst = str(dst)

    @property
    def src_key(self) -> str:
        return port_key(*self.src)

    def _dst_matches(self, destination: str) -> bool:
        if ":" in self.dst:
            return destination == self.dst
        return destination.partition(":")[0] == self.dst

    def requirements(self) -> Requirements:
        return Requirements(
            kinds=frozenset({"reachability"}), record_examples=True
        )

    def injections(self) -> Tuple[Tuple[str, str], ...]:
        return (self.src,)

    def describe(self) -> str:
        return f"reach({self.src_key}, {_endpoint_text(self.dst)})"

    def _evaluate(self, ctx, scope: Tuple[str, ...]) -> QueryResult:
        matrix = ctx.subreport("reachability", (self.src_key,))
        counts = {
            destination: count
            for source, destination, count in matrix.pairs()
            if source == self.src_key and self._dst_matches(destination)
        }
        examples: Dict[str, List[str]] = {}
        for job in ctx.jobs_for((self.src_key,)):
            for destination, trace in sorted(job.delivered_examples.items()):
                if self._dst_matches(destination) and destination not in examples:
                    examples[destination] = list(trace)
        return QueryResult(
            query=self.describe(),
            kind="reach",
            holds=sum(counts.values()) > 0,
            value={"path_counts": dict(sorted(counts.items()))},
            evidence={
                "examples": examples,
                "destinations_from_source": matrix.destinations_from(
                    self.src_key
                ),
            },
        )


class Loop(Query):
    """Is the network loop-free (from one injection port, or — by default —
    from every default injection port)?  ``holds`` is True when **no** loop
    was found."""

    def __init__(self, port: Optional[PortLike] = None) -> None:
        self.port = normalize_port(port) if port is not None else None

    def requirements(self) -> Requirements:
        return Requirements(kinds=frozenset({"loops"}))

    def injections(self) -> Tuple[Tuple[str, str], ...]:
        return (self.port,) if self.port is not None else ()

    def needs_default_injections(self) -> bool:
        return self.port is None

    def describe(self) -> str:
        return f"loop({port_key(*self.port) if self.port else ''})"

    def _evaluate(self, ctx, scope: Tuple[str, ...]) -> QueryResult:
        report = ctx.subreport("loops", scope)
        return QueryResult(
            query=self.describe(),
            kind="loop",
            holds=report.loop_free,
            value=report.to_dict(),
            evidence={
                "findings": len(report.findings),
                "sources_with_loops": report.sources_with_loops(),
            },
            backend=report,
        )


class Invariant(Query):
    """Do the given header fields provably keep their injected values on
    every delivered path (from one port, or every default port)?

    A field that could not be checked anywhere (vacuous) reports ``holds``
    False — the tool never hands out a green verdict it did not earn.
    """

    def __init__(self, *fields: str, port: Optional[PortLike] = None) -> None:
        if len(fields) == 1 and isinstance(fields[0], (tuple, list)):
            fields = tuple(fields[0])
        if not fields:
            raise ValueError("Invariant needs at least one header field")
        self.fields = tuple(str(f) for f in fields)
        self.port = normalize_port(port) if port is not None else None

    def requirements(self) -> Requirements:
        return Requirements(
            kinds=frozenset({"invariants"}),
            invariant_fields=frozenset(self.fields),
        )

    def injections(self) -> Tuple[Tuple[str, str], ...]:
        return (self.port,) if self.port is not None else ()

    def needs_default_injections(self) -> bool:
        return self.port is None

    def describe(self) -> str:
        fields = "+".join(self.fields)
        if self.port is not None:
            return f"invariant({fields}, {port_key(*self.port)})"
        return f"invariant({fields})"

    def _evaluate(self, ctx, scope: Tuple[str, ...]) -> QueryResult:
        report = ctx.subreport("invariants", scope, invariant_fields=self.fields)
        vacuous = [f for f in self.fields if report.field_vacuous(f)]
        return QueryResult(
            query=self.describe(),
            kind="invariant",
            holds=all(report.field_holds(f) for f in self.fields),
            value=report.to_dict(),
            evidence={
                "violations": [
                    {"source": source, "field": name, **cell.to_dict()}
                    for source, name, cell in report.violations()
                ],
                "vacuous_fields": vacuous,
            },
            backend=report,
        )


class HeaderVisible(Query):
    """Is the symbol the source wrote into ``field`` still provably readable
    where the packets are delivered (at port/element ``at``, or anywhere)?

    Distinguishes a field that carries the sender's symbol end-to-end from
    one that was overwritten (NAT, encryption) — the §6 visibility test,
    lifted network-wide.
    """

    def __init__(
        self,
        field_name: str,
        at: Optional[PortLike] = None,
        port: Optional[PortLike] = None,
    ) -> None:
        self.field_name = str(field_name)
        if at is None:
            self.at = None
        elif isinstance(at, tuple):
            self.at = port_key(*at)
        else:
            self.at = str(at)
        self.port = normalize_port(port) if port is not None else None

    def _at_matches(self, destination: str) -> bool:
        if self.at is None:
            return True
        if ":" in self.at:
            return destination == self.at
        return destination.partition(":")[0] == self.at

    def requirements(self) -> Requirements:
        return Requirements(visibility_fields=frozenset({self.field_name}))

    def injections(self) -> Tuple[Tuple[str, str], ...]:
        return (self.port,) if self.port is not None else ()

    def needs_default_injections(self) -> bool:
        return self.port is None

    def describe(self) -> str:
        parts = [self.field_name]
        if self.at is not None:
            parts.append(f"at={self.at}")
        if self.port is not None:
            parts.append(f"port={port_key(*self.port)}")
        return f"header_visible({', '.join(parts)})"

    def _evaluate(self, ctx, scope: Tuple[str, ...]) -> QueryResult:
        checked = visible = skipped = 0
        by_source: Dict[str, Dict[str, Dict[str, int]]] = {}
        for job in ctx.jobs_for(scope):
            for destination, cell in sorted(
                job.visibility.get(self.field_name, {}).items()
            ):
                if not self._at_matches(destination):
                    continue
                checked += cell.get("checked", 0)
                visible += cell.get("visible", 0)
                skipped += cell.get("skipped", 0)
                by_source.setdefault(job.source_key, {})[destination] = dict(cell)
        return QueryResult(
            query=self.describe(),
            kind="header_visible",
            holds=checked > 0 and visible == checked,
            value={
                "field": self.field_name,
                "at": self.at,
                "checked": checked,
                "visible": visible,
                "skipped": skipped,
            },
            evidence={"by_source": by_source},
        )


class AdmittedValues(Query):
    """Which concrete values can ``field`` take on packets delivered at
    ``at`` (or anywhere)?  A report query — no boolean verdict — collecting
    up to ``samples`` solver witnesses per (injection, destination)."""

    decidable = False

    def __init__(
        self,
        field_name: str,
        at: Optional[PortLike] = None,
        samples: int = 3,
        port: Optional[PortLike] = None,
    ) -> None:
        if samples < 1:
            raise ValueError("samples must be >= 1")
        self.field_name = str(field_name)
        if at is None:
            self.at = None
        elif isinstance(at, tuple):
            self.at = port_key(*at)
        else:
            self.at = str(at)
        self.samples = int(samples)
        self.port = normalize_port(port) if port is not None else None

    def _at_matches(self, destination: str) -> bool:
        if self.at is None:
            return True
        if ":" in self.at:
            return destination == self.at
        return destination.partition(":")[0] == self.at

    def requirements(self) -> Requirements:
        return Requirements(
            witness_fields=frozenset({(self.field_name, self.samples)})
        )

    def injections(self) -> Tuple[Tuple[str, str], ...]:
        return (self.port,) if self.port is not None else ()

    def needs_default_injections(self) -> bool:
        return self.port is None

    def describe(self) -> str:
        parts = [self.field_name]
        if self.at is not None:
            parts.append(f"at={self.at}")
        parts.append(f"samples={self.samples}")
        if self.port is not None:
            parts.append(f"port={port_key(*self.port)}")
        return f"admitted_values({', '.join(parts)})"

    def _evaluate(self, ctx, scope: Tuple[str, ...]) -> QueryResult:
        values = set()
        by_source: Dict[str, Dict[str, List[int]]] = {}
        for job in ctx.jobs_for(scope):
            for destination, found in sorted(
                job.witnesses.get(self.field_name, {}).items()
            ):
                if not self._at_matches(destination) or not found:
                    continue
                values.update(found)
                by_source.setdefault(job.source_key, {})[destination] = list(found)
        return QueryResult(
            query=self.describe(),
            kind="admitted_values",
            holds=None,
            value={
                "field": self.field_name,
                "at": self.at,
                "values": sorted(values),
            },
            evidence={"by_source": by_source},
        )


# ---------------------------------------------------------------------------
# Combinators
# ---------------------------------------------------------------------------


class _Combinator(Query):
    name = "?"

    def __init__(self, *queries: Query) -> None:
        if not queries:
            raise ValueError(f"{self.name}() needs at least one query")
        for query in queries:
            if not isinstance(query, Query):
                raise TypeError(f"{self.name}() takes queries, got {query!r}")
            if not query.decidable:
                raise TypeError(
                    f"{self.name}() needs queries with a boolean verdict; "
                    f"{query.describe()} is a report query"
                )
        self.queries = tuple(queries)

    def requirements(self) -> Requirements:
        merged = Requirements()
        for query in self.queries:
            merged = merged.merge(query.requirements())
        return merged

    def injections(self) -> Tuple[Tuple[str, str], ...]:
        ports: List[Tuple[str, str]] = []
        for query in self.queries:
            ports.extend(query.injections())
        return tuple(sorted(set(ports)))

    def needs_default_injections(self) -> bool:
        return any(q.needs_default_injections() for q in self.queries)

    def describe(self) -> str:
        return f"{self.name}({', '.join(q.describe() for q in self.queries)})"

    def _verdict(self, verdicts: Sequence[bool]) -> bool:
        raise NotImplementedError

    def _evaluate(self, ctx, scope: Tuple[str, ...]) -> QueryResult:
        children = [query.evaluate(ctx) for query in self.queries]
        return QueryResult(
            query=self.describe(),
            kind=self.name,
            holds=self._verdict([bool(child.holds) for child in children]),
            value=[child.to_dict() for child in children],
            evidence={"children": [child.fingerprint for child in children]},
        )


class All(_Combinator):
    """True when every sub-query holds."""

    name = "all"

    def _verdict(self, verdicts: Sequence[bool]) -> bool:
        return all(verdicts)


class Any_(_Combinator):
    """True when at least one sub-query holds."""

    name = "any"

    def _verdict(self, verdicts: Sequence[bool]) -> bool:
        return any(verdicts)


class Not(_Combinator):
    """Negates a single sub-query's verdict."""

    name = "not"

    def __init__(self, query: Query) -> None:
        super().__init__(query)

    def _verdict(self, verdicts: Sequence[bool]) -> bool:
        return not verdicts[0]


# ---------------------------------------------------------------------------
# Quantifiers over port sets
# ---------------------------------------------------------------------------


def _is_reach_template(template: object) -> bool:
    return template is Reach


class _Quantifier(Query):
    """Shared machinery of ForAllPairs/FromPorts: a template — the
    :class:`Reach` *class* for the all-pairs matrix, or a query instance —
    evaluated over a quantifier-chosen injection scope."""

    decidable = False  # matrix mode has no boolean verdict; delegate mode
    # restores the template's own decidability in __init__.

    def __init__(self, template) -> None:
        if _is_reach_template(template):
            self.template = Reach
        elif isinstance(template, Query):
            self.template = template
            self.decidable = template.decidable
        else:
            raise TypeError(
                "quantifiers take the Reach class or a query instance, "
                f"not {template!r}"
            )

    def _template_text(self) -> str:
        return "reach" if self.template is Reach else self.template.describe()

    def requirements(self) -> Requirements:
        if self.template is Reach:
            return Requirements(kinds=frozenset({"reachability"}))
        return self.template.requirements()

    def _scope_keys(self, ctx) -> Tuple[str, ...]:
        raise NotImplementedError

    def _evaluate(self, ctx, scope: Tuple[str, ...]) -> QueryResult:
        keys = self._scope_keys(ctx)
        if self.template is Reach:
            matrix = ctx.subreport("reachability", keys)
            return QueryResult(
                query=self.describe(),
                kind="reach_matrix",
                holds=None,
                value=matrix.to_dict(),
                evidence={"reachable_pairs": matrix.pair_count()},
                backend=matrix,
            )
        inner = self.template._evaluate(ctx, keys)
        inner.query = self.describe()
        return inner


class ForAllPairs(_Quantifier):
    """Quantify a template over **all** of the model's default injection
    ports.  ``ForAllPairs(Reach)`` is the all-pairs reachability matrix;
    ``ForAllPairs(Invariant("IpSrc"))`` forces network-wide scope even for a
    template that names a port."""

    def needs_default_injections(self) -> bool:
        return True

    def describe(self) -> str:
        return f"forall_pairs({self._template_text()})"

    def _scope_keys(self, ctx) -> Tuple[str, ...]:
        return ctx.default_scope()


class FromPorts(_Quantifier):
    """Quantify a template over an explicit injection port set."""

    def __init__(self, ports: Sequence[PortLike], template) -> None:
        super().__init__(template)
        normalized = tuple(sorted({normalize_port(p) for p in ports}))
        if not normalized:
            raise ValueError("FromPorts needs at least one port")
        self.ports = normalized

    def injections(self) -> Tuple[Tuple[str, str], ...]:
        # The quantifier's scope *replaces* the template's own port (same as
        # ForAllPairs), so only the quantifier ports become jobs.
        return self.ports

    def needs_default_injections(self) -> bool:
        return False

    def describe(self) -> str:
        ports = "+".join(port_key(*p) for p in self.ports)
        return f"from_ports({ports}, {self._template_text()})"

    def _scope_keys(self, ctx) -> Tuple[str, ...]:
        return tuple(port_key(*p) for p in self.ports)


#: ``Any`` shadows ``typing.Any`` when star-imported; the trailing
#: underscore is the class's real name, this alias the ergonomic one.
Any = Any_
