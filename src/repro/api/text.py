"""A tiny textual form of the query object model, for the CLI.

The grammar mirrors :meth:`Query.describe` exactly, so every query
round-trips: ``parse_query(q.describe()).describe() == q.describe()``.

::

    query  := NAME [ '(' args ')' ]
    args   := arg (',' arg)*
    arg    := NAME '=' value | value
    value  := query | atom ('+' atom)*      # '+' builds lists (ports, fields)
    atom   := /[A-Za-z0-9_.:*\\-]+/          # element:port, field names, ints

Examples::

    reach(a:in0, b:out0)          loop()            loop(acl0:in0)
    invariant(IpSrc+IpDst)        invariant(IpSrc, acl0:in0)
    header_visible(IpSrc, at=r1:out0)
    admitted_values(TcpDst, at=r1:out0, samples=3)
    all(loop(), invariant(IpSrc)) not(reach(a:in0, b))
    forall_pairs(reach)           from_ports(a:in0+b:in0, loop())
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Tuple, Union

from repro.api.queries import (
    AdmittedValues,
    All,
    Any_,
    ForAllPairs,
    FromPorts,
    HeaderVisible,
    Invariant,
    Loop,
    Not,
    Query,
    Reach,
)


class QueryParseError(ValueError):
    """A textual query that does not parse (or names an unknown query)."""


_TOKEN = re.compile(r"\s*([A-Za-z0-9_.:*\-]+|[(),=+])")

# AST nodes: ("call", name, [(key|None, node), ...]) | ("atom", text)
#            | ("list", [text, ...])
_Node = Tuple


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            if text[pos:].strip():
                raise QueryParseError(
                    f"unexpected character {text[pos:].strip()[0]!r} in query "
                    f"{text!r}"
                )
            break
        tokens.append(match.group(1))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.pos = 0

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise QueryParseError(f"unexpected end of query {self.text!r}")
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.take()
        if got != token:
            raise QueryParseError(
                f"expected {token!r}, got {got!r} in query {self.text!r}"
            )

    def parse(self) -> _Node:
        node = self.parse_value()
        if self.peek() is not None:
            raise QueryParseError(
                f"trailing input {self.peek()!r} in query {self.text!r}"
            )
        return node

    def parse_value(self) -> _Node:
        head = self.take()
        if head in "(),=+":
            raise QueryParseError(
                f"expected a name, got {head!r} in query {self.text!r}"
            )
        if self.peek() == "(":
            self.take()
            args: List[Tuple[Optional[str], _Node]] = []
            if self.peek() == ")":
                self.take()
                return ("call", head, args)
            while True:
                args.append(self.parse_arg())
                token = self.take()
                if token == ")":
                    return ("call", head, args)
                if token != ",":
                    raise QueryParseError(
                        f"expected ',' or ')', got {token!r} in query "
                        f"{self.text!r}"
                    )
        if self.peek() == "+":
            items = [head]
            while self.peek() == "+":
                self.take()
                items.append(self.take())
            return ("list", items)
        return ("atom", head)

    def parse_arg(self) -> Tuple[Optional[str], _Node]:
        # A keyword argument is NAME '=' value; anything else is positional.
        if (
            self.pos + 1 < len(self.tokens)
            and self.tokens[self.pos + 1] == "="
            and self.tokens[self.pos] not in "(),=+"
        ):
            key = self.take()
            self.expect("=")
            return (key, self.parse_value())
        return (None, self.parse_value())


# ---------------------------------------------------------------------------
# AST -> query objects
# ---------------------------------------------------------------------------


def _atom_text(node: _Node, what: str, text: str) -> str:
    if node[0] != "atom":
        raise QueryParseError(f"expected {what} in query {text!r}")
    return node[1]


def _atoms(node: _Node, what: str, text: str) -> List[str]:
    if node[0] == "list":
        return list(node[1])
    return [_atom_text(node, what, text)]


def _int_value(node: _Node, what: str, text: str) -> int:
    raw = _atom_text(node, what, text)
    try:
        return int(raw)
    except ValueError:
        raise QueryParseError(f"{what} must be an integer, got {raw!r}")


def _split_args(
    args: Sequence[Tuple[Optional[str], _Node]],
    name: str,
    text: str,
    allowed_keys: Sequence[str],
) -> Tuple[List[_Node], dict]:
    positional: List[_Node] = []
    keywords: dict = {}
    for key, node in args:
        if key is None:
            positional.append(node)
        elif key in allowed_keys:
            if key in keywords:
                raise QueryParseError(f"duplicate {key}= in {name}(...)")
            keywords[key] = node
        else:
            raise QueryParseError(
                f"unknown keyword {key!r} in {name}(...); "
                f"allowed: {', '.join(allowed_keys) or '(none)'}"
            )
    return positional, keywords


def _build(node: _Node, text: str) -> Query:
    if node[0] == "atom":
        # Bare names are sugar for zero-argument calls: "loop" == "loop()".
        node = ("call", node[1], [])
    if node[0] != "call":
        raise QueryParseError(f"expected a query in {text!r}")
    _, name, args = node
    builder = _BUILDERS.get(name)
    if builder is None:
        known = ", ".join(sorted(_BUILDERS))
        raise QueryParseError(f"unknown query {name!r}; known: {known}")
    return builder(args, text)


def _build_template(node: _Node, text: str) -> Union[type, Query]:
    if node[0] == "atom" and node[1] == "reach":
        return Reach
    return _build(node, text)


def _build_reach(args, text) -> Query:
    positional, _ = _split_args(args, "reach", text, ())
    if len(positional) != 2:
        raise QueryParseError("reach(src, dst) takes exactly two ports")
    return Reach(
        _atom_text(positional[0], "a source port", text),
        _atom_text(positional[1], "a destination", text),
    )


def _build_loop(args, text) -> Query:
    positional, keywords = _split_args(args, "loop", text, ("port",))
    if len(positional) > 1:
        raise QueryParseError("loop([port]) takes at most one port")
    port = None
    if positional:
        port = _atom_text(positional[0], "a port", text)
    elif "port" in keywords:
        port = _atom_text(keywords["port"], "a port", text)
    return Loop(port)


def _build_invariant(args, text) -> Query:
    positional, keywords = _split_args(args, "invariant", text, ("port",))
    if not positional or len(positional) > 2:
        raise QueryParseError("invariant(fields[, port]) takes 1-2 arguments")
    fields = _atoms(positional[0], "field names", text)
    port = None
    if len(positional) == 2:
        port = _atom_text(positional[1], "a port", text)
    elif "port" in keywords:
        port = _atom_text(keywords["port"], "a port", text)
    return Invariant(*fields, port=port)


def _build_header_visible(args, text) -> Query:
    positional, keywords = _split_args(
        args, "header_visible", text, ("at", "port")
    )
    if not positional or len(positional) > 2:
        raise QueryParseError(
            "header_visible(field[, at=PORT][, port=PORT]) takes a field"
        )
    field = _atom_text(positional[0], "a field name", text)
    at = None
    if len(positional) == 2:
        at = _atom_text(positional[1], "an observation port", text)
    elif "at" in keywords:
        at = _atom_text(keywords["at"], "an observation port", text)
    port = (
        _atom_text(keywords["port"], "a port", text)
        if "port" in keywords
        else None
    )
    return HeaderVisible(field, at=at, port=port)


def _build_admitted_values(args, text) -> Query:
    positional, keywords = _split_args(
        args, "admitted_values", text, ("at", "samples", "port")
    )
    if not positional or len(positional) > 2:
        raise QueryParseError(
            "admitted_values(field[, at=PORT][, samples=N]) takes a field"
        )
    field = _atom_text(positional[0], "a field name", text)
    at = None
    if len(positional) == 2:
        at = _atom_text(positional[1], "an observation port", text)
    elif "at" in keywords:
        at = _atom_text(keywords["at"], "an observation port", text)
    samples = (
        _int_value(keywords["samples"], "samples", text)
        if "samples" in keywords
        else 3
    )
    port = (
        _atom_text(keywords["port"], "a port", text)
        if "port" in keywords
        else None
    )
    return AdmittedValues(field, at=at, samples=samples, port=port)


def _build_all(args, text) -> Query:
    positional, _ = _split_args(args, "all", text, ())
    return All(*[_build(node, text) for node in positional])


def _build_any(args, text) -> Query:
    positional, _ = _split_args(args, "any", text, ())
    return Any_(*[_build(node, text) for node in positional])


def _build_not(args, text) -> Query:
    positional, _ = _split_args(args, "not", text, ())
    if len(positional) != 1:
        raise QueryParseError("not(query) takes exactly one query")
    return Not(_build(positional[0], text))


def _build_forall_pairs(args, text) -> Query:
    positional, _ = _split_args(args, "forall_pairs", text, ())
    if len(positional) != 1:
        raise QueryParseError(
            "forall_pairs(template) takes exactly one template"
        )
    return ForAllPairs(_build_template(positional[0], text))


def _build_from_ports(args, text) -> Query:
    positional, _ = _split_args(args, "from_ports", text, ())
    if len(positional) != 2:
        raise QueryParseError(
            "from_ports(port+port+..., template) takes ports then a template"
        )
    ports = _atoms(positional[0], "ports", text)
    return FromPorts(ports, _build_template(positional[1], text))


_BUILDERS = {
    "reach": _build_reach,
    "loop": _build_loop,
    "invariant": _build_invariant,
    "header_visible": _build_header_visible,
    "admitted_values": _build_admitted_values,
    "all": _build_all,
    "any": _build_any,
    "not": _build_not,
    "forall_pairs": _build_forall_pairs,
    "from_ports": _build_from_ports,
}


def parse_query(text: str) -> Query:
    """Parse one textual query into its query object."""
    if not text or not text.strip():
        raise QueryParseError("empty query")
    return _build(_Parser(text).parse(), text)
