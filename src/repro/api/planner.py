"""The plan compiler: many declarative queries, one campaign execution.

:func:`compile_plan` inspects a batch of :mod:`repro.api.queries` objects
and computes the **minimal set of injection jobs** they jointly need: the
union of every query's injection ports (two queries over the same port share
one symbolic execution) and the union of the per-job facts the workers must
collect (reachability/loop/invariant aggregation, header-visibility checks,
witness sampling, example traces).

:func:`execute_plan` runs that job set through the existing
:class:`~repro.core.campaign.VerificationCampaign` machinery — process-pool
workers, the three-tier verdict cache, and warm starts are all inherited —
then demultiplexes one :class:`~repro.api.queries.QueryResult` per query out
of the shared per-job reports.  Answers are bit-identical to running each
query through its own dedicated campaign: the demultiplexer re-aggregates
the *same* job reports with the *same* order-independent aggregation code.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.obs import get_registry, get_tracer

from repro.api.model import NetworkModel
from repro.api.queries import Query, QueryResult, Requirements
from repro.core.campaign import (
    CAMPAIGN_QUERIES,
    CampaignResult,
    JobReport,
    PortFacts,
    VerificationCampaign,
)
from repro.core.queries import port_key


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Plan:
    """A compiled query batch: which jobs to run, which facts to collect.

    ``injections`` is the deduplicated union of every query's ports — the
    exact set of engine jobs the batch costs (``plan.job_count``).
    ``port_facts`` narrows each job to the union of the fact requirements
    of exactly the queries that need that port (not the whole batch), so a
    port only pays for collection channels some query will read.
    """

    model: NetworkModel
    queries: Tuple[Query, ...]
    injections: Tuple[Tuple[str, str], ...]
    kinds: Tuple[str, ...]
    invariant_fields: Tuple[str, ...]
    visibility_fields: Tuple[str, ...]
    witness_fields: Tuple[Tuple[str, int], ...]
    record_examples: bool
    port_facts: Tuple[Tuple[Tuple[str, str], PortFacts], ...] = ()
    packet: str = "tcp"
    field_values: Tuple[Tuple[str, int], ...] = ()
    max_hops: int = 128
    max_paths: int = 1_000_000
    strategy: str = "dfs"
    use_incremental_solver: bool = True
    shared_cache: bool = True
    #: Job-level symmetry reduction (repro.network.view): the campaign
    #: executes one engine job per renaming-equivalence class of the plan's
    #: injections and instantiates the rest, so ``execution_counters()``
    #: count class representatives, not ports.  Deliberately *excluded* from
    #: the plan fingerprint: symmetry changes which tier answers, never the
    #: answer, so symmetric and direct runs share one plan-cache identity.
    symmetry: bool = True

    @property
    def job_count(self) -> int:
        return len(self.injections)

    def fingerprint(self) -> str:
        """Stable plan identity: independent of the order queries were
        given in (the same batch always compiles to the same plan) and —
        like the model fingerprint it pairs with in the plan-cache key —
        of *where* a snapshot directory lives, so byte-identical checkouts
        share plan identities."""
        payload = (
            self.model.fingerprint() or self.model.describe(),
            tuple(sorted(query.describe() for query in self.queries)),
            self.injections,
            self.kinds,
            self.invariant_fields,
            self.visibility_fields,
            self.witness_fields,
            self.record_examples,
            self.port_facts,
            self.packet,
            self.field_values,
            self.max_hops,
            self.max_paths,
            self.strategy,
            self.use_incremental_solver,
            self.shared_cache,
        )
        return hashlib.sha256(repr(payload).encode()).hexdigest()

    def to_dict(self) -> Dict[str, object]:
        return {
            "network": self.model.describe(),
            "queries": [query.describe() for query in self.queries],
            "injections": [port_key(*port) for port in self.injections],
            "kinds": list(self.kinds),
            "invariant_fields": list(self.invariant_fields),
            "visibility_fields": list(self.visibility_fields),
            "witness_fields": [list(pair) for pair in self.witness_fields],
            "record_examples": self.record_examples,
            "port_facts": {
                port_key(*port): {
                    "kinds": list(facts.queries),
                    "invariant_fields": list(facts.invariant_fields),
                    "visibility_fields": list(facts.visibility_fields),
                    "witness_fields": [list(p) for p in facts.witness_fields],
                    "record_examples": facts.record_examples,
                }
                for port, facts in self.port_facts
            },
            "jobs": self.job_count,
            "symmetry": self.symmetry,
            "fingerprint": self.fingerprint(),
        }


def compile_plan(
    model: NetworkModel,
    queries: Sequence[Query],
    *,
    packet: str = "tcp",
    field_values: Optional[Mapping[str, int]] = None,
    max_hops: int = 128,
    max_paths: int = 1_000_000,
    strategy: str = "dfs",
    use_incremental_solver: bool = True,
    shared_cache: bool = True,
    narrow_facts: bool = True,
    symmetry: bool = True,
) -> Plan:
    """Compile a batch of queries into the minimal shared job set.

    ``narrow_facts`` (on by default) computes each port's fact requirements
    as the union over the queries that *need that port*; off, every job
    collects the whole batch's union (the pre-narrowing behaviour, kept as
    the comparison baseline for tests and benchmarks).
    """
    with get_tracer().span(
        "plan.compile",
        queries=len(queries) if not isinstance(queries, Query) else 1,
    ):
        return _compile_plan_impl(
            model,
            queries,
            packet=packet,
            field_values=field_values,
            max_hops=max_hops,
            max_paths=max_paths,
            strategy=strategy,
            use_incremental_solver=use_incremental_solver,
            shared_cache=shared_cache,
            narrow_facts=narrow_facts,
            symmetry=symmetry,
        )


def _compile_plan_impl(
    model: NetworkModel,
    queries: Sequence[Query],
    *,
    packet: str = "tcp",
    field_values: Optional[Mapping[str, int]] = None,
    max_hops: int = 128,
    max_paths: int = 1_000_000,
    strategy: str = "dfs",
    use_incremental_solver: bool = True,
    shared_cache: bool = True,
    narrow_facts: bool = True,
    symmetry: bool = True,
) -> Plan:
    if isinstance(queries, Query):
        queries = (queries,)
    queries = tuple(queries)
    if not queries:
        raise ValueError("compile_plan needs at least one query")
    for query in queries:
        if not isinstance(query, Query):
            raise TypeError(f"not a query: {query!r}")

    requirements = Requirements()
    ports = set()
    needs_defaults = False
    for query in queries:
        requirements = requirements.merge(query.requirements())
        ports.update(query.injections())
        needs_defaults = needs_defaults or query.needs_default_injections()
    default_ports: Tuple[Tuple[str, str], ...] = ()
    if needs_defaults:
        default_ports = tuple(model.injection_ports())
        ports.update(default_ports)

    def _collapse_witness_budgets(
        witness_fields: Iterable[Tuple[str, int]]
    ) -> Tuple[Tuple[str, int], ...]:
        # The same field requested with different sample budgets collapses
        # to one collection pass at the largest budget.
        budget: Dict[str, int] = {}
        for name, samples in witness_fields:
            budget[name] = max(budget.get(name, 0), samples)
        return tuple(sorted(budget.items()))

    port_facts: Tuple[Tuple[Tuple[str, str], PortFacts], ...] = ()
    if narrow_facts:
        per_port: Dict[Tuple[str, str], Requirements] = {}
        for query in queries:
            scope = set(query.injections())
            if query.needs_default_injections():
                scope.update(default_ports)
            query_requirements = query.requirements()
            for port in scope:
                per_port[port] = per_port.get(port, Requirements()).merge(
                    query_requirements
                )
        port_facts = tuple(
            (
                port,
                PortFacts(
                    queries=tuple(
                        k for k in CAMPAIGN_QUERIES if k in reqs.kinds
                    ),
                    invariant_fields=tuple(sorted(reqs.invariant_fields)),
                    visibility_fields=tuple(sorted(reqs.visibility_fields)),
                    witness_fields=_collapse_witness_budgets(reqs.witness_fields),
                    record_examples=reqs.record_examples,
                ),
            )
            for port, reqs in sorted(per_port.items())
        )

    return Plan(
        model=model,
        queries=queries,
        injections=tuple(sorted(ports)),
        kinds=tuple(k for k in CAMPAIGN_QUERIES if k in requirements.kinds),
        invariant_fields=tuple(sorted(requirements.invariant_fields)),
        visibility_fields=tuple(sorted(requirements.visibility_fields)),
        witness_fields=_collapse_witness_budgets(requirements.witness_fields),
        record_examples=requirements.record_examples,
        port_facts=port_facts,
        packet=packet,
        field_values=tuple(sorted((field_values or {}).items())),
        max_hops=max_hops,
        max_paths=max_paths,
        strategy=strategy,
        use_incremental_solver=use_incremental_solver,
        shared_cache=shared_cache,
        symmetry=symmetry,
    )


# ---------------------------------------------------------------------------
# Execution and demultiplexing
# ---------------------------------------------------------------------------


class PlanContext:
    """What a query's ``evaluate`` sees: the shared campaign result plus
    scope-resolution and re-aggregation helpers.

    ``subreport`` rebuilds a query's aggregation backend from the filtered
    job reports **with the campaign's own aggregation code**, so a demuxed
    answer is bit-identical to a dedicated legacy campaign over the same
    ports.

    Constructed either over a finished :class:`CampaignResult` (the batch
    path) or — for the incremental demux — directly over whichever
    :class:`JobReport` s have completed so far (``source``/``reports``): a
    query only ever reads the jobs in its own scope, so evaluating it the
    moment that scope is fully reported is bit-identical to evaluating it
    after the barrier."""

    def __init__(
        self,
        plan: Plan,
        campaign: Optional[CampaignResult] = None,
        *,
        source: Optional[str] = None,
        reports: Optional[Iterable[JobReport]] = None,
    ) -> None:
        self.plan = plan
        self.campaign = campaign
        if campaign is not None:
            self._source = campaign.source
            job_list: Iterable[JobReport] = campaign.jobs
        else:
            self._source = source if source is not None else plan.model.describe()
            job_list = reports if reports is not None else ()
        self._default_keys = tuple(
            sorted(port_key(*port) for port in plan.model.injection_ports())
        )
        self._jobs = {job.source_key: job for job in job_list}

    def default_scope(self) -> Tuple[str, ...]:
        return self._default_keys

    def resolve_scope(self, query: Query) -> Tuple[str, ...]:
        keys = set()
        if query.needs_default_injections():
            keys.update(self._default_keys)
        keys.update(port_key(*port) for port in query.injections())
        return tuple(sorted(keys))

    def jobs_for(self, scope: Iterable[str]) -> List[JobReport]:
        return [
            self._jobs[key] for key in sorted(set(scope)) if key in self._jobs
        ]

    def subreport(
        self,
        kind: str,
        scope: Iterable[str],
        invariant_fields: Optional[Sequence[str]] = None,
    ):
        jobs = self.jobs_for(scope)
        if invariant_fields is not None:
            wanted = set(invariant_fields)
            jobs = [
                replace(
                    job,
                    invariants={
                        name: dict(cell)
                        for name, cell in job.invariants.items()
                        if name in wanted
                    },
                )
                for job in jobs
            ]
        sub = CampaignResult.aggregate(self._source, (kind,), jobs)
        return {
            "reachability": sub.reachability,
            "loops": sub.loop_report,
            "invariants": sub.invariant_report,
        }[kind]


@dataclass
class PlanResult:
    """The executed plan: per-query answers plus the shared campaign run.

    A result restored from the persistent plan cache
    (:meth:`from_cached`) has ``from_cache`` True and no ``campaign`` —
    the answers, fingerprints and serialised report are the ones the
    original execution produced, verbatim.
    """

    plan: Plan
    campaign: Optional[CampaignResult]
    results: Tuple[QueryResult, ...]
    from_cache: bool = False
    cached_payload: Optional[Dict[str, object]] = None

    @classmethod
    def from_cached(
        cls, plan: Plan, payload: Dict[str, object]
    ) -> Optional["PlanResult"]:
        """Rebuild a result from a stored payload, or ``None`` when the
        payload cannot serve this plan.

        ``Plan.fingerprint()`` is deliberately order-independent, so the
        stored payload may hold the answers in a *different* batch order
        than this caller used — results are re-matched to ``plan.queries``
        by their canonical query text so positional access
        (``result[0]``, iteration) stays aligned with the caller's batch.
        """
        by_text: Dict[str, List[Dict[str, object]]] = {}
        for entry in payload.get("queries", ()):
            by_text.setdefault(str(entry.get("query", "")), []).append(entry)
        ordered = []
        for query in plan.queries:
            bucket = by_text.get(query.describe())
            if not bucket:
                return None  # treat as a cache miss, never misattribute
            ordered.append(QueryResult.from_cached(bucket.pop(0)))
        if any(bucket for bucket in by_text.values()):
            return None  # leftover answers: not this batch
        return cls(
            plan=plan,
            campaign=None,
            results=tuple(ordered),
            from_cache=True,
            cached_payload=dict(payload),
        )

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, key) -> QueryResult:
        if isinstance(key, int):
            return self.results[key]
        if isinstance(key, Query):
            key = key.describe()
        for result in self.results:
            if result.query == key:
                return result
        raise KeyError(key)

    @property
    def stats(self):
        """The shared campaign's solver roll-up.  On a plan-cache hit the
        original execution's stats are rehydrated from the stored payload,
        so ``result.stats.<counter>`` keeps working whichever tier
        answered (the counters describe the run that *computed* the
        answers, not the cache lookup)."""
        if self.campaign is not None:
            return self.campaign.stats
        stored = (self.cached_payload or {}).get("stats")
        if isinstance(stored, dict):
            from dataclasses import fields as dataclass_fields

            from repro.core.queries import CampaignStats

            known = {f.name for f in dataclass_fields(CampaignStats)}
            return CampaignStats(
                **{k: v for k, v in stored.items() if k in known}
            )
        return None

    @property
    def job_errors(self):
        return self.campaign.job_errors if self.campaign is not None else []

    @property
    def verdict_cache(self) -> Dict[str, str]:
        """Warm-start payload for a later plan/campaign."""
        return self.campaign.verdict_cache if self.campaign is not None else {}

    def fingerprint(self) -> str:
        payload = (
            self.plan.fingerprint(),
            tuple(sorted(result.fingerprint for result in self.results)),
        )
        return hashlib.sha256(repr(payload).encode()).hexdigest()

    def to_dict(self) -> Dict[str, object]:
        if self.cached_payload is not None:
            # The serialised report the original execution produced —
            # returned verbatim so cached and fresh reports are comparable
            # bit for bit.
            return dict(self.cached_payload)
        return {
            "network": self.campaign.source,
            "plan": self.plan.to_dict(),
            "queries": [result.to_dict() for result in self.results],
            "validation_problems": list(self.campaign.validation_problems),
            "execution_mode": self.campaign.execution_mode,
            "workers": self.campaign.workers,
            "stats": self.campaign.stats.to_dict(),
            "fingerprint": self.fingerprint(),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        import json

        return json.dumps(self.to_dict(), indent=indent)


def execute_plan(
    plan: Plan,
    *,
    workers: int = 1,
    warm_cache: Optional[Mapping[str, str]] = None,
    store: Optional[object] = None,
    cache_shards: Optional[int] = None,
    baseline: Optional[object] = None,
    delta: bool = True,
) -> PlanResult:
    """Run a compiled plan on the campaign machinery and demultiplex the
    per-query answers.

    With a :class:`repro.store.VerificationStore` as ``store``, finished
    answers are cached on ``(model fingerprint, plan fingerprint)``: a
    repeated identical batch over an unchanged network returns the stored
    :class:`PlanResult` without running a single engine job, and the
    campaign that does run warm-starts from (and publishes back to) the
    store's verdict shards.  ``warm_cache`` is the deprecated in-memory
    predecessor (the campaign constructor emits the DeprecationWarning).

    ``baseline`` hands the campaign an explicit delta baseline (a
    :class:`repro.core.delta.CampaignBaseline` or its payload dict); with
    ``delta`` left on, directory models also auto-detect the store's
    recorded baseline, so an edited directory on a plan-cache miss only
    re-executes the injection ports the edit could have touched (see
    :mod:`repro.core.delta`).  Neither knob is part of the plan
    fingerprint: like symmetry, delta changes which tier answers, never
    the answer.
    """
    # The whole persistence stack — plan cache included — is gated on the
    # plan's shared_cache flag: a --no-shared-cache run is the isolated
    # baseline and must neither read nor feed any cache tier.
    use_store = store is not None and plan.shared_cache
    model_fingerprint = plan.model.fingerprint() if use_store else None
    plan_fingerprint = plan.fingerprint() if model_fingerprint else None
    if model_fingerprint and plan_fingerprint:
        cached = store.get_plan(model_fingerprint, plan_fingerprint)
        if cached is not None:
            restored = PlanResult.from_cached(plan, cached)
            if restored is not None:
                _plan_cache_counter().inc(result="hit")
                return restored
        _plan_cache_counter().inc(result="miss")
    campaign = _campaign_for(
        plan,
        warm_cache=warm_cache,
        store=store,
        cache_shards=cache_shards,
        baseline=baseline,
        delta=delta,
    )
    result = campaign.run(workers=workers)
    ctx = PlanContext(plan, result)
    plan_result = PlanResult(
        plan=plan,
        campaign=result,
        results=tuple(query.evaluate(ctx) for query in plan.queries),
    )
    if model_fingerprint and plan_fingerprint and not result.job_errors:
        store.put_plan(model_fingerprint, plan_fingerprint, plan_result.to_dict())
    return plan_result


def _plan_cache_counter():
    return get_registry().counter(
        "repro_plan_cache_total",
        "Plan-result cache lookups against the store, by result.",
    )


def _first_result_histogram():
    return get_registry().histogram(
        "repro_stream_first_result_seconds",
        "Seconds from plan execution start to the first streamed result.",
    )


def _campaign_for(
    plan: Plan,
    *,
    warm_cache: Optional[Mapping[str, str]] = None,
    store: Optional[object] = None,
    cache_shards: Optional[int] = None,
    baseline: Optional[object] = None,
    delta: bool = True,
) -> VerificationCampaign:
    """One fully-injected campaign for a compiled plan (shared by the batch
    and streaming executors, so both run the exact same job set)."""
    campaign_kwargs = {}
    if cache_shards is not None:
        campaign_kwargs["cache_shards"] = cache_shards
    campaign = VerificationCampaign(
        plan.model.source,
        packet=plan.packet,
        field_values=dict(plan.field_values),
        queries=plan.kinds,
        invariant_fields=plan.invariant_fields,
        visibility_fields=plan.visibility_fields,
        witness_fields=plan.witness_fields,
        record_examples=plan.record_examples,
        max_hops=plan.max_hops,
        max_paths=plan.max_paths,
        strategy=plan.strategy,
        use_incremental_solver=plan.use_incremental_solver,
        shared_cache=plan.shared_cache,
        symmetry=plan.symmetry,
        warm_cache=warm_cache,
        store=store,
        delta=delta,
        baseline=baseline,
        validation=plan.model.validate(),
        **campaign_kwargs,
    )
    facts = dict(plan.port_facts)
    for element, port in plan.injections:
        campaign.add_injection(element, port, facts=facts.get((element, port)))
    return campaign


def execute_plan_streaming(
    plan: Plan,
    *,
    workers: int = 1,
    store: Optional[object] = None,
    cache_shards: Optional[int] = None,
    baseline: Optional[object] = None,
    delta: bool = True,
    pool: Optional[object] = None,
    on_result=None,
) -> PlanResult:
    """:func:`execute_plan` with **incremental demultiplexing**: each
    query's :class:`QueryResult` is computed — and handed to ``on_result``
    — the moment the jobs in *its* port scope have all reported, instead of
    after the whole campaign's barrier.

    ``on_result(index, result, jobs_reported, jobs_total)`` receives the
    query's position in ``plan.queries``, its finished result, and how many
    of the plan's jobs had reported when it was emitted (a streamed answer
    has ``jobs_reported < jobs_total`` whenever other jobs were still
    outstanding — the resident service forwards these so clients see
    answers before the slowest job lands).  ``pool`` lends the campaign an
    already-running process pool (see
    :meth:`~repro.core.campaign.VerificationCampaign.run`).

    Invariant: every streamed result is bit-identical to what the batch
    :func:`execute_plan` produces for the same plan — a query only ever
    aggregates the jobs in its own scope, so nothing it reads changes after
    its scope completes.  Plan-cache hits short-circuit exactly like the
    batch path (every result is emitted immediately), and the returned
    :class:`PlanResult` is built from the streamed results themselves.
    """
    started = time.perf_counter()
    use_store = store is not None and plan.shared_cache
    model_fingerprint = plan.model.fingerprint() if use_store else None
    plan_fingerprint = plan.fingerprint() if model_fingerprint else None
    jobs_total = plan.job_count
    if model_fingerprint and plan_fingerprint:
        cached = store.get_plan(model_fingerprint, plan_fingerprint)
        if cached is not None:
            restored = PlanResult.from_cached(plan, cached)
            if restored is not None:
                _plan_cache_counter().inc(result="hit")
                _first_result_histogram().observe(time.perf_counter() - started)
                if on_result is not None:
                    for index, cached_result in enumerate(restored.results):
                        on_result(index, cached_result, jobs_total, jobs_total)
                return restored
        _plan_cache_counter().inc(result="miss")
    campaign = _campaign_for(
        plan,
        store=store,
        cache_shards=cache_shards,
        baseline=baseline,
        delta=delta,
    )
    source_description = campaign.source.describe()
    default_keys = tuple(
        sorted(port_key(*port) for port in plan.model.injection_ports())
    )
    pending: List[Tuple[int, frozenset]] = []
    for index, query in enumerate(plan.queries):
        keys = set()
        if query.needs_default_injections():
            keys.update(default_keys)
        keys.update(port_key(*port) for port in query.injections())
        pending.append((index, frozenset(keys)))
    reports: Dict[str, JobReport] = {}
    streamed: Dict[int, QueryResult] = {}

    def on_report(report: JobReport) -> None:
        reports[report.source_key] = report
        ready = [item for item in pending if item[1] <= reports.keys()]
        if not ready:
            return
        ctx = PlanContext(
            plan, source=source_description, reports=reports.values()
        )
        for item in ready:
            pending.remove(item)
            index, _ = item
            result = plan.queries[index].evaluate(ctx)
            if not streamed:
                # Time-to-first-streamed-result: the latency a resident-
                # service client actually feels, as opposed to the plan's
                # barrier wall (repro.serve forwards answers from here).
                _first_result_histogram().observe(
                    time.perf_counter() - started
                )
            streamed[index] = result
            if on_result is not None:
                on_result(index, result, len(reports), jobs_total)

    result = campaign.run(workers=workers, on_report=on_report, pool=pool)
    ctx = PlanContext(plan, result)
    results: List[QueryResult] = []
    for index, query in enumerate(plan.queries):
        if index in streamed:
            results.append(streamed[index])
            continue
        # A scope referencing ports outside the plan (defensive: compile
        # and demux disagreeing) still gets its barrier-time answer.
        late = query.evaluate(ctx)
        results.append(late)
        if on_result is not None:
            on_result(index, late, len(result.jobs), jobs_total)
    plan_result = PlanResult(
        plan=plan, campaign=result, results=tuple(results)
    )
    if model_fingerprint and plan_fingerprint and not result.job_errors:
        store.put_plan(model_fingerprint, plan_fingerprint, plan_result.to_dict())
    return plan_result
