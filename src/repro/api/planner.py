"""The plan compiler: many declarative queries, one campaign execution.

:func:`compile_plan` inspects a batch of :mod:`repro.api.queries` objects
and computes the **minimal set of injection jobs** they jointly need: the
union of every query's injection ports (two queries over the same port share
one symbolic execution) and the union of the per-job facts the workers must
collect (reachability/loop/invariant aggregation, header-visibility checks,
witness sampling, example traces).

:func:`execute_plan` runs that job set through the existing
:class:`~repro.core.campaign.VerificationCampaign` machinery — process-pool
workers, the three-tier verdict cache, and warm starts are all inherited —
then demultiplexes one :class:`~repro.api.queries.QueryResult` per query out
of the shared per-job reports.  Answers are bit-identical to running each
query through its own dedicated campaign: the demultiplexer re-aggregates
the *same* job reports with the *same* order-independent aggregation code.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.api.model import NetworkModel
from repro.api.queries import Query, QueryResult, Requirements
from repro.core.campaign import (
    CAMPAIGN_QUERIES,
    CampaignResult,
    JobReport,
    VerificationCampaign,
)
from repro.core.queries import port_key


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Plan:
    """A compiled query batch: which jobs to run, which facts to collect.

    ``injections`` is the deduplicated union of every query's ports — the
    exact set of engine jobs the batch costs (``plan.job_count``).
    """

    model: NetworkModel
    queries: Tuple[Query, ...]
    injections: Tuple[Tuple[str, str], ...]
    kinds: Tuple[str, ...]
    invariant_fields: Tuple[str, ...]
    visibility_fields: Tuple[str, ...]
    witness_fields: Tuple[Tuple[str, int], ...]
    record_examples: bool
    packet: str = "tcp"
    field_values: Tuple[Tuple[str, int], ...] = ()
    max_hops: int = 128
    max_paths: int = 1_000_000
    strategy: str = "dfs"
    use_incremental_solver: bool = True
    shared_cache: bool = True

    @property
    def job_count(self) -> int:
        return len(self.injections)

    def fingerprint(self) -> str:
        """Stable plan identity: independent of the order queries were
        given in (the same batch always compiles to the same plan)."""
        payload = (
            self.model.describe(),
            tuple(sorted(query.describe() for query in self.queries)),
            self.injections,
            self.kinds,
            self.invariant_fields,
            self.visibility_fields,
            self.witness_fields,
            self.record_examples,
            self.packet,
            self.field_values,
            self.max_hops,
            self.max_paths,
            self.strategy,
            self.use_incremental_solver,
        )
        return hashlib.sha256(repr(payload).encode()).hexdigest()

    def to_dict(self) -> Dict[str, object]:
        return {
            "network": self.model.describe(),
            "queries": [query.describe() for query in self.queries],
            "injections": [port_key(*port) for port in self.injections],
            "kinds": list(self.kinds),
            "invariant_fields": list(self.invariant_fields),
            "visibility_fields": list(self.visibility_fields),
            "witness_fields": [list(pair) for pair in self.witness_fields],
            "record_examples": self.record_examples,
            "jobs": self.job_count,
            "fingerprint": self.fingerprint(),
        }


def compile_plan(
    model: NetworkModel,
    queries: Sequence[Query],
    *,
    packet: str = "tcp",
    field_values: Optional[Mapping[str, int]] = None,
    max_hops: int = 128,
    max_paths: int = 1_000_000,
    strategy: str = "dfs",
    use_incremental_solver: bool = True,
    shared_cache: bool = True,
) -> Plan:
    """Compile a batch of queries into the minimal shared job set."""
    if isinstance(queries, Query):
        queries = (queries,)
    queries = tuple(queries)
    if not queries:
        raise ValueError("compile_plan needs at least one query")
    for query in queries:
        if not isinstance(query, Query):
            raise TypeError(f"not a query: {query!r}")

    requirements = Requirements()
    ports = set()
    needs_defaults = False
    for query in queries:
        requirements = requirements.merge(query.requirements())
        ports.update(query.injections())
        needs_defaults = needs_defaults or query.needs_default_injections()
    if needs_defaults:
        ports.update(model.injection_ports())

    # The same field requested with different sample budgets collapses to
    # one collection pass at the largest budget.
    witness_budget: Dict[str, int] = {}
    for name, samples in requirements.witness_fields:
        witness_budget[name] = max(witness_budget.get(name, 0), samples)

    return Plan(
        model=model,
        queries=queries,
        injections=tuple(sorted(ports)),
        kinds=tuple(k for k in CAMPAIGN_QUERIES if k in requirements.kinds),
        invariant_fields=tuple(sorted(requirements.invariant_fields)),
        visibility_fields=tuple(sorted(requirements.visibility_fields)),
        witness_fields=tuple(sorted(witness_budget.items())),
        record_examples=requirements.record_examples,
        packet=packet,
        field_values=tuple(sorted((field_values or {}).items())),
        max_hops=max_hops,
        max_paths=max_paths,
        strategy=strategy,
        use_incremental_solver=use_incremental_solver,
        shared_cache=shared_cache,
    )


# ---------------------------------------------------------------------------
# Execution and demultiplexing
# ---------------------------------------------------------------------------


class PlanContext:
    """What a query's ``evaluate`` sees: the shared campaign result plus
    scope-resolution and re-aggregation helpers.

    ``subreport`` rebuilds a query's aggregation backend from the filtered
    job reports **with the campaign's own aggregation code**, so a demuxed
    answer is bit-identical to a dedicated legacy campaign over the same
    ports."""

    def __init__(self, plan: Plan, campaign: CampaignResult) -> None:
        self.plan = plan
        self.campaign = campaign
        self._default_keys = tuple(
            sorted(port_key(*port) for port in plan.model.injection_ports())
        )
        self._jobs = {job.source_key: job for job in campaign.jobs}

    def default_scope(self) -> Tuple[str, ...]:
        return self._default_keys

    def resolve_scope(self, query: Query) -> Tuple[str, ...]:
        keys = set()
        if query.needs_default_injections():
            keys.update(self._default_keys)
        keys.update(port_key(*port) for port in query.injections())
        return tuple(sorted(keys))

    def jobs_for(self, scope: Iterable[str]) -> List[JobReport]:
        return [
            self._jobs[key] for key in sorted(set(scope)) if key in self._jobs
        ]

    def subreport(
        self,
        kind: str,
        scope: Iterable[str],
        invariant_fields: Optional[Sequence[str]] = None,
    ):
        jobs = self.jobs_for(scope)
        if invariant_fields is not None:
            wanted = set(invariant_fields)
            jobs = [
                replace(
                    job,
                    invariants={
                        name: dict(cell)
                        for name, cell in job.invariants.items()
                        if name in wanted
                    },
                )
                for job in jobs
            ]
        sub = CampaignResult.aggregate(self.campaign.source, (kind,), jobs)
        return {
            "reachability": sub.reachability,
            "loops": sub.loop_report,
            "invariants": sub.invariant_report,
        }[kind]


@dataclass
class PlanResult:
    """The executed plan: per-query answers plus the shared campaign run."""

    plan: Plan
    campaign: CampaignResult
    results: Tuple[QueryResult, ...]

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, key) -> QueryResult:
        if isinstance(key, int):
            return self.results[key]
        if isinstance(key, Query):
            key = key.describe()
        for result in self.results:
            if result.query == key:
                return result
        raise KeyError(key)

    @property
    def stats(self):
        return self.campaign.stats

    @property
    def job_errors(self):
        return self.campaign.job_errors

    @property
    def verdict_cache(self) -> Dict[str, str]:
        """Warm-start payload for a later plan/campaign."""
        return self.campaign.verdict_cache

    def fingerprint(self) -> str:
        payload = (
            self.plan.fingerprint(),
            tuple(sorted(result.fingerprint for result in self.results)),
        )
        return hashlib.sha256(repr(payload).encode()).hexdigest()

    def to_dict(self) -> Dict[str, object]:
        return {
            "network": self.campaign.source,
            "plan": self.plan.to_dict(),
            "queries": [result.to_dict() for result in self.results],
            "validation_problems": list(self.campaign.validation_problems),
            "execution_mode": self.campaign.execution_mode,
            "workers": self.campaign.workers,
            "stats": self.campaign.stats.to_dict(),
            "fingerprint": self.fingerprint(),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        import json

        return json.dumps(self.to_dict(), indent=indent)


def execute_plan(
    plan: Plan,
    *,
    workers: int = 1,
    warm_cache: Optional[Mapping[str, str]] = None,
) -> PlanResult:
    """Run a compiled plan on the campaign machinery and demultiplex the
    per-query answers."""
    campaign = VerificationCampaign(
        plan.model.source,
        packet=plan.packet,
        field_values=dict(plan.field_values),
        queries=plan.kinds,
        invariant_fields=plan.invariant_fields,
        visibility_fields=plan.visibility_fields,
        witness_fields=plan.witness_fields,
        record_examples=plan.record_examples,
        max_hops=plan.max_hops,
        max_paths=plan.max_paths,
        strategy=plan.strategy,
        use_incremental_solver=plan.use_incremental_solver,
        shared_cache=plan.shared_cache,
        warm_cache=warm_cache,
        validation=plan.model.validate(),
    )
    campaign.add_injections(plan.injections)
    result = campaign.run(workers=workers)
    ctx = PlanContext(plan, result)
    return PlanResult(
        plan=plan,
        campaign=result,
        results=tuple(query.evaluate(ctx) for query in plan.queries),
    )
