"""The :class:`NetworkModel` facade — one front door to the analysis stack.

A ``NetworkModel`` wraps a network *source* (a §7.1 snapshot directory, a
registered synthetic workload, or an in-process
:class:`~repro.network.topology.Network`) and owns everything that should
happen exactly once per network, no matter how many campaigns or query
batches run against it:

* building the network (cached, and seeded into the campaign runtime cache
  so in-process jobs reuse the same build);
* ``Network.validate()`` — the findings are computed once and handed to
  every campaign the model spawns, so CLI and API warnings are identical
  and directory networks are never silently re-validated per construction
  site;
* the default injection ports (the workload's registered entry points, or
  every free input port, or — for fully wired rings — every input port).

Ask questions with :meth:`NetworkModel.query`, which compiles a batch of
declarative :mod:`repro.api.queries` objects onto one shared campaign plan
(see :mod:`repro.api.planner`), or drop down to :meth:`campaign` for the raw
:class:`~repro.core.campaign.VerificationCampaign` machinery.
"""

from __future__ import annotations

import hashlib
import os
from typing import List, Optional, Tuple, Union

from repro.core.campaign import (
    NetworkSource,
    VerificationCampaign,
    _seed_runtime,
    default_injection_ports,
)
from repro.network.topology import Network

SourceLike = Union[NetworkSource, Network, str]


def _error_nonce() -> str:
    """A never-repeating token for identity keys of *broken* state.  An
    unreadable topology or a stat-failed device file has no observable
    identity, so collapsing it to a constant would make two different
    broken directories — or the same directory before and after a file was
    swapped while unreadable — compare equal and serve each other's cached
    plans.  A fresh nonce makes every degenerate key unequal to every
    other (including a recomputation of itself), which disables plan
    caching for exactly the states we cannot identify."""
    return os.urandom(16).hex()


def _directory_stat_key(directory: str) -> tuple:
    """Cheap (stat-only) snapshot of the referenced device files, taken at
    network-build time so a later :meth:`NetworkModel.fingerprint` can tell
    whether the directory still holds the bytes this model executed."""
    from repro.parsers.topology_file import referenced_snapshot_files

    try:
        with open(os.path.join(directory, "topology.txt"), encoding="utf-8") as handle:
            topology_text = handle.read()
    except OSError:
        return ("unreadable-topology", os.path.abspath(directory), _error_nonce())
    stats = []
    for name in sorted(referenced_snapshot_files(topology_text)):
        try:
            stat = os.stat(os.path.join(directory, name))
            stats.append((name, stat.st_size, stat.st_mtime_ns))
        except OSError:
            stats.append((name, "unstatable", _error_nonce()))
    return ("stats", topology_text, tuple(stats))


def _directory_content_key(directory: str) -> tuple:
    """Identity of a snapshot directory's *relevant* content: the topology
    text itself plus a content hash of every device file it references.
    Files the topology never reads (JSON reports, a ``--store-dir`` placed
    in the snapshot directory) do not perturb the key — and because the
    referenced files are *hashed*, not stat'ed, a same-size in-place
    rewrite within a coarse filesystem mtime tick still invalidates.
    Hashing costs one read per device file, the same order of work as
    building the network the cached plan would otherwise skip."""
    from repro.parsers.topology_file import referenced_snapshot_files

    topology_path = os.path.join(directory, "topology.txt")
    try:
        with open(topology_path, encoding="utf-8") as handle:
            topology_text = handle.read()
    except OSError:
        # No readable topology: this directory's content has no observable
        # identity — produce a key that never matches anything (see
        # _error_nonce) instead of a constant two broken directories share.
        return (
            "unreadable-topology",
            os.path.abspath(directory),
            _error_nonce(),
        )
    digests = []
    for name in sorted(referenced_snapshot_files(topology_text)):
        try:
            with open(os.path.join(directory, name), "rb") as handle:
                digest = hashlib.sha256(handle.read()).hexdigest()
        except OSError:
            digest = f"<unreadable:{_error_nonce()}>"
        digests.append((name, digest))
    # Content only — no directory path — so byte-identical snapshots at
    # different paths (copied checkouts, run-numbered CI workspaces) share
    # one plan-cache identity against a shared store.
    return ("directory", topology_text, tuple(digests))


class NetworkModel:
    """A session handle over one network: build once, validate once, query
    many times.

    >>> model = NetworkModel.from_workload("department")     # doctest: +SKIP
    ... result = model.query(ForAllPairs(Reach), Loop())
    ... result["loop()"].holds
    """

    def __init__(self, source: SourceLike) -> None:
        if isinstance(source, Network):
            source = NetworkSource.from_network(source)
        elif isinstance(source, str):
            source = NetworkSource.from_directory(source)
        elif not isinstance(source, NetworkSource):
            raise TypeError(
                "NetworkModel takes a NetworkSource, a Network or a "
                f"directory path, not {type(source).__name__}"
            )
        self.source = source
        self._network: Optional[Network] = None
        self._registered_injections: Optional[List[Tuple[str, str]]] = None
        self._validation: Optional[List[str]] = None
        self._fingerprint: Optional[str] = None
        self._fingerprint_known = False
        self._build_stat_key: Optional[tuple] = None
        self._build_manifest: Optional[dict] = None

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_directory(cls, directory: str) -> "NetworkModel":
        """A model over a snapshot directory (topology.txt + device files)."""
        return cls(NetworkSource.from_directory(directory))

    @classmethod
    def from_workload(cls, name: str, **options: object) -> "NetworkModel":
        """A model over a registered synthetic workload (department,
        enterprise, stanford, ...)."""
        return cls(NetworkSource.from_workload(name, **options))

    @classmethod
    def from_network(cls, network: Network) -> "NetworkModel":
        """A model over an in-process network object (executes in-process:
        SEFL programs contain closures and cannot cross process boundaries)."""
        return cls(NetworkSource.from_network(network))

    # -- the once-per-model facts ----------------------------------------------

    def network(self) -> Network:
        """The built network — built exactly once and seeded into the
        campaign runtime cache so in-process jobs reuse this build."""
        if self._network is None:
            if self.source.kind == "directory" and self.source.directory:
                # Stat-only snapshot (no content hashing — store-less runs
                # must not pay a second read of every device file): enough
                # for fingerprint() to later prove the directory still
                # holds the bytes this build executed.
                self._build_stat_key = _directory_stat_key(self.source.directory)
            self._network, self._registered_injections = self.source.build_full()
            # Directory builds attach their per-element content manifest
            # (see load_network_directory): the digests of the exact bytes
            # this model executes, which delta verification diffs against a
            # stored baseline.
            self._build_manifest = getattr(
                self._network, "source_manifest", None
            )
            _seed_runtime(self.source, self._network)
        return self._network

    def build_manifest(self) -> Optional[dict]:
        """The per-element content manifest recorded at build time
        (directory sources only; see :mod:`repro.core.delta`)."""
        self.network()
        return self._build_manifest

    def validate(self) -> List[str]:
        """``Network.validate()`` findings, computed exactly once per model."""
        if self._validation is None:
            self._validation = self.network().validate()
        return list(self._validation)

    def injection_ports(self) -> List[Tuple[str, str]]:
        """The model's default injection points — the same policy campaigns
        apply (:func:`repro.core.campaign.default_injection_ports`), so
        planned and legacy answers quantify over identical port sets."""
        network = self.network()  # also populates _registered_injections
        return default_injection_ports(network, self._registered_injections)

    def describe(self) -> str:
        return self.source.describe()

    def fingerprint(self) -> Optional[str]:
        """Content identity of the model's network source, or ``None`` when
        the source has no stable identity (in-process ``Network`` objects).

        This is the model half of the persistent plan-result cache key
        (:class:`repro.store.VerificationStore`): workload sources hash the
        builder name and options; directory sources hash ``topology.txt``'s
        *content* plus the content of exactly the snapshot files it
        references — so editing the topology or any referenced device file
        invalidates the directory's cached plans, while report files or a
        store directory living alongside the snapshot do not.
        For sources whose content can change invisibly (a workload builder
        edited in place), use
        :meth:`repro.store.VerificationStore.invalidate_plans` explicitly.

        The fingerprint is computed **once per model**, lazily (store-less
        runs never pay the hashing), and it must identify the content this
        model *executes*: a model built before an in-place edit keeps
        answering for the snapshot it read, so hashing the edited files
        under the same session would file the old network's answers under
        the new content's key, poisoning the plan cache for every later
        process.  If the directory's referenced files no longer stat the
        way they did at build time, the model therefore has **no**
        fingerprint (plan caching is disabled for it) — edited the
        directory?  Make a new :class:`NetworkModel`.
        """
        if self._fingerprint_known:
            return self._fingerprint
        if self.source.picklable:
            payload: Optional[str] = None
            if self.source.kind == "directory" and self.source.directory:
                if (
                    self._build_stat_key is None
                    or self._build_stat_key
                    == _directory_stat_key(self.source.directory)
                ):
                    payload = repr(
                        ("network-model", _directory_content_key(self.source.directory))
                    )
            else:
                payload = repr(("network-model", self.source.cache_key()))
            if payload is not None:
                self._fingerprint = hashlib.sha256(payload.encode()).hexdigest()
        self._fingerprint_known = True
        return self._fingerprint

    # -- execution --------------------------------------------------------------

    def campaign(self, **kwargs) -> VerificationCampaign:
        """A :class:`VerificationCampaign` over this model, inheriting the
        model's already-computed validation (accepts every campaign kwarg)."""
        kwargs.setdefault("validation", self.validate())
        return VerificationCampaign(self.source, **kwargs)

    def query(
        self,
        *queries,
        workers: int = 1,
        warm_cache=None,
        store=None,
        cache_shards=None,
        baseline=None,
        delta: bool = True,
        **settings,
    ):
        """Compile a batch of declarative queries onto one shared plan and
        execute it (see :func:`repro.api.planner.compile_plan` for the
        engine-sharing semantics and accepted ``settings``).  Passing a
        :class:`repro.store.VerificationStore` as ``store`` makes the run
        persistent: verdicts warm-start from (and publish to) the store's
        disk shards, and a repeated identical batch is answered from the
        plan-result cache without running any engine job."""
        from repro.api.planner import compile_plan, execute_plan

        plan = compile_plan(self, queries, **settings)
        return execute_plan(
            plan,
            workers=workers,
            warm_cache=warm_cache,
            store=store,
            cache_shards=cache_shards,
            baseline=baseline,
            delta=delta,
        )

    def __repr__(self) -> str:
        return f"NetworkModel({self.describe()})"
