"""The :class:`NetworkModel` facade — one front door to the analysis stack.

A ``NetworkModel`` wraps a network *source* (a §7.1 snapshot directory, a
registered synthetic workload, or an in-process
:class:`~repro.network.topology.Network`) and owns everything that should
happen exactly once per network, no matter how many campaigns or query
batches run against it:

* building the network (cached, and seeded into the campaign runtime cache
  so in-process jobs reuse the same build);
* ``Network.validate()`` — the findings are computed once and handed to
  every campaign the model spawns, so CLI and API warnings are identical
  and directory networks are never silently re-validated per construction
  site;
* the default injection ports (the workload's registered entry points, or
  every free input port, or — for fully wired rings — every input port).

Ask questions with :meth:`NetworkModel.query`, which compiles a batch of
declarative :mod:`repro.api.queries` objects onto one shared campaign plan
(see :mod:`repro.api.planner`), or drop down to :meth:`campaign` for the raw
:class:`~repro.core.campaign.VerificationCampaign` machinery.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.core.campaign import (
    NetworkSource,
    VerificationCampaign,
    _seed_runtime,
    default_injection_ports,
)
from repro.network.topology import Network

SourceLike = Union[NetworkSource, Network, str]


class NetworkModel:
    """A session handle over one network: build once, validate once, query
    many times.

    >>> model = NetworkModel.from_workload("department")     # doctest: +SKIP
    ... result = model.query(ForAllPairs(Reach), Loop())
    ... result["loop()"].holds
    """

    def __init__(self, source: SourceLike) -> None:
        if isinstance(source, Network):
            source = NetworkSource.from_network(source)
        elif isinstance(source, str):
            source = NetworkSource.from_directory(source)
        elif not isinstance(source, NetworkSource):
            raise TypeError(
                "NetworkModel takes a NetworkSource, a Network or a "
                f"directory path, not {type(source).__name__}"
            )
        self.source = source
        self._network: Optional[Network] = None
        self._registered_injections: Optional[List[Tuple[str, str]]] = None
        self._validation: Optional[List[str]] = None

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_directory(cls, directory: str) -> "NetworkModel":
        """A model over a snapshot directory (topology.txt + device files)."""
        return cls(NetworkSource.from_directory(directory))

    @classmethod
    def from_workload(cls, name: str, **options: object) -> "NetworkModel":
        """A model over a registered synthetic workload (department,
        enterprise, stanford, ...)."""
        return cls(NetworkSource.from_workload(name, **options))

    @classmethod
    def from_network(cls, network: Network) -> "NetworkModel":
        """A model over an in-process network object (executes in-process:
        SEFL programs contain closures and cannot cross process boundaries)."""
        return cls(NetworkSource.from_network(network))

    # -- the once-per-model facts ----------------------------------------------

    def network(self) -> Network:
        """The built network — built exactly once and seeded into the
        campaign runtime cache so in-process jobs reuse this build."""
        if self._network is None:
            self._network, self._registered_injections = self.source.build_full()
            _seed_runtime(self.source, self._network)
        return self._network

    def validate(self) -> List[str]:
        """``Network.validate()`` findings, computed exactly once per model."""
        if self._validation is None:
            self._validation = self.network().validate()
        return list(self._validation)

    def injection_ports(self) -> List[Tuple[str, str]]:
        """The model's default injection points — the same policy campaigns
        apply (:func:`repro.core.campaign.default_injection_ports`), so
        planned and legacy answers quantify over identical port sets."""
        network = self.network()  # also populates _registered_injections
        return default_injection_ports(network, self._registered_injections)

    def describe(self) -> str:
        return self.source.describe()

    # -- execution --------------------------------------------------------------

    def campaign(self, **kwargs) -> VerificationCampaign:
        """A :class:`VerificationCampaign` over this model, inheriting the
        model's already-computed validation (accepts every campaign kwarg)."""
        kwargs.setdefault("validation", self.validate())
        return VerificationCampaign(self.source, **kwargs)

    def query(self, *queries, workers: int = 1, warm_cache=None, **settings):
        """Compile a batch of declarative queries onto one shared plan and
        execute it (see :func:`repro.api.planner.compile_plan` for the
        engine-sharing semantics and accepted ``settings``)."""
        from repro.api.planner import compile_plan, execute_plan

        plan = compile_plan(self, queries, **settings)
        return execute_plan(plan, workers=workers, warm_cache=warm_cache)

    def __repr__(self) -> str:
        return f"NetworkModel({self.describe()})"
