"""The session API — one front door to the whole analysis stack.

Construct a :class:`NetworkModel` (from a snapshot directory, a registered
workload, or an in-process :class:`~repro.network.Network`), describe the
questions as declarative :class:`Query` objects, and let the plan compiler
run the minimal set of engine jobs they jointly need:

>>> from repro.api import NetworkModel, ForAllPairs, Reach, Loop, Invariant
>>> model = NetworkModel.from_workload("department")        # doctest: +SKIP
... result = model.query(ForAllPairs(Reach), Loop(), Invariant("IpSrc"))
... result["loop()"].holds                 # loop-free?
... result["forall_pairs(reach)"].value    # the all-pairs matrix

Queries over the same injection ports share one symbolic execution; the
campaign machinery underneath contributes process-pool workers, the
three-tier verdict cache and warm starts.  ``repro.api.checks`` re-exports
the path-level predicates (:func:`~repro.core.checks.field_invariant` and
friends) for single-result workflows.
"""

from repro.api.model import NetworkModel
from repro.api.planner import (
    Plan,
    PlanContext,
    PlanResult,
    compile_plan,
    execute_plan,
    execute_plan_streaming,
)
from repro.api.queries import (
    AdmittedValues,
    All,
    Any,
    Any_,
    ForAllPairs,
    FromPorts,
    HeaderVisible,
    Invariant,
    Loop,
    Not,
    Query,
    QueryResult,
    Reach,
    Requirements,
    normalize_port,
)
from repro.api.text import QueryParseError, parse_query
from repro.core import checks

__all__ = [
    "AdmittedValues",
    "All",
    "Any",
    "Any_",
    "ForAllPairs",
    "FromPorts",
    "HeaderVisible",
    "Invariant",
    "Loop",
    "NetworkModel",
    "Not",
    "Plan",
    "PlanContext",
    "PlanResult",
    "Query",
    "QueryParseError",
    "QueryResult",
    "Reach",
    "Requirements",
    "checks",
    "compile_plan",
    "execute_plan",
    "execute_plan_streaming",
    "normalize_port",
    "parse_query",
]
