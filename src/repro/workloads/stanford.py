"""A Stanford-backbone-like topology for the SymNet / HSA comparison (Table 3).

The real dataset (16 operational-zone routers plus backbone routers, large
forwarding tables and ACLs) is not redistributable; this generator builds a
backbone with the same shape: ``zones`` zone routers, each owning a /16 and
holding many more-specific internal prefixes, dual-homed to two core
routers that know how to reach every zone.  The same forwarding state is
emitted twice — once as SEFL router models, once as HSA transfer functions —
so the two tools answer the same reachability question over the same rules.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.baselines.hsa import HsaNetwork, TransferFunction, TransferRule, WildcardExpr
from repro.models.router import FibEntry, RouterModelStyle, build_router
from repro.network.element import NetworkElement
from repro.network.topology import Network
from repro.parsers.service_acl import service_acl_element
from repro.sefl.util import ip_to_number

#: Campus-wide blocked service ports, most infamous first.  Every zone edge
#: applies the same policy (the realistic case: one security baseline for
#: the whole backbone), which is exactly what makes the per-rule solver work
#: identical across zones modulo symbol names — the cross-job verdict cache's
#: best case.
SERVICE_ACL_PORTS = (23, 135, 137, 139, 445, 1433, 3389, 5900, 6379, 11211)

# Header layout used by the HSA encoding: only the destination address
# matters for backbone forwarding, so the header is 32 bits of IpDst.
HSA_HEADER_WIDTH = 32


@dataclass
class StanfordWorkload:
    """The generated backbone: topology, per-router FIBs and entry points."""

    network: Network
    fibs: Dict[str, List[FibEntry]]
    zone_routers: List[str]
    core_routers: List[str]
    generation_seconds: float = 0.0

    def total_rules(self) -> int:
        return sum(len(fib) for fib in self.fibs.values())


def _zone_prefix(zone: int) -> Tuple[int, int]:
    return ip_to_number(f"10.{zone}.0.0"), 16


def _zone_fib(
    zone: int, zones: int, internal_prefixes: int, rng: random.Random
) -> List[FibEntry]:
    """FIB of a zone router: internal /24s on the hosts port, everything else
    up to the cores (split between the two uplinks)."""
    fib: List[FibEntry] = []
    base, base_len = _zone_prefix(zone)
    # The router owns its whole /16 (aggregate towards the hosts port) plus a
    # crowd of more-specific internal /24s — the overlaps the model generator
    # has to make mutually exclusive.
    fib.append((base, base_len, "hosts"))
    for _ in range(internal_prefixes):
        subnet = rng.randrange(256)
        fib.append((base | (subnet << 8), 24, "hosts"))
    # Other zones go up; alternate uplinks for rough load balancing.
    for other in range(zones):
        if other == zone:
            continue
        address, plen = _zone_prefix(other)
        fib.append((address, plen, "up0" if other % 2 == 0 else "up1"))
    # Default route to the first core.
    fib.append((0, 0, "up0"))
    return fib


def _core_fib(zones: int, internal_prefixes: int, rng: random.Random) -> List[FibEntry]:
    """FIB of a core router: one port per zone plus more-specific internal
    prefixes learned from the zones."""
    fib: List[FibEntry] = []
    for zone in range(zones):
        address, plen = _zone_prefix(zone)
        fib.append((address, plen, f"z{zone}"))
        for _ in range(internal_prefixes // zones):
            subnet = rng.randrange(256)
            fib.append((address | (subnet << 8), 24, f"z{zone}"))
    return fib


def build_stanford_like_backbone(
    zones: int = 16,
    internal_prefixes_per_zone: int = 200,
    style: RouterModelStyle = RouterModelStyle.EGRESS,
    seed: int = 11,
) -> StanfordWorkload:
    """Build the SEFL version of the backbone."""
    rng = random.Random(seed)
    network = Network("stanford-like")
    fibs: Dict[str, List[FibEntry]] = {}
    zone_names = [f"zr{zone}" for zone in range(zones)]
    core_names = ["core0", "core1"]

    for zone, name in enumerate(zone_names):
        fib = _zone_fib(zone, zones, internal_prefixes_per_zone, rng)
        fibs[name] = fib
        network.add_element(
            build_router(name, fib, style=style, input_ports=["in-hosts", "in-core0", "in-core1"])
        )
    for name in core_names:
        fib = _core_fib(zones, internal_prefixes_per_zone, rng)
        fibs[name] = fib
        network.add_element(
            build_router(name, fib, style=style, input_ports=[f"in-z{z}" for z in range(zones)])
        )

    for zone, name in enumerate(zone_names):
        network.add_link((name, "up0"), ("core0", f"in-z{zone}"))
        network.add_link((name, "up1"), ("core1", f"in-z{zone}"))
        network.add_link(("core0", f"z{zone}"), (name, "in-core0"))
        network.add_link(("core1", f"z{zone}"), (name, "in-core1"))

    return StanfordWorkload(
        network=network,
        fibs=fibs,
        zone_routers=zone_names,
        core_routers=core_names,
    )


def build_service_acl(name: str, rules: int) -> NetworkElement:
    """A zone-edge service ACL: drop traffic to/from the first ``rules``
    blocked service ports, forward everything else.

    Each rule's match (``TcpSrc == p or TcpDst == p``) mixes two symbolic
    variables, so probing it falls outside the interval-domain fast path and
    costs a real solve — the constraint shape whose repetition across
    symmetric zones the canonical verdict cache exists to absorb.
    """
    if rules > len(SERVICE_ACL_PORTS):
        raise ValueError(
            f"at most {len(SERVICE_ACL_PORTS)} service ACL rules available"
        )
    return service_acl_element(name, SERVICE_ACL_PORTS[:rules])


def campaign_network(
    service_acl_rules: int = 0, **options
) -> Tuple[Network, List[Tuple[str, str]]]:
    """Campaign adapter: the backbone plus one injection port per zone.

    Injecting at every zone router's hosts-facing input yields the all-pairs
    zone-to-zone reachability matrix the paper computes on the Stanford
    dataset.  ``service_acl_rules > 0`` fronts every zone with the same
    zone-edge service ACL (and moves the injection ports onto the ACLs),
    modelling a campus-wide security baseline.
    """
    workload = build_stanford_like_backbone(**options)
    network = workload.network
    if service_acl_rules <= 0:
        return network, [(name, "in-hosts") for name in workload.zone_routers]
    injections = []
    for zone, router in enumerate(workload.zone_routers):
        acl_name = f"acl{zone}"
        network.add_element(build_service_acl(acl_name, service_acl_rules))
        network.add_link((acl_name, "out0"), (router, "in-hosts"))
        injections.append((acl_name, "in0"))
    return network, injections


def stanford_hsa_network(workload: StanfordWorkload) -> HsaNetwork:
    """Build the HSA encoding of the same backbone: every FIB rule becomes a
    prefix-match transfer rule on the 32-bit destination header."""
    hsa = HsaNetwork(HSA_HEADER_WIDTH)
    for router, fib in workload.fibs.items():
        box = TransferFunction(router, HSA_HEADER_WIDTH)
        # Longest-prefix ordering is approximated the HSA way: more specific
        # rules are added first and the caller relies on disjoint groups.
        for address, plen, port in sorted(fib, key=lambda e: -e[1]):
            match = WildcardExpr.from_prefix(
                HSA_HEADER_WIDTH, 0, 32, address, plen
            )
            box.add_rule("*", TransferRule(match=match, out_ports=(port,)))
        hsa.add_box(box)
    network = workload.network
    for link in network.links:
        hsa.add_link(
            (link.source.element, link.source.port),
            (link.destination.element, link.destination.port),
        )
    return hsa
