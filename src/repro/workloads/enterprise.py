"""The Split-TCP enterprise deployment of §8.4 (Figure 10).

Topology (side-band mode)::

    Client C ── AP ── R1 (redirection router) ══ Split-TCP proxy P
                          │
                          └── exit router R2 ── Internet

R1 redirects traffic *in both directions* to the proxy by rewriting the
destination MAC address; after the proxy hands a packet back, R1 forwards it
on towards the Internet (client→server direction) or towards the client
(server→client direction).  The builder exposes switches reproducing the
four operational issues the paper verified:

* ``with_tunnel`` — IP-in-IP encapsulation on the R1→P leg, which shrinks
  the usable client MTU (the black-holing bug);
* ``use_vlan`` / ``vlan_bug`` — the proxy strips the 802.1Q tag and (with
  the bug enabled) forgets to restore it, so R1 drops the returning frames;
* ``dhcp_check`` — R2 validates the (EtherSrc, IpSrc) pair against the DHCP
  lease recorded by the client; the proxy rewriting the source MAC then
  breaks all connectivity;
* ``mirror_at_exit`` — bounce traffic back at R2 with an IPMirror to check
  that the reverse path also crosses the proxy (asymmetric-routing check).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.click.elements import build_vlan_decap, build_vlan_encap
from repro.models.mirror import build_ip_mirror
from repro.models.tunnel import build_decapsulator, build_encapsulator, build_mtu_filter
from repro.network.element import NetworkElement
from repro.network.topology import Network
from repro.sefl.expressions import Eq
from repro.sefl.fields import ETHERTYPE_IP, ETHERTYPE_VLAN, EtherDst, EtherSrc, EtherType, IpSrc
from repro.sefl.instructions import Assign, Constrain, Forward, InstructionBlock
from repro.sefl.util import mac_to_number

CLIENT_MAC = "02:00:00:00:00:01"
PROXY_MAC = "02:00:00:00:00:99"
R2_MAC = "02:00:00:00:00:20"

TUNNEL_R1_ADDRESS = "10.10.0.1"
TUNNEL_P_ADDRESS = "10.10.0.2"


@dataclass
class SplitTcpWorkload:
    """The generated deployment plus the interesting attachment points."""

    network: Network
    client_entry: Tuple[str, str]
    internet_exit: Tuple[str, str]
    client_return: Tuple[str, str]
    mirrored: bool
    options: Dict[str, bool]


def _simple_forwarder(name: str, kind: str) -> NetworkElement:
    element = NetworkElement(name, ["in0"], ["out0"], kind=kind)
    element.set_input_program("in0", Forward("out0"))
    return element


def _redirection_router(name: str, vlan_expected: bool) -> NetworkElement:
    """R1: redirect both directions to the proxy via MAC rewriting, then
    forward proxied packets towards the exit router or the client."""
    expected_type = ETHERTYPE_VLAN if vlan_expected else ETHERTYPE_IP
    element = NetworkElement(
        name,
        input_ports=["in-client", "in-exit", "in-proxy-fwd", "in-proxy-rev"],
        output_ports=["to-proxy-fwd", "to-proxy-rev", "to-exit", "to-client"],
        kind="router",
    )
    element.set_input_program(
        "in-client",
        InstructionBlock(
            Constrain(Eq(EtherType, expected_type)),
            Assign(EtherDst, mac_to_number(PROXY_MAC)),
            Forward("to-proxy-fwd"),
        ),
    )
    element.set_input_program(
        "in-proxy-fwd",
        InstructionBlock(
            Constrain(Eq(EtherType, expected_type)),
            Assign(EtherDst, mac_to_number(R2_MAC)),
            Forward("to-exit"),
        ),
    )
    element.set_input_program(
        "in-exit",
        InstructionBlock(
            Assign(EtherDst, mac_to_number(PROXY_MAC)),
            Forward("to-proxy-rev"),
        ),
    )
    element.set_input_program(
        "in-proxy-rev",
        InstructionBlock(
            Assign(EtherDst, mac_to_number(CLIENT_MAC)),
            Forward("to-client"),
        ),
    )
    return element


def _proxy(name: str, rewrites_src_mac: bool) -> NetworkElement:
    """The Split-TCP proxy data path (forward direction on ports 0, reverse
    direction on ports 1)."""
    element = NetworkElement(
        name, ["in0", "in1"], ["out0", "out1"], kind="split-tcp-proxy"
    )
    for index in (0, 1):
        instructions = []
        if rewrites_src_mac:
            instructions.append(Assign(EtherSrc, mac_to_number(PROXY_MAC)))
        instructions.append(Forward(f"out{index}"))
        element.set_input_program(f"in{index}", InstructionBlock(*instructions))
    return element


def _dhcp_security_appliance(name: str) -> NetworkElement:
    """R2's lease check: the Ethernet/IP source pair must match the DHCP
    assignment recorded by the client in the ``origEther`` / ``origIP``
    metadata (§8.4, "Security Appliance")."""
    element = NetworkElement(name, ["in0"], ["out0"], kind="dhcp-check")
    element.set_input_program(
        "in0",
        InstructionBlock(
            Constrain(Eq(IpSrc, "origIP")),
            Constrain(Eq(EtherSrc, "origEther")),
            Forward("out0"),
        ),
    )
    return element


def build_split_tcp_network(
    with_tunnel: bool = False,
    use_vlan: bool = False,
    vlan_bug: bool = False,
    dhcp_check: bool = False,
    proxy_rewrites_src_mac: bool = True,
    mirror_at_exit: bool = False,
    mtu_bytes: int = 1536,
) -> SplitTcpWorkload:
    """Assemble the deployment with the requested trouble switches enabled."""
    network = Network("split-tcp")

    ap = _simple_forwarder("AP", "access-point")
    mtu = build_mtu_filter("R1-mtu", mtu_bytes)
    r1 = _redirection_router("R1", vlan_expected=use_vlan)
    proxy = _proxy("P", proxy_rewrites_src_mac)
    r2 = _simple_forwarder("R2", "exit-router")
    network.add_elements(ap, mtu, r1, proxy, r2)

    # Client side: AP feeds R1 through the MTU-limited link.
    network.add_link(("AP", "out0"), ("R1-mtu", "in0"))
    network.add_link(("R1-mtu", "out0"), ("R1", "in-client"))

    # Forward leg R1 -> proxy, optionally through an IP-in-IP tunnel and/or
    # VLAN decapsulation at the proxy.
    forward_entry = ("P", "in0")
    forward_exit = ("P", "out0")
    if use_vlan:
        decap = build_vlan_decap("P-vlan-decap", buggy=False)
        network.add_element(decap)
        network.add_link(("P-vlan-decap", "out0"), ("P", "in0"))
        forward_entry = ("P-vlan-decap", "in0")
        if not vlan_bug:
            encap = build_vlan_encap("P-vlan-encap", vlan_id=100)
            network.add_element(encap)
            network.add_link(("P", "out0"), ("P-vlan-encap", "in0"))
            forward_exit = ("P-vlan-encap", "out0")
    if with_tunnel:
        ip_encap = build_encapsulator("R1-encap", TUNNEL_R1_ADDRESS, TUNNEL_P_ADDRESS)
        ip_decap = build_decapsulator("P-decap")
        # R1 applies its link MTU to the packets it actually transmits, i.e.
        # *after* encapsulation — this is what silently shrinks the usable
        # client MTU (§8.4, "MTU issues").
        tunnel_mtu = build_mtu_filter("R1-tunnel-mtu", mtu_bytes)
        network.add_elements(ip_encap, ip_decap, tunnel_mtu)
        network.add_link(("R1", "to-proxy-fwd"), ("R1-encap", "in0"))
        network.add_link(("R1-encap", "out0"), ("R1-tunnel-mtu", "in0"))
        network.add_link(("R1-tunnel-mtu", "out0"), ("P-decap", "in0"))
        network.add_link(("P-decap", "out0"), forward_entry)
    else:
        network.add_link(("R1", "to-proxy-fwd"), forward_entry)
    network.add_link(forward_exit, ("R1", "in-proxy-fwd"))

    # Reverse leg R1 -> proxy -> R1 (no tunnel / VLAN complications needed
    # for the studied scenarios).
    network.add_link(("R1", "to-proxy-rev"), ("P", "in1"))
    network.add_link(("P", "out1"), ("R1", "in-proxy-rev"))

    # R1 -> exit router -> (optional DHCP lease check) -> Internet.
    if dhcp_check:
        checker = _dhcp_security_appliance("R2-dhcp-check")
        network.add_element(checker)
        network.add_link(("R1", "to-exit"), ("R2-dhcp-check", "in0"))
        network.add_link(("R2-dhcp-check", "out0"), ("R2", "in0"))
    else:
        network.add_link(("R1", "to-exit"), ("R2", "in0"))

    if mirror_at_exit:
        mirror = build_ip_mirror("R2-mirror")
        network.add_element(mirror)
        network.add_link(("R2", "out0"), ("R2-mirror", "in0"))
        network.add_link(("R2-mirror", "out0"), ("R1", "in-exit"))

    return SplitTcpWorkload(
        network=network,
        client_entry=("AP", "in0"),
        internet_exit=("R2", "out0"),
        client_return=("R1", "to-client"),
        mirrored=mirror_at_exit,
        options={
            "with_tunnel": with_tunnel,
            "use_vlan": use_vlan,
            "vlan_bug": vlan_bug,
            "dhcp_check": dhcp_check,
            "proxy_rewrites_src_mac": proxy_rewrites_src_mac,
        },
    )


def campaign_network(**options) -> Tuple[Network, List[Tuple[str, str]]]:
    """Campaign adapter: the Split-TCP deployment plus its injection ports.

    Traffic is injected in the client→server direction at the access point
    and — unless the exit mirror already bounces traffic back — in the
    server→client direction at R1's exit-facing input.
    """
    workload = build_split_tcp_network(**options)
    injections = [workload.client_entry]
    if not workload.mirrored:
        injections.append(("R1", "in-exit"))
    return workload.network, injections
