"""Switch MAC-table generator.

The Figure 8 experiment starts from the department core switch's table (440
entries over 20 ports in use) and scales it to 500 000 entries by
duplicating entries with fresh unique MAC addresses.  The generator below
reproduces that procedure deterministically: MAC addresses are unique,
assigned to ports with a skewed distribution (a few ports attract most
hosts, as in the real table).
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.sefl.util import number_to_mac


def generate_mac_table(
    entries: int,
    ports: int = 20,
    seed: int = 42,
    skew: float = 1.3,
) -> Dict[str, List[int]]:
    """Generate ``entries`` unique MAC addresses spread over ``ports`` ports.

    ``skew`` > 1 concentrates entries on the first ports (port 0 is the
    uplink carrying most of the MACs), matching the structure of a real
    access-layer table.  The result maps output-port names to MAC lists, the
    format expected by :func:`repro.models.switch.build_switch`.
    """
    if entries <= 0:
        return {f"out{i}": [] for i in range(ports)}
    rng = random.Random(seed)
    weights = [skew ** (ports - i) for i in range(ports)]
    total = sum(weights)
    weights = [w / total for w in weights]

    table: Dict[str, List[int]] = {f"out{i}": [] for i in range(ports)}
    # Unique MACs: a deterministic base plus a per-entry offset, locally
    # administered (bit 1 of the first octet set) to avoid vendor collisions.
    base = 0x02_00_00_00_00_00
    for index in range(entries):
        mac = base + index + 1
        r = rng.random()
        cumulative = 0.0
        port_index = ports - 1
        for i, weight in enumerate(weights):
            cumulative += weight
            if r <= cumulative:
                port_index = i
                break
        table[f"out{port_index}"].append(mac)
    return table


def mac_table_entry_count(table: Dict[str, List[int]]) -> int:
    return sum(len(macs) for macs in table.values())


def mac_table_as_text(table: Dict[str, List[int]], vlan: int = 302) -> str:
    """Render the generated table as CISCO snapshot text (round-trips through
    :func:`repro.parsers.mac_table.parse_mac_table`)."""
    lines = [
        "Vlan    Mac Address       Type        Ports",
        "----    -----------       ----        -----",
    ]
    for port, macs in table.items():
        for mac in macs:
            lines.append(f" {vlan:<6} {number_to_mac(mac):<17} DYNAMIC     {port}")
    return "\n".join(lines) + "\n"
