"""Export synthetic workloads as §7.1 snapshot directories.

The synthetic builders (:mod:`repro.workloads.stanford`,
:mod:`repro.workloads.department`) construct their networks in process.
Delta verification, however, is about directories: its manifest diffs the
on-disk device files a build parsed.  This module writes the workloads out
in exactly the format ``topology.txt`` + per-device snapshots the parser
reads back (:func:`repro.parsers.topology_file.load_network_directory`),
so tests and benchmarks can edit one device file and measure what a rerun
re-executes.

The exported network is parse(format(x)) of the in-process one: routers
round-trip through :func:`repro.parsers.routing_table.format_routing_table`,
switches through :func:`repro.parsers.mac_table.format_mac_table` and
service ACLs through :func:`repro.parsers.service_acl.format_service_acl`,
all of which are exact inverses of their parsers.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence, Tuple

from repro.parsers.mac_table import format_mac_table
from repro.parsers.routing_table import format_routing_table
from repro.parsers.service_acl import format_service_acl
from repro.sefl.util import ip_to_number
from repro.workloads.stanford import SERVICE_ACL_PORTS, build_stanford_like_backbone


def _write(directory: str, name: str, content: str) -> None:
    with open(os.path.join(directory, name), "w", encoding="utf-8") as handle:
        handle.write(content)


def export_stanford_directory(
    directory: str,
    zones: int = 16,
    internal_prefixes_per_zone: int = 200,
    service_acl_rules: int = 4,
    seed: int = 11,
) -> List[Tuple[str, str]]:
    """Write the Stanford-style backbone (zone routers dual-homed to two
    cores, each zone fronted by a service ACL) as a snapshot directory.

    Returns the campaign injection ports: one per zone-edge ACL — the same
    vantage points :func:`repro.workloads.stanford.campaign_network` uses,
    so campaigns over the directory and over the in-process workload ask
    the same question.
    """
    workload = build_stanford_like_backbone(
        zones=zones,
        internal_prefixes_per_zone=internal_prefixes_per_zone,
        seed=seed,
    )
    lines: List[str] = ["# Stanford-style backbone exported as device snapshots"]
    for name in list(workload.zone_routers) + list(workload.core_routers):
        _write(directory, f"{name}.fib", format_routing_table(workload.fibs[name]))
        lines.append(f"device {name} router {name}.fib")
    injections: List[Tuple[str, str]] = []
    acl_text = format_service_acl(SERVICE_ACL_PORTS[:service_acl_rules])
    for index, router in enumerate(workload.zone_routers):
        acl = f"acl{index}"
        _write(directory, f"{acl}.acl", acl_text)
        lines.append(f"device {acl} service-acl {acl}.acl")
        lines.append(f"link {acl}:out0 -> {router}:in-hosts")
        injections.append((acl, "in0"))
    for link in workload.network.links:
        lines.append(
            f"link {link.source.element}:{link.source.port} -> "
            f"{link.destination.element}:{link.destination.port}"
        )
    _write(directory, "topology.txt", "\n".join(lines) + "\n")
    return injections


def export_department_style_directory(
    directory: str,
    switches: int = 2,
    macs_per_port: int = 3,
    seed: int = 23,
) -> List[Tuple[str, str]]:
    """Write a small department-style access network (MAC-table switches
    uplinked to one gateway router behind a service ACL) as a snapshot
    directory, mixing all three snapshot kinds the delta fuzz edits.

    Returns the injection ports: every switch's host-facing input plus the
    ACL-guarded WAN entry.
    """
    lines: List[str] = ["# department-style access network"]
    injections: List[Tuple[str, str]] = []
    fib = []
    for index in range(switches):
        name = f"sw{index}"
        base = 0x02_00_00_00_00_00 + (seed * 251 + index) * 0x100
        table: Dict[str, List[int]] = {
            "uplink": [base + 0x40 + i for i in range(macs_per_port)],
            "hosts": [base + i for i in range(macs_per_port)],
        }
        _write(directory, f"{name}.mac", format_mac_table(table, vlan=302))
        lines.append(f"device {name} switch {name}.mac")
        lines.append(f"link {name}:uplink -> gw:in-{name}")
        # Downlinks land on a dedicated port so the parser-default ``in0``
        # stays free — that's the host-side injection vantage.
        lines.append(f"link gw:{name} -> {name}:in-uplink")
        injections.append((name, "in0"))
        fib.append((ip_to_number(f"10.{40 + index}.0.0"), 16, name))
    fib.append((0, 0, "wan"))
    _write(directory, "gw.fib", format_routing_table(fib))
    lines.append("device gw router gw.fib")
    _write(directory, "edge.acl", format_service_acl(SERVICE_ACL_PORTS[:2]))
    lines.append("device edge service-acl edge.acl")
    lines.append("link edge:out0 -> gw:in-wan")
    lines.append("link gw:wan -> edge:in-wan")
    injections.append(("edge", "in0"))
    _write(directory, "topology.txt", "\n".join(lines) + "\n")
    return injections
