"""Export synthetic workloads as §7.1 snapshot directories.

The synthetic builders (:mod:`repro.workloads.stanford`,
:mod:`repro.workloads.department`) construct their networks in process.
Delta verification, however, is about directories: its manifest diffs the
on-disk device files a build parsed.  This module writes the workloads out
in exactly the format ``topology.txt`` + per-device snapshots the parser
reads back (:func:`repro.parsers.topology_file.load_network_directory`),
so tests and benchmarks can edit one device file and measure what a rerun
re-executes.

The exported network is parse(format(x)) of the in-process one: routers
round-trip through :func:`repro.parsers.routing_table.format_routing_table`,
switches through :func:`repro.parsers.mac_table.format_mac_table` and
service ACLs through :func:`repro.parsers.service_acl.format_service_acl`,
all of which are exact inverses of their parsers.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence, Tuple

from repro.models.asa import AsaConfig
from repro.models.firewall import AclRule
from repro.parsers.asa_config import format_asa_config
from repro.parsers.mac_table import format_mac_table
from repro.parsers.routing_table import format_routing_table
from repro.parsers.service_acl import format_service_acl
from repro.sefl.util import ip_to_number
from repro.workloads.stanford import SERVICE_ACL_PORTS, build_stanford_like_backbone


def _write(directory: str, name: str, content: str) -> None:
    # newline="\n" pins the on-disk bytes across platforms: repeated exports
    # of the same workload+seed must be byte-identical (scenario steps and
    # the delta manifest both hash exactly these bytes).
    with open(
        os.path.join(directory, name), "w", encoding="utf-8", newline="\n"
    ) as handle:
        handle.write(content)


def _edge_asa_config(seed: int) -> AsaConfig:
    """A deterministic edge-firewall config: static NAT bindings from the
    public range into zone-0 address space plus matching inbound permits
    (the stateful-middlebox surface scenario churn rewrites)."""
    static_nat: List[Tuple[str, str]] = []
    inbound: List[AclRule] = []
    for slot in range(2):
        public = f"141.85.37.{10 + slot}"
        private = f"10.0.{20 + ((seed + slot) % 200)}.{9 + slot}"
        static_nat.append((public, private))
        inbound.append(
            AclRule(
                action="allow",
                src=None,
                dst=f"{private}/32",
                proto=6,
                dst_port=80 if slot == 0 else 443,
            )
        )
    return AsaConfig(static_nat=static_nat, inbound_rules=inbound)


def export_stanford_directory(
    directory: str,
    zones: int = 16,
    internal_prefixes_per_zone: int = 200,
    service_acl_rules: int = 4,
    seed: int = 11,
    edge_asa: bool = False,
) -> List[Tuple[str, str]]:
    """Write the Stanford-style backbone (zone routers dual-homed to two
    cores, each zone fronted by a service ACL) as a snapshot directory.

    Returns the campaign injection ports: one per zone-edge ACL — the same
    vantage points :func:`repro.workloads.stanford.campaign_network` uses,
    so campaigns over the directory and over the in-process workload ask
    the same question.

    With ``edge_asa`` the directory also gets a stateful edge firewall
    (``edge.conf``, the :mod:`repro.models.asa` pipeline): its inside exit
    feeds the first core router, nothing links back into it, so Internet-side
    traffic enters at ``edge-static-nat:in0``, is NAT-rewritten into zone-0
    space and routed onward — while config churn on ``edge.conf`` stays a
    two-port delta (the ASA island is unreachable from every other
    injection).
    """
    workload = build_stanford_like_backbone(
        zones=zones,
        internal_prefixes_per_zone=internal_prefixes_per_zone,
        seed=seed,
    )
    lines: List[str] = ["# Stanford-style backbone exported as device snapshots"]
    for name in list(workload.zone_routers) + list(workload.core_routers):
        _write(directory, f"{name}.fib", format_routing_table(workload.fibs[name]))
        lines.append(f"device {name} router {name}.fib")
    injections: List[Tuple[str, str]] = []
    acl_text = format_service_acl(SERVICE_ACL_PORTS[:service_acl_rules])
    for index, router in enumerate(workload.zone_routers):
        acl = f"acl{index}"
        _write(directory, f"{acl}.acl", acl_text)
        lines.append(f"device {acl} service-acl {acl}.acl")
        lines.append(f"link {acl}:out0 -> {router}:in-hosts")
        injections.append((acl, "in0"))
    if edge_asa:
        _write(directory, "edge.conf", format_asa_config(_edge_asa_config(seed)))
        lines.append("device edge asa edge.conf")
        core = workload.core_routers[0]
        lines.append(f"link edge-options-in:out0 -> {core}:in-edge")
        injections.append(("edge-static-nat", "in0"))
    for link in workload.network.links:
        lines.append(
            f"link {link.source.element}:{link.source.port} -> "
            f"{link.destination.element}:{link.destination.port}"
        )
    _write(directory, "topology.txt", "\n".join(lines) + "\n")
    return injections


def export_department_style_directory(
    directory: str,
    switches: int = 2,
    macs_per_port: int = 3,
    seed: int = 23,
) -> List[Tuple[str, str]]:
    """Write a small department-style access network (MAC-table switches
    uplinked to one gateway router behind a service ACL) as a snapshot
    directory, mixing all three snapshot kinds the delta fuzz edits.

    Returns the injection ports: every switch's host-facing input plus the
    ACL-guarded WAN entry.
    """
    lines: List[str] = ["# department-style access network"]
    injections: List[Tuple[str, str]] = []
    fib = []
    for index in range(switches):
        name = f"sw{index}"
        base = 0x02_00_00_00_00_00 + (seed * 251 + index) * 0x100
        table: Dict[str, List[int]] = {
            "uplink": [base + 0x40 + i for i in range(macs_per_port)],
            "hosts": [base + i for i in range(macs_per_port)],
        }
        _write(directory, f"{name}.mac", format_mac_table(table, vlan=302))
        lines.append(f"device {name} switch {name}.mac")
        lines.append(f"link {name}:uplink -> gw:in-{name}")
        # Downlinks land on a dedicated port so the parser-default ``in0``
        # stays free — that's the host-side injection vantage.
        lines.append(f"link gw:{name} -> {name}:in-uplink")
        injections.append((name, "in0"))
        fib.append((ip_to_number(f"10.{40 + index}.0.0"), 16, name))
    fib.append((0, 0, "wan"))
    _write(directory, "gw.fib", format_routing_table(fib))
    lines.append("device gw router gw.fib")
    _write(directory, "edge.acl", format_service_acl(SERVICE_ACL_PORTS[:2]))
    lines.append("device edge service-acl edge.acl")
    lines.append("link edge:out0 -> gw:in-wan")
    lines.append("link gw:wan -> edge:in-wan")
    injections.append(("edge", "in0"))
    _write(directory, "topology.txt", "\n".join(lines) + "\n")
    return injections


#: Exporters by workload name (the scenario CLI's ``--workload`` values).
EXPORTERS = {
    "stanford": export_stanford_directory,
    "department": export_department_style_directory,
}


def export_workload_directory(
    name: str, directory: str, **options: object
) -> List[Tuple[str, str]]:
    """Export a named workload as a snapshot directory; returns the
    injection ports the exporter registers."""
    try:
        exporter = EXPORTERS[name]
    except KeyError:
        known = ", ".join(sorted(EXPORTERS))
        raise ValueError(f"unknown exportable workload {name!r} (have: {known})")
    return exporter(directory, **options)
