"""The CS department network of §8.5 (Figure 11).

The real network has 21 devices, 235 connected ports, 6 000 MAC-table
entries, 400 routing entries, VLAN-based L2 forwarding (office VLAN 302,
lab VLAN 304, a management VLAN) and a Cisco ASA as the first IP hop.  The
builder generates a faithful synthetic equivalent:

* per-building access switches (lab and office), an aggregation switch, the
  M2 master switch, the ASA pipeline, the M1 department router and the
  cluster switch;
* generated MAC tables sized to the requested total;
* the M1 routing table containing the management-VLAN route that caused the
  security hole the paper found (private management addresses reachable from
  outside and from the cluster);
* a "switch-management" element standing for the switches' management
  interfaces — reaching it means reaching the management plane.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.models.asa import AsaAttachment, AsaConfig, build_asa
from repro.models.firewall import AclRule
from repro.models.router import FibEntry, build_router
from repro.models.switch import build_switch
from repro.network.element import NetworkElement
from repro.network.topology import Network
from repro.sefl.expressions import OneOf
from repro.sefl.fields import IpDst
from repro.sefl.instructions import Constrain, Forward, InstructionBlock
from repro.sefl.util import ip_to_number, parse_prefix
from repro.solver.intervals import IntervalSet, prefix_to_interval
from repro.workloads.mac_tables import generate_mac_table

OFFICE_VLAN = 302
LAB_VLAN = 304
MANAGEMENT_PREFIX = "192.168.137.0/24"
OFFICE_PREFIX = "10.41.0.0/16"
LAB_PREFIX = "10.42.0.0/16"
CLUSTER_PREFIX = "10.43.0.0/16"

# Well-known L2 addresses: the ASA inside interface is the first IP hop for
# office/lab traffic, so its MAC must appear on the uplink ports of every
# switch along the way; the switch-management MAC plays the same role for
# the management VLAN.
GATEWAY_MAC = 0x02_AA_00_00_00_01
SWITCH_MGMT_MAC = 0x02_AA_00_00_00_02
HOLE_SERVER_MAC = 0x02_00_00_00_AA_01


@dataclass
class DepartmentNetwork:
    """The generated department network and its interesting entry points."""

    network: Network
    asa: AsaAttachment
    office_entry: Tuple[str, str]
    lab_entry: Tuple[str, str]
    cluster_entry: Tuple[str, str]
    internet_entry: Tuple[str, str]
    internet_exit: Tuple[str, str]
    management_exit: Tuple[str, str]
    mac_entries: int = 0
    route_entries: int = 0

    def device_count(self) -> int:
        return len(self.network)

    def port_count(self) -> int:
        return self.network.port_count()


def _access_switch(
    name: str, uplink_macs: List[int], host_count: int, rng: random.Random
) -> NetworkElement:
    """An access switch: hosts on dedicated ports, everything else uplink.

    The uplink group always contains the gateway (ASA inside interface) MAC
    so that traffic towards the first IP hop is actually forwarded upstream.
    """
    table: Dict[str, List[int]] = {"uplink": [GATEWAY_MAC, *uplink_macs]}
    base = rng.randrange(1 << 20) << 20
    for host in range(host_count):
        table[f"host{host}"] = [0x02_00_00_00_00_00 + base + host]
    return build_switch(name, table, input_ports=["in-host", "in-uplink"])


def _prefix_filter(name: str, prefix: str, out_port: str = "out0") -> NetworkElement:
    """Forward only packets whose destination lies inside ``prefix``."""
    address, plen = parse_prefix(prefix)
    interval = prefix_to_interval(address, plen)
    element = NetworkElement(name, ["in0"], [out_port], kind="prefix-filter")
    element.set_input_program(
        "in0",
        InstructionBlock(
            Constrain(OneOf(IpDst, IntervalSet([(interval.lo, interval.hi)]))),
            Forward(out_port),
        ),
    )
    return element


def _m1_fib(extra_routes: int) -> List[FibEntry]:
    """The department router's routing table, including the management-VLAN
    route that leaks private addresses (the paper's security finding)."""

    def prefix(text: str) -> Tuple[int, int]:
        address, plen = parse_prefix(text)
        return address, plen

    office_addr, office_len = prefix(OFFICE_PREFIX)
    lab_addr, lab_len = prefix(LAB_PREFIX)
    cluster_addr, cluster_len = prefix(CLUSTER_PREFIX)
    mgmt_addr, mgmt_len = prefix(MANAGEMENT_PREFIX)
    fib: List[FibEntry] = [
        (office_addr, office_len, "to-inside"),
        (lab_addr, lab_len, "to-inside"),
        (cluster_addr, cluster_len, "to-inside"),
        # The management VLAN should not be routable at all, but a static
        # route makes it reachable through M2 — the security hole of §8.5.
        (mgmt_addr, mgmt_len, "to-mgmt"),
        (0, 0, "to-internet"),
    ]
    extra_base = ip_to_number("10.44.0.0")
    for index in range(max(0, extra_routes - len(fib))):
        fib.append((extra_base + (index << 8), 24, "to-inside"))
    return fib


def build_department_network(
    access_switches: int = 15,
    hosts_per_switch: int = 8,
    mac_entries: int = 6000,
    extra_routes: int = 400,
    seed: int = 23,
) -> DepartmentNetwork:
    """Build the department network at the requested scale."""
    rng = random.Random(seed)
    network = Network("cs-department")

    # --- core devices ---------------------------------------------------------
    core_table = generate_mac_table(mac_entries, ports=20, seed=seed)
    aggregation = build_switch(
        "aggregation",
        {
            "to-m2": [GATEWAY_MAC, SWITCH_MGMT_MAC, *core_table["out0"]],
            **{
                f"to-access{i}": core_table[f"out{1 + (i % 19)}"]
                for i in range(access_switches)
            },
        },
        input_ports=["in-access", "in-m2"],
    )
    network.add_element(aggregation)

    m2_table = {
        "to-asa": [GATEWAY_MAC, *core_table["out1"]],
        "to-aggregation": core_table["out3"],
        "to-cluster": core_table["out4"],
        "to-mgmt": [SWITCH_MGMT_MAC, *core_table["out5"]],
    }
    m2 = build_switch(
        "m2",
        m2_table,
        input_ports=["in-aggregation", "in-asa", "in-cluster"],
    )
    network.add_element(m2)

    # The department router (M1) sits between the ASA's outside interface and
    # the Internet.
    m1_routes = _m1_fib(extra_routes)
    m1 = build_router("m1", m1_routes, input_ports=["in-asa", "in-internet"])
    network.add_element(m1)

    # The ASA pipeline (first IP hop for office / lab traffic).
    asa_config = AsaConfig(
        public_address="141.85.37.1",
        inbound_rules=[
            AclRule(action="allow", proto=6, dst="141.85.37.1/32", dst_port=443),
        ],
    )
    asa = build_asa(network, "asa", asa_config)

    # Cluster switch with the management "hole" server.
    cluster_table = {
        "to-hole": [HOLE_SERVER_MAC],
        "to-nodes": core_table["out6"],
        "to-m2": [GATEWAY_MAC, SWITCH_MGMT_MAC, *core_table["out7"]],
    }
    cluster = build_switch(
        "cluster", cluster_table, input_ports=["in-node", "in-m2"]
    )
    network.add_element(cluster)

    # Switch management interfaces live on the management VLAN; reaching this
    # element means reaching the switches' telnet/ssh management plane.
    management = NetworkElement(
        "switch-management", ["in0"], ["reached"], kind="management-plane"
    )
    management.set_input_program("in0", Forward("reached"))
    network.add_element(management)
    mgmt_filter = _prefix_filter("mgmt-vlan-filter", MANAGEMENT_PREFIX)
    network.add_element(mgmt_filter)
    network.add_link(("mgmt-vlan-filter", "out0"), ("switch-management", "in0"))

    # Access switches.
    first_office = None
    first_lab = None
    for index in range(access_switches):
        kind_is_office = index % 2 == 0
        name = f"{'office' if kind_is_office else 'lab'}-sw{index}"
        switch = _access_switch(
            name, core_table[f"out{8 + (index % 11)}"], hosts_per_switch, rng
        )
        network.add_element(switch)
        network.add_link((name, "uplink"), ("aggregation", "in-access"))
        network.add_link(("aggregation", f"to-access{index}"), (name, "in-uplink"))
        if kind_is_office and first_office is None:
            first_office = name
        if not kind_is_office and first_lab is None:
            first_lab = name

    # --- wiring ----------------------------------------------------------------
    # L2 core.
    network.add_link(("aggregation", "to-m2"), ("m2", "in-aggregation"))
    network.add_link(("m2", "to-aggregation"), ("aggregation", "in-m2"))
    network.add_link(("m2", "to-cluster"), ("cluster", "in-m2"))
    network.add_link(("cluster", "to-m2"), ("m2", "in-cluster"))
    # Management plane hangs off M2 (its own VLAN).
    network.add_link(("m2", "to-mgmt"), ("mgmt-vlan-filter", "in0"))

    # ASA between the L2 core (inside) and M1 (outside).
    network.add_link(("m2", "to-asa"), asa.inside_entry)
    network.add_link(asa.inside_exit, ("m2", "in-asa"))
    network.add_link(asa.outside_exit, ("m1", "in-asa"))
    network.add_link(("m1", "to-inside"), asa.outside_entry)
    # The leaked management route bypasses the ASA entirely.
    network.add_link(("m1", "to-mgmt"), ("mgmt-vlan-filter", "in0"))

    return DepartmentNetwork(
        network=network,
        asa=asa,
        office_entry=(first_office or "office-sw0", "in-host"),
        lab_entry=(first_lab or "lab-sw1", "in-host"),
        cluster_entry=("cluster", "in-node"),
        internet_entry=("m1", "in-internet"),
        internet_exit=("m1", "to-internet"),
        management_exit=("switch-management", "reached"),
        mac_entries=mac_entries,
        route_entries=len(m1_routes),
    )


def campaign_network(**options) -> Tuple[Network, List[Tuple[str, str]]]:
    """Campaign adapter: the department network plus its injection ports.

    The injection ports are the four operational vantage points of §8.5 —
    an office host, a lab host, a cluster node and the Internet — which is
    exactly the set the paper's security audit sweeps.
    """
    workload = build_department_network(**options)
    return workload.network, [
        workload.office_entry,
        workload.lab_entry,
        workload.cluster_entry,
        workload.internet_entry,
    ]
