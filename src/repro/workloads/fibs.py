"""Router forwarding-table (FIB) generator.

The Table 2 experiment uses a public snapshot of a core-router FIB with
188 500 entries; what matters for the measurement is the prefix-length mix
and the overlap structure (more-specific prefixes nested inside shorter
ones), because those determine how many mutual-exclusion constraints the
model generator has to add.  The generator reproduces that structure:

* the prefix-length distribution is dominated by /24s with meaningful mass
  at /16–/23 and a tail of /8–/15 and /25–/32, approximating the well-known
  BGP table shape;
* a configurable fraction of prefixes is generated *inside* a previously
  generated shorter prefix, creating LPM overlaps;
* next hops are spread over a configurable number of interfaces.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.models.router import FibEntry
from repro.sefl.util import number_to_ip

# (prefix length, relative weight) — coarse BGP-like distribution.
_LENGTH_WEIGHTS: Sequence[Tuple[int, float]] = (
    (8, 0.01),
    (12, 0.02),
    (16, 0.08),
    (18, 0.05),
    (20, 0.09),
    (21, 0.07),
    (22, 0.12),
    (23, 0.11),
    (24, 0.40),
    (28, 0.02),
    (32, 0.03),
)


def generate_fib(
    entries: int,
    ports: int = 16,
    seed: int = 7,
    overlap_fraction: float = 0.35,
) -> List[FibEntry]:
    """Generate ``entries`` FIB rules over ``ports`` output interfaces.

    ``overlap_fraction`` of the rules are more-specific prefixes carved out
    of an earlier rule's range (often pointing at a *different* interface),
    which is what forces the model generator to emit the ``!a & b``
    exclusion constraints the paper counts.
    """
    rng = random.Random(seed)
    lengths = [length for length, _ in _LENGTH_WEIGHTS]
    weights = [weight for _, weight in _LENGTH_WEIGHTS]

    fib: List[FibEntry] = []
    seen = set()
    while len(fib) < entries:
        make_overlap = fib and rng.random() < overlap_fraction
        if make_overlap:
            parent_address, parent_len, _ = fib[rng.randrange(len(fib))]
            extra = rng.choice([1, 2, 3, 4, 8])
            plen = min(32, parent_len + extra)
            host_bits = 32 - plen
            parent_host_bits = 32 - parent_len
            offset = rng.randrange(1 << (parent_host_bits - host_bits)) if parent_host_bits > host_bits else 0
            address = parent_address | (offset << host_bits)
        else:
            plen = rng.choices(lengths, weights=weights, k=1)[0]
            host_bits = 32 - plen
            # Stay inside unicast space (1.0.0.0 – 223.255.255.255).
            address = rng.randrange(0x01000000, 0xDF000000) & ~((1 << host_bits) - 1)
        key = (address, plen)
        if key in seen:
            continue
        seen.add(key)
        port = f"if{rng.randrange(ports)}"
        fib.append((address, plen, port))
    return fib


def count_overlaps(fib: Sequence[FibEntry]) -> int:
    """Number of (more specific, less specific) overlapping prefix pairs —
    the count of extra exclusion constraints the paper reports (183 000 for
    the 188 500-entry table)."""
    from repro.solver.intervals import prefix_to_interval

    intervals = [
        (prefix_to_interval(address, plen), plen) for address, plen, _ in fib
    ]
    # Sweep by interval start to avoid the quadratic comparison.
    order = sorted(range(len(intervals)), key=lambda i: intervals[i][0].lo)
    active: List[int] = []
    overlaps = 0
    for index in order:
        interval, plen = intervals[index]
        active = [i for i in active if intervals[i][0].hi >= interval.lo]
        for other in active:
            other_interval, other_plen = intervals[other]
            if other_interval.hi >= interval.hi and other_plen < plen:
                overlaps += 1
            elif interval.hi >= other_interval.hi and plen < other_plen:
                overlaps += 1
        active.append(index)
    return overlaps


def fib_as_text(fib: Sequence[FibEntry]) -> str:
    """Render the FIB as snapshot text accepted by the routing-table parser."""
    return "\n".join(
        f"{number_to_ip(address)}/{plen}    {port}" for address, plen, port in fib
    ) + "\n"


def fib_subset(fib: Sequence[FibEntry], fraction: float, seed: int = 3) -> List[FibEntry]:
    """A deterministic random subset containing ``fraction`` of the rules
    (used for the 1 % / 33 % / 100 % sweep of Table 2)."""
    if fraction >= 1.0:
        return list(fib)
    rng = random.Random(seed)
    count = max(1, int(len(fib) * fraction))
    indices = rng.sample(range(len(fib)), count)
    return [fib[i] for i in sorted(indices)]
