"""Synthetic workload generators for the evaluation harness.

The paper's evaluation uses snapshots of real devices (the department core
switch, a public core-router FIB, the Stanford backbone dataset) and two
operational topologies (the Split-TCP enterprise deployment and the CS
department network).  Those datasets are not redistributable, so this
package generates deterministic synthetic equivalents whose *structure*
matches what the experiments depend on: per-port MAC grouping, prefix
overlap patterns, topology shape and rule counts.  See DESIGN.md §2 for the
substitution rationale.
"""

from repro.workloads.mac_tables import generate_mac_table
from repro.workloads.fibs import generate_fib
from repro.workloads.stanford import build_stanford_like_backbone, stanford_hsa_network
from repro.workloads.department import build_department_network
from repro.workloads.enterprise import build_split_tcp_network

__all__ = [
    "build_department_network",
    "build_split_tcp_network",
    "build_stanford_like_backbone",
    "generate_fib",
    "generate_mac_table",
    "stanford_hsa_network",
]
