"""Synthetic workload generators for the evaluation harness.

The paper's evaluation uses snapshots of real devices (the department core
switch, a public core-router FIB, the Stanford backbone dataset) and two
operational topologies (the Split-TCP enterprise deployment and the CS
department network).  Those datasets are not redistributable, so this
package generates deterministic synthetic equivalents whose *structure*
matches what the experiments depend on: per-port MAC grouping, prefix
overlap patterns, topology shape and rule counts.  See DESIGN.md §2 for the
substitution rationale.
"""

from typing import Callable, Dict, List, Tuple

from repro.network.topology import Network
from repro.workloads.mac_tables import generate_mac_table
from repro.workloads.fibs import generate_fib
from repro.workloads import department, enterprise, stanford
from repro.workloads.stanford import build_stanford_like_backbone, stanford_hsa_network
from repro.workloads.department import build_department_network
from repro.workloads.enterprise import build_split_tcp_network

#: Campaign-facing registry: workload name -> builder returning the network
#: plus its default injection ports.  Campaign workers rebuild workloads
#: from (name, options) pairs, so builders must be deterministic in their
#: arguments (they are: every generator is seeded).
CAMPAIGN_WORKLOADS: Dict[
    str, Callable[..., Tuple[Network, List[Tuple[str, str]]]]
] = {
    "department": department.campaign_network,
    "enterprise": enterprise.campaign_network,
    "stanford": stanford.campaign_network,
}


def build_campaign_network(
    name: str, **options
) -> Tuple[Network, List[Tuple[str, str]]]:
    """Build a registered workload for a verification campaign.

    Returns the network and the workload's default injection ports.
    """
    try:
        builder = CAMPAIGN_WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(CAMPAIGN_WORKLOADS))
        raise ValueError(f"unknown campaign workload {name!r}; known: {known}")
    return builder(**options)


__all__ = [
    "CAMPAIGN_WORKLOADS",
    "build_campaign_network",
    "build_department_network",
    "build_split_tcp_network",
    "build_stanford_like_backbone",
    "generate_fib",
    "generate_mac_table",
    "stanford_hsa_network",
]
